#!/usr/bin/env python
"""Receiver-side recovery variants on a packet-spraying fat tree.

Per-packet spraying extracts path diversity from a fat tree but gives up
the in-order delivery the NIFDY protocol assumes, so something at the
receiver has to put the stream back together.  This sweep compares the
three classic answers under synchronized incast bursts:

* ``reorder-window``  -- NIFDY-style bounded reorder window with
  cumulative acks (a loss costs go-back-N style retransmission storms);
* ``reorder-bitmap``  -- Eunomia-style bitmap tracker whose selective
  acks retransmit only the packets actually lost;
* ``reorder-jain``    -- Jain's drop-vs-cache receiver (DEC TR-342):
  out-of-order arrivals are dropped (or cached up to a tiny budget) and
  recovered purely by sender timeout.

Every cell runs loss x path-skew on ``fattree-spray`` with the invariant
monitor attached; the variants differ in *cost* (retransmissions,
duplicates), never in *correctness* (delivery must be exactly-once and
in order everywhere).

Run:  python examples/reorder_comparison.py
Exits non-zero if any cell is incomplete, misordered, or trips a
protocol invariant (so it doubles as a smoke test in CI).
"""

import sys

from repro.experiments import (
    REORDER_VARIANT_MODES,
    reorder_variant_specs,
    run_experiment,
)

LOSS_RATES = (0.0, 0.001, 0.01)
PATH_SKEWS = (0, 2, 8)


def main() -> int:
    specs = reorder_variant_specs(
        "fattree-spray",
        loss_rates=LOSS_RATES,
        path_skews=PATH_SKEWS,
        num_nodes=16,
        seed=3,
    )
    print("incast on 16-node fattree-spray: 3 receiver variants x "
          f"loss {LOSS_RATES} x path-skew {PATH_SKEWS}\n")
    header = (f"{'variant':15s} {'loss':>6s} {'skew':>4s} "
              f"{'delivered':>9s} {'cycles':>9s} {'retx':>5s} "
              f"{'dups':>5s} {'depth p99':>9s}  status")
    print(header)
    print("-" * len(header))

    ok = True
    cells = len(LOSS_RATES) * len(PATH_SKEWS)
    for i, spec in enumerate(specs):
        mode = REORDER_VARIANT_MODES[i // cells]
        loss = LOSS_RATES[(i % cells) // len(PATH_SKEWS)]
        skew = PATH_SKEWS[i % len(PATH_SKEWS)]
        result = run_experiment(spec)
        violations = result.violations
        good = (result.completed and result.order_violations == 0
                and not violations)
        ok = ok and good
        retx = sum(nic.retransmissions for nic in result.nics)
        dups = sum(nic.duplicates_dropped for nic in result.nics)
        status = "ok" if good else (
            f"completed={result.completed} "
            f"order={result.order_violations} viol={len(violations)}")
        print(f"{mode:15s} {loss:6.2%} {skew:4d} "
              f"{result.delivered:9,} {result.cycles:9,} {retx:5d} "
              f"{dups:5d} {result.metrics.reorder_depth.p99:9d}  {status}")

    if ok:
        print("\nEvery cell delivered exactly-once, in order, with zero "
              "invariant violations; the variants differ only in recovery "
              "cost.")
        return 0
    print("\nFAILED: a cell was incomplete, misordered, or tripped an "
          "invariant.")
    return 1


if __name__ == "__main__":
    sys.exit(main())
