#!/usr/bin/env python
"""NIFDY on an unreliable network (the Section 6.2 extension).

Builds a fat tree whose links drop packets, attaches the retransmitting
NIFDY variant, and shows that a bulk transfer still completes, in order,
with the NIC masking every loss from the software -- "we have used simple
hardware to mask an exceptional condition".

Run:  python examples/lossy_network.py
Exits non-zero if any transfer is incomplete or out of order (so it
doubles as a smoke test in CI).
"""

import sys
from collections import deque

from repro.networks import build_network
from repro.nic import NifdyParams, RetransmittingNifdyNIC
from repro.sim import RngFactory, Simulator
from repro.traffic import PacketFactory


def run(drop_prob: float) -> bool:
    sim = Simulator()
    rngf = RngFactory(17)
    network = build_network(
        "fattree", sim, 16,
        rng=rngf.stream("route"),
        drop_prob=drop_prob,
        drop_rng=rngf.stream("drop"),
    )
    params = NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=4)
    nics = network.attach_nics(
        lambda node: RetransmittingNifdyNIC(sim, node, params, retx_timeout=800)
    )

    message = PacketFactory(0, bulk_threshold=4).message(dst=9, num_packets=30)
    queue = deque(message)

    def pump() -> None:
        while queue and nics[0].try_send(queue[0]):
            queue.popleft()
        if queue:
            sim.schedule(50, pump)

    received = []

    def poll() -> None:
        packet = nics[9].receive()
        if packet is not None:
            received.append(packet)
            nics[9].accepted(packet)
        if len(received) < len(message):
            sim.schedule(25, poll)

    sim.schedule(0, pump)
    sim.schedule(25, poll)
    sim.run_until(3_000_000)

    dropped = sum(link.packets_dropped for link in network.links)
    order_ok = [p.msg_seq for p in received] == list(range(len(message)))
    if len(received) == len(message):
        took = f"{max(p.delivered_cycle for p in received):,} cycles"
    else:
        took = ">3M cycles (incomplete)"
    print(
        f"drop={drop_prob:4.0%}  delivered={len(received)}/{len(message)} "
        f"in order={order_ok}  links dropped {dropped} packets, "
        f"sender retransmitted {nics[0].retransmissions}, "
        f"receiver discarded {nics[9].duplicates_dropped} duplicates, "
        f"took {took}"
    )
    return order_ok and len(received) == len(message)


def main() -> int:
    print("30-packet bulk transfer, 16-node fat tree with lossy links\n")
    ok = True
    for drop_prob in (0.0, 0.05, 0.15, 0.30):
        ok = run(drop_prob) and ok
    if ok:
        print("\nSoftware saw a perfectly reliable, in-order channel every time.")
        return 0
    print("\nFAILED: a transfer was incomplete or reordered.")
    return 1


if __name__ == "__main__":
    sys.exit(main())
