#!/usr/bin/env python
"""A scripted fault scenario: fail, degrade, repair, recover.

A 16-node fat tree runs the C-shift workload while a fault plan fails one
of the tree's up links at cycle 5,000, overlays a 10% packet-loss burst,
and repairs both at cycle 60,000.  The retransmitting NIFDY interface must
mask all of it: the workload completes in order with zero software-visible
anomalies, and the degradation report shows per-phase throughput plus the
time to recover after the repair.

Run:  python examples/fault_scenario.py
Exits non-zero if the run is incomplete, reordered, or dropped traffic
(so it doubles as a smoke test in CI).
"""

import sys

from repro.experiments import ExperimentSpec, cshift, run_experiment
from repro.faults import FaultPlan
from repro.metrics import degradation_report, format_degradation

FAIL_AT = 5_000
REPAIR_AT = 60_000


def main() -> int:
    plan = FaultPlan.from_shorthand([
        f"fail@{FAIL_AT}-{REPAIR_AT}:link=ft:up1.0",
        f"burst@{FAIL_AT}-{REPAIR_AT}:prob=0.1",
    ])
    # The JSON form is the same serialisation chaos reproducers use; a
    # round-trip proves this scenario is portable as a plain artifact.
    plan = FaultPlan.from_json(plan.to_json())
    print("16-node fat tree, C-shift workload")
    print("fault plan (JSON, shareable):")
    print("  " + plan.to_json(indent=2).replace("\n", "\n  "))
    print(f"  link ft:up1.0 fails at cycle {FAIL_AT:,}, repaired at {REPAIR_AT:,}")
    print(f"  10% packet loss on every link while it is down\n")
    result = run_experiment(ExperimentSpec(
        network="fattree",
        traffic=cshift(),
        num_nodes=16,
        nic_mode="nifdy",
        fault_plan=plan,
        max_cycles=5_000_000,
        seed=1,
    ))
    print(f"cycles simulated : {result.cycles:,}")
    print(f"packets sent     : {result.sent:,}")
    print(f"packets delivered: {result.delivered:,}")
    print(f"order violations : {result.order_violations}")
    report = degradation_report(
        metrics=result.metrics,
        nics=result.nics,
        network=result.network_obj,
        cycles=result.cycles,
        boundaries=plan.boundaries(),
        repairs=[(e.at, e.describe()) for e in plan.repairs()],
        timeline=result.fault_injector.timeline,
    )
    print(format_degradation(report))
    print("fault timeline:")
    for cycle, text in result.fault_injector.timeline:
        print(f"  @{cycle:>9,}  {text}")

    anomalies = []
    if not result.completed:
        anomalies.append("run did not complete")
        if result.stall_report:
            print(result.stall_report)
    if result.delivered != result.sent:
        anomalies.append(f"delivered {result.delivered} of {result.sent}")
    if result.order_violations:
        anomalies.append(f"{result.order_violations} order violations")
    if result.abandoned:
        anomalies.append(f"{result.abandoned} packets abandoned")
    if anomalies:
        print("\nFAILED: " + "; ".join(anomalies))
        return 1
    print("\nEvery packet arrived, in order: the faults were software-invisible.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
