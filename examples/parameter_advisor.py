#!/usr/bin/env python
"""Tune NIFDY to a network, the Section 2.4 way.

Characterises each topology empirically (idle-network latency fit, volume,
bisection -- the left half of Table 3), feeds the measurements to the
analytic parameter advisor, and prints the recommended (O, B, D, W)
alongside the paper's worked examples.

Run:  python examples/parameter_advisor.py
"""

from repro.analysis import (
    NetworkModel,
    PAPER_FATTREE_64,
    PAPER_MESH_8X8,
    characterize,
    recommend_params,
)

NETWORKS = ("mesh2d", "fattree", "cm5", "butterfly")


def main() -> None:
    print("Paper worked examples (Section 2.4.3):")
    for label, model in (("8x8 mesh", PAPER_MESH_8X8), ("64-node fat tree", PAPER_FATTREE_64)):
        rec = recommend_params(model)
        p = rec.params
        print(
            f"  {label:18s} max RTT={rec.max_roundtrip:5.0f}cy  ->  "
            f"O={p.opt_size} B={p.pool_size} D={p.dialogs} W={p.window}  ({rec.notes})"
        )

    print("\nMeasured on this simulator (64 nodes):")
    for name in NETWORKS:
        row = characterize(name, 64, hop_sample=200)
        model = NetworkModel(
            t_lat=row.t_lat,
            max_hops=row.max_hops,
            avg_hops=row.avg_hops,
            volume_words_per_node=row.volume_words_per_node,
            bisection_bytes_per_cycle=row.bisection_bytes_per_cycle,
            num_nodes=row.num_nodes,
        )
        rec = recommend_params(model)
        p = rec.params
        print(
            f"  {row.name:22s} {row.formula():26s} vol={row.volume_words_per_node:5.1f}w/node "
            f"bis={row.bisection_bytes_per_cycle:5.1f}B/cy  ->  "
            f"O={p.opt_size} B={p.pool_size} D={p.dialogs} W={p.window}"
        )


if __name__ == "__main__":
    main()
