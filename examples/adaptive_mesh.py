#!/usr/bin/env python
"""Section 6.3 future work: NIFDY + adaptive routing on a mesh.

"We also plan to extend the simulator to study how NIFDY interacts with
adaptive routing on a mesh, which in the past has not performed well enough
to justify its expense.  Adding the admission control and in-order delivery
of NIFDY may help adaptive routing reach its potential."

This example runs heavy random traffic on the 8x8 mesh with dimension-order
and Duato-style fully-adaptive routing, each with and without NIFDY, and
shows the interaction the authors conjectured: adaptivity alone barely pays
(packets spread into more buffers and reorder, adding software cost), but
with NIFDY soaking up the reordering and capping admission, the adaptive
mesh pulls clearly ahead.

Run:  python examples/adaptive_mesh.py
"""

from repro.experiments import ExperimentSpec, SweepEngine, heavy_synthetic

CYCLES = 20_000


def main() -> None:
    print(f"8x8 mesh, heavy random traffic, {CYCLES:,}-cycle window\n")
    print(f"{'routing':18s}{'NIC':9s}{'delivered':>11s}{'violations':>12s}")
    pairs = [
        (network, mode)
        for network in ("mesh2d", "mesh2d-adaptive")
        for mode in ("plain", "nifdy-")
    ]
    specs = [
        ExperimentSpec(
            network=network, traffic=heavy_synthetic(), num_nodes=64,
            nic_mode=mode, run_cycles=CYCLES, seed=7,
            label=f"{network}/{mode}",
        )
        for network, mode in pairs
    ]
    engine = SweepEngine(jobs=4, cache=False)
    results = {}
    for (network, mode), point in zip(pairs, engine.run(specs)):
        results[(network, mode)] = point.delivered
        label = "dimension-order" if network == "mesh2d" else "adaptive"
        print(f"{label:18s}{mode:9s}{point.delivered:>11,}"
              f"{point.order_violations:>12d}")

    dor_gain = results[("mesh2d", "nifdy-")] / results[("mesh2d", "plain")]
    ad_gain = (
        results[("mesh2d-adaptive", "nifdy-")]
        / results[("mesh2d-adaptive", "plain")]
    )
    best = max(results, key=results.get)
    print(f"\nNIFDY gain: {dor_gain:.2f}x on dimension-order, "
          f"{ad_gain:.2f}x on adaptive routing")
    print(f"best combination: {best[0]} + {best[1]} "
          f"({results[best]:,} packets)")


if __name__ == "__main__":
    main()
