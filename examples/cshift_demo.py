#!/usr/bin/env python
"""Cyclic shift on the CM-5-style network, with and without NIFDY.

Reproduces the Section 4.3 story at demo scale: without barriers, fast
nodes run ahead and pile packets onto doubly-targeted receivers (the dark
streaks of Figure 5); NIFDY's admission control dissipates the pile-ups and
finishes the whole shift earlier than the Strata-style barrier version.

Run:  python examples/cshift_demo.py
"""

from repro.experiments import ExperimentSpec, cshift, run_experiment
from repro.traffic import CShiftConfig

NODES = 32
WORDS = 90


def run(label, nic_mode, barriers):
    result = run_experiment(ExperimentSpec(
        network="cm5",
        traffic=cshift(CShiftConfig(words_per_phase=WORDS, barriers=barriers)),
        num_nodes=64,          # the fabric is a 64-leaf CM-5 tree...
        active_nodes=NODES,    # ...populated with 32 processors, as in 4.3
        nic_mode=nic_mode,
        seed=3,
        track_congestion=True,
        congestion_sample_every=4000,
        max_cycles=8_000_000,
    ))
    peak = result.congestion.mean_peak_pending()
    print(
        f"{label:28s} finished={result.cycles:>9,} cycles  "
        f"packets={result.delivered:>6}  mean peak backlog={peak:5.1f}"
    )
    return result


def main() -> None:
    print(f"C-shift, {NODES}-node CM-5 network, {WORDS} words per phase\n")
    plain = run("no NIFDY, no barriers", "plain", barriers=False)
    barred = run("no NIFDY, barriers", "plain", barriers=True)
    nifdy = run("NIFDY, no barriers", "nifdy", barriers=False)

    print("\nPer-receiver backlog over time (one row per sample, Figure 5):")
    print("\n  without NIFDY:")
    for row in plain.congestion.heatmap_rows()[:14]:
        print("   |" + row[:NODES] + "|")
    print("\n  with NIFDY:")
    for row in nifdy.congestion.heatmap_rows()[:14]:
        print("   |" + row[:NODES] + "|")

    speedup = barred.cycles / nifdy.cycles
    print(f"\nNIFDY finishes {speedup:.2f}x faster than optimized barriers.")


if __name__ == "__main__":
    main()
