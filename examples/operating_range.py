#!/usr/bin/env python
"""The operating range (Section 1), made visible.

"Interconnection networks deliver maximum performance when the offered
load is limited to a fraction of the maximum bandwidth ... when the offered
load exceeds the operating range, throughput falls off."  NIFDY's admission
control is the paper's answer: hold the network at its operating point no
matter what the processors offer.

This sweep paces each sender with an inter-send gap (large gap = light
offered load) on the 8x8 torus under heavy random traffic and plots, in
ASCII, delivered throughput vs offered load for the bare NIC and for NIFDY.

Run:  python examples/operating_range.py
"""

from repro.experiments import ExperimentSpec, SweepEngine, heavy_synthetic
from repro.traffic import SyntheticConfig

GAPS = (1200, 800, 400, 200, 100, 50, 0)
CYCLES = 20_000


def main() -> None:
    print("Offered-load sweep, 8x8 torus, heavy random traffic "
          f"({CYCLES:,}-cycle window)\n")
    specs = [
        ExperimentSpec(
            network="torus2d",
            traffic=heavy_synthetic(
                SyntheticConfig.heavy_traffic(send_gap_cycles=gap)
            ),
            num_nodes=64, nic_mode=mode, run_cycles=CYCLES, seed=7,
            label=f"{mode}/gap={gap}",
        )
        for mode in ("plain", "nifdy-")
        for gap in GAPS
    ]
    engine = SweepEngine(jobs=4, cache=False)
    points = iter(engine.run(specs))
    curves = {
        mode: [next(points).delivered for _ in GAPS]
        for mode in ("plain", "nifdy-")
    }

    scale = max(max(curve) for curve in curves.values())
    print(f"{'send gap':>9s} {'offered':>8s}   {'plain':>7s} {'NIFDY':>7s}"
          "   delivered packets")
    for i, gap in enumerate(GAPS):
        offered = "high" if gap < 100 else ("med" if gap < 500 else "low")
        plain, nifdy = curves["plain"][i], curves["nifdy-"][i]
        bar_p = "#" * round(40 * plain / scale)
        bar_n = "*" * round(40 * nifdy / scale)
        print(f"{gap:>9d} {offered:>8s}   {plain:>7,} {nifdy:>7,}")
        print(f"{'':>28s}plain |{bar_p}")
        print(f"{'':>28s}NIFDY |{bar_n}")

    knee_plain = curves["plain"][-1] / curves["plain"][-3]
    knee_nifdy = curves["nifdy-"][-1] / curves["nifdy-"][-3]
    print(f"\npast the knee, doubling offered load buys the plain NIC "
          f"{knee_plain:.2f}x but NIFDY {knee_nifdy:.2f}x -- admission "
          "control keeps the fabric in its operating range.")


if __name__ == "__main__":
    main()
