#!/usr/bin/env python
"""EM3D across network fabrics: what in-order delivery buys the library.

Runs the paper's heavy-communication EM3D parameterisation (Section 4.4,
scaled down) on three 64-node networks and prints cycles per iteration for
the four NIC configurations of Figure 8.  The NIFDY- column isolates flow
control; the NIFDY column adds the in-order-aware Split-C library (more
payload per packet, cheaper receives).

Run:  python examples/em3d_demo.py
"""

from repro.experiments import ExperimentSpec, em3d, run_experiment
from repro.traffic import Em3dConfig

NETWORKS = ("fattree", "mesh2d", "multibutterfly")
MODES = ("plain", "buffered", "nifdy-", "nifdy")


def main() -> None:
    config = Em3dConfig.heavy_communication(scale=0.12, iterations=2)
    print(
        f"EM3D, 64 nodes: n_nodes={config.n_nodes} d_nodes={config.d_nodes} "
        f"local_p={config.local_p}% dist_span={config.dist_span}\n"
    )
    header = f"{'network':22s}" + "".join(f"{m:>12s}" for m in MODES)
    print(header)
    print("-" * len(header))
    for network in NETWORKS:
        cells = []
        for mode in MODES:
            result = run_experiment(ExperimentSpec(
                network=network,
                traffic=em3d(config),
                num_nodes=64,
                nic_mode=mode,
                seed=5,
                max_cycles=20_000_000,
            ))
            cpi = result.drivers[0].cycles_per_iteration()
            cells.append(f"{cpi:>12,.0f}")
        print(f"{network:22s}" + "".join(cells))
    print("\ncells are cycles per EM3D iteration (lower is better)")


if __name__ == "__main__":
    main()
