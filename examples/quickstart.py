#!/usr/bin/env python
"""Quickstart: put NIFDY between processors and a fat tree, move a message.

Builds a 64-node full 4-ary fat tree, attaches a NIFDY unit to every node,
sends a 20-packet message from node 0 to node 42 (long enough that the
sender requests a bulk dialog), and prints what the protocol did.

Run:  python examples/quickstart.py
"""

from repro.nic import NifdyNIC, NifdyParams
from repro.networks import build_network
from repro.sim import Simulator
from repro.traffic import PacketFactory


def main() -> None:
    sim = Simulator()
    network = build_network("fattree", sim, num_nodes=64)
    params = NifdyParams(opt_size=8, pool_size=8, dialogs=1, window=4)
    nics = network.attach_nics(lambda node: NifdyNIC(sim, node, params))

    print(f"network : {network.name}")
    print(f"volume  : {network.volume_words_per_node():.0f} words/node")
    print(f"bisection bandwidth: {network.bisection_bandwidth():.0f} bytes/cycle")
    print(f"NIFDY   : O={params.opt_size} B={params.pool_size} "
          f"D={params.dialogs} W={params.window}")

    # Build a 20-packet message; above the 4-packet threshold it carries the
    # bulk-request bit, so the receiver will grant a dialog.
    factory = PacketFactory(0, bulk_threshold=4)
    message = factory.message(dst=42, num_packets=20)
    outbox = list(message)

    def send_loop() -> None:
        # 40 cycles of software send overhead per packet; if the pool is
        # full (the network is slower than the CPU), retry like a real
        # processor would.
        if outbox and nics[0].try_send(outbox[0]):
            outbox.pop(0)
        if outbox:
            sim.schedule(40, send_loop)

    sim.schedule(0, send_loop)

    # Poll node 42 until the whole message arrived, like the paper's
    # polling-only reception model.
    received = []

    def poll() -> None:
        packet = nics[42].receive()
        if packet is not None:
            received.append(packet)
            nics[42].accepted(packet)
        if len(received) < len(message):
            sim.schedule(25, poll)

    sim.schedule(25, poll)
    sim.run_until(100_000)

    print(f"\ndelivered {len(received)}/{len(message)} packets "
          f"in {sim.now} cycles")
    order = [p.msg_seq for p in received]
    print(f"in order : {order == sorted(order)} (sequence {order[:8]}...)")
    print(f"sender   : {nics[0].scalar_sent} scalar + {nics[0].bulk_sent} bulk "
          f"packets, {nics[0].acks_received} acks consumed")
    print(f"receiver : granted {nics[42].bulk_grants} bulk dialog(s), "
          f"sent {nics[42].acks_sent} acks")
    mean_latency = sum(
        p.delivered_cycle - p.injected_cycle for p in received
    ) / len(received)
    print(f"latency  : {mean_latency:.0f} cycles mean (injection -> accept)")


if __name__ == "__main__":
    main()
