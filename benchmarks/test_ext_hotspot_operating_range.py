"""Extension benches: hot-spot throttling, the operating range, and
adaptive mesh routing (Section 1 motivation + Sections 5 and 6.3).

These regenerate the paper's *claims in prose* that have no numbered
figure:

* **Operating range** (Section 1): "Interconnection networks deliver
  maximum performance when the offered load is limited to a fraction of
  the maximum bandwidth ... when the offered load exceeds the operating
  range, throughput falls off".  We sweep offered load via inter-send
  pacing and show the bare NIC's delivered throughput saturating/sagging
  past the knee while NIFDY holds the network at its operating point.
* **Hot-spot bandwidth matching** (Section 5): "NIFDY also handles the more
  general case with multiple nodes sending to one receiver ... throttles
  the combined injection rate of all the senders to a level that the
  receiver can handle".  The observable is background traffic: secondary
  blocking around the hot spot hurts everyone else unless admission is
  controlled.
* **Adaptive mesh** (Section 6.3 future work): "adding the admission
  control and in-order delivery of NIFDY may help adaptive routing reach
  its potential".
"""

from repro.experiments import ExperimentSpec, heavy_synthetic, hotspot
from repro.traffic import HotSpotConfig, SyntheticConfig

from conftest import BENCH_CYCLES, BENCH_SEED

GAPS = (800, 400, 200, 100, 0)  # decreasing gap = increasing offered load


def run_operating_range(engine):
    specs = [
        ExperimentSpec(
            network="torus2d",
            traffic=heavy_synthetic(
                SyntheticConfig.heavy_traffic(send_gap_cycles=gap)
            ),
            num_nodes=64, nic_mode=mode, run_cycles=BENCH_CYCLES,
            seed=BENCH_SEED, label=f"{mode}/gap={gap}",
        )
        for mode in ("plain", "nifdy-")
        for gap in GAPS
    ]
    points = iter(engine.run(specs))
    return {
        mode: [next(points).delivered for _ in GAPS]
        for mode in ("plain", "nifdy-")
    }


def run_hotspot(engine):
    modes = ("plain", "buffered", "nifdy-")
    specs = [
        ExperimentSpec(
            network="mesh2d",
            traffic=hotspot(HotSpotConfig(hot_node=27, hot_fraction=0.3,
                                          packets_per_node=120)),
            num_nodes=64, nic_mode=mode, seed=BENCH_SEED,
            max_cycles=20_000_000, label=f"hotspot/{mode}",
        )
        for mode in modes
    ]
    out = {}
    for mode, point in zip(modes, engine.run(specs)):
        assert point.completed, mode
        out[mode] = point.cycles
    return out


def run_adaptive_mesh(engine):
    pairs = [
        (network, mode)
        for network in ("mesh2d", "mesh2d-adaptive")
        for mode in ("plain", "nifdy-")
    ]
    specs = [
        ExperimentSpec(
            network=network, traffic=heavy_synthetic(), num_nodes=64,
            nic_mode=mode, run_cycles=BENCH_CYCLES, seed=BENCH_SEED,
            label=f"{network}/{mode}",
        )
        for network, mode in pairs
    ]
    return {
        pair: point.delivered for pair, point in zip(pairs, engine.run(specs))
    }


def test_ext_operating_range(benchmark, report, engine):
    curves = benchmark.pedantic(run_operating_range, args=(engine,), rounds=1,
                                iterations=1)
    report.line("Operating range (torus, heavy traffic): delivered packets vs "
                "offered load")
    report.line(f"{'send gap':>10s}{'plain':>10s}{'NIFDY':>10s}")
    for i, gap in enumerate(GAPS):
        report.line(f"{gap:>10d}{curves['plain'][i]:>10,}{curves['nifdy-'][i]:>10,}")

    plain, nifdy = curves["plain"], curves["nifdy-"]
    # At light offered load the NIC protocol is immaterial (within 10%).
    assert abs(plain[0] - nifdy[0]) <= 0.1 * max(plain[0], nifdy[0])
    # Past the knee, the plain network's *marginal* return collapses: the
    # last doubling of offered load buys it much less than NIFDY gains.
    plain_knee_gain = plain[-1] / plain[-3]
    nifdy_knee_gain = nifdy[-1] / nifdy[-3]
    assert nifdy_knee_gain > plain_knee_gain
    # And at full blast NIFDY extracts strictly more from the same fabric.
    assert nifdy[-1] > 1.1 * plain[-1]


def test_ext_hotspot_throttling(benchmark, report, engine):
    out = benchmark.pedantic(run_hotspot, args=(engine,), rounds=1,
                             iterations=1)
    report.line("Hot spot (8x8 mesh, 30% of traffic to node 27): cycles to "
                "drain a fixed workload")
    for mode, cycles in out.items():
        report.line(f"  {mode:9s}: {cycles:>10,} cycles")
    # Admission control finishes the whole workload (hot and background
    # traffic together) at least as fast as either baseline.
    assert out["nifdy-"] <= 1.02 * out["plain"]
    assert out["nifdy-"] <= 1.05 * out["buffered"]


def test_ext_adaptive_mesh(benchmark, report, engine):
    out = benchmark.pedantic(run_adaptive_mesh, args=(engine,), rounds=1,
                             iterations=1)
    report.line("Adaptive mesh routing (Section 6.3), heavy traffic, "
                f"{BENCH_CYCLES:,} cycles:")
    for (network, mode), delivered in out.items():
        report.line(f"  {network:16s} {mode:7s}: {delivered:>8,}")
    adaptive_gain = out[("mesh2d-adaptive", "nifdy-")] / out[("mesh2d-adaptive", "plain")]
    dor_gain = out[("mesh2d", "nifdy-")] / out[("mesh2d", "plain")]
    report.line(f"  NIFDY gain: adaptive {adaptive_gain:.2f}x vs "
                f"dimension-order {dor_gain:.2f}x")
    # NIFDY helps the adaptive mesh at least as much as the deterministic
    # one (the Section 6.3 conjecture), and the combination beats the
    # plain adaptive mesh.
    assert out[("mesh2d-adaptive", "nifdy-")] > out[("mesh2d-adaptive", "plain")]
    assert adaptive_gain >= 0.95 * dor_gain