"""Table 2: simulator calibration against the paper's measured CM-5 costs.

The paper measured send/receive/poll overheads and one-way latency on a
real CM-5 and fed them to its simulator; we use the Section 2.4.3 values as
constants and verify here that the *simulated* network latencies come out
with the paper's structure:

* 8x8 wormhole mesh:   T_lat(d) ~ 4d + c   (one word-flit per hop on a
  byte-wide link);
* 64-node full fat tree: T_lat(d) ~ 5d + c (flit time + 1 route cycle);
* CM-5 imitation: per-hop cost ~4x the full fat tree's (4-bit links,
  time-multiplexed logical networks), giving the "round-trip latency twice
  as great" regime of Section 4.1;
* one-way latency including software (Table 2's last row) = T_send +
  T_lat(d) + dispatch, measured end-to-end through real NICs/processors.
"""

import pytest

from repro.analysis import measure_latency_fit
from repro.node import CM5_TIMING
from repro.sim import RngFactory

from conftest import BENCH_SEED


def run_calibration():
    fits = {
        name: measure_latency_fit(name, 64, max_probes=16)
        for name in ("mesh2d", "fattree", "cm5", "butterfly")
    }
    return fits


def test_table2_calibration(benchmark, report):
    fits = benchmark.pedantic(run_calibration, rounds=1, iterations=1)
    t = CM5_TIMING
    report.line("Table 2: software costs used by the simulator (Section 2.4.3)")
    report.line(f"  active message send           : {t.t_send} cycles")
    report.line(f"  active message receive        : {t.t_receive} cycles")
    report.line(f"  active message poll (empty)   : {t.t_poll} cycles")
    report.line(f"  NIFDY ack processing (2 ends) : {4} cycles")
    report.line("")
    report.line("Measured uncontended tail-arrival latency fits (8-word packet):")
    for name, (slope, intercept) in fits.items():
        report.line(f"  {name:12s} T(d) = {slope:5.1f}*d + {intercept:6.1f}")
    report.line("")
    report.line("paper formulas: mesh 4d+14, fat tree 5d+2 (head latency; our"
                " intercept adds the 7-flit tail streaming time)")

    report.record("software_costs", {
        "active message send": t.t_send,
        "active message receive": t.t_receive,
        "active message poll (empty)": t.t_poll,
        "NIFDY ack processing (2 ends)": 4,
    })
    report.record("latency_fits", {
        name: [round(slope, 3), round(intercept, 3)]
        for name, (slope, intercept) in fits.items()
    })

    mesh_slope = fits["mesh2d"][0]
    ft_slope = fits["fattree"][0]
    cm5_slope = fits["cm5"][0]
    assert mesh_slope == pytest.approx(4.0, abs=0.5)
    assert ft_slope == pytest.approx(5.0, abs=0.5)
    # CM-5 per-hop cost ~ 16-17 cycles (4-bit links, time-sliced nets).
    assert 14.0 <= cm5_slope <= 20.0
    # butterfly: all paths equal length, so no usable slope -- its constant
    # latency must sit between mesh minimum and CM-5 levels.
    bf_slope, bf_intercept = fits["butterfly"]
    assert abs(bf_slope) < 1.0
    assert 30 <= bf_intercept <= 120
