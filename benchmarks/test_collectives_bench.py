"""NIC-offloaded vs host barrier latency under heavy background traffic.

The headline artifact of the collectives subsystem: an allreduce workload
whose every round also pushes a large background message through the
fabric, run once with the host-side flat combine (the CM-5-style
dedicated-hardware barrier model: a fixed release cost, no data-network
involvement) and once with barriers/reductions offloaded onto the NIC
combining tree, whose contribution and release packets share the loaded
request/reply networks with the background traffic.

The comparison quantifies what running collectives over the *data*
network costs relative to an idealised control network -- and that the
offloaded tree stays correct (driver-verified reductions, zero invariant
violations) while the fabric is saturated.
"""

from repro.experiments import ExperimentSpec, run_experiment
from repro.nic import CollectiveParams
from repro.obs import Observability, metrics_json
from repro.traffic import AllReduceConfig, TrafficSpec

from conftest import BENCH_SEED

NODES = 16
ROUNDS = 8
#: Large per-round background message (words) -- keeps the fabric loaded
#: while every collective is in flight.
BACKGROUND_WORDS = 96


def _run(barrier: str):
    return run_experiment(ExperimentSpec(
        network="fattree",
        traffic=TrafficSpec("allreduce", AllReduceConfig(
            rounds=ROUNDS, background_words=BACKGROUND_WORDS,
        )),
        num_nodes=NODES,
        max_cycles=5_000_000,
        seed=BENCH_SEED,
        collective_params=CollectiveParams(barrier=barrier),
        observe=Observability(validate=True, events=True),
    ))


def run_offload():
    return {barrier: _run(barrier) for barrier in ("host", "nic")}


def test_barrier_offload(benchmark, report):
    results = benchmark.pedantic(run_offload, rounds=1, iterations=1)
    report.line(f"Barrier offload: {ROUNDS}-round driver-verified allreduce "
                f"on the {NODES}-node fat tree, {BACKGROUND_WORDS} background "
                "words per node per round")
    report.line(f"{'barrier':8s}{'cycles':>10s}{'mean':>8s}{'p50':>7s}"
                f"{'p99':>7s}{'max':>7s}  (barrier latency, cycles)")

    mean, p99, maximum, cycles, violations = {}, {}, {}, {}, {}
    for barrier, res in results.items():
        assert res.completed, barrier
        assert res.violations == [], barrier
        hist = res.metrics.barrier_latency
        assert hist.count == ROUNDS * NODES, barrier
        mean[barrier] = round(hist.mean, 1)
        p99[barrier] = hist.p99
        maximum[barrier] = hist.maximum
        cycles[barrier] = res.cycles
        violations[barrier] = len(res.violations)
        report.line(f"{barrier:8s}{res.cycles:>10,}{hist.mean:>8.0f}"
                    f"{hist.p50:>7}{hist.p99:>7}{hist.maximum:>7}")

    nic_doc = metrics_json(results["nic"])
    counters = nic_doc["collectives"]
    report.line(f"NIC tree: {counters['coll_completed']} collectives "
                f"completed, {counters['coll_contribs_sent']} contributions, "
                f"{counters['coll_releases_sent']} releases, "
                f"{counters['coll_retransmits']} retransmit(s), "
                f"{counters['coll_duplicates']} duplicate(s)")

    report.record("barrier_latency_mean", mean)
    report.record("barrier_latency_p99", p99)
    report.record("barrier_latency_max", maximum)
    report.record("cycles", cycles)
    report.record("violations", violations)
    report.record("collectives", counters)

    # Correctness is the hard claim: the driver verified every reduced
    # value against the closed form, the monitor saw no violation, and the
    # root completed exactly one collective per round.
    assert counters["coll_completed"] == ROUNDS
    # The host combine models a dedicated hardware barrier (fixed release
    # cost); the NIC tree pays real data-network latency, so it is slower
    # but must stay within a civilised envelope of the run itself.
    assert 0 < mean["host"] <= mean["nic"]
    assert maximum["nic"] < cycles["nic"]
