"""Figure 3: packets delivered under LIGHT synthetic traffic.

Paper: each node sends with probability 1/3 per phase; the message-length
distribution has a long tail (10- and 20-packet messages), and idle nodes
periodically ignore the network.  This mainly measures pairwise bandwidth
with occasional target collisions and unresponsive receivers -- the regime
where bulk dialogs (window W) matter most.
"""

from repro.experiments import ExperimentSpec, light_synthetic
from repro.networks import NETWORK_NAMES

from conftest import BENCH_CYCLES, BENCH_SEED

MODES = ("plain", "buffered", "nifdy-")


def fig3_specs():
    return [
        ExperimentSpec(
            network=network, traffic=light_synthetic(), num_nodes=64,
            nic_mode=mode, run_cycles=BENCH_CYCLES, seed=BENCH_SEED,
            label=f"{network}/{mode}",
        )
        for network in NETWORK_NAMES
        for mode in MODES
    ]


def run_figure3(engine):
    points = iter(engine.run(fig3_specs()))
    return {
        network: {mode: next(points).delivered for mode in MODES}
        for network in NETWORK_NAMES
    }


def test_fig3_light_synthetic(benchmark, report, engine):
    rows = benchmark.pedantic(run_figure3, args=(engine,), rounds=1,
                              iterations=1)
    report.line(
        f"Figure 3: packets delivered in {BENCH_CYCLES:,} cycles, light traffic"
    )
    report.line(f"{'network':16s}{'no NIFDY':>10s}{'buffers':>10s}{'NIFDY':>10s}"
                f"{'NIFDY/plain':>13s}")
    for network, row in rows.items():
        ratio = row["nifdy-"] / row["plain"]
        report.line(
            f"{network:16s}{row['plain']:>10,}{row['buffered']:>10,}"
            f"{row['nifdy-']:>10,}{ratio:>12.2f}x"
        )
    report.record("delivered", rows)

    for network, row in rows.items():
        assert row["nifdy-"] >= 0.95 * row["plain"], network
        assert row["nifdy-"] >= 0.90 * row["buffered"], network
    # Long messages + round-trip-limited pairs: the bulk protocol gives
    # NIFDY the edge over plain on most networks.
    wins = sum(rows[n]["nifdy-"] > rows[n]["plain"] for n in rows)
    assert wins >= 6
