"""Ablations of NIFDY's design choices and Section 6 extensions.

1. **Scalar ack timing** (footnote 2): ack when the processor accepts the
   packet (the paper's choice) vs when the packet enters the arrivals FIFO
   -- the paper found acking early "surprisingly less effective" because it
   decouples admission from the receiver's actual consumption rate; the
   difference shows when receivers are slow (light traffic with
   non-responsive periods).
2. **Ack combining** (Section 2.4.2): one ack per W/2 packets vs an ack per
   packet (Equation 3 vs Equation 4) -- combining must not cost throughput
   while sending half the acks.
3. **Retransmission timeout** (Section 6.2): the one parameter the lossy
   extension is sensitive to (the paper compares this sensitivity to
   Compressionless Routing's abort timeout).
"""

from repro.experiments import (
    ExperimentSpec, cshift, light_synthetic, run_experiment,
)
from repro.nic import NifdyParams
from repro.traffic import CShiftConfig

from conftest import BENCH_CYCLES, BENCH_SEED


def run_ablations():
    out = {}
    # 1: ack timing, light traffic (slow receivers are the point)
    for label, on_insert in (("ack on accept", False), ("ack on insert", True)):
        params = NifdyParams(
            opt_size=8, pool_size=8, dialogs=1, window=2,
            scalar_ack_on_insert=on_insert,
        )
        out[label] = run_experiment(ExperimentSpec(
            network="fattree", traffic=light_synthetic(), num_nodes=64,
            nic_mode="nifdy-", nifdy_params=params, run_cycles=BENCH_CYCLES,
            seed=BENCH_SEED,
        )).delivered
    # 2: ack combining on a long-message workload over the high-latency tree
    for label, ack_every in (("combined acks (W/2)", None), ("per-packet acks", 1)):
        params = NifdyParams(
            opt_size=8, pool_size=8, dialogs=1, window=8, ack_every=ack_every
        )
        result = run_experiment(ExperimentSpec(
            network="fattree-sf",
            traffic=cshift(CShiftConfig(words_per_phase=60)),
            num_nodes=64,
            nic_mode="nifdy",
            nifdy_params=params,
            seed=BENCH_SEED,
            max_cycles=20_000_000,
        ))
        acks = sum(nic.acks_sent for nic in result.nics)
        out[label] = (result.cycles, acks)
    # 3: retransmission timeout sweep on a lossy fat tree
    for timeout in (400, 1000, 3000):
        result = run_experiment(ExperimentSpec(
            network="fattree",
            traffic=cshift(CShiftConfig(words_per_phase=24)),
            num_nodes=16,
            nic_mode="nifdy",
            drop_prob=0.08,
            retx_timeout=timeout,
            seed=BENCH_SEED,
            max_cycles=30_000_000,
        ))
        retx = sum(nic.retransmissions for nic in result.nics)
        out[f"retx timeout {timeout}"] = (result.cycles, retx, result.completed)
    return out


def test_ablation_extensions(benchmark, report):
    out = benchmark.pedantic(run_ablations, rounds=1, iterations=1)

    report.line("Ablation 1: scalar ack timing (light traffic, fat tree)")
    accept = out["ack on accept"]
    insert = out["ack on insert"]
    report.line(f"  ack on processor accept : {accept:,} packets")
    report.line(f"  ack on FIFO insert      : {insert:,} packets")

    report.line("")
    report.line("Ablation 2: ack combining (C-shift, store-and-forward fat tree)")
    comb_cycles, comb_acks = out["combined acks (W/2)"]
    pp_cycles, pp_acks = out["per-packet acks"]
    report.line(f"  combined (W/2): {comb_cycles:>10,} cycles, {comb_acks:>8,} acks")
    report.line(f"  per-packet    : {pp_cycles:>10,} cycles, {pp_acks:>8,} acks")

    report.line("")
    report.line("Ablation 3: retransmission timeout on an 8%-lossy fat tree")
    for timeout in (400, 1000, 3000):
        cycles, retx, completed = out[f"retx timeout {timeout}"]
        report.line(
            f"  timeout={timeout:>5} : {cycles:>10,} cycles, "
            f"{retx:>5} retransmissions, completed={completed}"
        )

    report.record("ack_timing_delivered",
                  {"ack on accept": accept, "ack on insert": insert})
    report.record("ack_combining", {
        "combined (W/2)": {"cycles": comb_cycles, "acks": comb_acks},
        "per-packet": {"cycles": pp_cycles, "acks": pp_acks},
    })
    report.record("retx_timeout", {
        str(timeout): {
            "cycles": out[f"retx timeout {timeout}"][0],
            "retransmissions": out[f"retx timeout {timeout}"][1],
            "completed": out[f"retx timeout {timeout}"][2],
        }
        for timeout in (400, 1000, 3000)
    })

    # 1: the two policies are close; in this reproduction insert-time
    # acking is actually slightly AHEAD on windowed throughput (the paper
    # found the opposite).  Our 2-packet arrivals FIFO already bounds how
    # far an early ack can run ahead of the processor, so the policies
    # differ only by one FIFO residence time per packet -- see
    # EXPERIMENTS.md for the discussion.
    assert accept >= 0.85 * insert
    assert insert >= 0.85 * accept
    # 2: combining halves (or better) the ack count at no throughput cost.
    assert comb_acks < 0.7 * pp_acks
    assert comb_cycles <= 1.1 * pp_cycles
    # 3: all timeouts complete; an over-aggressive timeout wastes bandwidth
    # on spurious retransmissions, an over-lazy one waits longer per loss.
    for timeout in (400, 1000, 3000):
        assert out[f"retx timeout {timeout}"][2], timeout
    assert out["retx timeout 400"][1] >= out["retx timeout 3000"][1]
