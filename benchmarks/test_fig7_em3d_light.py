"""Figure 7: EM3D cycles per iteration, LIGHT communication.

Paper parameters n_nodes=200, d_nodes=10, local_p=80, dist_span=5 (most
arcs stay on-processor), run here at reduced graph scale.  Four NIC
configurations per network; for the in-order topologies (2D mesh,
butterfly) the in-order-aware library is used in every configuration, as in
the paper.  Claims asserted:

* "Without in-order delivery, the difference between NIFDY and the
  buffers-only configurations is negligible";
* "Once the library takes advantage of the in-order delivery provided by
  NIFDY, it outperforms the buffers-only configuration in all cases";
* under light loads the in-order benefit is modest (the paper quotes ~10%).
"""

from repro.experiments import ExperimentSpec, em3d, run_experiment
from repro.traffic import Em3dConfig

from conftest import BENCH_SEED

NETWORKS = (
    "fattree", "cm5", "fattree-sf", "mesh2d", "torus2d", "mesh3d", "butterfly",
)
MODES = ("plain", "buffered", "nifdy-", "nifdy")
SCALE = 0.12
ITERATIONS = 2


def _config():
    return Em3dConfig.light_communication(scale=SCALE, iterations=ITERATIONS)


def run_em3d(config):
    rows = {}
    for network in NETWORKS:
        rows[network] = {}
        for mode in MODES:
            result = run_experiment(ExperimentSpec(
                network=network, traffic=em3d(config), num_nodes=64,
                nic_mode=mode, seed=BENCH_SEED, max_cycles=30_000_000,
            ))
            assert result.completed, (network, mode)
            rows[network][mode] = result.drivers[0].cycles_per_iteration()
    return rows


def check_em3d_claims(rows, inorder_gain_cap=None):
    from repro.networks import build_network
    from repro.sim import Simulator

    for network, row in rows.items():
        in_order_net = build_network(network, Simulator(), 64).delivers_in_order
        if not in_order_net:
            # flow control alone ~ buffers alone (within 12%)
            assert row["nifdy-"] <= 1.12 * row["buffered"], network
        # the in-order library beats buffers-only everywhere
        assert row["nifdy"] < row["buffered"], network
        # and never loses to flow-control-only
        assert row["nifdy"] <= row["nifdy-"] * 1.02, network


def report_em3d(report, title, rows):
    report.record("cycles_per_iteration", {
        network: {mode: round(row[mode], 1) for mode in MODES}
        for network, row in rows.items()
    })
    report.line(title)
    report.line(f"{'network':14s}" + "".join(f"{m:>11s}" for m in MODES)
                + f"{'gain':>8s}")
    for network, row in rows.items():
        gain = row["buffered"] / row["nifdy"]
        report.line(
            f"{network:14s}"
            + "".join(f"{row[m]:>11,.0f}" for m in MODES)
            + f"{gain:>7.2f}x"
        )
    report.line("(cells: cycles per EM3D iteration, lower is better; "
                "gain = buffers-only / NIFDY)")


def test_fig7_em3d_light(benchmark, report):
    rows = benchmark.pedantic(run_em3d, args=(_config(),), rounds=1, iterations=1)
    cfg = _config()
    report_em3d(
        report,
        f"Figure 7: EM3D, light communication (n={cfg.n_nodes}, d={cfg.d_nodes}, "
        f"local_p={cfg.local_p}, span={cfg.dist_span})",
        rows,
    )
    check_em3d_claims(rows)
