"""Figure 6: C-shift throughput on the 32-node CM-5 network.

Paper: "Using NIFDY's congestion control alone results in better
performance than optimized barriers.  When NIFDY's in-order delivery is
exploited, the benefit is even greater."  The four bars:

* no NIFDY, free-running phases,
* no NIFDY with a (Strata-style optimized) barrier per phase,
* NIFDY- (flow control only),
* NIFDY  (in-order delivery exploited by the library).

Metric: effective throughput = payload words moved per kilocycle (the word
count is identical across configurations; the packet count is not, because
the in-order library packs more payload per packet).
"""

from repro.experiments import ExperimentSpec, cshift, run_experiment
from repro.traffic import CShiftConfig

from conftest import BENCH_SEED

NODES = 32
WORDS = 90
TOTAL_WORDS = WORDS * NODES * (NODES - 1)

CONFIGS = (
    ("no NIFDY, no barriers", "plain", False),
    ("no NIFDY, barriers", "plain", True),
    ("NIFDY- (flow ctl only)", "nifdy-", False),
    ("NIFDY (in-order used)", "nifdy", False),
)


def run_figure6():
    results = {}
    for label, mode, barriers in CONFIGS:
        results[label] = run_experiment(ExperimentSpec(
            network="cm5",
            traffic=cshift(CShiftConfig(words_per_phase=WORDS, barriers=barriers)),
            num_nodes=64,
            active_nodes=NODES,
            nic_mode=mode,
            seed=BENCH_SEED,
            max_cycles=10_000_000,
        ))
    return results


def test_fig6_cshift_throughput(benchmark, report):
    results = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    report.line(f"Figure 6: C-shift on {NODES}-node CM-5 network "
                f"({TOTAL_WORDS:,} payload words total)")
    report.line(f"{'configuration':26s}{'cycles':>12s}{'packets':>10s}"
                f"{'words/kcycle':>14s}")
    tput = {}
    for label, res in results.items():
        assert res.completed, label
        tput[label] = 1000.0 * TOTAL_WORDS / res.cycles
        report.line(
            f"{label:26s}{res.cycles:>12,}{res.delivered:>10,}{tput[label]:>14.1f}"
        )
    report.record("words_per_kcycle", tput)
    report.record("cycles", {label: res.cycles for label, res in results.items()})

    free, barred, flow, inorder = (tput[c[0]] for c in CONFIGS)
    # Congestion control alone beats free-running phases and lands within a
    # few percent of optimized barriers.  (The paper's NIFDY- strictly beat
    # barriers; our barrier model is the CM-5's fast hardware-assisted sync
    # and our nodes are perfectly symmetric, which flatters the barrier bar
    # -- see EXPERIMENTS.md.)
    assert flow > free
    assert flow >= 0.92 * barred
    # Exploiting in-order delivery beats everything, barriers included.
    assert inorder > flow
    assert inorder > barred
    # And barriers beat nothing (the Strata result this builds on).
    assert barred >= 0.97 * free
