"""Figure 9: radix-sort scan phase, with and without inter-send delays.

Paper (Section 4.5): the scan is a per-bucket parallel prefix flowing
processor 0 -> 1 -> ... -> P-1.  Without inserted delays "the sends from
one processor cause the next processor in the pipeline to continually
receive with no chance to send, serializing the entire scan".  Findings
asserted:

* inserting delays helps in all cases, but is far more critical without
  NIFDY (NIFDY's ack pacing throttles the sender by itself);
* higher-latency networks (store-and-forward fat tree) gain more from
  NIFDY than low-latency ones (full fat tree);
* the coalesce phase (random single-packet sends) is virtually identical
  with and without NIFDY -- the protocol's restrictiveness does not hurt.
"""

from repro.experiments import ExperimentSpec, radix_sort, run_experiment
from repro.traffic import RadixSortConfig

from conftest import BENCH_SEED

FAT_TREES = ("fattree", "cm5", "fattree-sf")
DELAY = 150
BUCKETS = 128


def scan_cycles(network, nic_mode, delay, run_coalesce=False):
    result = run_experiment(ExperimentSpec(
        network=network,
        traffic=radix_sort(
            RadixSortConfig(
                buckets=BUCKETS,
                inter_send_delay=delay,
                run_coalesce=run_coalesce,
            )
        ),
        num_nodes=64,
        nic_mode=nic_mode,
        seed=BENCH_SEED,
        max_cycles=40_000_000,
    ))
    assert result.completed, (network, nic_mode, delay)
    scan = max(d.scan_finished_cycle for d in result.drivers)
    coalesce = None
    if run_coalesce:
        coalesce = max(d.coalesce_finished_cycle for d in result.drivers) - scan
    return scan, coalesce


def run_figure9():
    rows = {}
    for network in FAT_TREES:
        rows[network] = {
            ("plain", "no delay"): scan_cycles(network, "plain", 0)[0],
            ("plain", "delay"): scan_cycles(network, "plain", DELAY)[0],
            ("nifdy", "no delay"): scan_cycles(network, "nifdy", 0)[0],
            ("nifdy", "delay"): scan_cycles(network, "nifdy", DELAY)[0],
        }
    coalesce = {
        mode: scan_cycles("fattree", mode, 0, run_coalesce=True)[1]
        for mode in ("plain", "nifdy")
    }
    return rows, coalesce


def test_fig9_radix_scan(benchmark, report):
    rows, coalesce = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    report.line(f"Figure 9: cycles for one scan phase ({BUCKETS}-bucket radix, "
                f"64 processors; 'delay' = {DELAY} cycles between sends)")
    report.line(f"{'network':14s}{'plain':>12s}{'plain+dly':>12s}"
                f"{'NIFDY':>12s}{'NIFDY+dly':>12s}")
    for network, row in rows.items():
        report.line(
            f"{network:14s}{row[('plain', 'no delay')]:>12,}"
            f"{row[('plain', 'delay')]:>12,}"
            f"{row[('nifdy', 'no delay')]:>12,}"
            f"{row[('nifdy', 'delay')]:>12,}"
        )
    report.line("")
    report.line(f"coalesce phase (fattree): plain={coalesce['plain']:,} "
                f"nifdy={coalesce['nifdy']:,} cycles")
    report.record("scan_cycles", {
        f"{network}/{mode}/{delay.replace(' ', '-')}": cycles
        for network, row in rows.items()
        for (mode, delay), cycles in row.items()
    })
    report.record("coalesce_cycles", coalesce)

    # The byte-wide fat trees serialise without delays (the sender outruns
    # the receiver); the CM-5's 4-bit time-multiplexed links are slow enough
    # to act as a built-in delay, so the pathology never appears there (a
    # model difference from the paper, recorded in EXPERIMENTS.md).
    for network in ("fattree", "fattree-sf"):
        row = rows[network]
        plain_gain = row[("plain", "no delay")] / row[("plain", "delay")]
        # Delays rescue the serialised plain scan dramatically...
        assert plain_gain > 3.0, network
        # ...but NIFDY's ack pacing rescues it by itself, with no delays:
        # "when NIFDY is included, its protocol causes the sender to slow
        # down; this allows all the processors to continue to send as well
        # as receive".
        assert row[("nifdy", "no delay")] < row[("plain", "no delay")] / 3, network
        assert row[("nifdy", "no delay")] <= 1.2 * row[("plain", "delay")], network
        # Delays matter far more without NIFDY than with it.
        nifdy_gain = row[("nifdy", "no delay")] / row[("nifdy", "delay")]
        assert plain_gain > nifdy_gain, network
    # On the CM-5 nothing serialises and NIFDY's restrictiveness costs only
    # its (large) scalar round trip; it must still complete correctly.
    assert rows["cm5"][("nifdy", "no delay")] < 3 * rows["cm5"][("plain", "no delay")]
    # Coalesce: "virtually identical with and without NIFDY".
    assert abs(coalesce["nifdy"] - coalesce["plain"]) <= 0.2 * coalesce["plain"]
