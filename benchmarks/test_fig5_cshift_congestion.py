"""Figure 5: per-receiver pending packets during the C-shift.

Paper: on the 32-node CM-5 network without barriers, nodes that finish a
phase early give some receivers two senders; packets accumulate outside
those receivers (dark streaks) and the condition snowballs.  With NIFDY the
perturbations dissipate and utilisation stays even, because the "rightful"
sender owns the receiver's bulk dialog and finishes quickly.

The bench reproduces both heatmaps (archived in the results file) and
asserts the summary statistics: NIFDY's worst per-receiver backlog is
smaller and the same traffic finishes no later.
"""

from repro.experiments import ExperimentSpec, cshift, run_experiment
from repro.traffic import CShiftConfig

from conftest import BENCH_SEED

NODES = 32
WORDS = 90


def run_figure5():
    results = {}
    for label, mode in (("plain", "plain"), ("nifdy", "nifdy")):
        results[label] = run_experiment(ExperimentSpec(
            network="cm5",
            traffic=cshift(CShiftConfig(words_per_phase=WORDS, barriers=False)),
            num_nodes=64,
            active_nodes=NODES,
            nic_mode=mode,
            seed=BENCH_SEED,
            track_congestion=True,
            congestion_sample_every=4000,
            max_cycles=10_000_000,
        ))
    return results


def test_fig5_cshift_congestion(benchmark, report):
    results = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    plain, nifdy = results["plain"], results["nifdy"]
    report.line("Figure 5: pending packets per receiver, C-shift on the "
                f"{NODES}-node CM-5 network (no barriers)")
    for label, res in results.items():
        report.line(
            f"  {label:6s} finished={res.cycles:>9,} cycles  "
            f"mean peak backlog={res.congestion.mean_peak_pending():5.2f}  "
            f"worst backlog={res.congestion.peak_pending()}"
        )
    for label, res in results.items():
        report.line("")
        report.line(f"  heatmap ({label}); one row per 4000 cycles, one column "
                    "per receiver, darker = more pending:")
        for row in res.congestion.heatmap_rows():
            report.line("   |" + row[:NODES] + "|")

    report.record("finished_cycles",
                  {label: res.cycles for label, res in results.items()})
    report.record("mean_peak_backlog",
                  {label: round(res.congestion.mean_peak_pending(), 3)
                   for label, res in results.items()})
    report.record("worst_backlog",
                  {label: res.congestion.peak_pending()
                   for label, res in results.items()})

    assert plain.completed and nifdy.completed
    # Even utilisation: NIFDY's backlog stays below the uncontrolled run's.
    assert nifdy.congestion.mean_peak_pending() <= plain.congestion.mean_peak_pending()
    # "In both cases, the same number of packets are transferred, but NIFDY
    # finishes earlier" (here NIFDY also needs fewer packets thanks to
    # in-order payload packing).
    assert nifdy.cycles <= plain.cycles
