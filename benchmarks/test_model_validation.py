"""Section 2.4 model validation: Equations 1-3 against the simulator.

The paper derives pairwise bandwidth analytically and uses the result to
size NIFDY's parameters.  This bench closes the loop: it measures actual
pairwise streaming bandwidth on the idle 8x8 mesh and checks the analysis:

* **Equation 1** bounds the plain NIC (bandwidth limited by the slowest of
  software send, software receive, and the wire);
* **Section 2.4.1**: the basic (scalar) NIFDY protocol is round-trip
  limited when T_roundtrip(d) exceeds the software overheads -- which it
  does on the mesh, by design of the example;
* **Section 2.4.2**: a bulk dialog sized by Equation 3 hides the round
  trip and restores most of the plain bandwidth.
"""

import pytest

from repro.analysis import (
    measure_pairwise_bandwidth,
    min_window_combined_acks,
    pairwise_bandwidth,
    roundtrip_time,
)
from repro.node import CM5_TIMING
from repro.packets import FLIT_BYTES

from conftest import BENCH_SEED

SRC, DST = 0, 7          # 7 hops along one mesh row
PACKET_WORDS = 8
T_LINK = PACKET_WORDS * FLIT_BYTES  # byte-wide link: 32 cycles/packet


def run_validation():
    out = {}
    for label, kwargs in (
        ("plain", dict(nic_mode="plain")),
        ("nifdy scalar", dict(nic_mode="nifdy", bulk=False)),
        ("nifdy bulk", dict(nic_mode="nifdy", bulk=True)),
    ):
        out[label] = measure_pairwise_bandwidth(
            "mesh2d", SRC, DST, num_nodes=64, packets=60,
            packet_words=PACKET_WORDS, seed=BENCH_SEED, **kwargs,
        )
    return out


def test_model_validation(benchmark, report):
    measured = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    t = CM5_TIMING
    payload = PACKET_WORDS * FLIT_BYTES
    eq1 = pairwise_bandwidth(payload, t.t_send, t.t_receive, T_LINK)
    # 0 -> 7: 7 router hops, measured T(d) = 4d + 28 (tail arrival), plus
    # the receiver's polling before the ack fires; T_ackproc = 4.
    rtt = roundtrip_time(4 * 7 + 28, 4)
    scalar_pred = payload / max(t.t_send, t.t_receive, T_LINK, rtt)
    window = min_window_combined_acks(rtt, t.t_receive)

    report.line("Section 2.4 model validation (8x8 mesh, nodes 0 -> 7)")
    report.line(f"{'configuration':24s}{'measured':>10s}{'predicted':>11s}")
    report.line(f"{'plain NIC (Eq. 1)':24s}{measured['plain']:>9.3f}B{eq1:>10.3f}B")
    report.line(f"{'NIFDY scalar (S2.4.1)':24s}{measured['nifdy scalar']:>9.3f}B"
                f"{scalar_pred:>10.3f}B")
    report.line(f"{'NIFDY bulk (S2.4.2)':24s}{measured['nifdy bulk']:>9.3f}B"
                f"{'~' + format(eq1, '.3f'):>10s}B")
    report.line(f"(bytes/cycle; Eq. 3 window for this round trip: W >= {window})")

    report.record("bandwidth_bytes_per_cycle", {
        "plain": {"measured": round(measured["plain"], 4),
                  "predicted": round(eq1, 4)},
        "nifdy scalar": {"measured": round(measured["nifdy scalar"], 4),
                         "predicted": round(scalar_pred, 4)},
        "nifdy bulk": {"measured": round(measured["nifdy bulk"], 4),
                       "predicted": round(eq1, 4)},
    })
    report.record("eq3_min_window", window)

    # Equation 1 predicts the plain NIC within 25% (it ignores pipeline
    # overlap between the send and receive stages, so it is conservative).
    assert measured["plain"] == pytest.approx(eq1, rel=0.25)
    # Scalar NIFDY is round-trip limited, within 25% of the prediction...
    assert measured["nifdy scalar"] == pytest.approx(scalar_pred, rel=0.25)
    # ...and clearly below the unthrottled pair bandwidth.
    assert measured["nifdy scalar"] < 0.6 * measured["plain"]
    # A bulk dialog hides the round trip: at least 85% of plain restored.
    assert measured["nifdy bulk"] >= 0.85 * measured["plain"]
