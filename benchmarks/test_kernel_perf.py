"""Event-kernel throughput bench: bucket scheduler vs the heap baseline.

Runs the fixed-seed reference workload (heavy traffic on a fat tree, the
same one ``repro perf`` uses) under both schedulers with kernel
self-profiling on, records events/sec for each, and asserts the two runs'
full metrics JSON is byte-identical.  Parity is the only assertion: raw
speed depends on the host, so recording it (into ``BENCH_summary.json``,
under the top-level ``kernel`` key) is the job; failing on it is not.
"""

import json

from conftest import BENCH_CYCLES, BENCH_SEED

from repro.experiments import perf_reference_spec, run_experiment
from repro.obs import metrics_json

NODES = 64


def test_kernel_events_per_sec(report):
    rows = {}
    for kernel in ("heap", "bucket"):
        spec = perf_reference_spec(
            num_nodes=NODES,
            run_cycles=BENCH_CYCLES,
            seed=BENCH_SEED,
            kernel=kernel,
        )
        result = run_experiment(spec)
        profile = result.obs.kernel_profile
        metrics = metrics_json(result)
        metrics.pop("self_profile", None)  # wall-clock, differs every run
        rows[kernel] = {
            "events": profile.events,
            "loop_seconds": round(profile.loop_seconds, 4),
            "events_per_sec": round(profile.events_per_sec, 1),
            "delivered": result.delivered,
            "canon": json.dumps(metrics, sort_keys=True),
        }
        report.line(
            f"{kernel:7s} events={profile.events:>9,}  "
            f"loop={profile.loop_seconds:6.2f}s  "
            f"events/sec={profile.events_per_sec:>10,.0f}"
        )

    parity_ok = rows["heap"]["canon"] == rows["bucket"]["canon"]
    speedup = (
        rows["bucket"]["events_per_sec"] / rows["heap"]["events_per_sec"]
        if rows["heap"]["events_per_sec"] else 0.0
    )
    report.line(f"parity : {'ok' if parity_ok else 'MISMATCH'}")
    report.line(f"speedup: {speedup:.2f}x (bucket vs heap)")

    report.record("kernel_perf", {
        "workload": {
            "network": "fattree", "nodes": NODES,
            "cycles": BENCH_CYCLES, "seed": BENCH_SEED,
        },
        "kernels": {
            k: {key: v for key, v in row.items() if key != "canon"}
            for k, row in rows.items()
        },
        "speedup": round(speedup, 3),
        "parity_ok": parity_ok,
    })

    assert parity_ok, (
        "bucket and heap schedulers diverged on the reference workload "
        "(metrics JSON not byte-identical)"
    )
