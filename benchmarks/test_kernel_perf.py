"""Event-kernel throughput bench: every registered scheduler vs heap.

Runs the fixed-seed reference workload (heavy traffic on a fat tree, the
same one ``repro perf`` uses) under every kernel in the scheduler
registry with kernel self-profiling on, records events/sec for each, and
asserts all runs' full metrics JSON is byte-identical to the heap
baseline.  Parity is the only assertion: raw speed depends on the host,
so recording it (into ``BENCH_summary.json``, under the top-level
``kernel`` key) is the job; failing on it is not.
"""

import json

from conftest import BENCH_CYCLES, BENCH_SEED

from repro.experiments import perf_reference_spec, run_experiment
from repro.obs import metrics_json
from repro.sim import scheduler_names

NODES = 64


def test_kernel_events_per_sec(report):
    rows = {}
    for kernel in scheduler_names():
        spec = perf_reference_spec(
            num_nodes=NODES,
            run_cycles=BENCH_CYCLES,
            seed=BENCH_SEED,
            kernel=kernel,
        )
        result = run_experiment(spec)
        profile = result.obs.kernel_profile
        metrics = metrics_json(result)
        metrics.pop("self_profile", None)  # wall-clock, differs every run
        rows[kernel] = {
            "events": profile.events,
            "loop_seconds": round(profile.loop_seconds, 4),
            "events_per_sec": round(profile.events_per_sec, 1),
            "delivered": result.delivered,
            "canon": json.dumps(metrics, sort_keys=True),
        }
        report.line(
            f"{kernel:7s} events={profile.events:>9,}  "
            f"loop={profile.loop_seconds:6.2f}s  "
            f"events/sec={profile.events_per_sec:>10,.0f}"
        )

    baseline = "heap" if "heap" in rows else next(iter(rows))
    mismatched = [
        k for k in rows if rows[k]["canon"] != rows[baseline]["canon"]
    ]
    parity_ok = not mismatched
    base_eps = rows[baseline]["events_per_sec"]
    speedups = {
        k: round(row["events_per_sec"] / base_eps, 3)
        for k, row in rows.items()
        if k != baseline and base_eps and row["events_per_sec"]
    }
    report.line(
        "parity : ok" if parity_ok
        else f"parity : MISMATCH ({', '.join(mismatched)} vs {baseline})"
    )
    for k, v in speedups.items():
        report.line(f"speedup: {k} {v:.2f}x (vs {baseline})")

    report.record("kernel_perf", {
        "workload": {
            "network": "fattree", "nodes": NODES,
            "cycles": BENCH_CYCLES, "seed": BENCH_SEED,
        },
        "kernels": {
            k: {key: v for key, v in row.items() if key != "canon"}
            for k, row in rows.items()
        },
        "speedup": speedups.get("bucket", 0.0),
        "speedups": speedups,
        "parity_ok": parity_ok,
    })

    assert parity_ok, (
        f"schedulers diverged on the reference workload: "
        f"{', '.join(mismatched)} vs {baseline} "
        "(metrics JSON not byte-identical)"
    )
