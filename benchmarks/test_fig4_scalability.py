"""Figure 4: NIFDY resources vs machine size (full fat tree).

Paper: "we ran some simulations of the full fat tree, using only short
messages and no bulk dialogs in order to concentrate on the effects of O
and B".  Left panel: normalized throughput (vs no NIFDY) for pool sizes B;
right panel: for OPT sizes O.  Findings asserted here:

* for a fixed B, the relative benefit of NIFDY does not decrease as the
  machine grows (a designer can size the unit once);
* larger B helps at every size;
* a small constant O (= 8) is at or near the best across sizes.
"""

from repro.experiments import ExperimentSpec, heavy_synthetic
from repro.nic import NifdyParams
from repro.traffic import SyntheticConfig

from conftest import BENCH_CYCLES, BENCH_SEED

SIZES = (16, 64, 256)
B_VALUES = (2, 4, 8)
O_VALUES = (2, 4, 8)
CYCLES = max(6000, BENCH_CYCLES // 2)


def _traffic():
    return heavy_synthetic(
        SyntheticConfig.heavy_traffic(fixed_message_length=1, packets_per_phase=60)
    )


def _spec(size, mode, params=None, label=""):
    return ExperimentSpec(
        network="fattree", traffic=_traffic(), num_nodes=size, nic_mode=mode,
        nifdy_params=params, run_cycles=CYCLES, seed=BENCH_SEED, label=label,
    )


def fig4_specs():
    specs = []
    for size in SIZES:
        specs.append(_spec(size, "plain", label=f"n{size}/plain"))
        for b in B_VALUES:
            params = NifdyParams(opt_size=8, pool_size=b, dialogs=0, window=0)
            specs.append(_spec(size, "nifdy-", params, f"n{size}/B={b}"))
        for o in O_VALUES:
            if o == 8:  # same point as B=8 above
                continue
            params = NifdyParams(opt_size=o, pool_size=8, dialogs=0, window=0)
            specs.append(_spec(size, "nifdy-", params, f"n{size}/O={o}"))
    return specs


def run_figure4(engine):
    points = iter(engine.run(fig4_specs()))
    baseline = {}
    by_b = {}
    by_o = {}
    for size in SIZES:
        baseline[size] = next(points).delivered
        for b in B_VALUES:
            by_b[(size, b)] = next(points).delivered
        for o in O_VALUES:
            if o == 8:
                by_o[(size, o)] = by_b[(size, 8)]
            else:
                by_o[(size, o)] = next(points).delivered
    return baseline, by_b, by_o


def test_fig4_scalability(benchmark, report, engine):
    baseline, by_b, by_o = benchmark.pedantic(run_figure4, args=(engine,),
                                              rounds=1, iterations=1)

    report.line(f"Figure 4 (left): normalized throughput vs size, varying B "
                f"(O=8, no bulk, {CYCLES:,} cycles)")
    report.line(f"{'nodes':>8s}" + "".join(f"{'B=' + str(b):>10s}" for b in B_VALUES))
    norm_b = {}
    for size in SIZES:
        cells = []
        for b in B_VALUES:
            norm_b[(size, b)] = by_b[(size, b)] / baseline[size]
            cells.append(f"{norm_b[(size, b)]:>10.2f}")
        report.line(f"{size:>8d}" + "".join(cells))

    report.line("")
    report.line("Figure 4 (right): normalized throughput vs size, varying O (B=8)")
    report.line(f"{'nodes':>8s}" + "".join(f"{'O=' + str(o):>10s}" for o in O_VALUES))
    norm_o = {}
    for size in SIZES:
        cells = []
        for o in O_VALUES:
            norm_o[(size, o)] = by_o[(size, o)] / baseline[size]
            cells.append(f"{norm_o[(size, o)]:>10.2f}")
        report.line(f"{size:>8d}" + "".join(cells))

    report.record("baseline_delivered", {str(s): baseline[s] for s in SIZES})
    report.record("normalized_by_pool", {
        f"n{size}/B{b}": round(norm_b[(size, b)], 4)
        for size in SIZES for b in B_VALUES
    })
    report.record("normalized_by_opt", {
        f"n{size}/O{o}": round(norm_o[(size, o)], 4)
        for size in SIZES for o in O_VALUES
    })

    # Benefit does not fall off as the machine grows (fixed parameters).
    for b in B_VALUES:
        assert norm_b[(256, b)] >= 0.9 * norm_b[(16, b)], f"B={b}"
    # More pool buffers help (or at least never hurt much) at every size.
    for size in SIZES:
        assert norm_b[(size, 8)] >= 0.95 * norm_b[(size, 2)], size
    # O=8 is at or near the best O at every size.
    for size in SIZES:
        best = max(norm_o[(size, o)] for o in O_VALUES)
        assert norm_o[(size, 8)] >= 0.93 * best, size
