"""Table 3: characteristics of the simulated 64-node networks and the best
NIFDY parameters for each.

Left half (measured): volume, bisection bandwidth, hop statistics, and the
fitted latency formula for all eight networks.  Right half (swept): the
(O, W) choice that maximises combined heavy+light synthetic throughput,
compared against the library's tuned defaults.

Structural claims asserted:

* the mesh has the smallest bisection bandwidth, the full fat tree (and
  butterfly) the largest, the CM-5 variant in between but far below the
  full tree;
* restrictive admission (small O) is best on the mesh; generous admission
  (larger O) on the fat tree -- the paper's central tuning story.
"""

from repro.analysis import characterize
from repro.experiments import ExperimentSpec, heavy_synthetic, light_synthetic
from repro.networks import NETWORK_NAMES
from repro.nic import NifdyParams

from conftest import BENCH_CYCLES, BENCH_SEED

SWEEP_NETWORKS = ("mesh2d", "fattree")
O_CHOICES = (2, 4, 8)
W_CHOICES = (2, 8)
SWEEP_CYCLES = max(5000, BENCH_CYCLES // 2)


def table3_sweep_specs():
    specs = []
    for network in SWEEP_NETWORKS:
        for o in O_CHOICES:
            for w in W_CHOICES:
                params = NifdyParams(opt_size=o, pool_size=8, dialogs=1, window=w)
                for traffic in (heavy_synthetic(), light_synthetic()):
                    specs.append(ExperimentSpec(
                        network=network, traffic=traffic, num_nodes=64,
                        nic_mode="nifdy-", nifdy_params=params,
                        run_cycles=SWEEP_CYCLES, seed=BENCH_SEED,
                        label=f"{network}/O={o}/W={w}/{traffic.name}",
                    ))
    return specs


def run_table3(engine):
    rows = {
        name: characterize(name, 64, hop_sample=400, measure_latency=True)
        for name in NETWORK_NAMES
    }
    points = iter(engine.run(table3_sweep_specs()))
    sweep = {}
    for network in SWEEP_NETWORKS:
        for o in O_CHOICES:
            for w in W_CHOICES:
                sweep[(network, o, w)] = (
                    next(points).delivered + next(points).delivered
                )
    return rows, sweep


def test_table3_characteristics(benchmark, report, engine):
    rows, sweep = benchmark.pedantic(run_table3, args=(engine,), rounds=1,
                                     iterations=1)
    report.line("Table 3 (left): measured 64-node network characteristics")
    report.line(
        f"{'network':16s}{'volume':>9s}{'bisect':>9s}{'avg d':>7s}{'max d':>7s}"
        f"{'in-order':>10s}  latency fit"
    )
    for name, row in rows.items():
        report.line(
            f"{name:16s}{row.volume_words_per_node:>8.1f}w"
            f"{row.bisection_bytes_per_cycle:>8.1f}B"
            f"{row.avg_hops:>7.1f}{row.max_hops:>7d}"
            f"{str(row.delivers_in_order):>10s}  {row.formula()}"
        )
    report.line("")
    report.line(f"Table 3 (right): (O, W) sweep, heavy+light packets in "
                f"2x{SWEEP_CYCLES:,} cycles")
    best_cells = {}
    for network in SWEEP_NETWORKS:
        cells = {
            (o, w): sweep[(network, o, w)] for o in O_CHOICES for w in W_CHOICES
        }
        best = max(cells, key=cells.get)
        best_cells[network] = f"O={best[0]} W={best[1]}"
        report.line(f"  {network}: best O={best[0]} W={best[1]}")
        for o in O_CHOICES:
            report.line(
                "    " + "".join(
                    f"O={o} W={w}: {cells[(o, w)]:>6,}   " for w in W_CHOICES
                )
            )

    report.record("characteristics", {
        name: {
            "volume_words_per_node": round(row.volume_words_per_node, 2),
            "bisection_bytes_per_cycle": round(row.bisection_bytes_per_cycle, 2),
            "avg_hops": round(row.avg_hops, 2),
            "max_hops": row.max_hops,
            "delivers_in_order": row.delivers_in_order,
            "formula": row.formula(),
        }
        for name, row in rows.items()
    })
    report.record("best_params", best_cells)
    report.record("sweep_cells", {
        f"{network}/O={o}/W={w}": sweep[(network, o, w)]
        for network in SWEEP_NETWORKS for o in O_CHOICES for w in W_CHOICES
    })

    by_name = rows
    # Bisection ordering: the full fat tree is the widest; the mesh is
    # narrow; the CM-5 variant (halved trees, 4-bit links) is narrowest.
    assert (
        by_name["mesh2d"].bisection_bytes_per_cycle
        < by_name["fattree"].bisection_bytes_per_cycle
    )
    assert (
        by_name["cm5"].bisection_bytes_per_cycle
        <= by_name["mesh2d"].bisection_bytes_per_cycle
    )
    assert (
        by_name["cm5"].bisection_bytes_per_cycle
        < by_name["fattree"].bisection_bytes_per_cycle / 4
    )
    # Hop structure: fat tree max 6 (Section 2.4.3), mesh max 14 router hops
    # (+2 NIC links), butterfly constant distance.
    assert by_name["fattree"].max_hops == 6
    # 14 router hops + 2 NIC links; hop_stats samples pairs, so the true
    # corner-to-corner pair may be skipped.
    assert 14 <= by_name["mesh2d"].max_hops <= 16
    assert by_name["butterfly"].avg_hops == by_name["butterfly"].max_hops
    # Only the single-VC mesh-family and the dilation-1 butterfly deliver
    # in order by construction.
    assert by_name["mesh2d"].delivers_in_order
    assert by_name["butterfly"].delivers_in_order
    assert not by_name["fattree"].delivers_in_order
    # Tuning story: on the mesh a small O is at or near the best; on the
    # fat tree larger O never loses.
    def best_o(network):
        return max(
            ((o, w) for o in O_CHOICES for w in W_CHOICES),
            key=lambda key: sweep[(network, key[0], key[1])],
        )[0]

    mesh_best = max(sweep[("mesh2d", o, w)] for o in O_CHOICES for w in W_CHOICES)
    assert max(
        sweep[("mesh2d", o, w)] for o in (2, 4) for w in W_CHOICES
    ) >= 0.95 * mesh_best
    ft_best = max(sweep[("fattree", o, w)] for o in O_CHOICES for w in W_CHOICES)
    assert max(sweep[("fattree", 8, w)] for w in W_CHOICES) >= 0.93 * ft_best
