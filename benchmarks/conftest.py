"""Benchmark-suite infrastructure.

Every bench regenerates one table or figure of the paper.  Results are
printed live (bypassing pytest capture) and archived under
``benchmarks/results/`` twice: the human-readable ``<bench>.txt`` and a
machine-readable ``<bench>.json`` (whatever the bench passed to
``report.record``, plus the run knobs).  At session end the per-bench
JSONs are merged into ``results/BENCH_summary.json`` so CI and trend
tooling consume one artifact.  ``REPRO_BENCH_CYCLES`` scales the
measurement window of the fixed-horizon benches (default 20000 cycles;
the paper used 1,000,000 -- throughput shapes are stable long before
that).
"""

import json
import os
import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

SUMMARY_NAME = "BENCH_summary.json"

#: Measurement window for the throughput figures.
BENCH_CYCLES = int(os.environ.get("REPRO_BENCH_CYCLES", "20000"))

#: Random seed shared by all benches.
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "11"))

#: Worker processes for the sweep-engine-backed benches.
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


class Report:
    """Prints rows live and archives them to text + JSON results files."""

    def __init__(self, name: str, capmanager):
        self.name = name
        self.capmanager = capmanager
        RESULTS_DIR.mkdir(exist_ok=True)
        self.path = RESULTS_DIR / f"{name}.txt"
        self.json_path = RESULTS_DIR / f"{name}.json"
        self._lines = []
        self.data = {}
        self.wall_seconds = 0.0

    def line(self, text: str = "") -> None:
        self._lines.append(text)
        if self.capmanager is not None:
            with self.capmanager.global_and_fixture_disabled():
                print(text)
        else:  # pragma: no cover - plain pytest without capture manager
            print(text)

    def record(self, key: str, value) -> None:
        """Store one machine-readable result (any JSON-serialisable value)."""
        self.data[key] = value

    def flush(self) -> None:
        self.path.write_text("\n".join(self._lines) + "\n")
        doc = {
            "bench": self.name,
            "bench_cycles": BENCH_CYCLES,
            "bench_seed": BENCH_SEED,
            "wall_seconds": round(self.wall_seconds, 3),
            "data": self.data,
        }
        self.json_path.write_text(json.dumps(doc, indent=2, default=str) + "\n")


@pytest.fixture
def report(request):
    capmanager = request.config.pluginmanager.getplugin("capturemanager")
    rep = Report(request.node.name, capmanager)
    rep.line("")
    rep.line("=" * 78)
    rep.line(f"{request.node.name}")
    rep.line("=" * 78)
    start = time.perf_counter()
    yield rep
    rep.wall_seconds = time.perf_counter() - start
    rep.flush()


@pytest.fixture
def engine(report):
    """Cache-backed sweep engine for the delivered-count benches.

    Points are cached under ``benchmarks/results/.cache`` keyed on spec
    content + code version, so re-runs over an unchanged tree are nearly
    free; ``REPRO_BENCH_JOBS`` parallelises cold runs.  Hit/miss stats land
    in the bench's JSON (and the merged summary) under ``engine``.
    """
    from repro.experiments import SweepEngine

    eng = SweepEngine(jobs=BENCH_JOBS, cache=True,
                      cache_dir=RESULTS_DIR / ".cache")
    yield eng
    report.record("engine", eng.stats.as_dict())


def pytest_sessionfinish(session, exitstatus):
    """Merge every per-bench JSON on disk into one summary artifact.

    Merging from disk (not just this session's benches) keeps the summary
    whole when benches are run selectively (``pytest benchmarks/test_fig2...``).
    """
    if not RESULTS_DIR.is_dir():
        return
    benches = {}
    for path in sorted(RESULTS_DIR.glob("*.json")):
        if path.name == SUMMARY_NAME:
            continue
        try:
            benches[path.stem] = json.loads(path.read_text())
        except (OSError, ValueError):  # pragma: no cover - corrupt artifact
            continue
    if benches:
        summary = {"bench_count": len(benches), "benches": benches}
        # Surface the kernel throughput numbers at the top level so trend
        # tooling reads events/sec without digging through bench internals.
        kernel = (
            benches.get("test_kernel_events_per_sec", {})
            .get("data", {})
            .get("kernel_perf")
        )
        if kernel is not None:
            summary["kernel"] = kernel
        (RESULTS_DIR / SUMMARY_NAME).write_text(
            json.dumps(summary, indent=2) + "\n"
        )
