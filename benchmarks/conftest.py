"""Benchmark-suite infrastructure.

Every bench regenerates one table or figure of the paper.  Results are
printed live (bypassing pytest capture) and archived under
``benchmarks/results/`` twice: the human-readable ``<bench>.txt`` and a
machine-readable ``<bench>.json`` -- a schema-stamped
:class:`repro.report.schema.BenchRecord` carrying whatever the bench
passed to ``report.record`` plus the run knobs.  At session end the
per-bench JSONs are merge-updated into ``results/BENCH_summary.json``
(existing benches are kept, the file is written atomically -- a partial
run can no longer clobber siblings' results), and one
timestamped, git-SHA-stamped snapshot is appended to
``results/history/`` so consecutive runs accumulate a perf trajectory
for ``repro report``.  ``REPRO_BENCH_CYCLES`` scales the measurement
window of the fixed-horizon benches (default 20000 cycles; the paper
used 1,000,000 -- throughput shapes are stable long before that).
"""

import os
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.report.schema import (BenchRecord, BenchSummary, CampaignRecord,
                                 EngineStats, KernelPerfRecord, SchemaError,
                                 load_record, write_record_atomic)

RESULTS_DIR = Path(__file__).parent / "results"

SUMMARY_NAME = "BENCH_summary.json"

#: Measurement window for the throughput figures.
BENCH_CYCLES = int(os.environ.get("REPRO_BENCH_CYCLES", "20000"))

#: Random seed shared by all benches.
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "11"))

#: Worker processes for the sweep-engine-backed benches.
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: Benches that flushed results in THIS session (the summary merges the
#: whole tree; the history snapshot records which part actually ran).
_SESSION_BENCHES = set()


class Report:
    """Prints rows live and archives them to text + JSON results files."""

    def __init__(self, name: str, capmanager):
        self.name = name
        self.capmanager = capmanager
        RESULTS_DIR.mkdir(exist_ok=True)
        self.path = RESULTS_DIR / f"{name}.txt"
        self.json_path = RESULTS_DIR / f"{name}.json"
        self._lines = []
        self.data = {}
        self.engine_stats = None
        self.wall_seconds = 0.0

    def line(self, text: str = "") -> None:
        self._lines.append(text)
        if self.capmanager is not None:
            with self.capmanager.global_and_fixture_disabled():
                print(text)
        else:  # pragma: no cover - plain pytest without capture manager
            print(text)

    def record(self, key: str, value) -> None:
        """Store one machine-readable result (any JSON-serialisable value)."""
        self.data[key] = value

    def flush(self) -> None:
        self.path.write_text("\n".join(self._lines) + "\n")
        record = BenchRecord(
            bench=self.name,
            bench_cycles=BENCH_CYCLES,
            bench_seed=BENCH_SEED,
            wall_seconds=round(self.wall_seconds, 3),
            data=self.data,
            engine=self.engine_stats,
        )
        write_record_atomic(self.json_path, record)
        _SESSION_BENCHES.add(self.name)


@pytest.fixture
def report(request):
    capmanager = request.config.pluginmanager.getplugin("capturemanager")
    rep = Report(request.node.name, capmanager)
    rep.line("")
    rep.line("=" * 78)
    rep.line(f"{request.node.name}")
    rep.line("=" * 78)
    start = time.perf_counter()
    yield rep
    rep.wall_seconds = time.perf_counter() - start
    rep.flush()


@pytest.fixture
def engine(report):
    """Cache-backed sweep engine for the delivered-count benches.

    Points are cached under ``benchmarks/results/.cache`` keyed on spec
    content + code version, so re-runs over an unchanged tree are nearly
    free; ``REPRO_BENCH_JOBS`` parallelises cold runs.  Hit/miss stats land
    in the bench's JSON (and the merged summary) under ``engine``.
    """
    from repro.experiments import SweepEngine

    eng = SweepEngine(jobs=BENCH_JOBS, cache=True,
                      cache_dir=RESULTS_DIR / ".cache")
    yield eng
    report.engine_stats = EngineStats.from_dict(eng.stats.as_dict())


def pytest_sessionfinish(session, exitstatus):
    """Merge-update the summary artifact and append a history snapshot.

    The summary merges three layers, oldest first: benches that exist only
    in the previous ``BENCH_summary.json`` (their per-bench files may have
    been cleaned), then every per-bench JSON on disk.  That keeps the
    summary whole when benches run selectively
    (``pytest benchmarks/test_fig2...``), and the atomic write means an
    interrupted session never leaves a truncated file.
    """
    if not RESULTS_DIR.is_dir():
        return
    summary = BenchSummary()
    summary_path = RESULTS_DIR / SUMMARY_NAME
    if summary_path.is_file():
        try:
            prior = load_record(summary_path)
            if isinstance(prior, BenchSummary):
                summary = prior
        except (SchemaError, ValueError, OSError):  # pragma: no cover
            pass
    for path in sorted(RESULTS_DIR.glob("*.json")):
        if path.name == SUMMARY_NAME:
            continue
        try:
            record = load_record(path)
        except (SchemaError, ValueError, OSError):  # pragma: no cover
            continue
        if isinstance(record, BenchRecord):
            summary.benches[path.stem] = record
    for sub in ("campaigns", "chaos/campaigns"):
        campaign_dir = RESULTS_DIR / sub
        if not campaign_dir.is_dir():
            continue
        for path in sorted(campaign_dir.glob("*.json")):
            try:
                record = load_record(path)
            except (SchemaError, ValueError, OSError):  # pragma: no cover
                continue
            if isinstance(record, CampaignRecord):
                summary.campaigns[record.campaign_id] = record
    if not summary.benches:
        return
    kernel_bench = summary.benches.get("test_kernel_events_per_sec")
    if kernel_bench is not None and "kernel_perf" in kernel_bench.data:
        summary.kernel = KernelPerfRecord.from_dict(
            kernel_bench.data["kernel_perf"]
        )
    write_record_atomic(summary_path, summary)
    if _SESSION_BENCHES:
        from repro.report.history import (append_snapshot,
                                          snapshot_from_summary)

        append_snapshot(
            RESULTS_DIR,
            snapshot_from_summary(summary, sorted(_SESSION_BENCHES)),
        )
