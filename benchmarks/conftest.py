"""Benchmark-suite infrastructure.

Every bench regenerates one table or figure of the paper.  Results are
printed live (bypassing pytest capture) and archived under
``benchmarks/results/``.  ``REPRO_BENCH_CYCLES`` scales the measurement
window of the fixed-horizon benches (default 20000 cycles; the paper used
1,000,000 -- throughput shapes are stable long before that).
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Measurement window for the throughput figures.
BENCH_CYCLES = int(os.environ.get("REPRO_BENCH_CYCLES", "20000"))

#: Random seed shared by all benches.
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "11"))


class Report:
    """Prints rows live and archives them to a results file."""

    def __init__(self, name: str, capmanager):
        self.name = name
        self.capmanager = capmanager
        RESULTS_DIR.mkdir(exist_ok=True)
        self.path = RESULTS_DIR / f"{name}.txt"
        self._lines = []

    def line(self, text: str = "") -> None:
        self._lines.append(text)
        if self.capmanager is not None:
            with self.capmanager.global_and_fixture_disabled():
                print(text)
        else:  # pragma: no cover - plain pytest without capture manager
            print(text)

    def flush(self) -> None:
        self.path.write_text("\n".join(self._lines) + "\n")


@pytest.fixture
def report(request):
    capmanager = request.config.pluginmanager.getplugin("capturemanager")
    rep = Report(request.node.name, capmanager)
    rep.line("")
    rep.line("=" * 78)
    rep.line(f"{request.node.name}")
    rep.line("=" * 78)
    yield rep
    rep.flush()
