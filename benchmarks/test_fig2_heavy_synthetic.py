"""Figure 2: packets delivered under HEAVY synthetic traffic.

Paper: every node sends each phase (message lengths U[1,5], 8-word packets);
the metric is packets delivered network-wide in a fixed window, for three
NIC configurations per network: no NIFDY, buffering only, and NIFDY with the
per-network best parameters.  The paper's claims, which this bench asserts:

* NIFDY delivers more packets than the bare network interface on every
  congestible topology;
* NIFDY is roughly comparable to spending the same buffer budget without
  the protocol ("comparable to that of having added more buffers"), and
  ahead of it on the adaptive/blocking-prone networks;
* these bars do NOT include the in-order payload benefit (Figure 2's
  caption) -- that shows up in Figures 6-8.
"""

from repro.experiments import ExperimentSpec, heavy_synthetic
from repro.networks import NETWORK_NAMES

from conftest import BENCH_CYCLES, BENCH_SEED

MODES = ("plain", "buffered", "nifdy-")


def fig2_specs():
    return [
        ExperimentSpec(
            network=network, traffic=heavy_synthetic(), num_nodes=64,
            nic_mode=mode, run_cycles=BENCH_CYCLES, seed=BENCH_SEED,
            label=f"{network}/{mode}",
        )
        for network in NETWORK_NAMES
        for mode in MODES
    ]


def run_figure2(engine):
    points = iter(engine.run(fig2_specs()))
    return {
        network: {mode: next(points).delivered for mode in MODES}
        for network in NETWORK_NAMES
    }


def test_fig2_heavy_synthetic(benchmark, report, engine):
    rows = benchmark.pedantic(run_figure2, args=(engine,), rounds=1,
                              iterations=1)
    report.line(
        f"Figure 2: packets delivered in {BENCH_CYCLES:,} cycles, heavy traffic"
    )
    report.line(f"{'network':16s}{'no NIFDY':>10s}{'buffers':>10s}{'NIFDY':>10s}"
                f"{'NIFDY/plain':>13s}")
    for network, row in rows.items():
        ratio = row["nifdy-"] / row["plain"]
        report.line(
            f"{network:16s}{row['plain']:>10,}{row['buffered']:>10,}"
            f"{row['nifdy-']:>10,}{ratio:>12.2f}x"
        )
    report.record("delivered", rows)

    for network, row in rows.items():
        # NIFDY at least matches the bare NIC and the buffers-only budget
        # (small tolerance: runs are finite windows).
        assert row["nifdy-"] >= 0.93 * row["plain"], network
        assert row["nifdy-"] >= 0.90 * row["buffered"], network
    # On the blocking-prone topologies the protocol is a clear win.
    for network in ("torus2d", "fattree", "multibutterfly"):
        assert rows[network]["nifdy-"] > 1.15 * rows[network]["plain"], network
        assert rows[network]["nifdy-"] > 1.10 * rows[network]["buffered"], network
    # Buffering alone already helps a little over the bare interface.
    wins = sum(rows[n]["buffered"] >= rows[n]["plain"] for n in rows)
    assert wins >= 6
