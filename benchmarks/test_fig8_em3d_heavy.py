"""Figure 8: EM3D cycles per iteration, HEAVY communication.

Paper parameters n_nodes=100, d_nodes=20, local_p=3, dist_span=20: almost
every arc is remote, so the network carries an order of magnitude more
update traffic than Figure 7 and the in-order payload benefit compounds
with congestion relief.  Same claims as Figure 7, but the NIFDY gain over
buffers-only should be larger here than under light communication.
"""

from repro.traffic import Em3dConfig

from conftest import BENCH_SEED
from test_fig7_em3d_light import (
    MODES,
    NETWORKS,
    check_em3d_claims,
    report_em3d,
    run_em3d,
)

SCALE = 0.12
ITERATIONS = 2


def _config():
    return Em3dConfig.heavy_communication(scale=SCALE, iterations=ITERATIONS)


def test_fig8_em3d_heavy(benchmark, report):
    rows = benchmark.pedantic(run_em3d, args=(_config(),), rounds=1, iterations=1)
    cfg = _config()
    report_em3d(
        report,
        f"Figure 8: EM3D, heavy communication (n={cfg.n_nodes}, d={cfg.d_nodes}, "
        f"local_p={cfg.local_p}, span={cfg.dist_span})",
        rows,
    )
    check_em3d_claims(rows)
    # Heavier communication -> bigger average NIFDY-vs-buffers gain than
    # is typical under light traffic (paper: ~10% light, up to ~2x for
    # all-to-all patterns).
    gains = [row["buffered"] / row["nifdy"] for row in rows.values()]
    assert sum(gains) / len(gains) > 1.08
