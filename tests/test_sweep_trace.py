"""Tests for the sweep helpers and the packet tracer."""

import pytest

from repro.experiments import (
    ExperimentSpec,
    default_param_grid,
    run_experiment,
    heavy_synthetic,
    sweep_machine_sizes,
    sweep_nifdy_params,
    sweep_offered_load,
)
from repro.metrics import PacketTracer
from repro.nic import NifdyParams


class TestParamSweep:
    def test_grid_shape(self):
        grid = default_param_grid(opt_sizes=(2, 8), windows=(0, 4))
        assert len(grid) == 4
        no_bulk = [p for p in grid if p.window == 0]
        assert all(p.dialogs == 0 for p in no_bulk)

    def test_points_sorted_best_first(self):
        grid = default_param_grid(opt_sizes=(2, 8), windows=(0, 2))
        points = sweep_nifdy_params(
            "fattree", grid, num_nodes=16, run_cycles=4000,
            combine_light_and_heavy=False,
        )
        assert len(points) == 4
        delivered = [p.delivered for p in points]
        assert delivered == sorted(delivered, reverse=True)
        assert all("O=" in p.label for p in points)

    def test_throughput_property(self):
        grid = [NifdyParams(opt_size=4, pool_size=8, dialogs=0, window=0)]
        point = sweep_nifdy_params(
            "mesh2d", grid, num_nodes=16, run_cycles=4000,
            combine_light_and_heavy=False,
        )[0]
        assert point.throughput == pytest.approx(
            1000.0 * point.delivered / point.cycles
        )


class TestLoadSweep:
    def test_throughput_monotone_in_offered_load(self):
        points = sweep_offered_load(
            "mesh2d", gaps=(2000, 400, 0), num_nodes=16, run_cycles=8000,
        )
        delivered = [p.delivered for p in points]
        assert delivered[0] < delivered[1] <= delivered[2] * 1.1


class TestMachineSizeSweep:
    def test_normalized_ratio_shape(self):
        params = NifdyParams(opt_size=8, pool_size=8, dialogs=0, window=0)
        out = sweep_machine_sizes(
            "fattree", sizes=(16, 64), params=params, run_cycles=5000,
        )
        assert set(out) == {16, 64}
        for size, (nifdy, base, ratio) in out.items():
            assert ratio == pytest.approx(nifdy / base)


class TestPacketTracer:
    def _traced_run(self):
        from repro.networks import build_network
        from repro.nic import NifdyNIC
        from repro.sim import Simulator
        from conftest import drain_all
        from test_nifdy_protocol import feed, stream

        sim = Simulator()
        net = build_network("fattree", sim, 16)
        nics = net.attach_nics(lambda n: NifdyNIC(sim, n))
        tracer = PacketTracer()
        tracer.attach(nics)
        feed(sim, nics[0], stream(0, 9, 10))
        delivered = drain_all(sim, nics, 10)
        return tracer, delivered

    def test_lifecycle_recorded(self):
        tracer, delivered = self._traced_run()
        assert len(tracer.completed()) == 10
        for trace in tracer.completed():
            assert 0 <= trace.created <= trace.injected <= trace.accepted
            assert trace.src == 0 and trace.dst == 9

    def test_latency_breakdown(self):
        tracer, _ = self._traced_run()
        assert tracer.mean_network_time() > 0
        assert tracer.mean_pool_wait() >= 0

    def test_stragglers_sorted(self):
        tracer, _ = self._traced_run()
        worst = tracer.stragglers(top=3)
        times = [t.network_time for t in worst]
        assert times == sorted(times, reverse=True)

    def test_composes_with_metrics_hooks(self):
        """Tracer chains the collector's hooks instead of clobbering them."""
        result = run_experiment(ExperimentSpec(
            network="mesh2d", traffic=heavy_synthetic(), num_nodes=16,
            nic_mode="nifdy", run_cycles=3000, seed=1,
        ))
        # attach AFTER the collector: both keep working on a fresh run
        from repro.metrics import MetricsCollector

        tracer = PacketTracer()
        tracer.attach(result.nics)
        # the collector's counters were populated during the run
        assert result.metrics.delivered > 0

    def test_record_cap(self):
        tracer = PacketTracer(max_packets=2)
        from conftest import simple_packet

        for i in range(4):
            pkt = simple_packet(0, 1)
            pkt.injected_cycle = i
            tracer.note_inject(pkt)
        assert len(tracer.traces) == 2
        assert tracer.dropped_records == 2
