"""Whole-protocol fuzzing: random traffic matrices through random NIFDY
configurations must always deliver exactly once and in order."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.networks import build_network
from repro.nic import (
    REORDER_POLICIES,
    NifdyNIC,
    NifdyParams,
    ReorderParams,
    ReorderTolerantNIC,
    RetransmittingNifdyNIC,
)
from repro.sim import RngFactory, Simulator
from repro.traffic import PacketFactory

from conftest import drain_all
from test_nifdy_protocol import feed


def run_matrix(network, params, matrix, num_nodes=16, lossy=0.0, seed=3,
               horizon=2_500_000):
    """Drive a (src, dst, length, threshold) traffic matrix; return the
    delivered packets."""
    sim = Simulator()
    rngf = RngFactory(seed)
    net = build_network(
        network, sim, num_nodes, rng=rngf.stream("route"),
        drop_prob=lossy, drop_rng=rngf.stream("drop"),
    )
    if lossy:
        nics = net.attach_nics(
            lambda n: RetransmittingNifdyNIC(sim, n, params, retx_timeout=900)
        )
    else:
        nics = net.attach_nics(lambda n: NifdyNIC(sim, n, params))
    factories = {}
    expected = 0
    for src, dst, length, threshold in matrix:
        # one factory per source so pair_seq is globally consistent; the
        # bulk threshold is a per-message software decision
        factory = factories.get(src)
        if factory is None:
            factory = PacketFactory(src, bulk_threshold=threshold)
            factories[src] = factory
        factory.bulk_threshold = threshold
        feed(sim, nics[src], factory.message(dst, length))
        expected += length
    delivered = drain_all(sim, nics, expected, horizon=horizon)
    return delivered, expected


def check_exactly_once_in_order(delivered, expected):
    assert len(delivered) == expected
    uids = [p.uid for p in delivered]
    assert len(set(uids)) == expected  # exactly once
    by_pair = {}
    for p in delivered:
        by_pair.setdefault((p.src, p.dst), []).append(p.pair_seq)
    for pair, seqs in by_pair.items():
        assert seqs == sorted(seqs), pair  # in order per pair


matrix_strategy = st.lists(
    st.tuples(
        st.integers(0, 15),            # src
        st.integers(0, 15),            # dst
        st.integers(1, 10),            # message length
        st.sampled_from([2, 4, 1000]), # bulk threshold
    ).filter(lambda t: t[0] != t[1]),
    min_size=1,
    max_size=10,
)

params_strategy = st.builds(
    NifdyParams,
    opt_size=st.sampled_from([1, 2, 8]),
    pool_size=st.sampled_from([2, 8]),
    dialogs=st.sampled_from([0, 1, 2]),
    window=st.sampled_from([0, 2, 8]),
).filter(lambda p: (p.dialogs == 0) == (p.window == 0))


class TestProtocolFuzz:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(matrix=matrix_strategy, params=params_strategy,
           network=st.sampled_from(["fattree", "multibutterfly"]))
    def test_reliable_network_exactly_once_in_order(self, matrix, params, network):
        delivered, expected = run_matrix(network, params, matrix)
        check_exactly_once_in_order(delivered, expected)

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(matrix=matrix_strategy,
           drop=st.sampled_from([0.05, 0.15]))
    def test_lossy_network_exactly_once_in_order(self, matrix, drop):
        params = NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=4)
        delivered, expected = run_matrix(
            "fattree", params, matrix, lossy=drop, horizon=4_000_000,
        )
        check_exactly_once_in_order(delivered, expected)


def run_reorder_matrix(policy, matrix, drop=0.0, skew=0, num_nodes=16,
                       seed=3, horizon=4_000_000):
    """Drive a traffic matrix through reorder-tolerant NICs on the
    packet-spraying fat tree (per-packet random routes + path-skew
    jitter, so the fabric genuinely reorders); return delivered."""
    sim = Simulator()
    rngf = RngFactory(seed)
    net = build_network(
        "fattree-spray", sim, num_nodes, rng=rngf.stream("route"),
        drop_prob=drop, drop_rng=rngf.stream("drop"), path_skew=skew,
    )
    params = ReorderParams(tx_window=4, rx_window=8, cache_capacity=4)
    nics = net.attach_nics(
        lambda n: ReorderTolerantNIC(
            sim, n, policy=policy, params=params, retx_timeout=900,
        )
    )
    factories = {}
    expected = 0
    for src, dst, length, threshold in matrix:
        factory = factories.get(src)
        if factory is None:
            factory = factories[src] = PacketFactory(
                src, bulk_threshold=threshold
            )
        factory.bulk_threshold = threshold
        feed(sim, nics[src], factory.message(dst, length))
        expected += length
    delivered = drain_all(sim, nics, expected, horizon=horizon)
    return delivered, expected


class TestReorderFuzz:
    """All three receiver-recovery variants restore exactly-once, in-order
    delivery on a fabric that sprays, jitters, and (sometimes) drops."""

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(matrix=matrix_strategy,
           policy=st.sampled_from(REORDER_POLICIES),
           skew=st.sampled_from([0, 4]))
    def test_spray_fabric_exactly_once_in_order(self, matrix, policy, skew):
        delivered, expected = run_reorder_matrix(policy, matrix, skew=skew)
        check_exactly_once_in_order(delivered, expected)

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(matrix=matrix_strategy,
           policy=st.sampled_from(REORDER_POLICIES),
           drop=st.sampled_from([0.02, 0.08]))
    def test_lossy_spray_fabric_exactly_once_in_order(self, matrix, policy, drop):
        delivered, expected = run_reorder_matrix(
            policy, matrix, drop=drop, skew=4, horizon=6_000_000,
        )
        check_exactly_once_in_order(delivered, expected)


class TestParameterGridSmoke:
    """Every corner of the parameter space moves traffic correctly."""

    @pytest.mark.parametrize("opt", [1, 8])
    @pytest.mark.parametrize("window", [0, 2, 8])
    @pytest.mark.parametrize("network", ["mesh2d", "cm5"])
    def test_grid(self, opt, window, network):
        params = NifdyParams(
            opt_size=opt, pool_size=4,
            dialogs=1 if window else 0, window=window,
        )
        matrix = [(0, 9, 6, 4), (5, 2, 3, 1000), (9, 0, 5, 2)]
        delivered, expected = run_matrix(network, params, matrix, num_nodes=16)
        check_exactly_once_in_order(delivered, expected)
