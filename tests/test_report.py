"""Tests for the reporting module and the wire sequence encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    LatencyHistogram,
    link_utilization_report,
    results_to_csv,
    utilization_summary,
)
from repro.nic import wire_decode_sequence, wire_encode_sequence


class TestLatencyHistogram:
    def test_mean_and_max(self):
        hist = LatencyHistogram()
        for value in (10, 20, 60):
            hist.note(value)
        assert hist.mean == 30
        assert hist.maximum == 60
        assert hist.count == 3

    def test_percentiles_monotonic(self):
        hist = LatencyHistogram()
        for value in range(1, 200):
            hist.note(value)
        p50 = hist.percentile(0.5)
        p95 = hist.percentile(0.95)
        assert p50 <= p95
        assert p95 >= 95  # bucket upper bound covers the true percentile

    def test_empty_histogram(self):
        assert LatencyHistogram().percentile(0.5) == 0
        assert LatencyHistogram().mean == 0.0

    def test_invalid_inputs(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.note(-1)
        with pytest.raises(ValueError):
            hist.percentile(0.0)

    def test_rows_render(self):
        hist = LatencyHistogram()
        hist.note(1)
        hist.note(100)
        rows = hist.rows()
        assert len(rows) == 2
        assert all(count == 1 for _, count in rows)

    @given(st.lists(st.integers(min_value=0, max_value=10 ** 6), min_size=1))
    def test_percentile_upper_bounds_true_value(self, values):
        import math

        hist = LatencyHistogram()
        for value in values:
            hist.note(value)
        ordered = sorted(values)
        for frac in (0.5, 0.9, 1.0):
            # same rank convention as the histogram: smallest value with
            # cumulative count >= frac * n
            true_value = ordered[math.ceil(frac * len(ordered)) - 1]
            # the returned bucket upper bound covers the true percentile
            assert hist.percentile(frac) >= true_value


class TestLinkUtilization:
    def _run(self):
        from repro.experiments import (
            ExperimentSpec, heavy_synthetic, run_experiment,
        )

        result = run_experiment(ExperimentSpec(
            network="mesh2d", traffic=heavy_synthetic(), num_nodes=16,
            nic_mode="plain", run_cycles=5000, seed=1,
        ))
        return result

    def test_report_sorted_busiest_first(self):
        from repro.networks import build_network
        from repro.sim import Simulator
        # reuse the experiment's network via its nics' links? build anew:
        result = self._run()
        network = None
        # network object lives inside the runner; reconstruct via nics
        # links: use any nic's injection link's sim... simpler: rebuild and
        # drive directly
        sim = Simulator()
        net = build_network("mesh2d", sim, 4)
        from repro.nic import PlainNIC
        nics = net.attach_nics(lambda n: PlainNIC(sim, n, out_capacity=8))
        from conftest import drain_all, simple_packet
        for i in range(6):
            nics[0].try_send(simple_packet(0, 3))
        drain_all(sim, nics, 6)
        rows = link_utilization_report(net, sim.now)
        assert rows == sorted(rows, key=lambda r: r.utilization, reverse=True)
        assert rows[0].utilization > 0
        summary = utilization_summary(net, sim.now)
        assert 0 <= summary["mean"] <= summary["max"] <= 1.0

    def test_top_limits_rows(self):
        from repro.networks import build_network
        from repro.sim import Simulator

        net = build_network("mesh2d", Simulator(), 16)
        assert len(link_utilization_report(net, 100, top=5)) == 5


class TestCsvExport:
    def test_round_trip(self):
        from repro.experiments import (
            ExperimentSpec, heavy_synthetic, run_experiment,
        )

        results = [
            run_experiment(ExperimentSpec(
                network="mesh2d", traffic=heavy_synthetic(), num_nodes=16,
                nic_mode=mode, run_cycles=3000, seed=1,
            ))
            for mode in ("plain", "nifdy")
        ]
        text = results_to_csv(results)
        lines = text.strip().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("network,")
        assert "nifdy" in lines[2]


class TestWireSequence:
    def test_encode_is_modular(self):
        assert wire_encode_sequence(0, 4) == 0
        assert wire_encode_sequence(8, 4) == 0
        assert wire_encode_sequence(11, 4) == 3

    def test_decode_live_packet(self):
        # next expected 10, window 4: live seqs are 10..13
        for seq in range(10, 14):
            wire = wire_encode_sequence(seq, 4)
            decoded, dup = wire_decode_sequence(wire, 10, 4)
            assert decoded == seq and not dup

    def test_decode_old_duplicate(self):
        # seqs 6..9 were delivered within the last window
        for seq in range(6, 10):
            wire = wire_encode_sequence(seq, 4)
            decoded, dup = wire_decode_sequence(wire, 10, 4)
            assert decoded == seq and dup

    @given(
        window=st.sampled_from([2, 4, 8, 16]),
        next_expected=st.integers(min_value=0, max_value=10 ** 6),
        offset=st.integers(min_value=-16, max_value=15),
    )
    def test_roundtrip_within_protocol_invariant(self, window, next_expected, offset):
        """Any sequence within W of next_expected (either side) decodes to
        itself -- the paper's claim that log2(2W)-bit sequence fields
        suffice."""
        if not -window <= offset < window:
            return
        seq = next_expected + offset
        if seq < 0:
            return
        wire = wire_encode_sequence(seq, window)
        decoded, dup = wire_decode_sequence(wire, next_expected, window)
        assert decoded == seq
        assert dup == (offset < 0)

    @given(
        window=st.sampled_from([2, 4, 8, 16]),
        start=st.integers(min_value=0, max_value=10 ** 6),
        steps=st.integers(min_value=1, max_value=64),
    )
    def test_sliding_window_across_wraparound(self, window, start, steps):
        """Advance the receiver one delivery at a time through several 2W
        wraps: the head-of-window seq always decodes live, and the packet
        just delivered immediately flips to the duplicate branch."""
        next_expected = start
        for seq in range(start, start + steps):
            wire = wire_encode_sequence(seq, window)
            decoded, dup = wire_decode_sequence(wire, next_expected, window)
            assert decoded == seq and not dup
            next_expected += 1  # delivered; a retransmit is now a duplicate
            decoded, dup = wire_decode_sequence(wire, next_expected, window)
            assert decoded == seq and dup

    def test_duplicate_branch_covers_exactly_delta_ge_window(self):
        """Offsets (mod 2W) in [W, 2W) -- and only those -- take the
        duplicate branch, mapping to the seq delivered within the last W."""
        window, next_expected = 4, 10
        for delta in range(2 * window):
            wire = (next_expected + delta) % (2 * window)
            decoded, dup = wire_decode_sequence(wire, next_expected, window)
            if delta < window:
                assert not dup and decoded == next_expected + delta
            else:
                assert dup and decoded == next_expected + delta - 2 * window
