"""Epoch kernel and scheduler-registry tests.

The epoch kernel replaces per-flit ``Event`` allocation with bare
``(fn, args)`` token records in the calendar ring and lets links fuse
multi-flit token runs.  These tests pin down the parts generic kernel
semantics (tests/test_kernel.py, parametrized over every registered
scheduler) and whole-run parity (tests/test_scheduler_parity.py) don't
reach directly: registry behaviour, heap/ring interleaving, cancellation
alongside token records, mid-run faults during token runs, and the
bulk feeder/sink protocol contracts.
"""

import json

import pytest

from repro.experiments import ExperimentSpec, run_experiment
from repro.faults import FaultPlan
from repro.links import FlitFeeder, FlitSink, Link
from repro.obs import Observability, metrics_json
from repro.packets import Packet, PacketKind
from repro.sim import (
    DEFAULT_SCHEDULER,
    Scheduler,
    Simulator,
    register_scheduler,
    resolve_scheduler,
    scheduler_descriptions,
    scheduler_names,
)
from repro.sim.epoch import EpochSimulator
from repro.sim.kernel import _WINDOW, BucketSimulator, HeapSimulator
from repro.traffic import TrafficSpec


# ------------------------------------------------------------------ registry
class TestSchedulerRegistry:
    def test_registered_names_and_order(self):
        names = scheduler_names()
        # Historical order: bucket/heap predate the registry; epoch appends.
        assert names[:2] == ("bucket", "heap")
        assert "epoch" in names

    def test_default_is_registered(self):
        assert DEFAULT_SCHEDULER in scheduler_names()

    def test_resolve(self):
        assert resolve_scheduler("heap") is HeapSimulator
        assert resolve_scheduler("bucket") is BucketSimulator
        assert resolve_scheduler("epoch") is EpochSimulator

    def test_resolve_unknown_lists_choices(self):
        with pytest.raises(ValueError, match="choose from"):
            resolve_scheduler("fifo")

    def test_reregistering_same_class_is_noop(self):
        before = scheduler_names()
        register_scheduler(EpochSimulator)
        assert scheduler_names() == before

    def test_name_collision_rejected(self):
        class Impostor(Scheduler):
            name = "epoch"

        with pytest.raises(ValueError, match="already registered"):
            register_scheduler(Impostor)

    def test_descriptions_cover_every_kernel(self):
        desc = scheduler_descriptions()
        assert set(desc) == set(scheduler_names())
        assert all(desc.values())

    def test_simulator_dispatches_on_name(self):
        assert type(Simulator()) is resolve_scheduler(DEFAULT_SCHEDULER)
        assert type(Simulator("heap")) is HeapSimulator
        assert type(Simulator("epoch")) is EpochSimulator
        assert Simulator("epoch").scheduler == "epoch"

    def test_simulator_rejects_unknown(self):
        with pytest.raises(ValueError):
            Simulator("fifo")

    def test_link_streams_capability_flag(self):
        assert EpochSimulator.link_streams is True
        assert not getattr(HeapSimulator, "link_streams", False)
        assert not getattr(BucketSimulator, "link_streams", False)

    def test_subclass_constructs_directly(self):
        # Bypassing the registry dispatch must still work (tests do this).
        assert type(EpochSimulator()) is EpochSimulator


# ------------------------------------------------- epoch ordering semantics
class TestEpochOrdering:
    def test_ring_tokens_fire_in_post_order(self):
        sim = Simulator("epoch")
        fired = []
        for i in range(8):
            sim.post(3, fired.append, i)
        sim.run_until(4)
        assert fired == list(range(8))

    def test_heap_events_drain_before_ring_tokens(self):
        # A far event (scheduled beyond the ring window, so it lives in the
        # heap) must fire before same-cycle ring tokens: it was necessarily
        # scheduled earlier, hence has a lower global sequence number.
        sim = Simulator("epoch")
        fired = []
        horizon = _WINDOW + 5
        sim.post(horizon, fired.append, "far")

        def late_post():
            sim.post(1, fired.append, "near")

        sim.post(horizon - 1, late_post)
        sim.run_until(horizon + 1)
        assert fired == ["far", "near"]

    def test_at_events_interleave_with_tokens_in_schedule_order(self):
        sim = Simulator("epoch")
        fired = []
        sim.post(2, fired.append, "token-a")
        sim.at(sim.now + 2, fired.append, "event")
        sim.post(2, fired.append, "token-b")
        sim.run_until(3)
        assert fired == ["token-a", "event", "token-b"]

    def test_cancelled_event_skipped_between_tokens(self):
        sim = Simulator("epoch")
        fired = []
        sim.post(2, fired.append, "before")
        victim = sim.at(sim.now + 2, fired.append, "victim")
        sim.post(2, fired.append, "after")
        victim.cancel()
        sim.run_until(3)
        assert fired == ["before", "after"]
        assert sim.pending_events() == 0

    def test_token_posts_track_live_count(self):
        sim = Simulator("epoch")
        sim.post(1, lambda: None)
        sim.post(_WINDOW + 10, lambda: None)
        assert sim.pending_events() == 2
        sim.run_until(2)
        assert sim.pending_events() == 1


# ----------------------------------------------------- faults during runs
def _fault_metrics(kernel: str) -> str:
    """Heavy traffic with a link failing and repairing mid-run plus a loss
    burst: fail/repair and fault-drop transitions land while epoch token
    runs are open on the affected links."""
    spec = ExperimentSpec(
        network="fattree",
        traffic=TrafficSpec("heavy"),
        num_nodes=16,
        run_cycles=6000,
        seed=5,
        kernel=kernel,
        observe=Observability(events=True),
        fault_plan=FaultPlan.from_shorthand([
            "fail@1000-2500:link=ft:up0.0",
            "burst@1500-3000:prob=0.2",
        ]),
    )
    result = run_experiment(spec)
    metrics = metrics_json(result)
    metrics.pop("self_profile", None)
    return json.dumps(metrics, sort_keys=True)


@pytest.mark.parametrize("kernel", [k for k in scheduler_names() if k != "heap"])
def test_fault_mid_run_parity(kernel):
    assert _fault_metrics(kernel) == _fault_metrics("heap")


# ------------------------------------------------------ bulk protocol units
class _ListFeeder(FlitFeeder):
    """Minimal feeder over a fixed flit list (protocol-default methods)."""

    def __init__(self, flits):
        self.flits = list(flits)

    def has_flit_ready(self, link, vc):
        return bool(self.flits)

    def take_flit(self, link, vc):
        return self.flits.pop(0)


class _CountingSink(FlitSink):
    def __init__(self):
        self.calls = []

    def accept_flit(self, port, vc, packet, is_head, is_tail):
        self.calls.append((port, vc, packet, is_head, is_tail))


def _packet(flits=4):
    return Packet(src=0, dst=1, kind=PacketKind.SCALAR, size_bytes=flits * 4)


class TestBulkProtocolDefaults:
    def test_take_flits_stops_at_tail(self):
        pkt = _packet()
        feeder = _ListFeeder([
            (pkt, True, False), (pkt, False, False), (pkt, False, True),
            (pkt, True, False),  # next packet's head: must not be taken
        ])
        taken = feeder.take_flits(None, 0, 10)
        assert [t[2] for t in taken] == [False, False, True]
        assert len(feeder.flits) == 1

    def test_take_flits_respects_max(self):
        pkt = _packet()
        feeder = _ListFeeder([(pkt, True, False), (pkt, False, False)])
        assert len(feeder.take_flits(None, 0, 1)) == 1
        assert len(feeder.flits) == 1

    def test_untake_unsupported_by_default(self):
        with pytest.raises(NotImplementedError):
            _ListFeeder([]).untake_flits(None, 0, 1)

    def test_run_handle_and_target_default_none(self):
        assert _ListFeeder([]).flit_run_handle(None, 0) is None
        assert _CountingSink().flit_target(0, 0) is None

    def test_sinks_are_active_by_default(self):
        assert FlitSink.passive_flit_sink is False
        assert _CountingSink().passive_flit_sink is False

    def test_accept_flits_unrolls_without_tail(self):
        sink = _CountingSink()
        pkt = _packet()
        sink.accept_flits(2, 1, pkt, 3, first_is_head=True)
        assert sink.calls == [
            (2, 1, pkt, True, False),
            (2, 1, pkt, False, False),
            (2, 1, pkt, False, False),
        ]


class TestNicBulkProtocol:
    def _nic_with_stream(self, flits=6):
        from repro.nic.base import BaseNIC, _InjectionStream

        sim = Simulator("epoch")
        nic = BaseNIC(sim, node_id=0)
        link = Link(sim, "l", 4, 1, 8, sink=None, sink_port=0)
        pkt = _packet(flits)
        nic._inj_streams[(id(link), 0)] = _InjectionStream(pkt)
        return nic, link, pkt

    def test_nic_is_passive_sink(self):
        from repro.nic.base import BaseNIC

        assert BaseNIC.passive_flit_sink is True

    def test_claim_handle_reports_remaining(self):
        nic, link, pkt = self._nic_with_stream(flits=6)
        assert nic.flit_run_handle(link, 0) == ("claim", 6)
        nic.take_flit(link, 0)
        assert nic.flit_run_handle(link, 0) == ("claim", 5)
        assert nic.flit_run_handle(link, 1) is None

    def test_bulk_take_and_untake_round_trip(self):
        nic, link, pkt = self._nic_with_stream(flits=6)
        nic.take_flit(link, 0)  # the head goes per-flit
        taken = nic.take_flits(link, 0, 4)
        assert taken == [(pkt, False, False)] * 4
        stream = nic._inj_streams[(id(link), 0)]
        assert stream.flits_sent == 5
        nic.untake_flits(link, 0, 4)
        assert stream.flits_sent == 1
        # After the round trip the classic path proceeds untouched.
        assert nic.take_flit(link, 0) == (pkt, False, False)

    def test_bulk_take_never_claims_past_the_tail_implicitly(self):
        nic, link, pkt = self._nic_with_stream(flits=4)
        nic.take_flit(link, 0)
        taken = nic.take_flits(link, 0, 2)  # body only: 2 of 2 remaining
        assert [t[2] for t in taken] == [False, False]
        # Asking beyond the body reaches the tail via the classic take,
        # with its completion side effects.
        taken = nic.take_flits(link, 0, 5)
        assert [t[2] for t in taken] == [True]
        assert (id(link), 0) not in nic._inj_streams
        assert nic.packets_injected == 1

    def test_accept_flits_is_one_counter_bump(self):
        nic, link, pkt = self._nic_with_stream()
        nic.accept_flits(0, 0, pkt, 3)
        assert nic._ej_flits[(0, 0)] == 3


class TestRouterBulkProtocol:
    def test_flit_target_is_bound_input_unit_accept(self):
        from repro.routers.base import Router

        sim = Simulator("epoch")
        router = Router(sim, 0, route_fn=lambda *a: [])
        link = Link(sim, "in", 4, 2, 8, sink=router, sink_port=3)
        router.attach_in_link(3, link)
        target = router.flit_target(3, 1)
        assert target.__self__ is router._input_units[3][1]

    def test_input_unit_run_handle_describes_head_transit(self):
        from repro.routers.base import Router

        sim = Simulator("epoch")
        router = Router(sim, 0, route_fn=lambda *a: [])
        link = Link(sim, "in", 4, 1, 8, sink=router, sink_port=0)
        router.attach_in_link(0, link)
        unit = router._input_units[0][0]
        pkt = _packet()
        unit.accept_flit(pkt, True, False)
        kind, transit, ret_link, ret_vc = unit.flit_run_handle(None, 0)
        assert kind == "unit"
        assert transit is unit.queue[0]
        assert ret_link is link and ret_vc == 0
