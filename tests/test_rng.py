"""Tests for dedicated per-consumer RNG streams."""

from repro.sim import RngFactory


def test_same_name_same_stream_object():
    factory = RngFactory(42)
    assert factory.stream("a") is factory.stream("a")


def test_streams_reproducible_across_factories():
    a = RngFactory(42).stream("traffic:3")
    b = RngFactory(42).stream("traffic:3")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_stream_isolation_from_other_consumers():
    """Adding another consumer must not perturb an existing stream --
    the property Section 3 relies on for config-independent traffic."""
    solo = RngFactory(7)
    seq_solo = [solo.stream("node:1").random() for _ in range(5)]

    crowded = RngFactory(7)
    crowded.stream("node:0").random()
    crowded.stream("nifdy:route").random()
    seq_crowded = [crowded.stream("node:1").random() for _ in range(5)]
    assert seq_solo == seq_crowded


def test_different_names_differ():
    factory = RngFactory(0)
    assert factory.stream("x").random() != factory.stream("y").random()


def test_different_seeds_differ():
    assert RngFactory(1).stream("x").random() != RngFactory(2).stream("x").random()


def test_fork_is_independent():
    base = RngFactory(9)
    forked = base.fork("child")
    assert base.stream("s").random() != forked.stream("s").random()
