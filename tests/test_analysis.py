"""Tests for the analytic model (Equations 1-4) and the parameter advisor."""

import pytest

from repro.analysis import (
    NetworkModel,
    PAPER_FATTREE_64,
    PAPER_MESH_8X8,
    characterize,
    min_window_combined_acks,
    min_window_per_packet_acks,
    pairwise_bandwidth,
    recommend_params,
    roundtrip_time,
    scalar_mode_sufficient,
)


class TestEquations:
    def test_equation1_limited_by_slowest_stage(self):
        assert pairwise_bandwidth(32, 40, 60, 30) == 32 / 60
        assert pairwise_bandwidth(32, 80, 60, 30) == 32 / 80
        assert pairwise_bandwidth(32, 10, 20, 64) == 32 / 64

    def test_equation2_paper_mesh_numbers(self):
        """Section 2.4.3: the 8x8 mesh's max/avg round trips are 144/80."""
        assert roundtrip_time(PAPER_MESH_8X8.t_lat(14), 4) == 144
        assert roundtrip_time(PAPER_MESH_8X8.t_lat(6), 4) == 80

    def test_equation2_paper_fattree_numbers(self):
        """Section 2.4.3: fat tree round trip = 32 + 32 + 4 = 68."""
        assert roundtrip_time(PAPER_FATTREE_64.t_lat(6), 4) == 68

    def test_equation3_paper_mesh_window(self):
        """'To hide the maximum NIFDY roundtrip latency of 144 cycles, we
        will need a bulk window size of W >= 2(144/60 - 1)' -> at least 2,
        'possibly 3 or 4'."""
        w = min_window_combined_acks(144.0, 60.0)
        assert w in (3, 4)  # ceil(2.8)

    def test_equation4_per_packet_acks_needs_larger_window(self):
        rtt, limit = 300.0, 60.0
        assert min_window_per_packet_acks(rtt, limit) >= \
            min_window_combined_acks(rtt, limit) / 2

    def test_scalar_sufficiency_thresholds(self):
        assert scalar_mode_sufficient(60, 40, 60, 32)
        assert not scalar_mode_sufficient(61, 40, 60, 32)


class TestAdvisor:
    def test_mesh_gets_restrictive_parameters(self):
        rec = recommend_params(PAPER_MESH_8X8)
        assert rec.params.opt_size == 4
        assert rec.params.pool_size == 4
        assert 2 <= rec.params.window <= 4
        assert not rec.scalar_sufficient

    def test_fattree_gets_generous_parameters(self):
        rec = recommend_params(PAPER_FATTREE_64)
        assert rec.params.opt_size == 8
        assert rec.params.pool_size == 8

    def test_window_is_power_of_two(self):
        for model in (PAPER_MESH_8X8, PAPER_FATTREE_64):
            w = recommend_params(model).params.window
            assert w & (w - 1) == 0

    def test_high_latency_network_gets_big_window(self):
        slow = NetworkModel(
            t_lat=lambda d: 40 * d + 10, max_hops=6, avg_hops=5,
            volume_words_per_node=40, bisection_bytes_per_cycle=64,
            num_nodes=64,
        )
        rec = recommend_params(slow)
        assert rec.params.window >= 8


class TestCharacterization:
    def test_mesh_row_matches_paper_shape(self):
        row = characterize("mesh2d", 16, hop_sample=100)
        assert row.num_nodes == 16
        assert row.delivers_in_order
        assert row.latency_slope == pytest.approx(4.0, abs=0.6)
        assert row.max_hops == 8  # 3+3 router hops + 2 NIC links (4x4)

    def test_butterfly_constant_distance(self):
        row = characterize("butterfly", 16, hop_sample=100, measure_latency=False)
        assert row.avg_hops == row.max_hops

    def test_formula_rendering(self):
        row = characterize("mesh2d", 16, hop_sample=50, measure_latency=False)
        assert "T_lat(d)" in row.formula()
