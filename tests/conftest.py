"""Shared helpers for the test suite."""

from typing import List, Optional

import pytest

from repro.networks import build_network
from repro.nic import NifdyNIC, NifdyParams, PlainNIC
from repro.packets import FLIT_BYTES, Packet, PacketKind
from repro.sim import RngFactory, Simulator


def drain_all(sim, nics, expected, horizon=500_000, poll_every=25):
    """Poll every NIC until ``expected`` packets are delivered (or the
    relative ``horizon`` elapses).  Returns packets in acceptance order."""
    delivered: List[Packet] = []

    def poll():
        for nic in nics:
            pkt = nic.receive()
            if pkt is not None:
                delivered.append(pkt)
                nic.accepted(pkt)
        if len(delivered) < expected:
            sim.schedule(poll_every, poll)

    sim.schedule(poll_every, poll)
    sim.run_until(sim.now + horizon)
    return delivered


def build_with_nics(name, num_nodes, nic="plain", params=None, seed=0, **overrides):
    """(sim, network, nics) with the requested NIC type on every node."""
    sim = Simulator()
    net = build_network(
        name, sim, num_nodes, rng=RngFactory(seed).stream("route"), **overrides
    )
    if nic == "plain":
        nics = net.attach_nics(lambda n: PlainNIC(sim, n, out_capacity=64))
    elif nic == "nifdy":
        p = params or NifdyParams()
        nics = net.attach_nics(lambda n: NifdyNIC(sim, n, p))
    else:
        raise ValueError(nic)
    return sim, net, nics


def simple_packet(src, dst, flits=8, **kw):
    return Packet(
        src=src, dst=dst, kind=PacketKind.SCALAR,
        size_bytes=flits * FLIT_BYTES, **kw,
    )
