"""Tests for the link layer: bandwidth pacing, credits, VC allocation."""

import pytest

from repro.links import FlitFeeder, FlitSink, Link
from repro.packets import Packet, PacketKind
from repro.sim import RngFactory, Simulator


class OnePacketFeeder(FlitFeeder):
    """Feeds the flits of a single packet."""

    def __init__(self, packet):
        self.packet = packet
        self.sent = 0

    def has_flit_ready(self, link, vc):
        return self.sent < self.packet.flits

    def take_flit(self, link, vc):
        self.sent += 1
        return self.packet, self.sent == 1, self.sent == self.packet.flits


class RecordingSink(FlitSink):
    """Collects flits; returns credits only when asked (to test backpressure)."""

    def __init__(self, auto_credit_link=None):
        self.flits = []
        self.auto_credit_link = auto_credit_link

    def accept_flit(self, port, vc, packet, is_head, is_tail):
        self.flits.append((port, vc, packet, is_head, is_tail))
        if self.auto_credit_link is not None:
            self.auto_credit_link.return_credit(vc)


def packet(flits=4, src=0, dst=1):
    return Packet(src=src, dst=dst, kind=PacketKind.SCALAR, size_bytes=flits * 4)


def make_link(sim, sink, width=1, vcs=1, buf=16, **kw):
    return Link(sim, "L", width, vcs, buf, sink=sink, sink_port=0, **kw)


class TestTransfer:
    def test_one_flit_per_cycles_per_flit(self):
        sim = Simulator()
        sink = RecordingSink()
        link = make_link(sim, sink, width=1)  # 4 cycles per 4-byte flit
        pkt = packet(flits=3)
        feeder = OnePacketFeeder(pkt)
        assert link.allocate_vc(pkt, feeder, [0]) == 0
        link.notify_flit_ready(0)
        sim.run()
        assert len(sink.flits) == 3
        assert sink.flits[0][3] is True   # head flag
        assert sink.flits[-1][4] is True  # tail flag
        assert sim.now == 12  # 3 flits x 4 cycles

    def test_wider_link_is_faster(self):
        sim = Simulator()
        sink = RecordingSink()
        link = make_link(sim, sink, width=4)  # one flit per cycle
        pkt = packet(flits=8)
        feeder = OnePacketFeeder(pkt)
        link.allocate_vc(pkt, feeder, [0])
        link.notify_flit_ready(0)
        sim.run()
        assert sim.now == 8

    def test_cycles_per_flit_override(self):
        sim = Simulator()
        sink = RecordingSink()
        link = make_link(sim, sink, width=1, cycles_per_flit=16)  # CM-5 style
        pkt = packet(flits=2)
        feeder = OnePacketFeeder(pkt)
        link.allocate_vc(pkt, feeder, [0])
        link.notify_flit_ready(0)
        sim.run()
        assert sim.now == 32

    def test_statistics(self):
        sim = Simulator()
        sink = RecordingSink()
        link = make_link(sim, sink)
        pkt = packet(flits=2)
        feeder = OnePacketFeeder(pkt)
        link.allocate_vc(pkt, feeder, [0])
        link.notify_flit_ready(0)
        sim.run()
        assert link.flits_carried == 2
        assert link.packets_carried == 1
        assert link.utilization(sim.now) == 1.0


class TestCredits:
    def test_transfer_stalls_without_credits(self):
        sim = Simulator()
        sink = RecordingSink()  # never returns credits
        link = make_link(sim, sink, buf=2)
        pkt = packet(flits=5)
        feeder = OnePacketFeeder(pkt)
        link.allocate_vc(pkt, feeder, [0])
        link.notify_flit_ready(0)
        sim.run()
        assert len(sink.flits) == 2  # buffer capacity reached

    def test_credit_return_resumes_transfer(self):
        sim = Simulator()
        sink = RecordingSink()
        link = make_link(sim, sink, buf=2)
        sink.auto_credit_link = link  # sink drains immediately
        pkt = packet(flits=5)
        feeder = OnePacketFeeder(pkt)
        link.allocate_vc(pkt, feeder, [0])
        link.notify_flit_ready(0)
        sim.run()
        assert len(sink.flits) == 5

    def test_credit_overflow_detected(self):
        sim = Simulator()
        link = make_link(sim, RecordingSink(), buf=2)
        with pytest.raises(RuntimeError):
            link.return_credit(0)


class TestVcAllocation:
    def test_vc_held_until_tail_delivered(self):
        sim = Simulator()
        sink = RecordingSink()
        link = make_link(sim, sink, vcs=1)
        sink.auto_credit_link = link
        first = packet(flits=2)
        feeder = OnePacketFeeder(first)
        assert link.allocate_vc(first, feeder, [0]) == 0
        second = packet(flits=2, src=5)
        assert link.allocate_vc(second, OnePacketFeeder(second), [0]) is None
        link.notify_flit_ready(0)
        sim.run()
        # tail delivered -> VC free again
        assert link.allocate_vc(second, OnePacketFeeder(second), [0]) == 0

    def test_alloc_waiter_called_on_release(self):
        sim = Simulator()
        sink = RecordingSink()
        link = make_link(sim, sink)
        sink.auto_credit_link = link
        pkt = packet(flits=2)
        feeder = OnePacketFeeder(pkt)
        link.allocate_vc(pkt, feeder, [0])
        fired = []
        link.add_alloc_waiter(lambda: fired.append(sim.now))
        link.notify_flit_ready(0)
        sim.run()
        assert fired  # waiter fired when the VC released

    def test_vcs_share_wire_round_robin(self):
        sim = Simulator()
        sink = RecordingSink()
        link = make_link(sim, sink, vcs=2)
        sink.auto_credit_link = link
        a, b = packet(flits=3, src=1), packet(flits=3, src=2)
        link.allocate_vc(a, OnePacketFeeder(a), [0])
        link.allocate_vc(b, OnePacketFeeder(b), [1])
        link.notify_flit_ready(0)
        link.notify_flit_ready(1)
        sim.run()
        srcs = [f[2].src for f in sink.flits]
        # flits interleave; total time = 6 flit slots
        assert sim.now == 24
        assert srcs.count(1) == 3 and srcs.count(2) == 3
        assert srcs != [1, 1, 1, 2, 2, 2]  # actually interleaved

    def test_vcs_for_net_grouping(self):
        sim = Simulator()
        link = Link(
            sim, "L", 1, 4, 2, sink=RecordingSink(), sink_port=0,
            net_of_vc=[0, 0, 1, 1],
        )
        assert link.vcs_for_net(0) == [0, 1]
        assert link.vcs_for_net(1) == [2, 3]


class TestLossyLinks:
    def test_dropped_packet_consumes_wire_but_not_delivered(self):
        sim = Simulator()
        sink = RecordingSink()
        rng = RngFactory(3).stream("drop")
        link = make_link(sim, sink, drop_prob=1.0, drop_rng=rng)
        pkt = packet(flits=4)
        feeder = OnePacketFeeder(pkt)
        link.allocate_vc(pkt, feeder, [0])
        link.notify_flit_ready(0)
        sim.run()
        assert sink.flits == []
        assert link.packets_dropped == 1
        assert link.flits_carried == 4  # bandwidth was spent

    def test_acks_never_dropped(self):
        from repro.packets import AckInfo, make_ack

        sim = Simulator()
        sink = RecordingSink()
        rng = RngFactory(3).stream("drop")
        link = make_link(sim, sink, drop_prob=1.0, drop_rng=rng)
        sink.auto_credit_link = link
        ack = make_ack(0, 1, AckInfo())
        feeder = OnePacketFeeder(ack)
        link.allocate_vc(ack, feeder, [0])
        link.notify_flit_ready(0)
        sim.run()
        assert len(sink.flits) == ack.flits

    def test_zero_drop_prob_is_reliable(self):
        sim = Simulator()
        sink = RecordingSink()
        link = make_link(sim, sink, drop_prob=0.0)
        sink.auto_credit_link = link
        pkt = packet(flits=4)
        link.allocate_vc(pkt, OnePacketFeeder(pkt), [0])
        link.notify_flit_ready(0)
        sim.run()
        assert len(sink.flits) == 4


class TestValidation:
    def test_bad_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, "L", 0, 1, 1, sink=None, sink_port=0)
        with pytest.raises(ValueError):
            Link(sim, "L", 1, 0, 1, sink=None, sink_port=0)
        with pytest.raises(ValueError):
            Link(sim, "L", 1, 1, 0, sink=None, sink_port=0)

    def test_net_of_vc_length_checked(self):
        with pytest.raises(ValueError):
            Link(Simulator(), "L", 1, 2, 1, sink=None, sink_port=0, net_of_vc=[0])

    def test_lossy_link_without_rng_rejected_at_construction(self):
        # Regression: Link(drop_prob=0.3) with no drop_rng used to pass
        # construction and crash with AttributeError at the first head
        # flit's drop decision.  The missing stream must fail fast.
        sim = Simulator()
        with pytest.raises(ValueError, match="drop_rng"):
            make_link(sim, RecordingSink(), drop_prob=0.3)

    def test_drop_prob_out_of_range_rejected(self):
        sim = Simulator()
        rng = RngFactory(3).stream("drop")
        for bad in (-0.1, 1.5):
            with pytest.raises(ValueError, match=r"\[0, 1\]"):
                make_link(sim, RecordingSink(), drop_prob=bad, drop_rng=rng)
        # Boundary values are legal (0.0 needs no rng at all).
        make_link(sim, RecordingSink(), drop_prob=0.0)
        make_link(sim, RecordingSink(), drop_prob=1.0, drop_rng=rng)


class TestAccountingHonesty:
    def test_utilization_not_clamped(self):
        # Regression: utilization() used to min(1.0, ...) -- hiding exactly
        # the double-transfer accounting bugs the overclock guard hunts.
        sim = Simulator()
        link = make_link(sim, RecordingSink())
        link.busy_cycles = 150
        assert link.utilization(100) == pytest.approx(1.5)
        assert link.utilization(0) == 0.0

    def test_overclock_guard_survives_counter_reset(self):
        # Regression: the guard used to treat flits_carried == 0 as "first
        # transfer ever", so zeroing the stats counter (as measurement-
        # window code legitimately does) re-armed a free double transfer.
        # The dedicated _last_start sentinel must not be fooled.
        sim = Simulator()
        sink = RecordingSink()
        link = make_link(sim, sink)
        sink.auto_credit_link = link
        pkt = packet(flits=2)
        link.allocate_vc(pkt, OnePacketFeeder(pkt), [0])
        link.notify_flit_ready(0)
        sim.run_until(1)  # first flit started at 0, still on the wire
        link.flits_carried = 0  # stats reset must not re-arm the wire
        link._busy = False      # simulate the bug the guard exists to catch
        with pytest.raises(RuntimeError, match="overclocked"):
            link._kick()

    def test_overclock_guard_allows_back_to_back_transfers(self):
        # Consecutive flits exactly cycles_per_flit apart are legal; only a
        # transfer *inside* the previous flit's wire time is a bug.
        sim = Simulator()
        sink = RecordingSink()
        link = make_link(sim, sink)
        sink.auto_credit_link = link
        pkt = packet(flits=4)
        link.allocate_vc(pkt, OnePacketFeeder(pkt), [0])
        link.notify_flit_ready(0)
        sim.run()
        assert len(sink.flits) == 4
        assert link.utilization(sim.now) == pytest.approx(1.0)
