"""Tests for the ExperimentSpec API and the cache-backed sweep engine."""

import json
import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.experiments import (
    ExperimentSpec,
    ResultCache,
    SpecSerializationError,
    SweepEngine,
    code_version,
    heavy_synthetic,
    light_synthetic,
    run_experiment,
)
from repro.faults import FaultPlan
from repro.nic import NifdyParams
from repro.traffic import SyntheticConfig, TrafficSpec


def small_spec(**overrides):
    base = dict(
        network="mesh2d", traffic=heavy_synthetic(), num_nodes=16,
        nic_mode="nifdy", run_cycles=3000, seed=2,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestTrafficSpec:
    def test_unknown_name_fails_fast(self):
        with pytest.raises(ValueError, match="unknown traffic"):
            TrafficSpec("wormhole_storm")

    def test_wrong_config_type_rejected(self):
        from repro.traffic import CShiftConfig

        with pytest.raises(TypeError):
            TrafficSpec("heavy", CShiftConfig())

    def test_callable_with_factory_signature(self):
        from repro.sim import RngFactory

        drv = TrafficSpec("heavy")(0, 16, RngFactory(1), exploit=False)
        assert hasattr(drv, "next_action")

    def test_round_trips_tuple_config_fields(self):
        cfg = SyntheticConfig.light_traffic()
        assert isinstance(cfg.ignore_cycles, tuple)
        spec = TrafficSpec("light", cfg)
        again = TrafficSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.resolved_config() == cfg


class TestSpecSerialization:
    def test_json_round_trip_defaults(self):
        spec = small_spec()
        again = ExperimentSpec.from_json(spec.to_json())
        assert again == spec

    def test_json_round_trip_loaded_fields(self):
        plan = FaultPlan.from_shorthand(["burst@100-200:prob=0.05"])
        spec = small_spec(
            traffic=light_synthetic(),
            nifdy_params=NifdyParams(opt_size=4, pool_size=8, dialogs=1,
                                     window=4),
            fault_plan=plan,
            network_overrides={"vcs_per_net": 2},
            drop_prob=0.01,
            label="loaded",
        )
        again = ExperimentSpec.from_json(spec.to_json())
        assert again == spec
        assert again.label == "loaded"
        assert again.nifdy_params.window == 4
        assert len(list(again.fault_plan)) == len(list(plan))

    def test_opaque_traffic_is_not_portable(self):
        def factory(node, num_nodes, rngf, exploit):  # pragma: no cover
            raise AssertionError("never driven in this test")

        spec = small_spec(traffic=factory)
        assert not spec.portable
        with pytest.raises(SpecSerializationError):
            spec.to_dict()
        with pytest.raises(SpecSerializationError):
            spec.content_hash()

    def test_replace_makes_changed_copy(self):
        spec = small_spec()
        other = spec.replace(seed=9)
        assert other.seed == 9 and spec.seed == 2
        assert other != spec


class TestContentHash:
    def test_label_and_observe_are_cosmetic(self):
        from repro.obs import Observability

        spec = small_spec()
        assert spec.content_hash() == spec.replace(label="x").content_hash()
        assert (
            spec.content_hash()
            == spec.replace(observe=Observability(events=True)).content_hash()
        )

    def test_material_fields_change_the_hash(self):
        spec = small_spec()
        assert spec.content_hash() != spec.replace(seed=3).content_hash()
        assert (
            spec.content_hash()
            != spec.replace(nic_mode="plain").content_hash()
        )

    def test_stable_across_processes(self):
        """The hash must not depend on PYTHONHASHSEED or process state."""
        program = (
            "from repro.experiments import ExperimentSpec, heavy_synthetic\n"
            "spec = ExperimentSpec(network='mesh2d',"
            " traffic=heavy_synthetic(), num_nodes=16, nic_mode='nifdy',"
            " run_cycles=3000, seed=2)\n"
            "print(spec.content_hash())"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        out = subprocess.run(
            [sys.executable, "-c", program], env=env,
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == small_spec().content_hash()


class TestResultCache:
    def test_hit_after_put_and_invalidation_on_spec_change(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec()
        assert cache.get(spec) is None
        cache.put(spec, {"delivered": 42, "cycles": 3000})
        assert cache.get(spec)["delivered"] == 42
        # any material change misses
        assert cache.get(spec.replace(seed=3)) is None

    def test_entry_keyed_on_code_version(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec()
        cache.put(spec, {"delivered": 1})
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        assert files[0].name == f"{spec.content_hash()}-{code_version()[:12]}.json"
        doc = json.loads(files[0].read_text())
        assert doc["code_version"] == code_version()


class TestSweepEngine:
    def grid_specs(self):
        specs = []
        for o in (2, 8):
            for w in (0, 4):
                params = NifdyParams(opt_size=o, pool_size=8,
                                     dialogs=1 if w else 0, window=w)
                specs.append(small_spec(
                    nic_mode="nifdy-", nifdy_params=params,
                    label=f"O={o} W={w}",
                ))
        return specs

    def test_serial_matches_direct_run(self, tmp_path):
        engine = SweepEngine(jobs=1, cache_dir=tmp_path)
        (point,) = engine.run([small_spec()])
        direct = run_experiment(small_spec())
        assert point.delivered == direct.delivered
        assert point.cycles == direct.cycles
        assert point.sent == direct.sent

    def test_parallel_matches_serial_on_table3_grid(self, tmp_path):
        specs = self.grid_specs()
        serial = SweepEngine(jobs=1, cache=False).run(specs)
        parallel = SweepEngine(jobs=2, cache=False).run(specs)
        assert [p.delivered for p in parallel] == [p.delivered for p in serial]
        assert [p.cycles for p in parallel] == [p.cycles for p in serial]
        assert [p.label for p in parallel] == [p.label for p in serial]
        assert all(p.ok for p in parallel)

    def test_second_run_comes_from_cache(self, tmp_path):
        specs = self.grid_specs()
        first = SweepEngine(jobs=1, cache_dir=tmp_path)
        cold = first.run(specs)
        assert first.stats.executed == len(specs)
        assert first.stats.cache_hits == 0
        second = SweepEngine(jobs=1, cache_dir=tmp_path)
        warm = second.run(specs)
        assert second.stats.cache_hits == len(specs)
        assert second.stats.executed == 0
        assert second.stats.hit_rate == 1.0
        assert [p.delivered for p in warm] == [p.delivered for p in cold]
        assert all(p.cached for p in warm)

    def test_spec_change_misses_the_cache(self, tmp_path):
        engine = SweepEngine(jobs=1, cache_dir=tmp_path)
        engine.run([small_spec()])
        engine.run([small_spec(seed=5)])
        assert engine.stats.cache_hits == 0
        assert engine.stats.executed == 2

    def test_crashed_point_is_isolated(self, tmp_path):
        bad = small_spec(nic_mode="warp")  # unknown mode raises in the runner
        good = small_spec()
        engine = SweepEngine(jobs=1, cache_dir=tmp_path)
        points = engine.run([bad, good])
        assert not points[0].ok and "ValueError" in points[0].error
        assert points[1].ok and points[1].delivered > 0
        assert engine.stats.errors == 1

    def test_crashed_point_is_isolated_in_workers(self, tmp_path):
        bad = small_spec(nic_mode="warp")
        good = small_spec()
        points = SweepEngine(jobs=2, cache_dir=tmp_path).run([bad, good])
        assert not points[0].ok and points[1].ok

    def test_errors_are_not_cached(self, tmp_path):
        bad = small_spec(nic_mode="warp")
        engine = SweepEngine(jobs=1, cache_dir=tmp_path)
        engine.run([bad])
        engine.run([bad])
        assert engine.stats.errors == 2
        assert engine.stats.cache_hits == 0

    def test_opaque_traffic_runs_in_process_uncached(self, tmp_path):
        from repro.traffic import SyntheticDriver

        def factory(node, num_nodes, rngf, exploit):
            return SyntheticDriver(
                node, num_nodes, SyntheticConfig.heavy_traffic(), rngf,
                exploit,
            )

        spec = small_spec(traffic=factory)
        engine = SweepEngine(jobs=2, cache_dir=tmp_path)
        (point,) = engine.run([spec])
        assert point.ok and point.delivered > 0
        assert point.spec_hash is None
        assert not list(tmp_path.glob("*.json"))

    def test_progress_and_bus_events(self, tmp_path):
        from repro.obs import EventBus, EventKind

        bus = EventBus()
        seen = []
        bus.subscribe(None, lambda e: seen.append(e.kind))
        calls = []
        engine = SweepEngine(
            jobs=1, cache_dir=tmp_path,
            progress=lambda done, total, point: calls.append((done, total)),
            bus=bus,
        )
        engine.run([small_spec()])
        engine.run([small_spec()])
        assert calls == [(1, 1), (1, 1)]
        assert seen == [EventKind.SWEEP_POINT, EventKind.SWEEP_CACHE_HIT]


class TestPointTimeout:
    """The per-point wall-clock bound: hung workers degrade, not wedge."""

    def test_hung_point_degrades_to_errored(self, tmp_path):
        # A 500M-cycle horizon takes minutes; the 1s bound must kill it.
        slow = small_spec(run_cycles=500_000_000, label="slow")
        engine = SweepEngine(jobs=1, cache_dir=tmp_path, point_timeout=1.0)
        (point,) = engine.run([slow])
        assert point.error is not None and point.timed_out
        assert "timeout" in point.error
        assert not point.ok and not point.completed
        assert engine.stats.timeouts == 1 and engine.stats.errors == 1
        assert not list(tmp_path.glob("*.json"))  # never cache a timeout

    def test_points_starved_behind_a_hang_are_rescued(self, tmp_path):
        slow = small_spec(run_cycles=500_000_000, label="slow")
        quick = small_spec(label="quick")
        engine = SweepEngine(jobs=1, cache_dir=tmp_path, point_timeout=2.0)
        points = engine.run([slow, quick])
        assert [p.label for p in points] == ["slow", "quick"]
        assert points[0].timed_out
        # quick was only queued behind the hang: it must re-run in a fresh
        # pool and succeed, not inherit the timeout verdict.
        assert points[1].ok and points[1].delivered > 0 and not points[1].timed_out

    def test_timed_engine_matches_untimed_results(self, tmp_path):
        spec = small_spec()
        untimed = SweepEngine(jobs=1, cache=False).run([spec])[0]
        timed = SweepEngine(
            jobs=1, cache=False, point_timeout=120.0,
        ).run([spec])[0]
        assert (timed.delivered, timed.cycles, timed.sent) == (
            untimed.delivered, untimed.cycles, untimed.sent,
        )


class TestWorkerDeathContainment:
    """A hard worker death (os._exit: no Python unwind, breaks the shared
    ProcessPoolExecutor) must cost exactly the points it killed."""

    def crash(self, **overrides):
        from repro.traffic import CrashPointConfig, TrafficSpec

        cfg = CrashPointConfig(packets=8, after_packets=4, mode="exit")
        return small_spec(traffic=TrafficSpec("crashpoint", cfg),
                          label="crasher", **overrides)

    def test_death_settles_point_and_rescues_the_rest(self, tmp_path):
        # point_timeout forces the worker-pool path even at jobs=1; a
        # crasher run truly in-process would take the test down with it.
        specs = [self.crash(), small_spec(label="a"),
                 small_spec(seed=7, label="b")]
        engine = SweepEngine(jobs=1, cache_dir=tmp_path, point_timeout=120.0)
        points = engine.run(specs)
        assert [p.label for p in points] == ["crasher", "a", "b"]
        assert points[0].worker_died and not points[0].ok
        assert "died abruptly" in points[0].error
        # The survivors re-ran in a fresh pool with their real results.
        assert points[1].ok and points[1].delivered > 0
        assert points[2].ok and points[2].delivered > 0
        assert engine.stats.worker_deaths == 1
        assert engine.stats.errors == 1

    def test_death_verdict_is_never_cached(self, tmp_path):
        engine = SweepEngine(jobs=1, cache_dir=tmp_path, point_timeout=120.0)
        engine.run([self.crash()])
        engine.run([self.crash()])
        assert engine.stats.worker_deaths == 2
        assert engine.stats.cache_hits == 0
        assert not list(tmp_path.glob("*.json"))

    def test_death_under_parallel_workers(self, tmp_path):
        # With jobs=2 the victim may be collateral (the break poisons the
        # whole pool); what must hold: every point settles, every clean
        # survivor keeps its true result, >= 1 death is recorded.
        specs = [self.crash(), small_spec(label="a"),
                 small_spec(seed=7, label="b")]
        engine = SweepEngine(jobs=2, cache=False)
        points = engine.run(specs)
        assert len(points) == len(specs)
        assert engine.stats.worker_deaths >= 1
        serial = SweepEngine(jobs=1, cache=False).run(
            [small_spec(label="a"), small_spec(seed=7, label="b")]
        )
        by_label = {p.label: p for p in points}
        for truth in serial:
            survivor = by_label[truth.label]
            if survivor.ok:
                assert survivor.delivered == truth.delivered


class TestSweepHelpers:
    def test_sweep_cycles_are_actual_not_requested(self):
        """A completion-bounded point records the simulated cycle count."""
        from repro.experiments import sweep_nifdy_params

        grid = [NifdyParams(opt_size=4, pool_size=8, dialogs=0, window=0)]
        points = sweep_nifdy_params(
            "mesh2d", grid, num_nodes=16, run_cycles=2000,
            combine_light_and_heavy=True,
        )
        # heavy + light at 2000 cycles each: the aggregate must reflect the
        # summed actual cycles, not the single requested horizon
        assert points[0].cycles == 4000

    def test_spec_generators_match_helper_labels(self):
        from repro.experiments import nifdy_param_specs

        grid = [NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=2)]
        specs = nifdy_param_specs("mesh2d", grid, num_nodes=16,
                                  run_cycles=2000)
        assert len(specs) == 2  # heavy + light per grid point
        assert {s.traffic.name for s in specs} == {"heavy", "light"}
        assert all(s.portable for s in specs)

    def test_no_deprecation_warning_from_helpers(self):
        from repro.experiments import sweep_offered_load

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            points = sweep_offered_load(
                "mesh2d", gaps=(400,), num_nodes=16, run_cycles=2000,
            )
        assert points[0].delivered > 0
