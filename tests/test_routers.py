"""Tests for the router layer: forwarding modes, blocking, wormhole holds."""

import pytest

from repro.links import FlitSink, Link
from repro.packets import Packet, PacketKind
from repro.routers import CUTTHROUGH, STORE_AND_FORWARD, Router
from repro.sim import Simulator


class CollectorSink(FlitSink):
    """Terminal sink that assembles packets and immediately frees credits."""

    def __init__(self):
        self.link = None
        self.packets = []
        self.head_cycles = {}

    def accept_flit(self, port, vc, packet, is_head, is_tail):
        if is_head:
            self.head_cycles[packet.uid] = self.link.sim.now
        self.link.return_credit(vc)
        if is_tail:
            self.packets.append((packet, self.link.sim.now))


def eject_route(router, packet, in_port, in_vc):
    link = router.out_links[0]
    return [(link, link.vcs_for_net(packet.logical_net))]


def line_of_routers(sim, count, mode=CUTTHROUGH, buf=2, route_delay=1, width=1):
    """count routers in a row; packets enter router 0 and exit the last."""
    sink = CollectorSink()
    routers = []

    def route(router, packet, in_port, in_vc):
        link = router.out_links[0]
        return [(link, link.vcs_for_net(packet.logical_net))]

    for rid in range(count):
        routers.append(Router(sim, rid, route, mode=mode, route_delay=route_delay))
    links = []
    for i in range(count - 1):
        link = Link(sim, f"l{i}", width, 1, buf, sink=routers[i + 1], sink_port=0)
        routers[i + 1].attach_in_link(0, link)
        routers[i].attach_out_link(0, link)
        links.append(link)
    out = Link(sim, "out", width, 1, 64, sink=sink, sink_port=0)
    sink.link = out
    routers[-1].attach_out_link(0, out)
    entry = Link(sim, "in", width, 1, buf, sink=routers[0], sink_port=0)
    routers[0].attach_in_link(0, entry)
    return routers, links, entry, sink


class InjectFeeder:
    """Puts packets onto a link directly (stands in for a NIC)."""

    def __init__(self, link):
        self.link = link
        self.queue = []
        self.current = None
        self.sent = 0

    def send(self, packet):
        self.queue.append(packet)
        self._pump()

    def _pump(self):
        if self.current is None and self.queue:
            pkt = self.queue[0]
            vc = self.link.allocate_vc(pkt, self, [0])
            if vc is not None:
                self.queue.pop(0)
                self.current = pkt
                self.sent = 0
                self.link.notify_flit_ready(0)
            else:
                self.link.add_alloc_waiter(self._pump)

    def has_flit_ready(self, link, vc):
        return self.current is not None and self.sent < self.current.flits

    def take_flit(self, link, vc):
        self.sent += 1
        pkt = self.current
        head = self.sent == 1
        tail = self.sent == pkt.flits
        if tail:
            self.current = None
            link.sim.schedule(0, self._pump)
        return pkt, head, tail


def data_packet(flits=8, src=0, dst=99, uid_hint=None):
    return Packet(src=src, dst=dst, kind=PacketKind.SCALAR, size_bytes=flits * 4)


class TestCutThrough:
    def test_packet_traverses_pipeline(self):
        sim = Simulator()
        routers, links, entry, sink = line_of_routers(sim, 4)
        feeder = InjectFeeder(entry)
        feeder.send(data_packet())
        sim.run()
        assert len(sink.packets) == 1

    def test_latency_is_linear_in_hops(self):
        results = {}
        for hops in (2, 4, 6):
            sim = Simulator()
            routers, links, entry, sink = line_of_routers(sim, hops)
            InjectFeeder(entry).send(data_packet())
            sim.run()
            results[hops] = sink.head_cycles[sink.packets[0][0].uid]
        # Each extra router adds a constant latency (route_delay + flit time)
        assert results[4] - results[2] == results[6] - results[4]

    def test_consecutive_packets_pipeline(self):
        sim = Simulator()
        routers, links, entry, sink = line_of_routers(sim, 3)
        feeder = InjectFeeder(entry)
        for i in range(3):
            feeder.send(data_packet(src=i))
        sim.run()
        assert len(sink.packets) == 3
        # back-to-back: spacing close to serialisation time (8 flits x 4cy),
        # not the full pipeline latency
        times = [t for _, t in sink.packets]
        assert times[2] - times[1] <= 8 * 4 + 8


class TestStoreAndForward:
    def test_sf_waits_for_whole_packet(self):
        """Store-and-forward adds a full packet serialisation per hop."""
        lat = {}
        for mode in (CUTTHROUGH, STORE_AND_FORWARD):
            sim = Simulator()
            buf = 12 if mode == STORE_AND_FORWARD else 2
            routers, links, entry, sink = line_of_routers(sim, 4, mode=mode, buf=buf)
            InjectFeeder(entry).send(data_packet())
            sim.run()
            lat[mode] = sink.packets[0][1]
        # 3 extra store steps of ~32 cycles each
        assert lat[STORE_AND_FORWARD] >= lat[CUTTHROUGH] + 2 * 32


class TestBlocking:
    def test_wormhole_backpressure_holds_packet_across_routers(self):
        """With 2-flit buffers an 8-flit packet spans several routers; when
        the head stalls (no credits at the sink), upstream links stay busy."""
        sim = Simulator()
        routers, links, entry, sink = line_of_routers(sim, 3)
        # Replace terminal link with a zero-drain sink (never credits).
        class StuckSink(FlitSink):
            def __init__(self):
                self.count = 0
            def accept_flit(self, port, vc, packet, is_head, is_tail):
                self.count += 1
        stuck = StuckSink()
        routers[-1].out_links[0].set_sink(stuck, 0)
        InjectFeeder(entry).send(data_packet())
        sim.run_until(2000)
        # the stuck sink's buffer (64) exceeds the packet; use a tighter one:
        # verify that intermediate buffers hold flits -> occupancy nonzero
        assert stuck.count > 0

    def test_interleaved_flits_error_detected(self):
        sim = Simulator()
        routers, links, entry, sink = line_of_routers(sim, 2)
        unit = routers[0]._input_units[0][0]
        p1, p2 = data_packet(src=1), data_packet(src=2)
        unit.accept_flit(p1, True, False)
        with pytest.raises(RuntimeError):
            unit.accept_flit(p2, False, False)


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Router(Simulator(), 0, eject_route, mode="warp")

    def test_duplicate_port_attach_rejected(self):
        sim = Simulator()
        router = Router(sim, 0, eject_route)
        link = Link(sim, "l", 1, 1, 2, sink=router, sink_port=0)
        router.attach_in_link(0, link)
        with pytest.raises(ValueError):
            router.attach_in_link(0, link)

    def test_duplicate_out_port_rejected(self):
        sim = Simulator()
        router = Router(sim, 0, eject_route)
        link = Link(sim, "l", 1, 1, 2, sink=None, sink_port=0)
        router.attach_out_link(0, link)
        with pytest.raises(ValueError):
            router.attach_out_link(0, link)

    def test_buffered_flits_probe(self):
        sim = Simulator()
        routers, links, entry, sink = line_of_routers(sim, 2)
        assert routers[0].buffered_flits() == 0
