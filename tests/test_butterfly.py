"""Tests for butterfly and multibutterfly topologies."""

import pytest

from repro.networks import build_butterfly, build_network
from repro.sim import Simulator

from conftest import build_with_nics, drain_all, simple_packet


class TestButterfly:
    def test_switch_count(self):
        sim = Simulator()
        net = build_network("butterfly", sim, 64)
        assert len(net.routers) == 3 * 16

    def test_every_path_is_three_router_hops(self):
        """Section 4.1: 'every packet travels only three hops'."""
        sim = Simulator()
        net = build_network("butterfly", sim, 64)
        avg, max_hops = net.hop_stats(sample=200)
        assert avg == max_hops == 4  # 3 switch-to-switch + NIC links

    def test_all_pairs_delivery(self):
        sim, net, nics = build_with_nics("butterfly", 16)
        expected = 0
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    nics[src].try_send(simple_packet(src, dst, flits=2))
                    expected += 1
        assert len(drain_all(sim, nics, expected)) == expected

    def test_delivers_in_order(self):
        sim, net, nics = build_with_nics("butterfly", 64)
        assert net.delivers_in_order
        for i in range(30):
            nics[7].try_send(simple_packet(7, 42, flits=2, pair_seq=i))
        delivered = drain_all(sim, nics, 30)
        assert [p.pair_seq for p in delivered] == list(range(30))

    def test_self_delivery_through_all_stages(self):
        """Even src == some node on its own switch traverses all stages."""
        sim, net, nics = build_with_nics("butterfly", 16)
        nics[0].try_send(simple_packet(0, 1, flits=2))
        assert len(drain_all(sim, nics, 1)) == 1


class TestMultibutterfly:
    def test_dilated_early_stages(self):
        sim = Simulator()
        net = build_network("multibutterfly", sim, 64)
        simb = Simulator()
        plain = build_network("butterfly", simb, 64)
        inter = lambda n: [l for l in n.links if id(l) not in n._nic_link_ids]
        # Dilation doubles the first-stage links only (3 stages: stage0 dilated)
        assert len(inter(net)) > len(inter(plain))

    def test_not_in_order(self):
        sim = Simulator()
        net = build_network("multibutterfly", sim, 64)
        assert not net.delivers_in_order

    def test_all_pairs_delivery(self):
        sim, net, nics = build_with_nics("multibutterfly", 64)
        expected = 0
        for src in range(0, 64, 3):
            for dst in range(0, 64, 7):
                if src != dst:
                    nics[src].try_send(simple_packet(src, dst, flits=2))
                    expected += 1
        assert len(drain_all(sim, nics, expected)) == expected

    def test_alternate_paths_actually_used(self):
        """Under repeated traffic the two dilated copies of a direction both
        carry packets."""
        sim, net, nics = build_with_nics("multibutterfly", 64)
        for _ in range(12):
            nics[0].try_send(simple_packet(0, 63, flits=2))
        drain_all(sim, nics, 12)
        used = [
            l for l in net.links
            if l.name.startswith("bf:0.") and l.packets_carried > 0
        ]
        copies = {name.split(".")[-1] for name in (l.name for l in used)}
        assert copies == {"0", "1"}


class TestValidation:
    def test_bad_dilation_rejected(self):
        with pytest.raises(ValueError):
            build_butterfly(Simulator(), dilation=0)


class TestAdjustableDilationAndRadix:
    """Section 3: "multibutterflies, with adjustable dilation and radix"."""

    def test_dilation_four_delivery(self):
        from repro.sim import Simulator
        from repro.nic import PlainNIC

        sim = Simulator()
        net = build_butterfly(sim, stages=3, k=4, dilation=4)
        nics = net.attach_nics(lambda n: PlainNIC(sim, n, out_capacity=32))
        count = 0
        for src in range(0, 64, 5):
            for dst in range(0, 64, 9):
                if src != dst:
                    nics[src].try_send(simple_packet(src, dst, flits=2))
                    count += 1
        assert len(drain_all(sim, nics, count)) == count

    def test_radix_two_butterfly(self):
        from repro.sim import Simulator
        from repro.nic import PlainNIC

        sim = Simulator()
        net = build_butterfly(sim, stages=4, k=2, dilation=1)  # 16 nodes
        assert net.num_nodes == 16
        nics = net.attach_nics(lambda n: PlainNIC(sim, n, out_capacity=32))
        count = 0
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    nics[src].try_send(simple_packet(src, dst, flits=2))
                    count += 1
        assert len(drain_all(sim, nics, count)) == count

    def test_dilation_exceeding_radix_rejected(self):
        with pytest.raises(ValueError):
            build_butterfly(Simulator(), k=4, dilation=5)
