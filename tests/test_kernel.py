"""Tests for the event kernel: ordering, cancellation, time semantics.

Every semantic test runs under both schedulers (the ``sim`` fixture is
parametrized): the bucket calendar-queue fast path earns its keep only by
being observably identical to the heap baseline.  Bucket-only mechanics
(the event free list, heap/ring merging at the window boundary) get their
own tests below.
"""

import pytest

from repro.sim import SCHEDULERS, Simulator
from repro.sim.kernel import _WINDOW


@pytest.fixture(params=SCHEDULERS)
def sim(request):
    return Simulator(scheduler=request.param)


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError):
        Simulator(scheduler="wheel")


def test_scheduler_is_reported(sim):
    assert sim.scheduler in SCHEDULERS


def test_schedule_and_run_in_order(sim):
    log = []
    sim.schedule(5, log.append, "b")
    sim.schedule(3, log.append, "a")
    sim.schedule(9, log.append, "c")
    sim.run()
    assert log == ["a", "b", "c"]


def test_same_cycle_events_fire_in_scheduling_order(sim):
    log = []
    for tag in range(10):
        sim.schedule(4, log.append, tag)
    sim.run()
    assert log == list(range(10))


def test_now_advances_with_events(sim):
    seen = []
    sim.schedule(7, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [7]


def test_run_until_is_exclusive_of_bound(sim):
    log = []
    sim.schedule(10, log.append, "at10")
    sim.run_until(10)
    assert log == []
    assert sim.now == 10
    sim.run_until(11)
    assert log == ["at10"]


def test_run_until_advances_now_even_without_events(sim):
    sim.run_until(1234)
    assert sim.now == 1234


def test_nested_scheduling_from_callbacks(sim):
    log = []

    def outer():
        log.append(("outer", sim.now))
        sim.schedule(2, inner)

    def inner():
        log.append(("inner", sim.now))

    sim.schedule(1, outer)
    sim.run()
    assert log == [("outer", 1), ("inner", 3)]


def test_schedule_zero_delay_fires_same_cycle_after_current(sim):
    log = []

    def first():
        sim.schedule(0, log.append, "second")
        log.append("first")

    sim.schedule(1, first)
    sim.run()
    assert log == ["first", "second"]


def test_cancelled_event_does_not_fire(sim):
    log = []
    event = sim.schedule(5, log.append, "x")
    event.cancel()
    sim.run()
    assert log == []


def test_cancel_is_idempotent(sim):
    event = sim.schedule(5, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_double_cancel_decrements_live_count_once(sim):
    # A second cancel must be a pure no-op: were it to decrement the
    # kernel's live-event count again, pending_events() would go negative
    # and quiescence detection would lie.
    keep = sim.schedule(5, lambda: None)
    drop = sim.schedule(6, lambda: None)
    drop.cancel()
    drop.cancel()
    drop.cancel()
    assert sim.pending_events() == 1
    keep.cancel()
    assert sim.pending_events() == 0


def test_cancel_after_firing_is_noop(sim):
    log = []
    event = sim.schedule(3, log.append, "fired")
    sim.run()
    assert log == ["fired"]
    event.cancel()  # already fired: must not touch the live count
    assert sim.pending_events() == 0


def test_negative_delay_rejected(sim):
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_post_negative_delay_rejected(sim):
    with pytest.raises(ValueError):
        sim.post(-1, lambda: None)


def test_scheduling_in_past_rejected(sim):
    sim.schedule(5, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(2, lambda: None)


def test_run_max_cycles(sim):
    log = []
    sim.schedule(5, log.append, "early")
    sim.schedule(50, log.append, "late")
    sim.run(max_cycles=10)
    assert log == ["early"]
    assert sim.now == 10


def test_pending_events_counts_uncancelled(sim):
    keep = sim.schedule(5, lambda: None)
    drop = sim.schedule(6, lambda: None)
    drop.cancel()
    assert sim.pending_events() == 1
    keep.cancel()


def test_deterministic_interleaving_across_runs():
    def run_once(scheduler):
        sim = Simulator(scheduler=scheduler)
        log = []
        for i in range(20):
            sim.schedule(i % 3, log.append, i)
        sim.run()
        return log

    runs = [run_once(s) for s in SCHEDULERS for _ in range(2)]
    assert all(run == runs[0] for run in runs)


def test_post_fires_like_schedule(sim):
    log = []
    sim.post(5, log.append, "b")
    sim.post(3, log.append, "a")
    sim.schedule(9, log.append, "c")
    assert sim.pending_events() == 3
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.pending_events() == 0


def test_post_returns_no_handle(sim):
    # Pooled events are recycled after firing; handing one out would make
    # a stale reference able to cancel a later, unrelated occupant.
    assert sim.post(1, lambda: None) is None


# --------------------------------------------------------------------------
# Bucket-scheduler mechanics: heap/ring merge ordering and the free list.
# --------------------------------------------------------------------------

def test_far_event_fires_before_near_event_at_same_cycle():
    # An event lands in the heap only with a >= _WINDOW-cycle lead, i.e. it
    # was scheduled at an earlier simulated time -- lower seq -- than any
    # bucket event for the same cycle.  The merge must honour that.
    for scheduler in SCHEDULERS:
        sim = Simulator(scheduler=scheduler)
        log = []
        target = 2 * _WINDOW
        sim.at(target, log.append, "far")  # heap in bucket mode

        def late_schedule():
            # At _WINDOW + 1, `target` is < _WINDOW away: bucket path.
            sim.at(target, log.append, "near")

        sim.at(_WINDOW + 1, late_schedule)
        sim.run()
        assert log == ["far", "near"], scheduler


def test_events_crossing_the_window_boundary():
    sim = Simulator()
    log = []
    # One event per delay straddling the bucket/heap boundary, scheduled
    # shuffled; they must still fire in time order.
    delays = [_WINDOW - 1, _WINDOW, _WINDOW + 1, 1, 3 * _WINDOW, 0]
    for delay in delays:
        sim.post(delay, log.append, delay)
    sim.run()
    assert log == sorted(delays)


def test_run_until_jump_keeps_ring_consistent():
    # run_until far past the last event leaves now deep in virtual time;
    # the ring indices (cycle & mask) must still resolve correctly after.
    sim = Simulator()
    log = []
    sim.post(3, log.append, "a")
    sim.run_until(10 * _WINDOW + 5)
    sim.post(2, log.append, "b")
    sim.post(_WINDOW + 2, log.append, "c")
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == 11 * _WINDOW + 7


def test_post_recycles_event_objects():
    sim = Simulator()
    sim.post(1, lambda: None)
    sim.run()
    assert len(sim._free) == 1
    recycled = sim._free[0]
    sim.post(1, lambda: None)
    assert not sim._free  # popped for reuse, not reallocated
    sim.run()
    assert sim._free[0] is recycled


def test_heap_mode_does_not_pool():
    # The heap kernel is the preserved baseline: fresh allocation per
    # event, so perf comparisons against it measure the real difference.
    sim = Simulator(scheduler="heap")
    sim.post(1, lambda: None)
    sim.run()
    assert sim._free == []


def test_stale_cancel_cannot_kill_recycled_event():
    # A schedule() handle cancelled after firing must stay a no-op even
    # while the pool churns underneath (the recycled object a stale cancel
    # would have corrupted belongs to someone else now).
    sim = Simulator()
    log = []
    handle = sim.schedule(1, log.append, "a")
    sim.post(1, log.append, "b")
    sim.run()
    sim.post(3, log.append, "c")  # reuses the pooled event
    handle.cancel()
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.pending_events() == 0


def test_free_list_is_bounded():
    from repro.sim.kernel import _FREE_MAX

    sim = Simulator()
    for _ in range(_FREE_MAX + 500):
        sim.post(1, lambda: None)
    sim.run()
    assert len(sim._free) == _FREE_MAX
