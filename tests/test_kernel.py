"""Tests for the event kernel: ordering, cancellation, time semantics."""

import pytest

from repro.sim import Simulator


def test_schedule_and_run_in_order():
    sim = Simulator()
    log = []
    sim.schedule(5, log.append, "b")
    sim.schedule(3, log.append, "a")
    sim.schedule(9, log.append, "c")
    sim.run()
    assert log == ["a", "b", "c"]


def test_same_cycle_events_fire_in_scheduling_order():
    sim = Simulator()
    log = []
    for tag in range(10):
        sim.schedule(4, log.append, tag)
    sim.run()
    assert log == list(range(10))


def test_now_advances_with_events():
    sim = Simulator()
    seen = []
    sim.schedule(7, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [7]


def test_run_until_is_exclusive_of_bound():
    sim = Simulator()
    log = []
    sim.schedule(10, log.append, "at10")
    sim.run_until(10)
    assert log == []
    assert sim.now == 10
    sim.run_until(11)
    assert log == ["at10"]


def test_run_until_advances_now_even_without_events():
    sim = Simulator()
    sim.run_until(1234)
    assert sim.now == 1234


def test_nested_scheduling_from_callbacks():
    sim = Simulator()
    log = []

    def outer():
        log.append(("outer", sim.now))
        sim.schedule(2, inner)

    def inner():
        log.append(("inner", sim.now))

    sim.schedule(1, outer)
    sim.run()
    assert log == [("outer", 1), ("inner", 3)]


def test_schedule_zero_delay_fires_same_cycle_after_current():
    sim = Simulator()
    log = []

    def first():
        sim.schedule(0, log.append, "second")
        log.append("first")

    sim.schedule(1, first)
    sim.run()
    assert log == ["first", "second"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    log = []
    event = sim.schedule(5, log.append, "x")
    event.cancel()
    sim.run()
    assert log == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(5, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_double_cancel_decrements_live_count_once():
    # A second cancel must be a pure no-op: were it to decrement the
    # kernel's live-event count again, pending_events() would go negative
    # and quiescence detection would lie.
    sim = Simulator()
    keep = sim.schedule(5, lambda: None)
    drop = sim.schedule(6, lambda: None)
    drop.cancel()
    drop.cancel()
    drop.cancel()
    assert sim.pending_events() == 1
    keep.cancel()
    assert sim.pending_events() == 0


def test_cancel_after_firing_is_noop():
    sim = Simulator()
    log = []
    event = sim.schedule(3, log.append, "fired")
    sim.run()
    assert log == ["fired"]
    event.cancel()  # already fired: must not touch the live count
    assert sim.pending_events() == 0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_scheduling_in_past_rejected():
    sim = Simulator()
    sim.schedule(5, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(2, lambda: None)


def test_run_max_cycles():
    sim = Simulator()
    log = []
    sim.schedule(5, log.append, "early")
    sim.schedule(50, log.append, "late")
    sim.run(max_cycles=10)
    assert log == ["early"]
    assert sim.now == 10


def test_pending_events_counts_uncancelled():
    sim = Simulator()
    keep = sim.schedule(5, lambda: None)
    drop = sim.schedule(6, lambda: None)
    drop.cancel()
    assert sim.pending_events() == 1


def test_deterministic_interleaving_across_runs():
    def run_once():
        sim = Simulator()
        log = []
        for i in range(20):
            sim.schedule(i % 3, log.append, i)
        sim.run()
        return log

    assert run_once() == run_once()
