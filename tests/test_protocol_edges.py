"""Edge cases of the NIFDY protocol and the link/NIC machinery that the
main protocol tests don't reach."""

import pytest

from repro.nic import NifdyNIC, NifdyParams
from repro.packets import PacketKind
from repro.sim import Simulator

from conftest import build_with_nics, drain_all, simple_packet
from test_nifdy_protocol import feed, sample_invariant, stream


class TestPoolBackpressure:
    def test_try_send_rejected_when_pool_full(self):
        params = NifdyParams(opt_size=2, pool_size=2, dialogs=0, window=0)
        sim, net, nics = build_with_nics("mesh2d", 4, nic="nifdy", params=params)
        accepted = 0
        for i in range(8):
            accepted += nics[0].try_send(simple_packet(0, 3, pair_seq=i))
        # pool holds 2, and a couple may drain to the wire immediately
        assert accepted < 8
        assert not nics[0].can_send() or nics[0].pool.free_slots > 0

    def test_pending_out_accounting(self):
        params = NifdyParams(opt_size=2, pool_size=4, dialogs=0, window=0)
        sim, net, nics = build_with_nics("mesh2d", 4, nic="nifdy", params=params)
        for i in range(3):
            nics[0].try_send(simple_packet(0, 3, pair_seq=i))
        assert nics[0].pending_out >= 1


class TestArrivalsFifo:
    def test_capacity_two_enforced(self):
        """With nobody receiving, at most arrivals_capacity packets sit in
        the FIFO; the rest stall in the network (end-point congestion)."""
        params = NifdyParams(opt_size=8, pool_size=8, dialogs=0, window=0,
                             arrivals_capacity=2)
        sim, net, nics = build_with_nics("fattree", 16, nic="nifdy", params=params)
        # several senders target node 0, which never polls
        for src in (1, 2, 3, 5, 6, 7):
            feed(sim, nics[src], stream(src, 0, 2, {"bulk_threshold": 10 ** 9}))
        sim.run_until(60_000)
        assert len(nics[0]._arrivals) <= 2
        # once polled, everything drains
        delivered = drain_all(sim, nics, 12)
        assert len(delivered) == 12


class TestBulkEdgeCases:
    def test_message_of_exactly_window_packets(self):
        params = NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=4)
        sim, net, nics = build_with_nics("fattree", 16, nic="nifdy", params=params)
        feed(sim, nics[0], stream(0, 9, 4, {"bulk_threshold": 4}))
        delivered = drain_all(sim, nics, 4)
        assert [p.pair_seq for p in delivered] == list(range(4))
        sim.run_until(sim.now + 10_000)
        assert nics[9]._rx_dialogs == {}

    def test_back_to_back_messages_same_destination(self):
        """Each message exits its dialog; the next re-requests.  Ordering
        must hold across the dialog teardown boundary."""
        from repro.traffic import PacketFactory

        params = NifdyParams(opt_size=4, pool_size=16, dialogs=1, window=4)
        sim, net, nics = build_with_nics("multibutterfly", 64, nic="nifdy",
                                         params=params)
        factory = PacketFactory(0, bulk_threshold=4)
        packets = []
        for _ in range(3):  # three 6-packet messages to the same node
            packets.extend(factory.message(63, 6))
        feed(sim, nics[0], packets)
        delivered = drain_all(sim, nics, 18)
        assert [p.pair_seq for p in delivered] == list(range(18))
        assert nics[63].bulk_grants >= 2  # dialog cycled

    def test_dialog_slots_cycle_between_senders(self):
        """D=1: after sender A's dialog closes, sender B can get the slot."""
        params = NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=4)
        sim, net, nics = build_with_nics("fattree", 16, nic="nifdy", params=params)
        feed(sim, nics[1], stream(1, 0, 8, {"bulk_threshold": 4}))
        delivered = drain_all(sim, nics, 8)
        assert len(delivered) == 8
        sim.run_until(sim.now + 10_000)
        feed(sim, nics[2], stream(2, 0, 8, {"bulk_threshold": 4}))
        delivered = drain_all(sim, nics, 8)
        assert len(delivered) == 8
        assert nics[0].bulk_grants == 2
        assert nics[0].bulk_rejects == 0

    def test_interleaved_bulk_and_scalar_to_different_nodes(self):
        """A bulk dialog to one node runs concurrently with scalar traffic
        to others ('it can send packets in non-bulk mode to other
        destinations concurrently with a bulk dialog')."""
        params = NifdyParams(opt_size=8, pool_size=16, dialogs=1, window=4)
        sim, net, nics = build_with_nics("fattree", 16, nic="nifdy", params=params)
        packets = stream(0, 9, 12, {"bulk_threshold": 4})
        for dst in (1, 5, 13):
            packets += stream(0, dst, 2, {"bulk_threshold": 10 ** 9})
        feed(sim, nics[0], packets)
        delivered = drain_all(sim, nics, 18)
        assert len(delivered) == 18
        assert nics[0].bulk_sent > 0 and nics[0].scalar_sent > 3

    def test_window_two_minimum(self):
        params = NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=2)
        sim, net, nics = build_with_nics("fattree", 16, nic="nifdy", params=params)
        feed(sim, nics[0], stream(0, 9, 10, {"bulk_threshold": 2}))
        delivered = drain_all(sim, nics, 10)
        assert [p.pair_seq for p in delivered] == list(range(10))


class TestAckMachinery:
    def test_acks_interleave_with_data_on_the_wire(self):
        """Acks (reply net) and data (request net) share the injection wire
        flit by flit: a long data stream must not starve acks."""
        params = NifdyParams(opt_size=8, pool_size=8, dialogs=1, window=8)
        sim, net, nics = build_with_nics("mesh2d", 4, nic="nifdy", params=params)
        # node 0 streams bulk to 3 while 3 streams bulk to 0: both wires
        # carry data + acks simultaneously.
        feed(sim, nics[0], stream(0, 3, 20, {"bulk_threshold": 2}))
        feed(sim, nics[3], stream(3, 0, 20, {"bulk_threshold": 2}))
        delivered = drain_all(sim, nics, 40)
        assert len(delivered) == 40

    def test_control_packets_not_delivered_to_processor(self):
        """Header-only exit packets are consumed by the NIC."""
        params = NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=4)
        sim, net, nics = build_with_nics("mesh2d", 4, nic="nifdy", params=params)
        pkt = stream(0, 3, 1, {"bulk_threshold": 1})[0]  # orphan-grant path
        feed(sim, nics[0], [pkt])
        delivered = drain_all(sim, nics, 1)
        sim.run_until(sim.now + 20_000)
        assert len(delivered) == 1
        assert all(not p.control_only for p in delivered)


class TestOptInvariantUnderLoad:
    def test_outstanding_never_exceeds_o_under_chaos(self):
        params = NifdyParams(opt_size=3, pool_size=8, dialogs=0, window=0)
        sim, net, nics = build_with_nics("torus2d", 16, nic="nifdy", params=params)
        packets = []
        for dst in (1, 3, 5, 7, 9, 11):
            packets.extend(stream(0, dst, 3, {"bulk_threshold": 10 ** 9}))
        feed(sim, nics[0], packets)
        series = sample_invariant(sim, lambda: nics[0].outstanding, every=11,
                                  until=120_000)
        delivered = drain_all(sim, nics, 18)
        assert len(delivered) == 18
        assert max(series) <= 3


class TestRunnerFeatures:
    def test_active_nodes_idles_the_rest(self):
        from repro.experiments import ExperimentSpec, cshift, run_experiment
        from repro.traffic import CShiftConfig

        result = run_experiment(ExperimentSpec(
            network="fattree", traffic=cshift(CShiftConfig(words_per_phase=8)),
            num_nodes=16, active_nodes=4, nic_mode="nifdy", seed=1,
        ))
        assert result.completed
        # only the active nodes sent anything
        senders = [p for p in result.processors if p.packets_sent > 0]
        assert len(senders) <= 4
        assert all(p.node_id < 4 for p in senders)

    def test_active_nodes_validated(self):
        from repro.experiments import (
            ExperimentSpec, heavy_synthetic, run_experiment,
        )

        with pytest.raises(ValueError):
            run_experiment(ExperimentSpec(
                network="fattree", traffic=heavy_synthetic(), num_nodes=16,
                active_nodes=0, run_cycles=100,
            ))

    def test_network_overrides_forwarded(self):
        from repro.experiments import (
            ExperimentSpec, heavy_synthetic, run_experiment,
        )

        result = run_experiment(ExperimentSpec(
            network="mesh2d", traffic=heavy_synthetic(), num_nodes=16,
            nic_mode="plain", run_cycles=2000,
            network_overrides={"vcs_per_net": 2},
        ))
        assert result.delivered > 0

    def test_sends_identical_across_nic_modes(self):
        """Section 3's determinism guarantee, end to end: the traffic each
        node OFFERS is byte-identical whatever NIC is under test (delivery
        differs, offered load does not)."""
        from repro.experiments import (
            ExperimentSpec, heavy_synthetic, run_experiment,
        )

        per_mode = {}
        for mode in ("plain", "nifdy"):
            result = run_experiment(ExperimentSpec(
                network="butterfly", traffic=heavy_synthetic(), num_nodes=16,
                nic_mode=mode, run_cycles=6000, seed=5,
            ))
            drv = result.drivers[0]
            per_mode[mode] = (drv.phase, drv._sent_this_phase)
        # drivers advance deterministically; phase progress may differ by
        # backpressure, but the generated sequence for a given progress
        # point is identical -- verified at the driver level in
        # test_traffic; here we just confirm both configs ran the same
        # workload objects without error.
        assert all(isinstance(v, tuple) for v in per_mode.values())


class TestNetworkStructure:
    def test_cm5_router_levels(self):
        from repro.networks import build_network

        net = build_network("cm5", Simulator(), 64)
        # 16 leaves + 8 mid + 4 top
        assert len(net.routers) == 28

    def test_fattree_bisection_value(self):
        from repro.networks import build_network
        from repro.nic import PlainNIC

        sim = Simulator()
        net = build_network("fattree", sim, 64)
        net.attach_nics(lambda n: PlainNIC(sim, n))
        # 16 top routers x 2... max-flow across the balanced cut, byte links
        assert net.bisection_bandwidth() == pytest.approx(32.0)

    def test_torus_wrap_shortens_distance(self):
        from repro.networks import build_network

        net = build_network("torus2d", Simulator(), 64)
        assert net.min_hops(0, 56) == net.min_hops(0, 8)  # +-1 ring step
