"""Tests for the analysis portal: figure builders, plotting, the history
archive, report generation from a fixture results tree, determinism, and
the ``repro report`` / ``--json`` CLI surfaces."""

import json

import pytest

from repro.obs import EventBus
from repro.report import (
    FIGURES,
    BenchRecord,
    BenchSummary,
    CampaignRecord,
    ChaosArtifact,
    EngineStats,
    HistorySnapshot,
    append_snapshot,
    generate_report,
    load_history,
    load_record,
    snapshot_from_summary,
    trajectory_figures,
    write_record_atomic,
)
from repro.report.plotting import nice_ticks, render_svg


# ------------------------------------------------------------ fixture tree

def _bench(name, data, wall=1.0, engine=None):
    return BenchRecord(bench=name, bench_cycles=20_000, bench_seed=11,
                       wall_seconds=wall, data=data, engine=engine)


def _snapshot(i):
    return HistorySnapshot(
        timestamp=f"2026080{i}T120000Z", git_sha=f"sha{i:04d}",
        bench_count=2, session_benches=["test_fig2_heavy_synthetic"],
        bench_wall={"test_fig2_heavy_synthetic": 30.0 + i,
                    "test_kernel_events_per_sec": 11.0},
        kernel_events_per_sec={"heap": 50_000.0 + 1000 * i,
                               "bucket": 80_000.0 + 2000 * i},
        kernel_speedup=1.5 + 0.01 * i, bench_cycles=20_000,
    )


@pytest.fixture
def results_tree(tmp_path):
    """A miniature benchmarks/results/ with every artifact class."""
    write_record_atomic(tmp_path / "test_fig2_heavy_synthetic.json", _bench(
        "test_fig2_heavy_synthetic",
        {"delivered": {
            "mesh2d": {"plain": 3000, "buffered": 3100, "nifdy-": 3050},
            "fattree": {"plain": 4000, "buffered": 4800, "nifdy-": 5200},
        }},
        wall=30.0,
        engine=EngineStats(points=24, cache_hits=20, executed=4,
                           hit_rate=0.83, wall_s=4.0),
    ))
    write_record_atomic(tmp_path / "test_table2_calibration.json", _bench(
        "test_table2_calibration",
        {"latency_fits": {"mesh2d": [4.1, 28.0], "fattree": [5.0, 37.0],
                          "cm5": [16.5, 40.0]},
         "software_costs": {"active message send": 9}},
        wall=0.8,
    ))
    write_record_atomic(tmp_path / "test_kernel_events_per_sec.json", _bench(
        "test_kernel_events_per_sec",
        {"kernel_perf": {
            "workload": {"network": "fattree", "cycles": 20_000},
            "kernels": {"heap": {"events_per_sec": 50_000.0},
                        "bucket": {"events_per_sec": 80_000.0}},
            "speedup": 1.6, "parity_ok": True,
        }},
        wall=11.0,
    ))
    # a bench whose archive predates structured recording
    write_record_atomic(tmp_path / "test_fig6_cshift_throughput.json",
                        _bench("test_fig6_cshift_throughput", {}))
    (tmp_path / "test_fig6_cshift_throughput.txt").write_text(
        "Figure 6 text archive\nwords/kcycle table here\n"
    )
    write_record_atomic(
        tmp_path / "chaos" / "chaos-001.json",
        ChaosArtifact(failure="invariant:exactly_once", detail="dup uid 9",
                      trial=4, original_events=3, shrunk_events=1,
                      shrink_probes=17),
    )
    write_record_atomic(
        tmp_path / "campaigns" / "deadbeef0123.json",
        CampaignRecord(
            campaign_id="deadbeef0123", executor="subprocess",
            policy={"retries": 2},
            points=[{"state": "done"}, {"state": "poisoned"}],
            stats={"points": 2, "executed": 1, "resumed": 1,
                   "retries": 3, "worker_deaths": 4, "poisoned": 1},
        ),
    )
    for i in range(3):
        append_snapshot(tmp_path, _snapshot(i))
    return tmp_path


class TestFigureBuilders:
    def test_registry_covers_every_paper_artifact(self):
        names = [spec.name for spec in FIGURES]
        assert names == ["fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                         "fig8", "fig9", "table2", "table3", "collectives"]

    def test_missing_record_builds_missing_figure(self):
        for spec in FIGURES:
            fig = spec.build(spec, None)
            assert fig.missing
            assert spec.bench in fig.missing

    def test_fig2_builder_checks_and_overlays(self):
        spec = next(s for s in FIGURES if s.name == "fig2")
        fig = spec.build(spec, _bench(spec.bench, {"delivered": {
            "mesh2d": {"plain": 100, "buffered": 110, "nifdy-": 105},
            "torus2d": {"plain": 100, "buffered": 140, "nifdy-": 160},
        }}))
        assert not fig.missing
        assert [s.label for s in fig.series] == [
            "no NIFDY", "buffers only", "NIFDY"]
        assert fig.paper_refs and fig.fidelity
        assert all(check.ok for check in fig.fidelity)

    def test_table2_overlays_paper_formulas(self):
        spec = next(s for s in FIGURES if s.name == "table2")
        fig = spec.build(spec, _bench(spec.bench, {
            "latency_fits": {"mesh2d": [4.0, 28.0], "fattree": [5.2, 37.0]},
        }))
        labels = [s.label for s in fig.series]
        assert any("paper: 4d + 14" in lab for lab in labels)
        assert any("paper: 5d + 2" in lab for lab in labels)
        assert all(check.ok for check in fig.fidelity)

    def test_collectives_builder_checks_and_table(self):
        spec = next(s for s in FIGURES if s.name == "collectives")
        fig = spec.build(spec, _bench(spec.bench, {
            "barrier_latency_mean": {"host": 293.1, "nic": 483.4},
            "barrier_latency_p99": {"host": 998, "nic": 1210},
            "barrier_latency_max": {"host": 998, "nic": 1210},
            "cycles": {"host": 19_000, "nic": 19_000},
            "violations": {"host": 0, "nic": 0},
            "collectives": {"coll_completed": 8, "coll_contribs_sent": 120,
                            "coll_releases_sent": 120, "coll_retransmits": 0,
                            "coll_duplicates": 0},
        }))
        assert not fig.missing
        assert [s.label for s in fig.series] == ["mean", "p99"]
        assert fig.categories == ["host", "nic"]
        assert all(check.ok for check in fig.fidelity)
        assert fig.table and fig.table[0][0] == "barrier"

    def test_collectives_builder_flags_violations(self):
        spec = next(s for s in FIGURES if s.name == "collectives")
        fig = spec.build(spec, _bench(spec.bench, {
            "barrier_latency_mean": {"host": 300.0, "nic": 500.0},
            "barrier_latency_p99": {"host": 900, "nic": 1100},
            "violations": {"host": 0, "nic": 2},
        }))
        first = fig.fidelity[0]
        assert not first.ok and first.measured == 2.0

    def test_fidelity_delta_sign(self):
        spec = next(s for s in FIGURES if s.name == "table2")
        fig = spec.build(spec, _bench(spec.bench, {
            "latency_fits": {"mesh2d": [6.0, 28.0]},  # way off the paper
        }))
        check = fig.fidelity[0]
        assert not check.ok
        assert check.delta == pytest.approx(2.0)


class TestPlotting:
    def test_nice_ticks_are_round_and_cover(self):
        ticks = nice_ticks(0.0, 97.0)
        assert ticks[0] <= 0.0 + 1e-9 and ticks[-1] <= 97.0 + 1e-9
        assert all(t == round(t, 10) for t in ticks)

    def test_svg_is_deterministic_and_wellformed(self):
        spec = next(s for s in FIGURES if s.name == "fig2")
        fig = spec.build(spec, _bench(spec.bench, {"delivered": {
            "mesh2d": {"plain": 100, "buffered": 110, "nifdy-": 120},
        }}))
        one, two = render_svg(fig), render_svg(fig)
        assert one == two
        assert one.startswith("<svg ") and one.rstrip().endswith("</svg>")
        assert "<rect" in one          # bars
        assert "stroke-dasharray" not in one or fig.paper_refs

    def test_log_scale_series_render(self):
        spec = next(s for s in FIGURES if s.name == "fig9")
        fig = spec.build(spec, _bench(spec.bench, {
            "scan_cycles": {
                "fattree/plain/no-delay": 800_000,
                "fattree/plain/delay": 100_000,
                "fattree/nifdy/no-delay": 64_000,
                "fattree/nifdy/delay": 70_000,
            },
            "coalesce_cycles": {"plain": 1000, "nifdy": 1000},
        }))
        assert fig.log_y
        svg = render_svg(fig)
        assert "<svg " in svg


class TestHistory:
    def test_append_never_clobbers(self, tmp_path):
        snap = _snapshot(1)
        first = append_snapshot(tmp_path, snap)
        second = append_snapshot(tmp_path, snap)  # same ts + sha
        assert first != second
        assert len(load_history(tmp_path)) == 2

    def test_load_orders_by_timestamp(self, tmp_path):
        for i in (2, 0, 1):
            append_snapshot(tmp_path, _snapshot(i))
        shas = [s.git_sha for s in load_history(tmp_path)]
        assert shas == ["sha0000", "sha0001", "sha0002"]

    def test_snapshot_from_summary(self):
        summary = BenchSummary(
            benches={"test_a": _bench("test_a", {}, wall=2.0)},
            kernel=load_record({
                "workload": {}, "kernels": {
                    "heap": {"events_per_sec": 10.0},
                    "bucket": {"events_per_sec": 15.0}},
                "parity_ok": True,
            }),
        )
        snap = snapshot_from_summary(summary, ["test_a"], sha="abcd123",
                                     timestamp="20260808T000000Z")
        assert snap.git_sha == "abcd123"
        assert snap.bench_wall == {"test_a": 2.0}
        assert snap.kernel_events_per_sec == {"heap": 10.0, "bucket": 15.0}
        assert snap.kernel_speedup == 1.5  # computed by the v0 migration

    def test_snapshot_rolls_up_farm_campaigns(self):
        summary = BenchSummary(campaigns={
            "c1": CampaignRecord(
                campaign_id="c1", executor="pool",
                points=[{"state": "done"}],
                stats={"points": 1, "retries": 2, "worker_deaths": 1,
                       "poisoned": 0, "resumed": 1},
            ),
            "c2": CampaignRecord(
                campaign_id="c2", executor="subprocess",
                points=[{"state": "poisoned"}],
                stats={"points": 1, "retries": 1, "worker_deaths": 3,
                       "poisoned": 1, "resumed": 0},
            ),
        })
        snap = snapshot_from_summary(summary, timestamp="20260808T000000Z",
                                     sha="abc")
        assert snap.farm == {"campaigns": 2, "points": 2, "retries": 3,
                             "worker_deaths": 4, "poisoned": 1, "resumed": 1}
        # and without campaigns the field stays empty (v0 snapshots load)
        assert snapshot_from_summary(BenchSummary(), sha="abc",
                                     timestamp="20260808T000001Z").farm == {}

    def test_trajectory_needs_two_points(self):
        assert trajectory_figures([_snapshot(0)]) == []

    def test_trajectory_from_three_snapshots(self):
        figures = trajectory_figures([_snapshot(i) for i in range(3)])
        names = [fig.name for fig in figures]
        assert names == ["trajectory_kernel", "trajectory_wall"]
        kernel = figures[0]
        assert [s.label for s in kernel.series] == ["bucket", "heap"]
        assert all(len(s.ys) == 3 for s in kernel.series)
        assert kernel.series[0].ys == [80_000.0, 82_000.0, 84_000.0]
        wall = figures[1]
        assert wall.series[0].label == "total (all benches)"
        assert wall.series[0].ys == [41.0, 42.0, 43.0]


class TestGenerateReport:
    def test_full_report_from_fixture_tree(self, results_tree, tmp_path):
        out = tmp_path / "report"
        result = generate_report(results_tree, out)
        assert (out / "REPORT.md").is_file()
        for spec in FIGURES:
            assert (out / f"{spec.name}.md").is_file()
        # figures with data got plots; the trajectory charts rendered too
        assert (out / "figures" / "fig2.svg").is_file()
        assert (out / "figures" / "table2.svg").is_file()
        assert (out / "figures" / "trajectory_kernel.svg").is_file()
        assert (out / "figures" / "trajectory_wall.svg").is_file()
        assert result.history_points == 3
        assert result.figures_rendered >= 4  # fig2, table2 + 2 trajectories
        index = (out / "REPORT.md").read_text()
        assert "Fidelity dashboard" in index
        assert "trajectory_kernel" in index
        # run health surfaces engine stats, farm campaigns, the chaos rollup
        assert "cache hits" in index
        assert "deadbeef0123" in index  # the farm campaigns table
        assert "invariant: 1" in index
        assert "1.60x" in index  # kernel speedup

    def test_missing_figure_embeds_text_archive(self, results_tree, tmp_path):
        out = tmp_path / "report"
        generate_report(results_tree, out)
        page = (out / "fig6.md").read_text()
        assert "Figure unavailable" in page
        assert "words/kcycle table here" in page

    def test_deterministic_output(self, results_tree, tmp_path):
        out_a, out_b = tmp_path / "a", tmp_path / "b"
        generate_report(results_tree, out_a)
        generate_report(results_tree, out_b)
        files_a = sorted(p.relative_to(out_a) for p in out_a.rglob("*")
                         if p.is_file())
        files_b = sorted(p.relative_to(out_b) for p in out_b.rglob("*")
                         if p.is_file())
        assert files_a == files_b
        for rel in files_a:
            assert (out_a / rel).read_bytes() == (out_b / rel).read_bytes(), rel

    def test_bus_progress_events(self, results_tree, tmp_path):
        bus = EventBus()
        pages, done = [], []
        bus.subscribe("report_page", lambda e: pages.append(e.info))
        bus.subscribe("report_done", lambda e: done.append(e.info))
        generate_report(results_tree, tmp_path / "report", bus=bus)
        assert len(pages) == len(FIGURES)
        assert "fig2.md" in pages
        assert len(done) == 1 and done[0].endswith("REPORT.md")

    def test_html_format(self, results_tree, tmp_path):
        out = tmp_path / "report"
        result = generate_report(results_tree, out, fmt="html")
        assert result.index.name == "REPORT.html"
        html = result.index.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<table" in html and "fig2.html" in html
        assert (out / "fig2.html").is_file()

    def test_unknown_format_rejected(self, results_tree, tmp_path):
        with pytest.raises(ValueError):
            generate_report(results_tree, tmp_path / "r", fmt="pdf")

    def test_empty_tree_still_reports(self, tmp_path):
        result = generate_report(tmp_path / "nothing", tmp_path / "report")
        assert result.index.is_file()
        assert result.figures_rendered == 0
        assert len(result.figures_missing) == len(FIGURES)


class TestCliJson:
    def test_report_command(self, results_tree, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "portal"
        code = main(["report", "--results", str(results_tree),
                     "--out", str(out), "--quiet"])
        assert code == 0
        assert (out / "REPORT.md").is_file()
        stdout = capsys.readouterr().out
        assert "figures rendered" in stdout
        assert "history snapshots: 3" in stdout

    def test_run_json_emits_schema_doc(self, capsys):
        from repro.cli import main
        from repro.report.schema import RunStats

        code = main(["run", "--network", "mesh2d", "--traffic", "heavy",
                     "--nodes", "16", "--cycles", "3000", "--json"])
        assert code == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)  # stdout is ONLY the document
        assert doc["kind"] == "repro-run"
        record = load_record(doc)
        assert isinstance(record, RunStats)
        assert record.delivered > 0
        assert "packets delivered" in captured.err  # human stats moved

    def test_sweep_json_emits_schema_doc(self, tmp_path, capsys):
        from repro.cli import main
        from repro.report.schema import SweepRecord

        code = main(["sweep", "--network", "mesh2d", "--kind", "load",
                     "--gaps", "800,0", "--cycles", "2000", "--nodes", "16",
                     "--quiet", "--json",
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        captured = capsys.readouterr()
        record = load_record(json.loads(captured.out))
        assert isinstance(record, SweepRecord)
        assert record.sweep == "load"
        assert len(record.points) == 2
        assert record.engine.points == 2
        assert "Offered-load sweep" in captured.err  # table moved to stderr
