"""Tests for the unified instrumentation layer (``repro.obs``).

The load-bearing guarantees: instrumentation must not change what the
simulation does (same seed => same results, observed or not), every hook
consumer must see every event exactly once even when several are chained,
and the exported JSON must reconcile with the collector's accounting.
"""

import json

import pytest

from repro.experiments import ExperimentSpec, heavy_synthetic, run_experiment
from repro.faults import FaultPlan
from repro.metrics import LatencyHistogram, MetricsCollector, PacketTracer
from repro.obs import (
    EventBus,
    EventKind,
    Observability,
    ObsEvent,
    chrome_trace,
    metrics_json,
)
from repro.sim import Simulator


def run_small(observe=None, seed=3, cycles=3000, **kw):
    return run_experiment(ExperimentSpec(
        network="fattree", traffic=heavy_synthetic(), num_nodes=16,
        nic_mode="nifdy", run_cycles=cycles, seed=seed, observe=observe, **kw,
    ))


class TestEventBus:
    def test_counts_without_subscribers(self):
        bus = EventBus()
        bus.emit(10, EventKind.INJECT, 0, uid=1)
        bus.emit(11, EventKind.INJECT, 0, uid=2)
        bus.emit(12, EventKind.EJECT, 1, uid=1)
        assert bus.count(EventKind.INJECT) == 2
        assert bus.count(EventKind.EJECT) == 1
        assert bus.total() == 3
        assert bus.events == []  # no buffering unless asked

    def test_subscribe_by_kind_and_wildcard(self):
        bus = EventBus()
        by_kind, all_events = [], []
        bus.subscribe(EventKind.OPT_FULL, by_kind.append)
        bus.subscribe(None, all_events.append)
        bus.emit(5, EventKind.OPT_FULL, 2, dst=7)
        bus.emit(6, EventKind.INJECT, 2)
        assert [e.kind for e in by_kind] == [EventKind.OPT_FULL]
        assert [e.kind for e in all_events] == [EventKind.OPT_FULL,
                                                EventKind.INJECT]
        assert by_kind[0] == ObsEvent(5, EventKind.OPT_FULL, 2, -1, -1, 7, None)

    def test_unknown_kind_rejected(self):
        bus = EventBus()
        with pytest.raises(ValueError):
            bus.subscribe("not_a_kind", lambda e: None)

    def test_keep_events_is_bounded(self):
        bus = EventBus(keep_events=3)
        for i in range(5):
            bus.emit(i, EventKind.INJECT, 0, uid=i)
        assert len(bus.events) == 3
        assert bus.dropped_events == 2
        assert bus.count(EventKind.INJECT) == 5  # counting is never capped

    def test_attach_and_detach(self):
        class Thing:
            obs = None

        a, b = Thing(), Thing()
        bus = EventBus()
        bus.attach([a, b], None)
        assert a.obs is bus and b.obs is bus
        bus.detach_all()
        assert a.obs is None and b.obs is None


class TestLatencyHistogram:
    def test_bucket_edges(self):
        hist = LatencyHistogram()
        for v in (0, 1, 2, 3, 4, 7, 8, 1023, 1024):
            hist.note(v)
        labels = dict(hist.rows())
        assert labels["0-1"] == 2          # 0 and 1 share bucket 0
        assert labels["2-3"] == 2
        assert labels["4-7"] == 2          # 4 and 7 bracket bucket 2
        assert labels["8-15"] == 1
        assert labels["512-1023"] == 1     # 1023 is the top of its bucket
        assert labels["1024-2047"] == 1    # 1024 starts the next
        assert hist.count == 9
        assert hist.maximum == 1024

    def test_exact_mean_and_max(self):
        hist = LatencyHistogram()
        for v in (10, 20, 60):
            hist.note(v)
        assert hist.mean == 30.0
        assert hist.maximum == 60

    def test_percentiles_are_bucket_upper_bounds(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.note(4)      # bucket 4-7
        hist.note(1000)       # bucket 512-1023
        assert hist.p50 == 7
        assert hist.p90 == 7
        assert hist.percentile(1.0) == 1000  # clamped to the exact max
        assert hist.p99 == 7  # the 99th sample is still in the low bucket

    def test_empty_and_negative(self):
        hist = LatencyHistogram()
        assert hist.p50 == 0 and hist.mean == 0.0
        with pytest.raises(ValueError):
            hist.note(-1)
        with pytest.raises(ValueError):
            hist.percentile(0.0)

    def test_to_dict_round_trips_through_json(self):
        hist = LatencyHistogram()
        hist.note(5)
        doc = json.loads(json.dumps(hist.to_dict()))
        assert doc["count"] == 1 and doc["max"] == 5


class TestHookComposition:
    """Collector, tracer, and event bus chained on the same NICs must each
    see every lifecycle event exactly once."""

    def test_all_three_consumers_agree(self):
        observe = Observability(events=True, trace=True)
        result = run_small(observe)
        metrics, bus, tracer = result.metrics, observe.bus, observe.tracer
        assert result.delivered > 0
        # The collector's counts are the ground truth...
        assert metrics.delivered == result.delivered
        # ...the bus counted the same inject/accept stream...
        assert bus.count(EventKind.ACCEPT) == metrics.delivered
        assert bus.count(EventKind.INJECT) == metrics.injected
        # ...and the tracer recorded the same packets.
        accepted = [t for t in tracer.traces.values() if t.accepted >= 0]
        injected = [t for t in tracer.traces.values() if t.injected >= 0]
        assert len(accepted) == metrics.delivered
        assert len(injected) == metrics.injected

    def test_observation_does_not_perturb_the_run(self):
        bare = run_small(None)
        observe = Observability(
            events=True, trace=True, sample_interval=250, profile=True,
        )
        watched = run_small(observe)
        assert watched.delivered == bare.delivered
        assert watched.sent == bare.sent
        assert watched.cycles == bare.cycles
        assert watched.metrics.network_latency.total == \
            bare.metrics.network_latency.total

    def test_eject_recorded_between_inject_and_accept(self):
        observe = Observability(trace=True, events=False)
        result = run_small(observe)
        done = [t for t in observe.tracer.traces.values() if t.accepted >= 0]
        assert done
        for t in done:
            assert t.injected <= t.ejected <= t.accepted
            assert t.flight_time == t.ejected - t.injected

    def test_abandon_seen_by_collector_tracer_and_bus(self):
        plan = FaultPlan.from_shorthand(["fail@200-100000:link=*"])
        observe = Observability(events=True, trace=True)
        result = run_experiment(ExperimentSpec(
            network="fattree", traffic=heavy_synthetic(), num_nodes=16,
            nic_mode="nifdy", run_cycles=60_000, seed=3, fault_plan=plan,
            retx_timeout=200, max_retries=3, observe=observe,
        ))
        metrics = result.metrics
        assert metrics.abandoned > 0
        traced = [
            t for t in observe.tracer.traces.values() if t.abandoned >= 0
        ]
        # Collector skips write-offs whose original was delivered; the
        # tracer and bus record every abandonment the NICs performed.
        nic_abandoned = sum(n.packets_abandoned for n in result.nics)
        assert observe.bus.count(EventKind.ABANDON) == nic_abandoned
        assert len(traced) == nic_abandoned
        assert nic_abandoned >= metrics.abandoned
        # Accounting still reconciles after the losses.
        assert metrics.sent == \
            metrics.delivered + metrics.abandoned + metrics.in_flight

    def test_tracer_chains_preexisting_hooks_by_hand(self):
        # Belt and braces: wire a collector then a tracer manually (the
        # runner does this internally) and check neither starves the other.
        from tests.conftest import build_with_nics, drain_all, simple_packet

        sim, net, nics = build_with_nics("mesh2d", 4, nic="nifdy")
        collector = MetricsCollector(4)
        collector.attach(nics, [])
        tracer = PacketTracer()
        tracer.attach(nics)
        pkt = simple_packet(0, 3, created_cycle=0)
        nics[0].try_send(pkt)
        delivered = drain_all(sim, nics, expected=1)
        assert len(delivered) == 1
        assert collector.delivered == 1
        trace = tracer.traces[pkt.uid]
        assert trace.injected >= 0 and trace.ejected >= 0
        assert trace.accepted >= 0


class TestSampler:
    def test_sampler_deterministic_across_identical_runs(self):
        def sample_run():
            observe = Observability(events=False, sample_interval=200)
            run_small(observe, seed=7)
            return observe.sampler.to_dict()

        assert sample_run() == sample_run()

    def test_sampler_series_shapes(self):
        observe = Observability(events=False, sample_interval=500)
        result = run_small(observe, cycles=2500)
        s = observe.sampler
        # run_until fires events strictly below the horizon, so the final
        # tick at cycle 2500 never runs: cycle 0 plus four interior ticks.
        assert len(s) == 5
        assert all(len(row) == result.num_nodes for row in s.pool_occupancy)
        assert s.peak_in_network() > 0
        assert 0.0 < s.mean_link_busy() <= 1.0
        doc = s.to_dict()
        assert doc["cycles"] == [0, 500, 1000, 1500, 2000]
        assert len(doc["link_busy_mean"]) == len(doc["cycles"])

    def test_different_seeds_differ(self):
        def series(seed):
            observe = Observability(events=False, sample_interval=200)
            run_small(observe, seed=seed)
            return observe.sampler.packets_in_network

        assert series(1) != series(2)


class TestKernelProfileAndPending:
    def test_profiled_run_matches_unprofiled(self):
        bare = run_small(None)
        observe = Observability(events=False, profile=True)
        profiled = run_small(observe)
        assert profiled.delivered == bare.delivered
        profile = observe.kernel_profile
        assert profile.events > 0
        assert profile.loop_seconds > 0
        assert profile.events == sum(c for c, _ in profile.by_handler.values())
        assert "events/sec" in profile.format()

    def test_pending_events_live_count(self):
        sim = Simulator()
        events = [sim.schedule(i + 1, lambda: None) for i in range(5)]
        assert sim.pending_events() == 5
        events[0].cancel()
        events[0].cancel()  # double-cancel must not double-decrement
        assert sim.pending_events() == 4
        sim.run_until(3)  # fires strictly-before-3: the event at cycle 2
        assert sim.pending_events() == 3
        # Cancelling an already-fired event is a no-op for the count.
        events[1].cancel()
        assert sim.pending_events() == 3
        sim.run()
        assert sim.pending_events() == 0


class TestExporters:
    def test_metrics_json_reconciles_and_serialises(self):
        observe = Observability(
            events=True, sample_interval=500, profile=True,
        )
        result = run_small(observe)
        doc = metrics_json(result, run_args={"seed": 3})
        text = json.dumps(doc)  # must be JSON-serialisable as-is
        loaded = json.loads(text)
        totals = loaded["totals"]
        assert totals["sent"] == (
            totals["delivered"] + totals["abandoned"] + totals["in_flight"]
        )
        assert loaded["run"]["args"] == {"seed": 3}
        assert loaded["events"]["accept"] == totals["delivered"]
        assert loaded["latency"]["network"]["p99"] >= \
            loaded["latency"]["network"]["p50"]
        assert loaded["samples"]["interval"] == 500
        assert loaded["self_profile"]["events"] > 0
        # NIC-level injections include protocol traffic (acks), so they
        # bound the collector's data-packet count from above.
        assert loaded["nics"]["packets_injected"] >= totals["injected"]

    def test_chrome_trace_structure(self):
        observe = Observability(events=False, trace=True)
        result = run_small(observe)
        doc = chrome_trace(
            observe.tracer,
            fault_windows=[(100, 400, "window"), (50, None, "instant")],
            fault_timeline=[(100, "something happened")],
            run_label="test",
        )
        json.dumps(doc)
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] == "X" and e["cat"] == "packet"]
        names = {e["name"] for e in spans}
        assert {"pool", "network", "rx"} <= names
        assert all(e["dur"] >= 0 for e in spans)
        # every complete packet contributes pool->network->rx spans
        done = [t for t in observe.tracer.traces.values() if t.accepted >= 0]
        assert len([e for e in spans if e["name"] == "rx"]) == len(done)
        fault_events = [e for e in events if e.get("cat") == "fault"]
        assert len(fault_events) == 3
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["args"]["name"] == "faults" for e in meta)
