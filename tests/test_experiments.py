"""Integration tests for the experiment runner across workloads and NICs."""

import pytest

from repro.experiments import (
    ExperimentSpec,
    best_params,
    cshift,
    em3d,
    heavy_synthetic,
    light_synthetic,
    radix_sort,
    run_experiment,
)
from repro.nic import NifdyParams
from repro.traffic import (
    CShiftConfig,
    Em3dConfig,
    RadixSortConfig,
    SyntheticConfig,
)


class TestSyntheticRuns:
    @pytest.mark.parametrize("mode", ["plain", "buffered", "nifdy", "nifdy-"])
    def test_heavy_all_modes_deliver(self, mode):
        result = run_experiment(ExperimentSpec(
            network="mesh2d", traffic=heavy_synthetic(), num_nodes=16,
            nic_mode=mode, run_cycles=15_000, seed=2,
        ))
        assert result.delivered > 100
        assert result.sent >= result.delivered
        assert result.cycles == 15_000

    def test_nifdy_never_misorders(self):
        result = run_experiment(ExperimentSpec(
            network="multibutterfly", traffic=heavy_synthetic(), num_nodes=16,
            nic_mode="nifdy", run_cycles=15_000, seed=3,
        ))
        assert result.order_violations == 0

    def test_light_traffic_runs(self):
        result = run_experiment(ExperimentSpec(
            network="fattree", traffic=light_synthetic(), num_nodes=16,
            nic_mode="nifdy", run_cycles=15_000, seed=4,
        ))
        assert result.delivered > 0

    def test_throughput_property(self):
        result = run_experiment(ExperimentSpec(
            network="mesh2d", traffic=heavy_synthetic(), num_nodes=16,
            nic_mode="nifdy", run_cycles=10_000, seed=5,
        ))
        assert result.throughput == pytest.approx(
            1000 * result.delivered / result.cycles
        )

    def test_same_seed_is_deterministic(self):
        results = [
            run_experiment(ExperimentSpec(
                network="torus2d", traffic=heavy_synthetic(), num_nodes=16,
                nic_mode="nifdy", run_cycles=8_000, seed=7,
            )).delivered
            for _ in range(2)
        ]
        assert results[0] == results[1]

    def test_unknown_nic_mode_rejected(self):
        with pytest.raises(ValueError):
            run_experiment(ExperimentSpec(
                network="mesh2d", traffic=heavy_synthetic(), num_nodes=16,
                nic_mode="warp", run_cycles=100,
            ))


class TestLegacyShim:
    def test_legacy_kwargs_forward_and_warn(self):
        with pytest.warns(DeprecationWarning, match="ExperimentSpec"):
            legacy = run_experiment(
                "mesh2d", heavy_synthetic(), num_nodes=16, nic_mode="nifdy",
                run_cycles=5_000, seed=2,
            )
        modern = run_experiment(ExperimentSpec(
            network="mesh2d", traffic=heavy_synthetic(), num_nodes=16,
            nic_mode="nifdy", run_cycles=5_000, seed=2,
        ))
        assert legacy.delivered == modern.delivered
        assert legacy.cycles == modern.cycles

    def test_unknown_legacy_kwarg_rejected(self):
        with pytest.raises(TypeError, match="unknown run_experiment"):
            run_experiment("mesh2d", heavy_synthetic(), warp_factor=9)

    def test_spec_call_rejects_extra_arguments(self):
        spec = ExperimentSpec(
            network="mesh2d", traffic=heavy_synthetic(), run_cycles=100,
        )
        with pytest.raises(TypeError, match="no further arguments"):
            run_experiment(spec, seed=3)


class TestCompletionRuns:
    def test_cshift_completes(self):
        result = run_experiment(ExperimentSpec(
            network="cm5", traffic=cshift(CShiftConfig(words_per_phase=24)),
            num_nodes=16, nic_mode="nifdy", seed=1,
        ))
        assert result.completed
        assert result.delivered == result.sent
        assert result.order_violations == 0

    def test_em3d_reports_cycles_per_iteration(self):
        result = run_experiment(ExperimentSpec(
            network="fattree",
            traffic=em3d(Em3dConfig(n_nodes=15, d_nodes=4, local_p=50,
                                    dist_span=3, iterations=2)),
            num_nodes=16, nic_mode="nifdy", seed=1,
        ))
        assert result.completed
        cpi = result.drivers[0].cycles_per_iteration()
        assert cpi > 0

    def test_radix_scan_completes_and_reports(self):
        result = run_experiment(ExperimentSpec(
            network="fattree", traffic=radix_sort(RadixSortConfig(buckets=24)),
            num_nodes=16, nic_mode="plain", seed=1,
        ))
        assert result.completed
        finish = max(d.scan_finished_cycle for d in result.drivers)
        assert finish > 0

    def test_incomplete_run_flagged(self):
        result = run_experiment(ExperimentSpec(
            network="mesh2d", traffic=cshift(CShiftConfig(words_per_phase=400)),
            num_nodes=16, nic_mode="plain", seed=1, max_cycles=3_000,
        ))
        assert not result.completed


class TestNicModes:
    def test_buffered_budget_matches_nifdy(self):
        params = NifdyParams(pool_size=8, dialogs=1, window=8)
        result = run_experiment(ExperimentSpec(
            network="mesh2d", traffic=heavy_synthetic(), num_nodes=16,
            nic_mode="buffered", nifdy_params=params, run_cycles=5_000,
        ))
        nic = result.nics[0]
        assert nic.total_buffers == params.total_buffers

    def test_best_params_table_covers_all_networks(self):
        from repro.networks import NETWORK_NAMES

        for name in NETWORK_NAMES:
            params = best_params(name)
            assert params.opt_size >= 1

    def test_best_params_unknown_network(self):
        with pytest.raises(ValueError):
            best_params("hypercube")

    def test_congestion_tracking(self):
        result = run_experiment(ExperimentSpec(
            network="mesh2d", traffic=heavy_synthetic(), num_nodes=16,
            nic_mode="plain", run_cycles=8_000, track_congestion=True,
            congestion_sample_every=500,
        ))
        assert result.congestion is not None
        assert len(result.congestion.samples) >= 10


class TestLossyRuns:
    def test_lossy_network_uses_retransmitting_nic(self):
        from repro.nic import RetransmittingNifdyNIC

        result = run_experiment(ExperimentSpec(
            network="fattree", traffic=cshift(CShiftConfig(words_per_phase=16)),
            num_nodes=16, nic_mode="nifdy", drop_prob=0.05, retx_timeout=600,
            seed=2, max_cycles=3_000_000,
        ))
        assert isinstance(result.nics[0], RetransmittingNifdyNIC)
        assert result.completed
        assert result.order_violations == 0
