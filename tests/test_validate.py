"""Tests for the invariant monitor: clean runs stay clean, broken NICs get
caught, and the monitor costs nothing when detached."""

import pytest

from repro.experiments import ExperimentSpec, run_experiment
from repro.nic import NifdyNIC, NifdyParams, ReorderParams, ReorderTolerantNIC
from repro.obs import EventBus, EventKind, Observability
from repro.sim import Simulator
from repro.traffic import (
    AllReduceConfig,
    CrashPointConfig,
    CShiftConfig,
    Em3dConfig,
    HotSpotConfig,
    IncastConfig,
    PairStreamConfig,
    RadixSortConfig,
    RpcFanoutConfig,
    SyntheticConfig,
    TrafficSpec,
    traffic_names,
)
from repro.validate import INVARIANTS, InvariantMonitor, InvariantViolation


# Small configs so the full workload matrix stays fast; fixed horizons for
# the open-ended synthetic loads.
_SMALL_CONFIGS = {
    "heavy": SyntheticConfig.heavy_traffic(max_phases=3),
    "light": SyntheticConfig.light_traffic(max_phases=3),
    "cshift": CShiftConfig(words_per_phase=48),
    "em3d": Em3dConfig.light_communication(scale=0.05, iterations=1),
    "radix": RadixSortConfig(buckets=64, keys_per_processor=32),
    "hotspot": HotSpotConfig(packets_per_node=40),
    "pairstream": PairStreamConfig(packets=40, bulk=True),
    "incast": IncastConfig(rounds=2, packets_per_round=4),
    "rpc": RpcFanoutConfig(rounds=2, fanout=4, reply_packets=2),
    # Host-combine by default here; the NIC-offloaded variant has its own
    # dedicated coverage in tests/test_collectives.py.
    "allreduce": AllReduceConfig(rounds=3),
    # Disarmed (after_packets == packets): a clean pair stream.
    "crashpoint": CrashPointConfig(packets=40, after_packets=40),
}


def _spec_for(name: str) -> ExperimentSpec:
    config = _SMALL_CONFIGS[name]
    fixed_horizon = name in ("heavy", "light")
    return ExperimentSpec(
        network="fattree",
        traffic=TrafficSpec(name, config),
        num_nodes=16,
        run_cycles=30_000 if fixed_horizon else None,
        observe=Observability(validate=True),
    )


class TestCleanWorkloads:
    """Every registered workload, lossless fabric: zero violations."""

    def test_matrix_covers_every_registered_workload(self):
        # If a new workload is registered without a small config here, this
        # test (not silence) is what fails.
        assert set(_SMALL_CONFIGS) == set(traffic_names())

    @pytest.mark.parametrize("name", sorted(_SMALL_CONFIGS))
    def test_workload_is_violation_free(self, name):
        result = run_experiment(_spec_for(name))
        monitor = result.obs.monitor
        assert monitor is not None and monitor.events_checked > 0
        assert result.violations == [], monitor.summary()
        if name not in ("heavy", "light"):
            assert result.completed

    def test_strict_mode_passes_clean_run(self):
        spec = _spec_for("cshift").replace(
            observe=Observability(validate=True, validate_strict=True),
        )
        result = run_experiment(spec)
        assert result.violations == []


class TestDetachedCost:
    def test_unobserved_run_keeps_obs_none(self):
        # The whole obs layer (monitor included) must be invisible unless
        # asked for: every NIC keeps the obs=None fast path.
        result = run_experiment(_spec_for("cshift").replace(observe=None))
        assert all(nic.obs is None for nic in result.nics)
        assert result.violations == []

    def test_validate_false_attaches_no_monitor(self):
        result = run_experiment(
            _spec_for("cshift").replace(observe=Observability(events=True))
        )
        assert result.obs.monitor is None
        assert result.violations == []


# ---------------------------------------------------------------------------
# Broken-NIC fixture: corrupt a real NifdyNIC's state / fake its events and
# prove each invariant actually fires.
# ---------------------------------------------------------------------------

class _FakePacket:
    def __init__(self, uid, src, dst, pair_seq=-1, seq=-1, abandoned_cycle=-1):
        self.uid = uid
        self.src = src
        self.dst = dst
        self.pair_seq = pair_seq
        self.seq = seq
        self.abandoned_cycle = abandoned_cycle


@pytest.fixture()
def rig():
    """(bus, monitor, nics): two real NifdyNICs under a wildcard monitor."""
    sim = Simulator()
    params = NifdyParams(opt_size=2, pool_size=2, dialogs=1, window=2)
    nics = [NifdyNIC(sim, node, params) for node in range(2)]
    bus = EventBus()
    bus.attach(nics)
    monitor = InvariantMonitor(check_order=True).attach(bus, nics)
    return bus, monitor, nics


def _names(monitor):
    return {violation.invariant for violation in monitor.violations}


class TestBrokenNic:
    def test_exactly_once_fires_on_double_accept(self, rig):
        bus, monitor, _ = rig
        packet = _FakePacket(uid=7, src=0, dst=1)
        bus.emit_packet(10, EventKind.ACCEPT, 1, packet)
        bus.emit_packet(20, EventKind.ACCEPT, 1, packet)
        assert "exactly_once" in _names(monitor)
        violation = monitor.violations[0]
        assert violation.uid == 7 and violation.cycle == 20

    def test_in_order_fires_on_seq_regression(self, rig):
        bus, monitor, _ = rig
        bus.emit_packet(10, EventKind.ACCEPT, 1, _FakePacket(1, 0, 1, pair_seq=4))
        bus.emit_packet(20, EventKind.ACCEPT, 1, _FakePacket(2, 0, 1, pair_seq=3))
        assert "in_order" in _names(monitor)

    def test_in_order_tracks_pairs_independently(self, rig):
        bus, monitor, _ = rig
        bus.emit_packet(10, EventKind.ACCEPT, 1, _FakePacket(1, 0, 1, pair_seq=4))
        # A different (src, dst) pair restarting at 0 is NOT a violation.
        bus.emit_packet(20, EventKind.ACCEPT, 0, _FakePacket(2, 1, 0, pair_seq=0))
        assert monitor.ok

    def test_opt_bound_fires_on_overfill(self, rig):
        bus, monitor, nics = rig
        nics[0].opt._entries.update({1, 2, 3})  # capacity is 2
        bus.emit(30, EventKind.OPT_HIT, 0)
        assert "opt_bound" in _names(monitor)
        assert "O=2" in monitor.violations[0].detail

    def test_pool_bound_fires_on_overfill(self, rig):
        bus, monitor, nics = rig
        pool = nics[0].pool
        for uid in range(3):  # capacity is 2; bypass insert()'s guard
            from collections import deque

            pool._queues.setdefault(uid + 1, deque()).append(
                _FakePacket(uid, 0, uid + 1)
            )
            pool._count += 1
        bus.emit(30, EventKind.POOL_ENQUEUE, 0)
        assert "pool_bound" in _names(monitor)

    def test_dialog_and_window_bounds_fire(self, rig):
        from repro.nic.bulk import BulkReceiverDialog

        bus, monitor, nics = rig
        nic = nics[1]
        overfull = BulkReceiverDialog(src=0, dialog=0, window=2)
        overfull.buffers = {0: object(), 1: object(), 2: object()}
        nic._rx_dialogs[(0, 0)] = overfull
        nic._rx_dialogs[(0, 1)] = BulkReceiverDialog(src=0, dialog=1, window=2)
        bus.emit(40, EventKind.DIALOG_GRANT, 1)
        assert {"dialog_bound", "window_bound"} <= _names(monitor)

    def test_ack_conservation_fires_at_finish(self, rig):
        _, monitor, nics = rig
        nics[0].acks_received = 5  # nobody ever sent an ack
        monitor.finish(cycle=100)
        assert "ack_conservation" in _names(monitor)

    def test_no_silent_loss_fires_for_vanished_packet(self, rig):
        bus, monitor, _ = rig
        bus.emit_packet(10, EventKind.INJECT, 0, _FakePacket(9, 0, 1))
        monitor.finish(check_loss=True, cycle=100)
        assert "no_silent_loss" in _names(monitor)
        assert monitor.violations[0].uid == 9

    def test_no_silent_loss_accepts_abandonment(self, rig):
        bus, monitor, _ = rig
        packet = _FakePacket(9, 0, 1)
        bus.emit_packet(10, EventKind.INJECT, 0, packet)
        bus.emit_packet(50, EventKind.ABANDON, 0, packet)
        monitor.finish(check_loss=True, cycle=100)
        assert monitor.ok  # explicitly abandoned is accounted-for, not lost

    def test_no_silent_loss_skipped_for_truncated_runs(self, rig):
        bus, monitor, _ = rig
        bus.emit_packet(10, EventKind.INJECT, 0, _FakePacket(9, 0, 1))
        monitor.finish(check_loss=False, cycle=100)
        assert monitor.ok

    def test_strict_mode_raises_with_structured_violation(self, rig):
        bus, _, nics = rig
        strict = InvariantMonitor(strict=True).attach(bus, nics)
        packet = _FakePacket(uid=3, src=0, dst=1)
        bus.emit_packet(10, EventKind.ACCEPT, 1, packet)
        with pytest.raises(InvariantViolation) as excinfo:
            bus.emit_packet(11, EventKind.ACCEPT, 1, packet)
        assert excinfo.value.violation.invariant == "exactly_once"
        assert excinfo.value.violation.uid == 3

    def test_state_breaches_dedupe_per_node(self, rig):
        bus, monitor, nics = rig
        nics[0].opt._entries.update({1, 2, 3})
        for cycle in range(10):
            bus.emit(cycle, EventKind.OPT_HIT, 0)
        assert len([v for v in monitor.violations
                    if v.invariant == "opt_bound"]) == 1

    def test_every_invariant_is_exercised_somewhere(self):
        # The fixture tests above (and TestBrokenReorderNic) must
        # collectively cover the full list.
        covered = {
            "exactly_once", "in_order", "opt_bound", "pool_bound",
            "dialog_bound", "window_bound", "ack_conservation",
            "no_silent_loss", "no_double_contribution",
            "release_after_all_arrive", "collective_completion",
            "reorder_window_bound", "bitmap_conservation",
            "no_cache_leak",
        }
        assert covered == set(INVARIANTS)

    def test_violations_are_json_ready(self, rig):
        import json

        bus, monitor, _ = rig
        packet = _FakePacket(uid=7, src=0, dst=1)
        bus.emit_packet(10, EventKind.ACCEPT, 1, packet)
        bus.emit_packet(20, EventKind.ACCEPT, 1, packet)
        payload = json.dumps([v.to_dict() for v in monitor.violations])
        assert "exactly_once" in payload


# ---------------------------------------------------------------------------
# Broken collectives: fake combining-tree events (and a stub engine) and
# prove the collective invariants actually fire.
# ---------------------------------------------------------------------------

class _StubEngine:
    def __init__(self, children, pending=()):
        self.children = list(children)
        self._epochs = {e: object() for e in pending}

    @property
    def pending_epochs(self):
        return len(self._epochs)


class _StubCollectiveNic:
    def __init__(self, node_id, engine):
        self.node_id = node_id
        self.collective = engine
        self.obs = None


class TestBrokenCollectives:
    def _rig(self, engine):
        bus = EventBus()
        nics = [_StubCollectiveNic(0, engine)]
        monitor = InvariantMonitor().attach(bus, nics)
        return bus, monitor

    def test_double_contribution_fires(self):
        bus, monitor = self._rig(_StubEngine(children=[1, 2]))
        bus.emit(10, EventKind.COLL_CONTRIB, 0, src=1, seq=0)
        bus.emit(20, EventKind.COLL_CONTRIB, 0, src=1, seq=0)
        assert [v.invariant for v in monitor.violations] == [
            "no_double_contribution"
        ]

    def test_same_child_across_epochs_is_fine(self):
        bus, monitor = self._rig(_StubEngine(children=[1, 2]))
        bus.emit(10, EventKind.COLL_CONTRIB, 0, src=1, seq=0)
        bus.emit(20, EventKind.COLL_CONTRIB, 0, src=1, seq=1)
        assert monitor.ok

    def test_early_release_fires(self):
        bus, monitor = self._rig(_StubEngine(children=[1, 2]))
        bus.emit(10, EventKind.COLL_CONTRIB, 0, src=0, seq=0)
        bus.emit(20, EventKind.COLL_CONTRIB, 0, src=1, seq=0)
        # child 2 never contributed, yet the node releases.
        bus.emit(30, EventKind.COLL_RELEASE, 0, src=0, seq=0)
        assert [v.invariant for v in monitor.violations] == [
            "release_after_all_arrive"
        ]

    def test_complete_release_is_clean(self):
        bus, monitor = self._rig(_StubEngine(children=[1, 2]))
        for src in (0, 1, 2):
            bus.emit(10, EventKind.COLL_CONTRIB, 0, src=src, seq=0)
        bus.emit(30, EventKind.COLL_RELEASE, 0, src=0, seq=0)
        assert monitor.ok

    def test_pending_epoch_at_run_end_fires(self):
        bus, monitor = self._rig(_StubEngine(children=[1], pending=(3,)))
        monitor.finish(check_loss=True, cycle=100)
        assert [v.invariant for v in monitor.violations] == [
            "collective_completion"
        ]

    def test_pending_epoch_skipped_for_truncated_runs(self):
        bus, monitor = self._rig(_StubEngine(children=[1], pending=(3,)))
        monitor.finish(check_loss=False, cycle=100)
        assert monitor.ok


# ---------------------------------------------------------------------------
# Broken reorder-tolerant receivers: corrupt a real ReorderTolerantNIC's
# stream state and prove the reorder invariants actually fire.
# ---------------------------------------------------------------------------

def _reorder_rig(policy: str):
    sim = Simulator()
    params = ReorderParams(tx_window=2, rx_window=4, cache_capacity=2)
    nics = [
        ReorderTolerantNIC(sim, node, policy=policy, params=params)
        for node in range(2)
    ]
    bus = EventBus()
    bus.attach(nics)
    monitor = InvariantMonitor(check_order=True).attach(bus, nics)
    return bus, monitor, nics


class TestBrokenReorderNic:
    def test_clean_reorder_nic_flags_nothing(self):
        bus, monitor, _ = _reorder_rig("bitmap")
        bus.emit(10, EventKind.OPT_HIT, 1)
        monitor.finish(cycle=100)
        assert monitor.ok

    def test_reorder_window_bound_fires_on_runaway_buffer(self):
        bus, monitor, nics = _reorder_rig("window")
        st = nics[1]._rx_stream(0)  # rx_window=4, expect=0
        for seq in range(100, 110):
            st.buffer[seq] = _FakePacket(seq, 0, 1, seq=seq)
        nics[1]._cached = len(st.buffer)
        bus.emit(30, EventKind.OPT_HIT, 1)
        assert "reorder_window_bound" in _names(monitor)
        assert "rx_window=4" in monitor.violations[0].detail

    def test_bitmap_conservation_fires_on_stale_bitmap(self):
        bus, monitor, nics = _reorder_rig("bitmap")
        st = nics[1]._rx_stream(0)
        st.buffer[2] = _FakePacket(2, 0, 1, seq=2)  # bitmap left empty
        nics[1]._cached = 1
        bus.emit(30, EventKind.OPT_HIT, 1)
        assert "bitmap_conservation" in _names(monitor)

    def test_no_cache_leak_fires_on_counter_drift(self):
        bus, monitor, nics = _reorder_rig("bitmap")
        nics[1]._cached = 5  # buffers are empty
        bus.emit(30, EventKind.OPT_HIT, 1)
        assert "no_cache_leak" in _names(monitor)

    def test_no_cache_leak_fires_on_dropcache_overflow(self):
        bus, monitor, nics = _reorder_rig("dropcache")
        st = nics[1]._rx_stream(0)
        for seq in (1, 2, 3):  # cache_capacity is 2
            st.buffer[seq] = _FakePacket(seq, 0, 1, seq=seq)
        nics[1]._cached = 3
        bus.emit(30, EventKind.OPT_HIT, 1)
        assert "no_cache_leak" in _names(monitor)
        assert "capacity 2" in monitor.violations[0].detail

    def test_no_cache_leak_fires_for_packet_stranded_at_finish(self):
        bus, monitor, nics = _reorder_rig("bitmap")
        st = nics[1]._rx_stream(0)
        st.buffer[2] = _FakePacket(uid=9, src=0, dst=1, seq=2)
        st.bitmap.add(2)
        nics[1]._cached = 1
        monitor.finish(check_loss=True, cycle=100)
        assert "no_cache_leak" in _names(monitor)
        assert monitor.violations[0].uid == 9

    def test_finish_accepts_cached_packet_its_sender_abandoned(self):
        bus, monitor, nics = _reorder_rig("bitmap")
        st = nics[1]._rx_stream(0)
        st.buffer[2] = _FakePacket(9, 0, 1, seq=2, abandoned_cycle=50)
        st.bitmap.add(2)
        nics[1]._cached = 1
        monitor.finish(check_loss=True, cycle=100)
        assert monitor.ok

    def test_in_order_gated_per_receiver(self):
        """On a reordering fabric (fabric_in_order=False) the monitor holds
        order-restoring NICs to in-order delivery but exempts plain ones."""
        from repro.nic import PlainNIC

        sim = Simulator()
        nics = [
            PlainNIC(sim, 0),
            ReorderTolerantNIC(sim, 1, policy="window", params=ReorderParams()),
        ]
        bus = EventBus()
        bus.attach(nics)
        monitor = InvariantMonitor(
            check_order=True, fabric_in_order=False,
        ).attach(bus, nics)
        # Regression at the plain NIC: the fabric may reorder, no violation.
        bus.emit_packet(10, EventKind.ACCEPT, 0, _FakePacket(1, 1, 0, pair_seq=4))
        bus.emit_packet(20, EventKind.ACCEPT, 0, _FakePacket(2, 1, 0, pair_seq=3))
        assert monitor.ok
        # The same regression at the reorder-tolerant NIC is a broken promise.
        bus.emit_packet(30, EventKind.ACCEPT, 1, _FakePacket(3, 0, 1, pair_seq=4))
        bus.emit_packet(40, EventKind.ACCEPT, 1, _FakePacket(4, 0, 1, pair_seq=3))
        assert "in_order" in _names(monitor)
