"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fattree" in out
        assert "nifdy" in out

    def test_run_requires_network(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--network", "hypercube"])


class TestRun:
    def test_run_heavy_synthetic(self, capsys):
        code = main([
            "run", "--network", "mesh2d", "--traffic", "heavy",
            "--nic", "nifdy", "--nodes", "16", "--cycles", "4000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "packets delivered" in out
        assert "order violations : 0" in out

    def test_run_to_completion_workload(self, capsys):
        code = main([
            "run", "--network", "fattree", "--traffic", "radix",
            "--nic", "plain", "--nodes", "16", "--max-cycles", "20000000",
        ])
        assert code == 0
        assert "cycles simulated" in capsys.readouterr().out

    def test_run_with_custom_params(self, capsys):
        code = main([
            "run", "--network", "mesh2d", "--nodes", "16", "--cycles", "3000",
            "--opt", "2", "--window", "4",
        ])
        assert code == 0

    def test_run_lossy(self, capsys):
        code = main([
            "run", "--network", "fattree", "--traffic", "heavy",
            "--nodes", "16", "--cycles", "4000", "--drop", "0.05",
        ])
        assert code == 0


class TestAnalysisCommands:
    def test_characterize(self, capsys):
        assert main(["characterize", "--network", "mesh2d", "--nodes", "16"]) == 0
        out = capsys.readouterr().out
        assert "bisection" in out
        assert "T_lat(d)" in out

    def test_advise(self, capsys):
        assert main(["advise", "--network", "mesh2d", "--nodes", "16"]) == 0
        out = capsys.readouterr().out
        assert "recommended" in out
        assert "O=" in out
