"""Tests for mesh and torus topologies: routing, ordering, datelines."""

import pytest

from repro.networks import build_mesh, build_network
from repro.sim import Simulator

from conftest import build_with_nics, drain_all, simple_packet


class TestMeshRouting:
    def test_all_pairs_delivery_4x4(self):
        sim, net, nics = build_with_nics("mesh2d", 16)
        expected = 0
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                assert nics[src].try_send(simple_packet(src, dst, flits=2))
                expected += 1
        delivered = drain_all(sim, nics, expected)
        assert len(delivered) == expected

    def test_packets_arrive_at_correct_node(self):
        sim, net, nics = build_with_nics("mesh2d", 16)
        sent = {}
        for src in (0, 5, 15):
            for dst in (3, 10):
                if src == dst:
                    continue
                pkt = simple_packet(src, dst)
                sent[pkt.uid] = dst
                nics[src].try_send(pkt)
        delivered = drain_all(sim, nics, len(sent))
        for pkt in delivered:
            assert pkt.dst == sent[pkt.uid]
            assert pkt.delivered_cycle >= 0

    def test_single_vc_mesh_delivers_in_order(self):
        sim, net, nics = build_with_nics("mesh2d", 16)
        assert net.delivers_in_order
        for i in range(20):
            nics[0].try_send(simple_packet(0, 15, flits=2, pair_seq=i))
        delivered = drain_all(sim, nics, 20)
        assert [p.pair_seq for p in delivered] == list(range(20))

    def test_multi_vc_mesh_not_marked_in_order(self):
        sim = Simulator()
        net = build_mesh(sim, (4, 4), vcs_per_net=2)
        assert not net.delivers_in_order

    def test_mesh_latency_slope_matches_paper_form(self):
        """The paper's 8x8 mesh has T_lat(d) = 4d + const (byte links,
        word flits): each hop adds one flit time."""
        from repro.analysis import measure_latency_fit

        slope, intercept = measure_latency_fit("mesh2d", 16, max_probes=10)
        assert slope == pytest.approx(4.0, abs=0.5)

    def test_3d_mesh_delivery(self):
        sim, net, nics = build_with_nics("mesh3d", 27)
        count = 0
        for src in range(0, 27, 5):
            for dst in range(0, 27, 7):
                if src != dst:
                    nics[src].try_send(simple_packet(src, dst, flits=2))
                    count += 1
        assert len(drain_all(sim, nics, count)) == count

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ValueError):
            build_mesh(Simulator(), (1, 8))


class TestTorus:
    def test_all_pairs_delivery(self):
        sim, net, nics = build_with_nics("torus2d", 16)
        expected = 0
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    nics[src].try_send(simple_packet(src, dst, flits=2))
                    expected += 1
        assert len(drain_all(sim, nics, expected)) == expected

    def test_torus_takes_short_way_round(self):
        """0 -> 7 on an 8-wide ring should wrap (1 hop), not cross 7 links."""
        sim = Simulator()
        net = build_network("torus2d", sim, 64)
        assert net.min_hops(0, 7) < net.min_hops(0, 4)

    def test_wraparound_heavy_traffic_no_deadlock(self):
        """Saturate rings in both directions; the dateline VCs must prevent
        deadlock (every packet eventually arrives)."""
        sim, net, nics = build_with_nics("torus2d", 16)
        expected = 0
        for src in range(16):
            for step in (1, 2, 3, 5, 7):
                dst = (src + step * 4 + step) % 16
                if dst != src:
                    nics[src].try_send(simple_packet(src, dst))
                    expected += 1
        assert len(drain_all(sim, nics, expected)) == expected

    def test_torus_has_two_vc_classes(self):
        sim = Simulator()
        net = build_network("torus2d", sim, 16)
        inter_router = [
            link for link in net.links if id(link) not in net._nic_link_ids
        ]
        assert all(link.vc_count == 4 for link in inter_router)  # 2 per net


class TestMeshStructure:
    def test_link_counts_8x8(self):
        sim = Simulator()
        net = build_network("mesh2d", sim, 64)
        inter = [l for l in net.links if id(l) not in net._nic_link_ids]
        # 2 * (7*8) per dimension, both directions = 224
        assert len(inter) == 224

    def test_torus_link_count(self):
        sim = Simulator()
        net = build_network("torus2d", sim, 64)
        inter = [l for l in net.links if id(l) not in net._nic_link_ids]
        assert len(inter) == 256  # 8*8 nodes * 4 directed ring links / ...

    def test_bisection_bandwidth_mesh(self):
        sim = Simulator()
        net = build_network("mesh2d", sim, 64)
        net.attach_nics(lambda n: __import__("repro.nic", fromlist=["PlainNIC"]).PlainNIC(sim, n))
        # 8 byte-wide links each way across the middle cut
        assert net.bisection_bandwidth() == pytest.approx(8.0)

    def test_volume_excludes_nic_links(self):
        sim = Simulator()
        net = build_network("mesh2d", sim, 64)
        assert net.volume_flits() < net.volume_flits(include_nic_links=True)
        # 224 links x 2 VCs x 2 flits = 896 flits = 14 words/node
        assert net.volume_flits() == 896
