"""Tests for the fault-tolerant sweep farm (repro.farm).

The farm exists to survive exactly the failures a test module cannot
fake from the outside: workers dying hard mid-point, campaigns killed
mid-flight, retry schedules that must replay identically after a
resume.  The crash-point traffic (registered in the package so fresh
worker interpreters can build it) stages those failures on purpose;
the assertions here are the acceptance criteria of the farm -- a
crashed-and-resumed campaign must end byte-identical to an
uninterrupted serial baseline, with zero re-executions of settled
points.
"""

import json

import pytest

from repro.experiments import ExperimentSpec, SweepEngine, heavy_synthetic
from repro.farm import (
    DEFAULT_EXECUTOR,
    FarmEngine,
    FarmExecutor,
    FarmPolicy,
    ManifestMismatch,
    PointState,
    RunManifest,
    backoff_delay,
    campaign_id_for,
    executor_descriptions,
    executor_names,
    register_executor,
    resolve_executor,
)
from repro.report.schema import CampaignRecord, load_record, sniff_kind
from repro.traffic import CrashPointConfig, TrafficSpec


def small_spec(**overrides):
    base = dict(
        network="mesh2d", traffic=heavy_synthetic(), num_nodes=16,
        nic_mode="nifdy", run_cycles=2000, seed=2,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def crash_spec(flag=None, mode="exit", **overrides):
    """A spec whose sender kills its worker once (``flag``) or always."""
    cfg = CrashPointConfig(
        packets=8, after_packets=4, mode=mode,
        once_flag=str(flag) if flag is not None else None,
    )
    base = dict(
        network="mesh2d", traffic=TrafficSpec("crashpoint", cfg),
        num_nodes=16, nic_mode="nifdy", run_cycles=2000, seed=2,
        label="crasher",
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def point_tuple(p):
    """The material result of a point: what byte-identity compares."""
    return (p.label, p.delivered, p.cycles, p.sent, p.error is None)


class TestBackoff:
    policy = FarmPolicy(backoff_base=0.1, backoff_factor=2.0,
                        backoff_max=1.0, backoff_jitter=0.5, seed=7)

    def test_deterministic(self):
        # The schedule is a pure function of (policy seed, index, attempt):
        # a resumed campaign backs off exactly like the interrupted one.
        for index in range(4):
            for attempt in range(1, 5):
                assert backoff_delay(self.policy, index, attempt) == \
                    backoff_delay(self.policy, index, attempt)

    def test_bounds_and_growth(self):
        uncapped = [
            min(self.policy.backoff_max,
                self.policy.backoff_base
                * self.policy.backoff_factor ** (a - 1))
            for a in range(1, 8)
        ]
        for attempt, ceiling in enumerate(uncapped, start=1):
            delay = backoff_delay(self.policy, 0, attempt)
            assert 0.0 < delay <= ceiling
            assert delay >= ceiling * (1.0 - self.policy.backoff_jitter)
        assert backoff_delay(self.policy, 0, 7) <= self.policy.backoff_max

    def test_attempt_zero_is_free(self):
        assert backoff_delay(self.policy, 3, 0) == 0.0

    def test_points_are_decorrelated(self):
        delays = {backoff_delay(self.policy, i, 1) for i in range(8)}
        assert len(delays) > 1  # no thundering herd on retry 1

    def test_policy_round_trip(self):
        policy = FarmPolicy(retries=5, poison_after=2, seed=9,
                            retry_errors=True)
        again = FarmPolicy.from_dict(policy.as_dict())
        assert again == policy
        assert again.max_attempts == 6
        assert again.poison_threshold == 2


class TestExecutorRegistry:
    def test_shipped_backends(self):
        names = executor_names()
        assert "pool" in names and "subprocess" in names
        assert DEFAULT_EXECUTOR in names
        descriptions = executor_descriptions()
        assert all(descriptions[name] for name in names)

    def test_contains_crashes_contract(self):
        assert not resolve_executor("pool").contains_crashes
        assert resolve_executor("subprocess").contains_crashes

    def test_reregister_same_class_is_noop(self):
        cls = resolve_executor("pool")
        assert register_executor(cls) is cls

    def test_name_collision_raises(self):
        class Impostor(FarmExecutor):
            name = "pool"

        with pytest.raises(ValueError, match="already registered"):
            register_executor(Impostor)

    def test_unnamed_class_rejected(self):
        class Nameless(FarmExecutor):
            pass

        with pytest.raises(ValueError, match="no name"):
            register_executor(Nameless)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="pool"):
            resolve_executor("mainframe")


class TestManifest:
    def grid(self):
        return [small_spec(seed=s, label=f"seed={s}") for s in (1, 2)]

    def test_round_trip_through_schema_loader(self, tmp_path):
        specs = self.grid()
        path = tmp_path / "campaign.json"
        manifest = RunManifest.new(
            campaign_id_for(specs, "pool"), specs, "pool",
            FarmPolicy().as_dict(), path=path,
        )
        manifest.points[0].state = "done"
        manifest.points[0].result = {"delivered": 7, "cycles": 2000}
        manifest.checkpoint({"points": 1})

        doc = json.loads(path.read_text())
        assert doc["kind"] == "repro-campaign"
        record = load_record(path)
        assert isinstance(record, CampaignRecord)
        assert record.state_counts()["done"] == 1
        assert not record.complete

        again = RunManifest.load(path)
        assert again.campaign_id == manifest.campaign_id
        assert again.executor == "pool"
        assert again.code_version == manifest.code_version
        assert [p.to_dict() for p in again.points] == \
            [p.to_dict() for p in manifest.points]
        assert again.specs == manifest.specs

    def test_v0_shape_sniffs_as_campaign(self):
        doc = {"campaign_id": "abc", "points": [], "specs": [],
               "executor": "pool"}
        assert sniff_kind(doc) == "repro-campaign"

    def test_verify_resumable_rejects_different_grid(self, tmp_path):
        specs = self.grid()
        manifest = RunManifest.new("c1", specs, "pool", {})
        with pytest.raises(ManifestMismatch, match="offers"):
            manifest.verify_resumable(specs[:1])
        with pytest.raises(ManifestMismatch, match="different campaign"):
            manifest.verify_resumable([specs[0],
                                       specs[1].replace(seed=99)])

    def test_verify_resumable_rejects_stale_code(self):
        specs = self.grid()
        manifest = RunManifest.new("c1", specs, "pool", {})
        manifest.code_version = "0" * 40
        with pytest.raises(ManifestMismatch, match="stale"):
            manifest.verify_resumable(specs)

    def test_point_state_validates(self):
        with pytest.raises(ValueError, match="unknown point state"):
            PointState(index=0, spec_hash=None, label="x", state="retrying")

    def test_campaign_id_is_deterministic_and_material(self):
        specs = self.grid()
        assert campaign_id_for(specs, "pool") == \
            campaign_id_for(self.grid(), "pool")
        assert campaign_id_for(specs, "pool") != \
            campaign_id_for(specs, "subprocess")
        assert campaign_id_for(specs, "pool") != \
            campaign_id_for(specs[::-1], "pool")


class TestFarmEngine:
    """Pool-backend behaviour that needs no staged crash."""

    def grid(self):
        return [small_spec(seed=s, label=f"seed={s}") for s in (1, 2, 3)]

    def test_matches_sweep_engine_results(self, tmp_path):
        specs = self.grid()
        baseline = SweepEngine(jobs=1, cache=False).run(specs)
        farm = FarmEngine(executor="pool", cache=False)
        points = farm.run(specs)
        assert [point_tuple(p) for p in points] == \
            [point_tuple(p) for p in baseline]
        assert farm.stats.executed == len(specs)
        assert farm.stats.retries == 0

    def test_plain_error_is_not_retried(self, tmp_path):
        bad = small_spec(nic_mode="warp", label="bad")
        farm = FarmEngine(executor="pool", cache=False,
                          manifest=RunManifest.new("c", [bad], "pool", {}))
        (point,) = farm.run([bad])
        assert point.error is not None and "ValueError" in point.error
        assert farm.manifest.points[0].attempts == 1
        assert farm.manifest.points[0].state == "errored"
        assert farm.stats.retries == 0 and farm.stats.errors == 1

    def test_retry_errors_burns_budget_on_backoff_schedule(self):
        bad = small_spec(nic_mode="warp", label="bad")
        policy = FarmPolicy(retries=2, retry_errors=True, seed=5)
        slept = []
        farm = FarmEngine(executor="pool", cache=False, policy=policy,
                          sleep=slept.append)
        (point,) = farm.run([bad])
        assert point.error is not None
        assert farm.manifest.points[0].attempts == policy.max_attempts
        assert farm.stats.retries == 2
        assert slept == [backoff_delay(policy, 0, 1),
                         backoff_delay(policy, 0, 2)]

    def test_resume_executes_nothing(self, tmp_path):
        specs = self.grid()
        path = tmp_path / "c.json"
        first = FarmEngine(
            executor="pool", cache=False,
            manifest=RunManifest.new(
                campaign_id_for(specs, "pool"), specs, "pool",
                FarmPolicy().as_dict(), path=path,
            ),
        )
        cold = first.run(specs)
        assert first.stats.executed == len(specs)

        second = FarmEngine(executor="pool", cache=False,
                            manifest=RunManifest.load(path))
        warm = second.run(specs)
        assert second.stats.resumed == len(specs)
        assert second.stats.executed == 0
        assert [point_tuple(p) for p in warm] == \
            [point_tuple(p) for p in cold]

    def test_resume_finishes_a_partial_campaign(self, tmp_path):
        specs = self.grid()
        path = tmp_path / "c.json"
        manifest = RunManifest.new(
            campaign_id_for(specs, "pool"), specs, "pool",
            FarmPolicy().as_dict(), path=path,
        )
        FarmEngine(executor="pool", cache=False, manifest=manifest).run(specs)

        # Fake an interruption: points 1 and 2 never settled.
        doc = json.loads(path.read_text())
        for entry in doc["points"][1:]:
            entry.update(state="pending", attempts=0, result=None)
        path.write_text(json.dumps(doc))

        resumed = FarmEngine(executor="pool", cache=False,
                             manifest=RunManifest.load(path))
        points = resumed.run(specs)
        assert resumed.stats.resumed == 1
        assert resumed.stats.executed == 2
        assert [p.error for p in points] == [None, None, None]
        assert RunManifest.load(path).complete

    def test_farm_events_on_bus(self, tmp_path):
        from repro.obs import EventBus, EventKind

        bus = EventBus()
        seen = []
        bus.subscribe(None, lambda e: seen.append(e.kind))
        bad = small_spec(nic_mode="warp", label="bad")
        policy = FarmPolicy(retries=1, retry_errors=True)
        FarmEngine(executor="pool", cache=False, policy=policy, bus=bus,
                   sleep=lambda s: None).run([bad])
        assert seen == [EventKind.FARM_DISPATCH, EventKind.FARM_RETRY,
                        EventKind.FARM_DISPATCH]

    def test_cache_hit_skips_dispatch(self, tmp_path):
        spec = small_spec()
        warmup = FarmEngine(executor="pool", cache_dir=tmp_path)
        warmup.run([spec])
        assert warmup.stats.executed == 1
        again = FarmEngine(executor="pool", cache_dir=tmp_path)
        (point,) = again.run([spec])
        assert again.stats.cache_hits == 1 and again.stats.executed == 0
        assert point.cached


class TestCrashSurvival:
    """The acceptance criteria: hard deaths retried, quarantined, resumed."""

    def campaign(self, tmp_path, flag):
        return [
            small_spec(seed=1, label="seed=1"),
            crash_spec(flag=flag),
            small_spec(seed=3, label="seed=3"),
        ]

    def baseline(self, tmp_path, flag):
        """Uninterrupted serial truth: the crash disarmed up front."""
        flag.write_text("disarmed\n")
        points = SweepEngine(jobs=1, cache=False).run(
            self.campaign(tmp_path, flag)
        )
        flag.unlink()
        return [point_tuple(p) for p in points]

    def test_worker_death_is_retried_to_success(self, tmp_path):
        flag = tmp_path / "armed.flag"
        truth = self.baseline(tmp_path, flag)
        specs = self.campaign(tmp_path, flag)
        farm = FarmEngine(
            executor="subprocess", cache=False,
            policy=FarmPolicy(retries=2, backoff_base=0.0),
            manifest=RunManifest.new("kill1", specs, "subprocess", {},
                                     path=tmp_path / "kill1.json"),
        )
        points = farm.run(specs)
        # Attempt 1 of the crasher died hard (exit 86); attempt 2 ran
        # clean and the whole campaign is byte-identical to the baseline.
        assert [point_tuple(p) for p in points] == truth
        assert farm.stats.worker_deaths == 1
        assert farm.stats.retries == 1
        assert farm.stats.errors == 0
        crasher = farm.manifest.points[1]
        assert crasher.attempts == 2 and crasher.worker_deaths == 1
        assert crasher.state == "done"

    def test_exit_status_is_diagnosed(self, tmp_path):
        from repro.traffic.crashpoint import CRASH_EXIT_CODE

        spec = crash_spec()  # no flag: crashes on every attempt
        farm = FarmEngine(executor="subprocess", cache=False,
                          policy=FarmPolicy(retries=0))
        (point,) = farm.run([spec])
        assert point.worker_died and point.error is not None
        assert f"status {CRASH_EXIT_CODE}" in point.error

    def test_persistent_crasher_is_poisoned(self, tmp_path):
        spec = crash_spec()
        policy = FarmPolicy(retries=3, backoff_base=0.0)
        farm = FarmEngine(
            executor="subprocess", cache=False, policy=policy,
            manifest=RunManifest.new("poison", [spec], "subprocess", {},
                                     path=tmp_path / "poison.json"),
        )
        (point,) = farm.run([spec])
        assert point.poisoned and point.worker_died
        assert farm.stats.poisoned == 1
        assert farm.stats.worker_deaths == policy.poison_threshold
        assert farm.manifest.points[0].state == "poisoned"
        # Quarantine is durable: a resume does not touch the point again.
        resumed = FarmEngine(
            executor="subprocess", cache=False, policy=policy,
            manifest=RunManifest.load(tmp_path / "poison.json"),
        )
        (again,) = resumed.run([spec])
        assert again.poisoned and resumed.stats.resumed == 1
        assert resumed.stats.worker_deaths == 0  # nothing re-ran

    def test_poison_after_caps_deaths_below_budget(self, tmp_path):
        spec = crash_spec()
        policy = FarmPolicy(retries=5, poison_after=2, backoff_base=0.0)
        farm = FarmEngine(executor="subprocess", cache=False, policy=policy)
        (point,) = farm.run([spec])
        assert point.poisoned
        assert farm.stats.worker_deaths == 2
        assert farm.manifest.points[0].attempts == 2

    def test_pool_backend_contains_hard_death(self, tmp_path):
        # The shared pool breaks on a hard death; the backend must
        # regenerate it and the farm must retry to a clean finish.
        flag = tmp_path / "armed.flag"
        truth = self.baseline(tmp_path, flag)
        specs = self.campaign(tmp_path, flag)
        farm = FarmEngine(executor="pool", cache=False,
                          policy=FarmPolicy(retries=2, backoff_base=0.0))
        points = farm.run(specs)
        assert [point_tuple(p) for p in points] == truth
        assert farm.stats.worker_deaths >= 1
        assert farm.stats.errors == 0


class TestFarmCli:
    def farm(self, tmp_path, *extra):
        from repro.cli import main

        return main([
            "farm", "--network", "mesh2d", "--nodes", "16",
            "--cycles", "2000", "--gaps", "800,400", "--no-cache",
            "--manifest-dir", str(tmp_path), "--quiet", *extra,
        ])

    def test_fresh_then_auto_resume_byte_identical(self, tmp_path, capsys):
        assert self.farm(tmp_path) == 0
        first = capsys.readouterr().out
        assert "gap=800" in first and "delivered=" in first
        (manifest_path,) = tmp_path.glob("*.json")
        record = load_record(manifest_path)
        assert record.complete and record.stats["executed"] == 2

        # Same command again: resumes the complete campaign, runs nothing.
        assert self.farm(tmp_path) == 0
        assert capsys.readouterr().out == first
        assert load_record(manifest_path).stats["resumed"] == 2

    def test_explicit_resume_needs_no_grid_flags(self, tmp_path, capsys):
        from repro.cli import main

        assert self.farm(tmp_path) == 0
        first = capsys.readouterr().out
        (manifest_path,) = tmp_path.glob("*.json")
        assert main(["farm", "--resume", str(manifest_path), "--no-cache",
                     "--quiet"]) == 0
        assert capsys.readouterr().out == first

    def test_fresh_needs_network(self, capsys):
        from repro.cli import main

        assert main(["farm", "--quiet"]) == 2
        assert "--network is required" in capsys.readouterr().err
