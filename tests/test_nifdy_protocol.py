"""End-to-end tests of the NIFDY protocol: admission control, in-order
delivery, bulk dialogs, and the Section 6.1 extensions."""

import pytest

from repro.nic import NifdyNIC, NifdyParams
from repro.packets import PacketKind
from repro.sim import Simulator

from conftest import build_with_nics, drain_all, simple_packet


def feed(sim, nic, packets, every=10):
    """Push packets into a NIC, retrying while its pool is full."""
    queue = list(packets)

    def pump():
        while queue and nic.try_send(queue[0]):
            queue.pop(0)
        if queue:
            sim.schedule(every, pump)

    sim.schedule(0, pump)


def sample_invariant(sim, fn, every=7, until=100_000):
    """Evaluate ``fn`` periodically; collect its values."""
    values = []

    def probe():
        values.append(fn())
        if sim.now < until:
            sim.schedule(every, probe)

    sim.schedule(0, probe)
    return values


def stream(node_id, dst, count, factory_kwargs=None, **packet_kwargs):
    from repro.traffic import PacketFactory

    factory = PacketFactory(node_id, **(factory_kwargs or {}))
    return factory.message(dst, count)


class TestScalarProtocol:
    def test_one_outstanding_packet_per_destination(self):
        sim, net, nics = build_with_nics(
            "mesh2d", 16, nic="nifdy", params=NifdyParams(dialogs=0, window=0)
        )
        packets = stream(0, 15, 12, {"bulk_threshold": 10 ** 9})
        feed(sim, nics[0], packets)
        outstanding = sample_invariant(sim, lambda: nics[0].outstanding, until=40_000)
        delivered = drain_all(sim, nics, 12)
        assert len(delivered) == 12
        assert max(outstanding) <= 1  # single destination -> one in flight

    def test_opt_bounds_total_outstanding(self):
        params = NifdyParams(opt_size=2, pool_size=8, dialogs=0, window=0)
        sim, net, nics = build_with_nics("fattree", 16, nic="nifdy", params=params)
        packets = []
        for dst in (1, 5, 9, 13):
            packets.extend(stream(0, dst, 4, {"bulk_threshold": 10 ** 9}))
        feed(sim, nics[0], packets)
        outstanding = sample_invariant(sim, lambda: nics[0].outstanding, until=60_000)
        delivered = drain_all(sim, nics, 16)
        assert len(delivered) == 16
        assert max(outstanding) <= 2

    def test_streams_to_distinct_destinations_interleave(self):
        """The pool + OPT let packets to different destinations overlap:
        total time for two streams is far less than twice one stream."""
        def run(dsts):
            params = NifdyParams(opt_size=8, pool_size=8, dialogs=0, window=0)
            sim, net, nics = build_with_nics("fattree", 16, nic="nifdy", params=params)
            packets = []
            for dst in dsts:
                packets.extend(stream(0, dst, 6, {"bulk_threshold": 10 ** 9}))
            feed(sim, nics[0], packets)
            delivered = drain_all(sim, nics, 6 * len(dsts))
            assert len(delivered) == 6 * len(dsts)
            return max(p.delivered_cycle for p in delivered)

        one = run([9])
        two = run([9, 10])
        assert two < 2 * one * 0.8

    def test_in_order_delivery_on_adaptive_network(self):
        sim, net, nics = build_with_nics("multibutterfly", 64, nic="nifdy")
        assert not net.delivers_in_order
        packets = stream(0, 63, 25)
        feed(sim, nics[0], packets)
        delivered = drain_all(sim, nics, 25)
        assert [p.pair_seq for p in delivered] == list(range(25))

    def test_acks_are_consumed_by_nic_not_processor(self):
        sim, net, nics = build_with_nics("mesh2d", 4, nic="nifdy")
        feed(sim, nics[0], stream(0, 3, 5, {"bulk_threshold": 10 ** 9}))
        delivered = drain_all(sim, nics, 5)
        assert all(p.kind is not PacketKind.ACK for p in delivered)
        assert nics[0].acks_received == 5
        assert nics[3].acks_sent == 5

    def test_slow_receiver_throttles_sender(self):
        """If the destination never polls, the sender injects exactly one
        packet to it and blocks (Section 1.2)."""
        sim, net, nics = build_with_nics("mesh2d", 4, nic="nifdy")
        feed(sim, nics[0], stream(0, 3, 6, {"bulk_threshold": 10 ** 9}))
        sim.run_until(50_000)  # nobody receives
        assert nics[0].scalar_sent == 1
        # once the receiver starts polling everything flows
        delivered = drain_all(sim, nics, 6)
        assert len(delivered) == 6


class TestBulkProtocol:
    def test_dialog_granted_and_used(self):
        params = NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=4)
        sim, net, nics = build_with_nics("fattree", 16, nic="nifdy", params=params)
        feed(sim, nics[0], stream(0, 9, 12, {"bulk_threshold": 4}))
        delivered = drain_all(sim, nics, 12)
        assert len(delivered) == 12
        assert [p.pair_seq for p in delivered] == list(range(12))
        assert nics[9].bulk_grants == 1
        assert nics[0].bulk_sent > 0
        # dialog torn down afterwards
        assert nics[0]._bulk_out is None
        assert nics[9]._rx_dialogs == {}
        assert sorted(nics[9]._free_dialogs) == [0]

    def test_window_never_exceeded(self):
        """The receiver's reorder store raises if a sender overruns W; a
        long bulk transfer must complete without tripping it."""
        params = NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=4)
        sim, net, nics = build_with_nics("multibutterfly", 64, nic="nifdy", params=params)
        feed(sim, nics[0], stream(0, 63, 40, {"bulk_threshold": 4}))
        delivered = drain_all(sim, nics, 40)
        assert len(delivered) == 40
        assert [p.pair_seq for p in delivered] == list(range(40))

    def test_dialog_rejected_when_slots_busy(self):
        params = NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=4)
        sim, net, nics = build_with_nics("fattree", 16, nic="nifdy", params=params)
        feed(sim, nics[1], stream(1, 0, 30, {"bulk_threshold": 4}))
        feed(sim, nics[2], stream(2, 0, 30, {"bulk_threshold": 4}))
        delivered = drain_all(sim, nics, 60)
        assert len(delivered) == 60
        assert nics[0].bulk_rejects > 0
        # rejected sender kept going in scalar mode; both streams in order
        by_src = {1: [], 2: []}
        for p in delivered:
            by_src[p.src].append(p.pair_seq)
        assert by_src[1] == sorted(by_src[1])
        assert by_src[2] == sorted(by_src[2])

    def test_two_dialog_slots_serve_two_senders(self):
        params = NifdyParams(opt_size=4, pool_size=8, dialogs=2, window=4)
        sim, net, nics = build_with_nics("fattree", 16, nic="nifdy", params=params)
        feed(sim, nics[1], stream(1, 0, 20, {"bulk_threshold": 4}))
        feed(sim, nics[2], stream(2, 0, 20, {"bulk_threshold": 4}))
        delivered = drain_all(sim, nics, 40)
        assert len(delivered) == 40
        assert nics[0].bulk_grants == 2
        assert nics[0].bulk_rejects == 0

    def test_orphan_grant_freed_with_control_exit(self):
        """A single-packet message requests bulk; the grant arrives after
        the message is done, so the sender must free the receiver's dialog
        slot with a header-only exit packet."""
        params = NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=4)
        sim, net, nics = build_with_nics("mesh2d", 4, nic="nifdy", params=params)
        pkt = stream(0, 3, 1, {"bulk_threshold": 1})[0]
        assert pkt.bulk_request
        feed(sim, nics[0], [pkt])
        delivered = drain_all(sim, nics, 1)
        assert len(delivered) == 1
        sim.run_until(sim.now + 20_000)
        assert nics[3]._rx_dialogs == {}
        assert sorted(nics[3]._free_dialogs) == [0]
        assert nics[0]._bulk_out is None

    def test_one_outgoing_dialog_at_a_time(self):
        """Bulk requests to a second destination are suppressed while a
        dialog is active: the second stream proceeds scalar."""
        params = NifdyParams(opt_size=8, pool_size=16, dialogs=1, window=4)
        sim, net, nics = build_with_nics("fattree", 16, nic="nifdy", params=params)
        packets = stream(0, 9, 20, {"bulk_threshold": 4})
        packets += stream(0, 10, 20, {"bulk_threshold": 4})
        feed(sim, nics[0], packets)
        delivered = drain_all(sim, nics, 40)
        assert len(delivered) == 40
        for dst in (9, 10):
            seqs = [p.pair_seq for p in delivered if p.dst == dst]
            assert seqs == sorted(seqs)

    def test_bulk_disabled_falls_back_to_scalar(self):
        params = NifdyParams(opt_size=4, pool_size=8, dialogs=0, window=0)
        sim, net, nics = build_with_nics("fattree", 16, nic="nifdy", params=params)
        feed(sim, nics[0], stream(0, 9, 10, {"bulk_threshold": 2}))
        delivered = drain_all(sim, nics, 10)
        assert len(delivered) == 10
        assert nics[0].bulk_sent == 0


class TestExtensions:
    def test_no_ack_packets_skip_protocol(self):
        sim, net, nics = build_with_nics("mesh2d", 4, nic="nifdy")
        packets = stream(0, 3, 5, {"bulk_threshold": 10 ** 9, "needs_ack": False})
        feed(sim, nics[0], packets)
        delivered = drain_all(sim, nics, 5)
        assert len(delivered) == 5
        assert nics[3].acks_sent == 0
        assert nics[0].outstanding == 0

    def test_ack_on_insert_ablation_still_correct(self):
        params = NifdyParams(scalar_ack_on_insert=True, dialogs=0, window=0)
        sim, net, nics = build_with_nics("mesh2d", 16, nic="nifdy", params=params)
        feed(sim, nics[0], stream(0, 15, 10, {"bulk_threshold": 10 ** 9}))
        delivered = drain_all(sim, nics, 10)
        assert [p.pair_seq for p in delivered] == list(range(10))

    def test_per_packet_ack_ablation(self):
        params = NifdyParams(dialogs=1, window=4, ack_every=1)
        sim, net, nics = build_with_nics("fattree", 16, nic="nifdy", params=params)
        feed(sim, nics[0], stream(0, 9, 16, {"bulk_threshold": 4}))
        delivered = drain_all(sim, nics, 16)
        assert [p.pair_seq for p in delivered] == list(range(16))


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            NifdyParams(opt_size=0)
        with pytest.raises(ValueError):
            NifdyParams(window=1)
        with pytest.raises(ValueError):
            NifdyParams(dialogs=-1)

    def test_total_buffers_budget(self):
        p = NifdyParams(opt_size=8, pool_size=8, dialogs=1, window=8,
                        arrivals_capacity=2)
        assert p.total_buffers == 8 + 2 + 8
        q = NifdyParams(pool_size=4, dialogs=0, window=0)
        assert q.total_buffers == 4 + 2

    def test_ack_interval_default_half_window(self):
        assert NifdyParams(window=8).ack_interval == 4
        assert NifdyParams(window=8, ack_every=1).ack_interval == 1

    def test_guarantees_order(self):
        assert NifdyNIC(Simulator(), 0).guarantees_order
