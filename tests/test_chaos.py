"""Tests for the chaos engine: shrinking, artifacts, replay, determinism."""

import json
from dataclasses import dataclass

import pytest

from repro.cli import main as cli_main
from repro.faults import FaultEvent
from repro.node import PollFor, TrafficDriver
from repro.traffic import CShiftConfig, TrafficSpec, register_traffic
from repro.validate import (
    ChaosConfig,
    ChaosEngine,
    replay_artifact,
    shrink_fault_plan,
    shrink_traffic_config,
)


def _burst(at, until=None, prob=0.1):
    return FaultEvent(kind="loss_burst", at=at, until=until or at + 100,
                      prob=prob)


# ---------------------------------------------------------------- shrinking
class TestShrinkFaultPlan:
    def test_reduces_to_the_one_guilty_event(self):
        guilty = _burst(500)
        events = [_burst(100), _burst(200), guilty, _burst(300), _burst(400)]
        probes_seen = []

        def predicate(candidate):
            probes_seen.append(len(candidate))
            return guilty in candidate

        shrunk, probes = shrink_fault_plan(events, predicate, budget=40)
        assert shrunk == [guilty]
        assert probes == len(probes_seen) <= 40

    def test_two_interacting_events_both_survive(self):
        a, b = _burst(100), _burst(900)
        events = [_burst(200), a, _burst(300), b]
        shrunk, _ = shrink_fault_plan(
            events, lambda c: a in c and b in c, budget=40,
        )
        assert a in shrunk and b in shrunk
        assert len(shrunk) <= len(events)

    def test_empty_plan_tried_first(self):
        probes = []

        def predicate(candidate):
            probes.append(list(candidate))
            return True  # failure needs no faults at all

        shrunk, spent = shrink_fault_plan(
            [_burst(100), _burst(200)], predicate, budget=10,
        )
        assert shrunk == [] and spent == 1
        assert probes == [[]]

    def test_budget_bounds_the_probe_count(self):
        events = [_burst(100 * i) for i in range(1, 9)]
        calls = []

        def predicate(candidate):
            calls.append(1)
            return events[0] in candidate

        shrink_fault_plan(events, predicate, budget=5)
        assert len(calls) <= 5

    def test_never_grows(self):
        events = [_burst(100)]
        shrunk, _ = shrink_fault_plan(events, lambda c: True, budget=10)
        assert len(shrunk) <= 1


class TestShrinkTrafficConfig:
    def test_halves_integer_knobs_while_failing(self):
        config = CShiftConfig(words_per_phase=120)

        def predicate(candidate):
            return candidate.words_per_phase >= 30  # fails down to 30

        shrunk, probes = shrink_traffic_config(config, predicate, budget=20)
        assert shrunk.words_per_phase == 30
        assert probes <= 20

    def test_bools_and_validated_fields_are_safe(self):
        @dataclass
        class Picky:
            flag: bool = True
            count: int = 8

            def __post_init__(self):
                if self.count < 4:
                    raise ValueError("too small")

        shrunk, _ = shrink_traffic_config(Picky(), lambda c: True, budget=20)
        assert shrunk.flag is True        # bools untouched
        assert shrunk.count == 4          # stopped at the validator's floor


# --------------------------------------------------------------- end-to-end
@dataclass
class BlackholeConfig:
    """Nodes poll forever and never declare Done: a guaranteed stall."""

    spin: int = 500


class BlackholeDriver(TrafficDriver):
    def __init__(self, config):
        self.config = config

    def next_action(self):
        return PollFor(self.config.spin)

    def on_packet(self, packet):
        pass


@pytest.fixture(autouse=True)
def _blackhole_registered():
    """Register the stall workload for this module only, then clean up so
    registry-completeness assertions elsewhere stay honest."""
    from repro.traffic import registry

    register_traffic(
        "blackhole", BlackholeConfig,
        lambda node, n, cfg, rngf, exploit: BlackholeDriver(cfg),
    )
    try:
        yield
    finally:
        registry._REGISTRY.pop("blackhole", None)


def _broken_config(tmp_path, trials=1, **overrides):
    base = dict(
        trials=trials, seed=0, traffics=("blackhole",), num_nodes=4,
        watchdog_cycles=5_000, max_cycles=100_000, shrink_budget=8,
        artifact_dir=str(tmp_path),
    )
    base.update(overrides)
    return ChaosConfig(**base)


class TestChaosEndToEnd:
    def test_clean_batch_reports_ok(self, tmp_path):
        report = ChaosEngine(ChaosConfig(
            trials=3, seed=0, artifact_dir=str(tmp_path),
        )).run()
        assert report.ok and report.trials == 3
        assert not list(tmp_path.glob("*.json"))

    def test_failure_is_shrunk_archived_and_replayable(self, tmp_path):
        report = ChaosEngine(_broken_config(tmp_path)).run()
        assert not report.ok
        (finding,) = report.findings
        assert finding.failure == "stall"
        # Acceptance criterion: the shrunk plan is never larger.
        assert finding.shrunk_events <= finding.original_events
        # The blackhole stalls with or without faults, so ddmin's first
        # probe (the empty plan) must have won.
        assert finding.shrunk_events == 0

        doc = json.loads(open(finding.artifact).read())
        assert doc["kind"] == "repro-chaos-reproducer"
        assert doc["failure"] == "stall"
        assert doc["spec"]["observe"]["validate"] is True

        reproduced, failure, _ = replay_artifact(finding.artifact)
        assert reproduced and failure == "stall"

    def test_trial_specs_are_deterministic(self, tmp_path):
        config = _broken_config(tmp_path)
        a, b = ChaosEngine(config), ChaosEngine(config)
        for trial in range(4):
            assert (
                a.trial_spec(trial).content_hash()
                == b.trial_spec(trial).content_hash()
            )
        # Different seeds draw different trials.
        other = ChaosEngine(_broken_config(tmp_path, seed=1))
        assert (
            a.trial_spec(0).content_hash() != other.trial_spec(0).content_hash()
        )

    def test_generated_link_failures_name_real_links(self):
        engine = ChaosEngine(ChaosConfig(trials=0, seed=3))
        rng = engine._trial_rng(0)
        names = set(engine.link_names)
        for _ in range(50):
            fault = engine._random_fault(rng)
            if fault.kind == "link_fail":
                assert fault.link in names
            assert fault.until is None or fault.until <= engine.config.fault_window

    def test_trial_specs_survive_json(self):
        engine = ChaosEngine(ChaosConfig(trials=2, seed=0))
        for trial in range(2):
            spec = engine.trial_spec(trial)
            from repro.experiments import ExperimentSpec

            assert ExperimentSpec.from_json(spec.to_json()) == spec


class TestChaosCli:
    def test_replay_exit_codes(self, tmp_path, capsys):
        report = ChaosEngine(_broken_config(tmp_path)).run()
        artifact = report.findings[0].artifact
        assert cli_main(["chaos", "--replay", artifact]) == 0
        assert "reproduced: stall" in capsys.readouterr().out

        # An artifact claiming a failure the spec does not exhibit: exit 2.
        doc = json.loads(open(artifact).read())
        clean = doc.copy()
        clean["failure"] = "invariant:exactly_once"
        clean["spec"] = clean["spec"].copy()
        clean["spec"]["traffic"] = TrafficSpec(
            "cshift", CShiftConfig(words_per_phase=24),
        ).to_dict()
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps(clean))
        assert cli_main(["chaos", "--replay", str(stale)]) == 2
        assert "did NOT reproduce" in capsys.readouterr().out

    def test_replay_rejects_foreign_json(self, tmp_path):
        bogus = tmp_path / "not-an-artifact.json"
        bogus.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="not a chaos reproducer"):
            cli_main(["chaos", "--replay", str(bogus)])

    def test_batch_exit_codes(self, tmp_path, capsys):
        code = cli_main([
            "chaos", "--trials", "2", "--seed", "0", "--quiet",
            "--artifact-dir", str(tmp_path / "clean"),
        ])
        assert code == 0
        assert "no failures" in capsys.readouterr().out
