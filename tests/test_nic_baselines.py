"""Tests for the baseline NICs (plain and buffers-only)."""

import pytest

from repro.nic import BufferedNIC, PlainNIC
from repro.sim import Simulator

from conftest import build_with_nics, drain_all, simple_packet


class TestPlainNIC:
    def test_out_capacity_backpressures_processor(self):
        sim, net, nics = build_with_nics("mesh2d", 4)
        # rebuild with the default 1-slot staging NIC
        from repro.networks import build_network
        from repro.sim import Simulator as S

        sim = S()
        net = build_network("mesh2d", sim, 4)
        nics = net.attach_nics(lambda n: PlainNIC(sim, n, out_capacity=1))
        nic = nics[0]
        accepted = 0
        for i in range(6):
            accepted += nic.try_send(simple_packet(0, 3))
        # 1 queued + up to a couple drained into injection streams
        assert accepted < 6
        assert not nic.can_send() or nic.pending_out == 0

    def test_arrivals_fifo_backpressure(self):
        """With a 1-packet arrivals FIFO and nobody receiving, later packets
        stall in the network (credits withheld)."""
        sim = Simulator()
        from repro.networks import build_network

        net = build_network("mesh2d", sim, 4)
        nics = net.attach_nics(
            lambda n: PlainNIC(sim, n, out_capacity=16, arrivals_capacity=1)
        )
        for i in range(4):
            nics[0].try_send(simple_packet(0, 3))
        sim.run_until(50_000)
        assert nics[3].packets_ejected < 4  # some never reached the NIC
        # now drain: everything arrives
        got = drain_all(sim, nics, 4)
        assert len(got) == 4

    def test_receive_returns_none_when_empty(self):
        sim = Simulator()
        from repro.networks import build_network

        net = build_network("mesh2d", sim, 4)
        nics = net.attach_nics(lambda n: PlainNIC(sim, n))
        assert nics[0].receive() is None
        assert not nics[0].has_arrival()

    def test_does_not_guarantee_order(self):
        sim = Simulator()
        assert PlainNIC(sim, 0).guarantees_order is False

    def test_bad_capacities_rejected(self):
        with pytest.raises(ValueError):
            PlainNIC(Simulator(), 0, out_capacity=0)
        with pytest.raises(ValueError):
            PlainNIC(Simulator(), 0, arrivals_capacity=0)


class TestBufferedNIC:
    def test_budget_split_half_to_arrivals(self):
        nic = BufferedNIC(Simulator(), 0, total_buffers=16)
        assert nic.arrivals_capacity == 8
        assert nic.out_capacity == 8

    def test_odd_budget(self):
        nic = BufferedNIC(Simulator(), 0, total_buffers=9)
        assert nic.arrivals_capacity + nic.out_capacity == 9
        assert nic.arrivals_capacity >= nic.out_capacity

    def test_accepts_bursts_plain_rejects(self):
        sim = Simulator()
        from repro.networks import build_network

        net = build_network("mesh2d", sim, 4)
        nics = net.attach_nics(lambda n: BufferedNIC(sim, n, total_buffers=16))
        accepted = sum(nics[0].try_send(simple_packet(0, 3)) for _ in range(8))
        assert accepted == 8

    def test_minimum_budget_enforced(self):
        with pytest.raises(ValueError):
            BufferedNIC(Simulator(), 0, total_buffers=1)

    def test_head_of_line_blocking(self):
        """The buffers-only outgoing queue is FIFO: packets to a free node
        wait behind packets to a congested one (NIFDY's pool would not)."""
        sim = Simulator()
        from repro.networks import build_network

        net = build_network("mesh2d", sim, 16)
        nics = net.attach_nics(
            lambda n: BufferedNIC(sim, n, total_buffers=8)
            if n == 0
            else PlainNIC(sim, n, arrivals_capacity=1)
        )
        # Saturate destination 15 (nobody drains it), then queue a packet
        # for destination 1 behind the jam.
        for _ in range(3):
            nics[0].try_send(simple_packet(0, 15))
        nics[0].try_send(simple_packet(0, 1))
        # Drain only node 1's NIC.
        got = []

        def poll():
            pkt = nics[1].receive()
            if pkt is not None:
                got.append(pkt)
                nics[1].accepted(pkt)
            else:
                sim.schedule(25, poll)

        sim.schedule(25, poll)
        sim.run_until(60_000)
        # The packet to node 1 is stuck behind the un-drained stream to 15
        # only while 15's backlog fills the path; with out_capacity 4 the
        # stream to 15 keeps the FIFO busy ahead of it.  It does arrive
        # eventually once the network absorbs what it can.
        assert len(got) <= 1
