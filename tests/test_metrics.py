"""Tests for the metrics collector and the Figure 5 congestion tracker."""

from repro.metrics import CongestionTracker, LatencyStats, MetricsCollector
from repro.sim import Simulator

from conftest import simple_packet


class TestLatencyStats:
    def test_accumulates(self):
        stats = LatencyStats()
        for value in (10, 20, 60):
            stats.note(value)
        assert stats.count == 3
        assert stats.mean == 30
        assert stats.maximum == 60

    def test_empty_mean_is_zero(self):
        assert LatencyStats().mean == 0.0


class TestCollector:
    def test_send_accept_accounting(self):
        collector = MetricsCollector(4)
        pkt = simple_packet(0, 2, pair_seq=0)
        pkt.created_cycle = 0
        pkt.injected_cycle = 10
        pkt.delivered_cycle = 50
        collector.note_send(pkt)
        collector.note_inject(pkt)
        assert collector.in_flight == 1
        assert collector.pending_per_receiver[2] == 1
        collector.note_accept(pkt)
        assert collector.in_flight == 0
        assert collector.pending_per_receiver[2] == 0
        assert collector.network_latency.mean == 40
        assert collector.total_latency.mean == 50

    def test_order_violation_detected(self):
        collector = MetricsCollector(4, check_order=True)
        first = simple_packet(0, 1, pair_seq=1)
        second = simple_packet(0, 1, pair_seq=0)
        for p in (first, second):
            p.delivered_cycle = 1
            collector.note_accept(p)
        assert collector.order_violations == 1

    def test_in_order_stream_clean(self):
        collector = MetricsCollector(4, check_order=True)
        for i in range(10):
            p = simple_packet(0, 1, pair_seq=i)
            p.delivered_cycle = i
            collector.note_accept(p)
        assert collector.order_violations == 0

    def test_pairs_tracked_independently(self):
        collector = MetricsCollector(4, check_order=True)
        for src in (0, 2):
            for i in range(3):
                p = simple_packet(src, 1, pair_seq=i)
                p.delivered_cycle = 1
                collector.note_accept(p)
        assert collector.order_violations == 0


class TestCongestionTracker:
    def test_sampling_cadence(self):
        sim = Simulator()
        collector = MetricsCollector(4)
        tracker = CongestionTracker(sim, collector, sample_every=100)
        tracker.start()
        sim.run_until(1000)
        tracker.stop()
        assert len(tracker.samples) == 10
        assert tracker.sample_cycles[:3] == [0, 100, 200]

    def test_snapshots_reflect_pending(self):
        sim = Simulator()
        collector = MetricsCollector(4)
        tracker = CongestionTracker(sim, collector, sample_every=10)
        pkt = simple_packet(0, 3)

        def inject():
            pkt.injected_cycle = sim.now
            collector.note_inject(pkt)

        sim.schedule(5, inject)

        def accept():
            pkt.delivered_cycle = sim.now
            collector.note_accept(pkt)

        sim.schedule(35, accept)
        tracker.start()
        sim.run_until(60)
        per_sample = [row[3] for row in tracker.samples]
        assert per_sample == [0, 1, 1, 1, 0, 0]

    def test_peak_and_heatmap(self):
        sim = Simulator()
        collector = MetricsCollector(4)
        tracker = CongestionTracker(sim, collector, sample_every=10)
        for _ in range(25):
            collector.note_inject(simple_packet(0, 2))
        tracker.start()
        sim.run_until(20)
        assert tracker.peak_pending() == 25
        rows = tracker.heatmap_rows()
        assert len(rows) == 2
        assert rows[0][2] == "@"  # saturated at 20+
        assert rows[0][0] == " "
