"""Tests for the unified results schema (repro.report.schema).

Round-trips every record kind through ``to_dict`` -> ``load_record``, and
migrates a hand-built copy of every *pre-schema* (v0) JSON shape this
repo has archived: bench records with engine stats buried in ``data``,
``BENCH_summary.json`` with the kernel numbers only inside the kernel
bench, sweep-cache entries, chaos reproducers, and ``repro perf --json``
files without a speedup field.
"""

import json

import pytest

from repro.report.schema import (
    CAMPAIGN_POINT_STATES,
    CAMPAIGN_TERMINAL_STATES,
    RUN_STATS_FIELDS,
    SCHEMA_VERSION,
    BenchRecord,
    BenchSummary,
    CampaignRecord,
    ChaosArtifact,
    EngineStats,
    HistorySnapshot,
    KernelPerfRecord,
    KernelRun,
    RunStats,
    SchemaError,
    SweepPointRecord,
    SweepRecord,
    load_record,
    load_results_tree,
    sniff_kind,
    write_record_atomic,
)


def _run_stats(**overrides):
    base = dict(
        network="8x8 mesh", nic_mode="nifdy", num_nodes=64, cycles=20_000,
        sent=5_000, delivered=4_800, completed=True, order_violations=0,
        mean_network_latency=120.5, mean_total_latency=240.25, abandoned=0,
        stall_report=None, violations=[],
    )
    base.update(overrides)
    return RunStats(**base)


class TestRoundTrip:
    """to_dict -> load_record reproduces the dataclass for every kind."""

    def test_run_stats(self):
        stats = _run_stats()
        doc = stats.to_dict(stamped=True)
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["kind"] == "repro-run"
        assert load_record(doc) == stats

    def test_bench_record(self):
        record = BenchRecord(
            bench="test_fig2", bench_cycles=20_000, bench_seed=11,
            wall_seconds=1.25, data={"delivered": {"mesh2d": {"plain": 10}}},
            engine=EngineStats(points=24, cache_hits=24, hit_rate=1.0),
        )
        assert load_record(record.to_dict()) == record

    def test_kernel_perf(self):
        record = KernelPerfRecord(
            workload={"network": "fattree", "cycles": 20_000},
            kernels={
                "heap": KernelRun(events=100, loop_seconds=2.0,
                                  events_per_sec=50.0, delivered=7),
                "bucket": KernelRun(events=100, loop_seconds=1.0,
                                    events_per_sec=100.0, delivered=7),
            },
            speedup=2.0, parity_ok=True,
        )
        assert load_record(record.to_dict()) == record

    def test_sweep_point(self):
        record = SweepPointRecord(
            spec={"network": "mesh2d", "seed": 3}, code_version="abc123",
            result=_run_stats(),
        )
        assert load_record(record.to_dict()) == record

    def test_sweep_record(self):
        record = SweepRecord(
            sweep="load", network="mesh2d",
            points=[{"label": "gap=800", "delivered": 184}],
            engine=EngineStats(points=2, executed=2),
        )
        assert load_record(record.to_dict()) == record

    def test_chaos_artifact(self):
        record = ChaosArtifact(
            failure="invariant:exactly_once", detail="uid 7 delivered twice",
            spec={"network": "fattree"}, trial=3, engine_seed=99,
            original_events=5, shrunk_events=1, shrink_probes=12,
        )
        assert load_record(record.to_dict()) == record
        assert record.failure_class == "invariant"

    def test_campaign_record(self):
        record = CampaignRecord(
            campaign_id="abc123def456", created="2026-08-08T12:00:00Z",
            executor="subprocess", code_version="deadbeef",
            policy={"retries": 2, "seed": 0},
            specs=[{"network": "mesh2d", "seed": 1}],
            points=[{"index": 0, "spec_hash": "aa", "label": "gap=800",
                     "state": "done", "attempts": 2, "worker_deaths": 1,
                     "error": None, "result": {"delivered": 10}}],
            stats={"points": 1, "executed": 1, "retries": 1},
        )
        doc = record.to_dict()
        assert doc["kind"] == "repro-campaign"
        assert sniff_kind(doc) == "repro-campaign"
        assert load_record(doc) == record
        assert record.complete
        assert record.state_counts()["done"] == 1

    def test_campaign_state_vocabulary(self):
        # Terminal states are a subset of the ledger vocabulary; "running"
        # and "pending" must never count as settled.
        assert set(CAMPAIGN_TERMINAL_STATES) < set(CAMPAIGN_POINT_STATES)
        assert "pending" not in CAMPAIGN_TERMINAL_STATES
        assert "running" not in CAMPAIGN_TERMINAL_STATES
        incomplete = CampaignRecord(
            campaign_id="c", points=[{"state": "pending"}],
        )
        assert not incomplete.complete
        assert incomplete.state_counts()["pending"] == 1

    def test_bench_summary_carries_campaigns(self):
        summary = BenchSummary(
            campaigns={"c1": CampaignRecord(campaign_id="c1",
                                            executor="pool")},
        )
        loaded = load_record(summary.to_dict())
        assert loaded.campaigns["c1"].executor == "pool"

    def test_bench_summary(self):
        summary = BenchSummary(
            benches={"test_fig2": BenchRecord(bench="test_fig2")},
            kernel=KernelPerfRecord(speedup=1.5),
        )
        loaded = load_record(summary.to_dict())
        assert loaded.bench_count == 1
        assert loaded.kernel.speedup == 1.5

    def test_history_snapshot(self):
        snap = HistorySnapshot(
            timestamp="20260808T120000Z", git_sha="abc1234", bench_count=3,
            session_benches=["test_fig2"], bench_wall={"test_fig2": 1.5},
            kernel_events_per_sec={"bucket": 100.0}, kernel_speedup=1.6,
            bench_cycles=20_000,
        )
        assert load_record(snap.to_dict()) == snap
        assert snap.wall_total == 1.5

    def test_json_serialisable(self):
        # Every stamped doc must survive an actual JSON round trip.
        for record in (_run_stats(), BenchRecord(bench="b"),
                       KernelPerfRecord(), ChaosArtifact(),
                       HistorySnapshot(), SweepRecord()):
            doc = (record.to_dict(stamped=True)
                   if isinstance(record, RunStats) else record.to_dict())
            assert load_record(json.loads(json.dumps(doc))) == record


class TestV0Migration:
    """Every pre-schema shape on disk loads into the current dataclass."""

    def test_v0_bench_with_embedded_engine(self):
        doc = {
            "bench": "test_fig2_heavy_synthetic",
            "bench_cycles": 20000, "bench_seed": 11, "wall_seconds": 38.1,
            "data": {
                "delivered": {"mesh2d": {"plain": 100, "nifdy-": 120}},
                "engine": {"points": 24, "cache_hits": 24, "executed": 0,
                           "errors": 0, "timeouts": 0, "hit_rate": 1.0,
                           "wall_s": 0.05},
            },
        }
        record = load_record(doc)
        assert isinstance(record, BenchRecord)
        # the engine ledger is hoisted out of data into the typed field
        assert record.engine.cache_hits == 24
        assert "engine" not in record.data
        assert record.data["delivered"]["mesh2d"]["nifdy-"] == 120

    def test_v0_summary_recovers_kernel(self):
        doc = {
            "bench_count": 1,
            "benches": {
                "test_kernel_events_per_sec": {
                    "bench": "test_kernel_events_per_sec",
                    "bench_cycles": 20000, "bench_seed": 11,
                    "wall_seconds": 11.5,
                    "data": {"kernel_perf": {
                        "workload": {"network": "fattree"},
                        "kernels": {
                            "heap": {"events_per_sec": 50.0},
                            "bucket": {"events_per_sec": 80.0},
                        },
                        "speedup": 1.6, "parity_ok": True,
                    }},
                },
            },
        }
        summary = load_record(doc)
        assert isinstance(summary, BenchSummary)
        assert summary.kernel is not None
        assert summary.kernel.speedup == 1.6

    def test_v0_sweep_cache_entry(self):
        doc = {
            "spec": {"network": "mesh2d", "nic_mode": "plain", "seed": 0},
            "code_version": "deadbeef",
            "result": {name: getattr(_run_stats(), name)
                       for name in RUN_STATS_FIELDS},
        }
        record = load_record(doc)
        assert isinstance(record, SweepPointRecord)
        assert record.result.delivered == 4_800
        assert record.code_version == "deadbeef"

    def test_v0_chaos_artifact(self):
        doc = {
            "kind": "repro-chaos-reproducer", "version": 1,
            "failure": "stall", "detail": "no progress for 200000 cycles",
            "spec": {"network": "fattree"}, "original_events": 3,
            "shrunk_events": 1, "shrink_probes": 20, "trial": 7,
            "engine_seed": 42,
        }
        record = load_record(doc)
        assert isinstance(record, ChaosArtifact)
        assert record.failure_class == "stall"
        assert record.shrunk_events == 1

    def test_v0_kernel_perf_computes_speedup(self):
        # `repro perf --json` v0 files have no speedup field.
        doc = {
            "workload": {"network": "fattree", "nodes": 64},
            "kernels": {
                "heap": {"events": 10, "loop_seconds": 2.0,
                         "events_per_sec": 50.0, "delivered": 3},
                "bucket": {"events": 10, "loop_seconds": 1.0,
                           "events_per_sec": 100.0, "delivered": 3},
            },
            "parity_ok": True,
        }
        record = load_record(doc)
        assert isinstance(record, KernelPerfRecord)
        assert record.speedup == 2.0

    def test_v0_run_result(self):
        doc = {name: getattr(_run_stats(), name) for name in RUN_STATS_FIELDS}
        record = load_record(doc)
        assert isinstance(record, RunStats)
        assert record.throughput == pytest.approx(240.0)

    def test_checked_in_results_tree_all_load(self):
        # The actual archived tree must parse wholesale -- summary, every
        # per-bench file, and any chaos/history artifacts.
        from pathlib import Path

        results = Path(__file__).parent.parent / "benchmarks" / "results"
        loaded = 0
        for path in results.rglob("*.json"):
            if ".cache" in path.parts:
                continue
            load_record(path)
            loaded += 1
        assert loaded >= 10  # the tree ships with a full bench archive


class TestLoaderEdges:
    def test_unknown_shape_raises(self):
        with pytest.raises(SchemaError):
            sniff_kind({"mystery": 1})
        with pytest.raises(SchemaError):
            load_record({"mystery": 1})

    def test_non_object_raises(self):
        with pytest.raises(SchemaError):
            load_record([1, 2, 3])

    def test_newer_schema_refused(self):
        doc = _run_stats().to_dict(stamped=True)
        doc["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError):
            load_record(doc)

    def test_write_record_atomic(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "out.json"
        write_record_atomic(path, _run_stats())  # creates parents
        assert load_record(path) == _run_stats()
        write_record_atomic(path, _run_stats(delivered=1))  # overwrites
        assert load_record(path).delivered == 1
        assert not path.with_name(path.name + ".tmp").exists()

    def test_load_results_tree_keeps_stale_summary_benches(self, tmp_path):
        # A bench present only in the old summary (its per-bench file was
        # cleaned) must survive; per-bench files win over summary copies.
        stale = BenchRecord(bench="test_gone", wall_seconds=9.0)
        old_in_summary = BenchRecord(bench="test_fresh", wall_seconds=1.0)
        write_record_atomic(
            tmp_path / "BENCH_summary.json",
            BenchSummary(benches={"test_gone": stale,
                                  "test_fresh": old_in_summary}),
        )
        fresh = BenchRecord(bench="test_fresh", wall_seconds=2.0)
        write_record_atomic(tmp_path / "test_fresh.json", fresh)
        summary = load_results_tree(tmp_path)
        assert summary.benches["test_gone"].wall_seconds == 9.0
        assert summary.benches["test_fresh"].wall_seconds == 2.0

    def test_engine_shares_schema_fields(self):
        # The sweep engine's slim-result shape IS the schema's field list;
        # a drift here would corrupt the cache/report contract.
        from repro.experiments.engine import _RESULT_FIELDS

        assert tuple(_RESULT_FIELDS) == tuple(RUN_STATS_FIELDS)

    def test_experiment_result_run_stats(self):
        from repro.experiments import (ExperimentSpec, heavy_synthetic,
                                       run_experiment)

        result = run_experiment(ExperimentSpec(
            network="mesh2d", traffic=heavy_synthetic(),
            num_nodes=16, nic_mode="nifdy", run_cycles=2_000, seed=1,
        ))
        stats = result.run_stats()
        assert isinstance(stats, RunStats)
        assert stats.delivered == result.delivered
        assert load_record(stats.to_dict(stamped=True)) == stats
