"""Reorder-tolerant receivers on spraying fabrics.

The spraying fat tree / multibutterfly give up in-order delivery for path
diversity; the three :class:`~repro.nic.ReorderTolerantNIC` policies must
hand software a reliable, in-order channel anyway -- differing only in
what recovery costs (retransmissions, duplicates, receiver drops).
"""

import pytest

from repro.experiments import ExperimentSpec, run_experiment
from repro.faults import FaultPlan
from repro.networks import build_network
from repro.nic import (
    REORDER_POLICIES,
    PlainNIC,
    ReorderParams,
    ReorderTolerantNIC,
)
from repro.obs import Observability
from repro.sim import RngFactory, Simulator
from repro.traffic import IncastConfig, PacketFactory, TrafficSpec

from conftest import drain_all
from test_nifdy_protocol import feed

NODES = 16


def _spray_net(sim, seed=3, drop=0.0, skew=0, num_nodes=NODES):
    rngf = RngFactory(seed)
    return build_network(
        "fattree-spray", sim, num_nodes, rng=rngf.stream("route"),
        drop_prob=drop, drop_rng=rngf.stream("drop"), path_skew=skew,
    )


def _run_stream(policy, count=60, drop=0.0, skew=4, params=None,
                horizon=4_000_000, **nic_kw):
    """One 0 -> 9 stream through reorder NICs; returns (delivered, nics)."""
    sim = Simulator()
    net = _spray_net(sim, drop=drop, skew=skew)
    params = params or ReorderParams(tx_window=4, rx_window=8, cache_capacity=4)
    nics = net.attach_nics(
        lambda n: ReorderTolerantNIC(
            sim, n, policy=policy, params=params, retx_timeout=900, **nic_kw,
        )
    )
    factory = PacketFactory(0, bulk_threshold=1000)
    feed(sim, nics[0], factory.message(9, count))
    delivered = drain_all(sim, nics, count, horizon=horizon)
    return delivered, nics


class TestSprayFabricPremise:
    def test_spray_fabric_reorders_for_a_plain_receiver(self):
        """The scenario pack's premise: per-packet spraying + path skew
        really does deliver out of order to a NIC that doesn't care."""
        sim = Simulator()
        net = _spray_net(sim, skew=8)
        nics = net.attach_nics(lambda n: PlainNIC(sim, n, out_capacity=256))
        expected = 0
        for src in range(NODES):
            factory = PacketFactory(src, bulk_threshold=1000)
            feed(sim, nics[src], factory.message((src + 5) % NODES, 30))
            expected += 30
        delivered = drain_all(sim, nics, expected, horizon=2_000_000)
        assert len(delivered) == expected
        by_pair = {}
        for p in delivered:
            by_pair.setdefault((p.src, p.dst), []).append(p.pair_seq)
        inversions = sum(
            sum(1 for a, b in zip(seqs, seqs[1:]) if b < a)
            for seqs in by_pair.values()
        )
        assert inversions > 0

    def test_params_validation(self):
        with pytest.raises(ValueError):
            ReorderParams(tx_window=8, rx_window=4)
        with pytest.raises(ValueError):
            ReorderParams(cache_capacity=-1)
        with pytest.raises(ValueError):
            ReorderTolerantNIC(Simulator(), 0, policy="nope")


class TestRecoveryPolicies:
    @pytest.mark.parametrize("policy", REORDER_POLICIES)
    def test_exactly_once_in_order_under_loss(self, policy):
        delivered, nics = _run_stream(policy, drop=0.05)
        assert [p.pair_seq for p in delivered] == list(range(60))
        assert len({p.uid for p in delivered}) == 60
        assert sum(nic.retransmissions for nic in nics) > 0

    def test_bitmap_sack_recovers_cheaper_than_cumulative_acks(self):
        """Eunomia's point: selective acks resend only what was lost,
        cumulative acks trigger go-back-N storms."""
        _, window_nics = _run_stream("window", drop=0.05)
        _, bitmap_nics = _run_stream("bitmap", drop=0.05)
        window_retx = sum(nic.retransmissions for nic in window_nics)
        bitmap_retx = sum(nic.retransmissions for nic in bitmap_nics)
        assert bitmap_retx <= window_retx

    def test_dropcache_zero_capacity_drops_every_ooo_arrival(self):
        """Jain's drop receiver: with no cache, anything out of order is
        discarded and recovered purely by sender timeout."""
        params = ReorderParams(tx_window=8, rx_window=16, cache_capacity=0)
        delivered, nics = _run_stream(
            "dropcache", skew=8, params=params, horizon=6_000_000,
        )
        assert [p.pair_seq for p in delivered] == list(range(60))
        assert sum(nic.receiver_drops for nic in nics) > 0
        assert all(nic.reorder_cached == 0 for nic in nics)

    def test_adaptive_rto_learns_from_clean_samples(self):
        _, nics = _run_stream("bitmap", drop=0.0, skew=0)
        sender = nics[0]
        assert sender.rtt_samples > 0
        assert sender.min_timeout <= sender.current_timeout <= sender.max_timeout


class TestGracefulDegradation:
    def test_abandoned_stream_resynchronises_past_the_hole(self):
        """A total blackout exhausts retries; the sender writes the window
        off, later packets carry stream_base, and the receiver skips the
        hole instead of stalling -- the run completes with zero invariant
        violations."""
        plan = FaultPlan.from_shorthand(["burst@2000-20000:prob=1.0"])
        result = run_experiment(ExperimentSpec(
            network="fattree-spray",
            traffic=TrafficSpec(
                "incast", IncastConfig(rounds=2, packets_per_round=4,
                                       sync_rounds=False),
            ),
            num_nodes=NODES,
            nic_mode="reorder-window",
            max_retries=3,
            retx_timeout=500,
            seed=5,
            fault_plan=plan,
            observe=Observability(validate=True),
        ))
        assert result.completed, result.stall_report
        abandoned = sum(nic.packets_abandoned for nic in result.nics)
        assert abandoned > 0
        assert result.delivered + result.metrics.abandoned >= result.sent
        assert result.violations == []

    def test_exhausted_retries_raise_when_asked_to(self):
        params = ReorderParams(tx_window=2, rx_window=4)
        with pytest.raises(RuntimeError, match="gave up"):
            _run_stream(
                "window", count=8, drop=1.0, params=params,
                on_exhaust="raise", max_retries=2, horizon=200_000,
            )


class TestReorderDepthMetric:
    def test_collector_measures_depth_on_spray_and_zero_on_fattree(self):
        for network, skew, expect_depth in (
            ("fattree-spray", 8, True), ("fattree", 0, False),
        ):
            spec = ExperimentSpec(
                network=network,
                traffic=TrafficSpec(
                    "incast", IncastConfig(rounds=2, packets_per_round=6),
                ),
                num_nodes=NODES,
                nic_mode="reorder-bitmap" if expect_depth else "nifdy",
                seed=2,
                network_overrides={"path_skew": skew} if skew else None,
            )
            result = run_experiment(spec)
            depth = result.metrics.reorder_depth
            assert depth.count > 0
            assert result.metrics.reorder_depth_by_pair
            if expect_depth:
                assert depth.maximum > 0
            else:
                assert depth.maximum == 0
