"""Tests for the Section 6 / future-work extensions: adaptive mesh routing,
piggybacked acks, automatic bulk requests, hot-spot traffic, PollFor."""

import pytest

from repro.networks import build_mesh, build_network
from repro.nic import NifdyNIC, NifdyParams, RetransmittingNifdyNIC
from repro.sim import RngFactory, Simulator

from conftest import build_with_nics, drain_all, simple_packet
from test_nifdy_protocol import feed, stream


class TestAdaptiveMesh:
    def test_build_and_name(self):
        sim = Simulator()
        net = build_network("mesh2d-adaptive", sim, 16)
        assert "adaptive" in net.name
        assert not net.delivers_in_order

    def test_torus_adaptive_rejected(self):
        with pytest.raises(ValueError):
            build_mesh(Simulator(), (4, 4), torus=True, adaptive=True)

    def test_all_pairs_delivery(self):
        sim, net, nics = build_with_nics("mesh2d-adaptive", 16)
        expected = 0
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    nics[src].try_send(simple_packet(src, dst, flits=2))
                    expected += 1
        assert len(drain_all(sim, nics, expected)) == expected

    def test_heavy_cross_traffic_no_deadlock(self):
        """Saturating adaptive VCs must not deadlock: the dimension-order
        escape VC guarantees progress."""
        sim, net, nics = build_with_nics("mesh2d-adaptive", 16)
        expected = 0
        for src in range(16):
            for _ in range(6):
                dst = 15 - src
                if dst == src:
                    continue
                nics[src].try_send(simple_packet(src, dst))
                expected += 1
        assert len(drain_all(sim, nics, expected)) == expected

    def test_multiple_paths_used(self):
        """Adaptive routing spreads one pair's packets over both quadrant
        paths: the two outgoing links of the source router both carry
        traffic for a diagonal destination."""
        sim, net, nics = build_with_nics("mesh2d-adaptive", 16)
        for _ in range(16):
            nics[0].try_send(simple_packet(0, 15, flits=2))
        drain_all(sim, nics, 16)
        src_router = net.routers[0]
        used = [
            port for port, link in src_router.out_links.items()
            if port in (0, 2) and link.packets_carried > 0
        ]
        assert len(used) == 2  # +x and +y both used

    def test_nifdy_restores_order_on_adaptive_mesh(self):
        sim, net, nics = build_with_nics("mesh2d-adaptive", 16, nic="nifdy")
        feed(sim, nics[0], stream(0, 15, 20))
        delivered = drain_all(sim, nics, 20)
        assert [p.pair_seq for p in delivered] == list(range(20))


class TestPiggybackAcks:
    def _bidirectional_run(self, piggyback):
        params = NifdyParams(
            opt_size=4, pool_size=8, dialogs=1, window=4,
            piggyback_acks=piggyback, piggyback_window=200,
        )
        sim, net, nics = build_with_nics("mesh2d", 4, nic="nifdy", params=params)
        # Node 0 sends scalars to 3; node 3 streams a bulk message back.
        # The reverse bulk packets flow on window credits (not gated on the
        # scalar acks), so node 3's pending acks can ride them.
        feed(sim, nics[0], stream(0, 3, 12, {"bulk_threshold": 10 ** 9}))
        feed(sim, nics[3], stream(3, 0, 12, {"bulk_threshold": 2}))
        delivered = drain_all(sim, nics, 24)
        return nics, delivered

    def test_protocol_still_correct(self):
        nics, delivered = self._bidirectional_run(piggyback=True)
        assert len(delivered) == 24
        by_src = {0: [], 3: []}
        for p in delivered:
            by_src[p.src].append(p.pair_seq)
        assert by_src[0] == sorted(by_src[0])
        assert by_src[3] == sorted(by_src[3])

    def test_fewer_standalone_acks(self):
        plain_nics, _ = self._bidirectional_run(piggyback=False)
        piggy_nics, _ = self._bidirectional_run(piggyback=True)
        standalone = lambda nics: sum(n.acks_sent for n in nics)
        assert standalone(piggy_nics) < standalone(plain_nics)

    def test_one_way_traffic_falls_back_to_standalone(self):
        """With no reverse data to ride on, acks go out standalone after the
        piggyback window; the transfer still completes."""
        params = NifdyParams(
            opt_size=4, pool_size=8, dialogs=0, window=0,
            piggyback_acks=True, piggyback_window=60,
        )
        sim, net, nics = build_with_nics("mesh2d", 4, nic="nifdy", params=params)
        feed(sim, nics[0], stream(0, 3, 8, {"bulk_threshold": 10 ** 9}))
        delivered = drain_all(sim, nics, 8)
        assert len(delivered) == 8
        assert nics[3].acks_sent == 8  # all fell back

    def test_piggyback_with_retransmission(self):
        """The combination survives packet loss: a dropped carrier's ack is
        recovered through the retransmit path."""
        sim = Simulator()
        rngf = RngFactory(9)
        net = build_network(
            "mesh2d", sim, 4, drop_prob=0.12, drop_rng=rngf.stream("drop")
        )
        params = NifdyParams(
            opt_size=4, pool_size=8, dialogs=0, window=0,
            piggyback_acks=True, piggyback_window=120,
        )
        nics = net.attach_nics(
            lambda n: RetransmittingNifdyNIC(sim, n, params, retx_timeout=700)
        )
        feed(sim, nics[0], stream(0, 3, 10, {"bulk_threshold": 10 ** 9}))
        feed(sim, nics[3], stream(3, 0, 10, {"bulk_threshold": 10 ** 9}))
        delivered = drain_all(sim, nics, 20, horizon=2_000_000)
        assert len(delivered) == 20


class TestAutoBulk:
    def test_auto_request_without_software_bit(self):
        params = NifdyParams(
            opt_size=4, pool_size=8, dialogs=1, window=4, auto_bulk_threshold=3
        )
        sim, net, nics = build_with_nics("fattree", 16, nic="nifdy", params=params)
        # software never sets the request bit (threshold huge)
        feed(sim, nics[0], stream(0, 9, 16, {"bulk_threshold": 10 ** 9}))
        delivered = drain_all(sim, nics, 16)
        assert len(delivered) == 16
        assert nics[0].bulk_sent > 0
        assert nics[9].bulk_grants == 1
        assert [p.pair_seq for p in delivered] == list(range(16))

    def test_no_auto_request_for_sparse_traffic(self):
        params = NifdyParams(
            opt_size=4, pool_size=8, dialogs=1, window=4, auto_bulk_threshold=4
        )
        sim, net, nics = build_with_nics("fattree", 16, nic="nifdy", params=params)
        for dst in (1, 5, 9, 13):  # one packet per destination
            feed(sim, nics[0], stream(0, dst, 1, {"bulk_threshold": 10 ** 9}))
        delivered = drain_all(sim, nics, 4)
        assert len(delivered) == 4
        assert nics[0].bulk_sent == 0


class TestHotSpotTraffic:
    def test_hot_node_receives_the_bias(self):
        from repro.experiments import ExperimentSpec, hotspot, run_experiment
        from repro.traffic import HotSpotConfig

        result = run_experiment(ExperimentSpec(
            network="fattree",
            traffic=hotspot(HotSpotConfig(hot_node=0, hot_fraction=0.5,
                                          packets_per_node=30)),
            num_nodes=16, nic_mode="nifdy", seed=3, max_cycles=5_000_000,
        ))
        assert result.completed
        hot = result.drivers[0].hot_received
        background = max(d.background_received for d in result.drivers)
        assert hot > 3 * background

    def test_hot_fraction_validated(self):
        from repro.traffic import HotSpotConfig

        with pytest.raises(ValueError):
            HotSpotConfig(hot_fraction=1.5)

    def test_send_gap_paces_offered_load(self):
        from repro.experiments import ExperimentSpec, hotspot, run_experiment
        from repro.traffic import HotSpotConfig

        fast = run_experiment(ExperimentSpec(
            network="fattree",
            traffic=hotspot(HotSpotConfig(hot_fraction=0.0, packets_per_node=20,
                                          send_gap_cycles=0)),
            num_nodes=16, nic_mode="plain", seed=3, max_cycles=5_000_000,
        ))
        slow = run_experiment(ExperimentSpec(
            network="fattree",
            traffic=hotspot(HotSpotConfig(hot_fraction=0.0, packets_per_node=20,
                                          send_gap_cycles=500)),
            num_nodes=16, nic_mode="plain", seed=3, max_cycles=5_000_000,
        ))
        assert slow.cycles > 1.5 * fast.cycles


class TestPollFor:
    def test_pollfor_receives_during_pacing(self):
        from repro.node import PollFor, Send
        from test_processor import ScriptedDriver, two_node_setup

        pkt = simple_packet(0, 3)
        sim, procs, drivers, nics = two_node_setup(
            actions0=[Send(pkt)],
            actions1=[PollFor(30_000)],
        )
        sim.run_until(25_000)
        # unlike Ignore, PollFor picks the packet up immediately
        assert drivers[1].received == [pkt]


class TestLinkFaults:
    def test_fattree_routes_around_failed_up_links(self):
        """With 2 of a leaf router's 4 up links dead, adaptive up-routing
        still delivers everything over the survivors."""
        sim, net, nics = build_with_nics("fattree", 64)
        leaf = net.routers[0]  # serves nodes 0..3
        up_links = [leaf.out_links[p] for p in (4, 5)]
        for link in up_links:
            link.fail()
        for i in range(12):
            nics[0].try_send(simple_packet(0, 63, flits=2, pair_seq=i))
        delivered = drain_all(sim, nics, 12)
        assert len(delivered) == 12
        assert all(link.packets_carried == 0 for link in up_links)
        survivors = [leaf.out_links[p] for p in (6, 7)]
        assert sum(link.packets_carried for link in survivors) == 12

    def test_nifdy_in_order_across_faults(self):
        params = NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=4)
        sim, net, nics = build_with_nics("fattree", 64, nic="nifdy", params=params)
        net.routers[0].out_links[4].fail()
        from test_nifdy_protocol import feed, stream

        feed(sim, nics[0], stream(0, 63, 20))
        delivered = drain_all(sim, nics, 20)
        assert [p.pair_seq for p in delivered] == list(range(20))

    def test_multibutterfly_survives_early_stage_fault(self):
        sim, net, nics = build_with_nics("multibutterfly", 64)
        # fail one copy of one first-stage direction that 0->63 would use
        first_stage = net.routers[0]
        first_stage.out_links[2 * 3].fail()  # digit 3, copy 0 (dst 63 = 333)
        for i in range(8):
            nics[0].try_send(simple_packet(0, 63, flits=2))
        delivered = drain_all(sim, nics, 8)
        assert len(delivered) == 8

    def test_failed_link_rejects_allocation(self):
        from repro.links import Link
        from repro.sim import Simulator

        link = Link(Simulator(), "L", 1, 1, 4, sink=None, sink_port=0)
        link.fail()
        assert link.allocate_vc(simple_packet(0, 1), None, [0]) is None
