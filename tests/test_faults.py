"""Tests for the fault-injection subsystem (plans, injector, degradation)."""

import json

import pytest

from repro.experiments import ExperimentSpec, cshift, run_experiment
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.metrics import degradation_report
from repro.networks import build_network
from repro.nic import NifdyParams, RetransmittingNifdyNIC
from repro.sim import RngFactory, Simulator

from conftest import drain_all
from test_nifdy_protocol import feed, stream


# --------------------------------------------------------------------- plans
class TestFaultPlan:
    def test_shorthand_round_trip(self):
        plan = FaultPlan.from_shorthand([
            "fail@5000-20000:link=ft:up0.0",
            "repair@30000:link=ft:up0.1",
            "burst@5000-20000:prob=0.1,net=ack",
            "pause@1000-4000:node=3",
        ])
        kinds = [e.kind for e in plan]
        assert kinds == ["link_fail", "link_repair", "loss_burst", "node_pause"]
        assert plan.events[0].until == 20000
        assert plan.events[2].net == "ack"
        assert plan.events[3].node == 3

    def test_json_file_loading(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"events": [
            {"kind": "link_fail", "at": 100, "until": 200, "link": "x*"},
            {"kind": "loss_burst", "at": 50, "until": 150, "prob": 0.2,
             "net": "reply"},
        ]}))
        plan = FaultPlan.from_json_file(str(path))
        assert len(plan.events) == 2
        assert plan.events[1].net == "ack"  # 'reply' is an alias
        assert plan.needs_retransmission

    def test_boundaries_and_repairs(self):
        plan = FaultPlan.from_shorthand([
            "fail@5000-20000:link=a",
            "burst@5000-20000:prob=0.1",
        ])
        assert plan.boundaries() == [5000, 20000]
        repairs = plan.repairs()
        assert len(repairs) == 1 and repairs[0].at == 20000

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="kind"):
            FaultEvent(kind="meteor_strike", at=0)
        with pytest.raises(ValueError, match="after"):
            FaultEvent(kind="link_fail", at=100, until=100, link="x")
        with pytest.raises(ValueError, match="prob"):
            FaultEvent(kind="loss_burst", at=0, until=10, prob=0.0)
        with pytest.raises(ValueError, match="node"):
            FaultEvent(kind="node_pause", at=0, until=10)
        with pytest.raises(ValueError, match="shorthand"):
            FaultEvent.from_shorthand("explode@100")
        with pytest.raises(ValueError, match="cycle"):
            FaultEvent.from_shorthand("fail@soon:link=x")

    def test_json_round_trip(self):
        # One serialisation for everything: chaos repro artifacts, spec
        # files, and examples/fault_scenario.py all go through
        # to_json/from_json, so a plan must survive the trip exactly.
        plan = FaultPlan.from_shorthand([
            "fail@5000-20000:link=ft:up0.0",
            "repair@30000:link=ft:up0.1",
            "burst@5000-20000:prob=0.1,net=ack",
            "burst@100-900:prob=0.4",
            "pause@1000-4000:node=3",
        ])
        back = FaultPlan.from_json(plan.to_json())
        assert back.events == plan.events
        # The dict form feeds json.dumps directly (no dataclasses left).
        assert json.loads(plan.to_json()) == plan.to_dict()
        # And the file-loading path accepts the very same document.
        assert FaultPlan.from_dict(plan.to_dict()).events == plan.events

    def test_event_to_dict_round_trip(self):
        event = FaultEvent(kind="loss_burst", at=10, until=99, prob=0.25,
                           net="data", link="ft:ej*")
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_unmatched_pattern_rejected_at_start(self):
        sim = Simulator()
        net = build_network("mesh2d", sim, 16, rng=RngFactory(0).stream("route"))
        plan = FaultPlan.from_shorthand(["fail@100:link=no-such-link-*"])
        with pytest.raises(ValueError, match="matches no link"):
            FaultInjector(sim, net, plan).start()


# ----------------------------------------------------------- fail -> repair
def lossy_setup(num_nodes=16, network="fattree", retx_timeout=800, seed=5,
                **nic_kwargs):
    sim = Simulator()
    rngf = RngFactory(seed)
    net = build_network(
        network, sim, num_nodes, rng=rngf.stream("route"),
    )
    params = NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=4)
    nics = net.attach_nics(
        lambda n: RetransmittingNifdyNIC(
            sim, n, params, retx_timeout=retx_timeout, **nic_kwargs
        )
    )
    return sim, net, nics


class TestFailRepairRoundTrip:
    def test_fattree_reroutes_then_reclaims(self):
        # Fail 3 of the 4 adaptive up-paths out of node 0's leaf router:
        # traffic must squeeze through the survivor, and after the repair
        # the revived links must carry flits again.
        sim, net, nics = lossy_setup(network="fattree")
        plan = FaultPlan.from_shorthand([
            "fail@2000-120000:link=ft:up0.0",
            "fail@2000-120000:link=ft:up0.1",
            "fail@2000-120000:link=ft:up0.2",
        ])
        FaultInjector(sim, net, plan).start()
        failed = [l for l in net.links
                  if l.name in ("ft:up0.0", "ft:up0.1", "ft:up0.2")]
        assert len(failed) == 3
        feed(sim, nics[0], stream(0, 9, 40, {"bulk_threshold": 10 ** 9}),
             every=100)
        delivered = drain_all(sim, nics, 40, horizon=1_000_000)
        assert [p.pair_seq for p in delivered] == list(range(40))
        carried_at_repair = {id(l): l.flits_carried for l in failed}
        # Keep streaming after the repair: the revived links are reclaimed.
        feed(sim, nics[0], stream(0, 9, 40, {"bulk_threshold": 10 ** 9}),
             every=100)
        drain_all(sim, nics, 40, horizon=1_000_000)
        assert sim.now > 120000
        assert any(
            l.flits_carried > carried_at_repair[id(l)] for l in failed
        ), "no repaired link ever carried traffic again"

    def test_mesh_blocks_then_recovers(self):
        # Deterministic dimension-order mesh: failing the only path stalls
        # the stream; the repair lets it finish with nothing lost and
        # nothing reordered.
        sim, net, nics = lossy_setup(num_nodes=16, network="mesh2d")
        plan = FaultPlan.from_shorthand(["fail@100-60000:link=mesh:1->2"])
        FaultInjector(sim, net, plan).start()
        feed(sim, nics[0], stream(0, 3, 12, {"bulk_threshold": 10 ** 9}),
             every=50)
        delivered = drain_all(sim, nics, 12, horizon=500_000)
        assert [p.pair_seq for p in delivered] == list(range(12))
        assert max(p.delivered_cycle for p in delivered) > 60000

    def test_adaptive_mesh_routes_around_failure(self):
        # Duato-adaptive mesh: with the x-first link out, packets flow via
        # the other profitable dimension *during* the outage.
        sim, net, nics = lossy_setup(num_nodes=16, network="mesh2d-adaptive")
        plan = FaultPlan.from_shorthand(
            ["fail@0-400000:link=adaptive mesh:0->1"]
        )
        FaultInjector(sim, net, plan).start()
        feed(sim, nics[0], stream(0, 5, 12, {"bulk_threshold": 10 ** 9}),
             every=50)
        delivered = drain_all(sim, nics, 12, horizon=300_000)
        assert len(delivered) == 12
        assert max(p.delivered_cycle for p in delivered) < 400000


# ------------------------------------------------------------- loss bursts
class TestLossBurst:
    def test_windowed_burst_recovers_after_stop(self):
        sim, net, nics = lossy_setup(network="fattree")
        plan = FaultPlan.from_shorthand(["burst@0-50000:prob=0.25"])
        FaultInjector(sim, net, plan).start()
        feed(sim, nics[0], stream(0, 9, 30, {"bulk_threshold": 10 ** 9}),
             every=50)
        delivered = drain_all(sim, nics, 30, horizon=2_000_000)
        assert [p.pair_seq for p in delivered] == list(range(30))
        dropped = sum(l.packets_dropped for l in net.links)
        assert dropped > 0
        # After the window closes no link is still configured to drop.
        assert all(l.fault_drop_prob == 0.0 for l in net.links)

    def test_ack_only_loss_exercises_duplicate_elimination(self):
        sim, net, nics = lossy_setup(network="fattree")
        plan = FaultPlan.from_shorthand(["burst@0-300000:prob=0.3,net=ack"])
        FaultInjector(sim, net, plan).start()
        feed(sim, nics[0], stream(0, 9, 25, {"bulk_threshold": 10 ** 9}),
             every=50)
        delivered = drain_all(sim, nics, 25, horizon=2_000_000)
        # Every packet delivered exactly once, in order, despite the lost
        # acks forcing retransmissions of already-delivered data.
        assert [p.pair_seq for p in delivered] == list(range(25))
        assert len({p.uid for p in delivered}) == 25
        assert nics[0].retransmissions > 0
        assert nics[9].duplicates_dropped > 0

    def test_ack_only_burst_never_claims_data(self):
        # Annihilate *every* ack, forever.  Data packets must still cross
        # the fabric untouched: the first packet is delivered (then its
        # retransmits are filtered as duplicates); it is only the missing
        # acks that keep the window shut.
        sim = Simulator()
        rngf = RngFactory(3)
        net = build_network("fattree", sim, 16, rng=rngf.stream("route"))
        for link in net.links:
            link.set_fault_drop(1.0, rng=rngf.stream("x"), data=False,
                                acks=True)
        params = NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=4)
        nics = net.attach_nics(
            lambda n: RetransmittingNifdyNIC(sim, n, params, retx_timeout=500)
        )
        feed(sim, nics[0], stream(0, 9, 3, {"bulk_threshold": 10 ** 9}))
        delivered = drain_all(sim, nics, 3, horizon=10_000)
        assert [p.pair_seq for p in delivered] == [0]
        assert nics[0].retransmissions > 0
        assert nics[9].duplicates_dropped > 0


# ---------------------------------------------------- node pause and resume
class TestNodePause:
    def test_paused_receiver_stalls_then_drains(self):
        plan = FaultPlan.from_shorthand(["pause@1000-40000:node=9"])
        res = run_experiment(ExperimentSpec(
            network="fattree",
            traffic=cshift(),
            num_nodes=16,
            nic_mode="nifdy",
            fault_plan=plan,
            max_cycles=3_000_000,
            seed=2,
        ))
        assert res.completed
        assert res.delivered == res.sent
        assert res.abandoned == 0
        assert res.order_violations == 0


# ------------------------------------------- integration: runner + reporting
class TestRunnerIntegration:
    def test_acceptance_scenario_fail_repair_with_burst(self):
        # The ISSUE's scripted scenario: fail a fat-tree link at N, repair
        # at M, 10% loss burst in between; bulk-heavy all-to-all completes
        # in order with zero software-visible anomalies.
        plan = FaultPlan.from_shorthand([
            "fail@5000-60000:link=ft:up1.0",
            "burst@5000-60000:prob=0.1",
        ])
        res = run_experiment(ExperimentSpec(
            network="fattree",
            traffic=cshift(),
            num_nodes=16,
            nic_mode="nifdy",
            fault_plan=plan,
            max_cycles=5_000_000,
            seed=1,
        ))
        assert res.completed, res.stall_report
        assert res.delivered == res.sent
        assert res.order_violations == 0
        assert res.abandoned == 0
        report = degradation_report(
            metrics=res.metrics,
            nics=res.nics,
            network=res.network_obj,
            cycles=res.cycles,
            boundaries=plan.boundaries(),
            repairs=[(e.at, e.describe()) for e in plan.repairs()],
            timeline=res.fault_injector.timeline,
        )
        assert report.delivered_fraction == 1.0
        assert len(report.phases) == 3  # before / during / after the fault
        assert sum(p.delivered for p in report.phases) == res.delivered
        assert report.retransmissions > 0
        assert len(report.recoveries) == 1
        assert report.recoveries[0].time_to_recover is not None
        assert len(res.fault_injector.timeline) >= 3

    def test_partition_degrades_gracefully_and_watchdog_reports(self):
        # Permanently sever node 9's ejection link: traffic to 9 can never
        # be delivered.  The run must not raise; it either finishes with
        # abandoned packets or the watchdog stops it with a diagnosis.
        plan = FaultPlan.from_shorthand(["fail@2000:link=ft:ej9"])
        res = run_experiment(ExperimentSpec(
            network="fattree",
            traffic=cshift(),
            num_nodes=16,
            nic_mode="nifdy",
            fault_plan=plan,
            retx_timeout=500,
            max_retries=6,
            max_cycles=10_000_000,
            watchdog_cycles=100_000,
            seed=3,
        ))
        assert res.abandoned > 0
        assert res.delivered < res.sent
        # Once every sender has given up on node 9 the fabric goes
        # quiescent with the workload still incomplete: the watchdog must
        # stop the run (long before max_cycles) and explain who is stuck.
        assert not res.completed
        assert res.cycles < 10_000_000
        assert res.stall_report is not None
        assert "node 9" in res.stall_report
