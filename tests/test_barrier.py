"""Tests for the global barrier coordinator."""

import pytest

from repro.sim import Barrier, Simulator


def test_barrier_releases_all_after_cost():
    sim = Simulator()
    barrier = Barrier(sim, parties=3, release_cost=10)
    released = []
    sim.schedule(1, barrier.arrive, 0, lambda: released.append((0, sim.now)))
    sim.schedule(5, barrier.arrive, 1, lambda: released.append((1, sim.now)))
    sim.schedule(9, barrier.arrive, 2, lambda: released.append((2, sim.now)))
    sim.run()
    assert sorted(released) == [(0, 19), (1, 19), (2, 19)]
    assert barrier.crossings == 1


def test_barrier_is_reusable():
    sim = Simulator()
    barrier = Barrier(sim, parties=2, release_cost=1)
    crossings = []

    def loop(node, rounds=3):
        if rounds:
            barrier.arrive(node, lambda: (crossings.append(node), loop(node, rounds - 1)))

    sim.schedule(0, loop, 0)
    sim.schedule(0, loop, 1)
    sim.run()
    assert barrier.crossings == 3
    assert len(crossings) == 6


def test_double_arrival_rejected():
    sim = Simulator()
    barrier = Barrier(sim, parties=3)
    barrier.arrive(0, lambda: None)
    with pytest.raises(RuntimeError):
        barrier.arrive(0, lambda: None)


def test_zero_parties_rejected():
    with pytest.raises(ValueError):
        Barrier(Simulator(), parties=0)


def test_waiting_count():
    sim = Simulator()
    barrier = Barrier(sim, parties=2)
    barrier.arrive(0, lambda: None)
    assert barrier.waiting_count == 1


class TestMembership:
    def test_int_parties_means_dense_ids(self):
        barrier = Barrier(Simulator(), parties=3)
        assert barrier.members == frozenset((0, 1, 2))
        assert barrier.parties == 3

    def test_explicit_member_set(self):
        barrier = Barrier(Simulator(), parties=(0, 3, 7))
        assert barrier.members == frozenset((0, 3, 7))
        assert barrier.parties == 3

    def test_stranger_rejected_and_does_not_trip(self):
        """Regression: a stray node id used to count toward the trip
        threshold, releasing the real participants one arrival early."""
        sim = Simulator()
        barrier = Barrier(sim, parties=(0, 5))
        released = []
        barrier.arrive(0, lambda: released.append(0))
        with pytest.raises(RuntimeError, match="not a member"):
            barrier.arrive(3, lambda: released.append(3))
        sim.run()
        assert released == []  # node 5 never arrived; barrier must not trip
        assert barrier.waiting_count == 1
        assert barrier.crossings == 0

    def test_sparse_members_synchronise(self):
        sim = Simulator()
        barrier = Barrier(sim, parties=(2, 9), release_cost=4)
        released = []
        sim.schedule(1, barrier.arrive, 9, lambda: released.append((9, sim.now)))
        sim.schedule(6, barrier.arrive, 2, lambda: released.append((2, sim.now)))
        sim.run()
        assert sorted(released) == [(2, 10), (9, 10)]

    def test_empty_member_iterable_rejected(self):
        with pytest.raises(ValueError):
            Barrier(Simulator(), parties=())


class TestGenerationTagging:
    def test_rearrival_during_release_window_rejected(self):
        """Regression for the generation-overlap hazard: a node whose
        release callback is still queued has not left generation N and
        must not be counted toward generation N+1."""
        sim = Simulator()
        barrier = Barrier(sim, parties=2, release_cost=10)
        barrier.arrive(0, lambda: None)
        barrier.arrive(1, lambda: None)  # trips; releases queued for t+10
        with pytest.raises(RuntimeError, match="release window"):
            barrier.arrive(0, lambda: None)

    def test_rearrival_from_inside_release_callback_is_legal(self):
        """A node may re-arrive from within its own release callback even
        while its peers' callbacks for the same generation are still
        queued -- that node *has* left generation N."""
        sim = Simulator()
        barrier = Barrier(sim, parties=2, release_cost=5)
        order = []

        def resume0():
            order.append(("released", 0, sim.now))
            # peer 1's release for this generation fires later this cycle;
            # re-arriving here must neither raise nor corrupt it
            barrier.arrive(0, lambda: order.append(("released2", 0, sim.now)))

        barrier.arrive(0, resume0)
        barrier.arrive(1, lambda: order.append(("released", 1, sim.now)))
        sim.run()
        assert ("released", 0, 5) in order
        assert ("released", 1, 5) in order  # peer still got its release
        assert barrier.crossings == 1
        assert barrier.waiting_count == 1  # node 0 now waits for gen 1

    def test_back_to_back_generations_release_at_distinct_times(self):
        sim = Simulator()
        barrier = Barrier(sim, parties=2, release_cost=3)
        times = {0: [], 1: []}

        def loop(node, rounds):
            if rounds:
                barrier.arrive(node, lambda: (times[node].append(sim.now),
                                              loop(node, rounds - 1)))

        sim.schedule(0, loop, 0, 2)
        sim.schedule(0, loop, 1, 2)
        sim.run()
        assert times[0] == times[1] == [3, 6]
        assert barrier.crossings == 2
