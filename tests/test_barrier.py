"""Tests for the global barrier coordinator."""

import pytest

from repro.sim import Barrier, Simulator


def test_barrier_releases_all_after_cost():
    sim = Simulator()
    barrier = Barrier(sim, parties=3, release_cost=10)
    released = []
    sim.schedule(1, barrier.arrive, 0, lambda: released.append((0, sim.now)))
    sim.schedule(5, barrier.arrive, 1, lambda: released.append((1, sim.now)))
    sim.schedule(9, barrier.arrive, 2, lambda: released.append((2, sim.now)))
    sim.run()
    assert sorted(released) == [(0, 19), (1, 19), (2, 19)]
    assert barrier.crossings == 1


def test_barrier_is_reusable():
    sim = Simulator()
    barrier = Barrier(sim, parties=2, release_cost=1)
    crossings = []

    def loop(node, rounds=3):
        if rounds:
            barrier.arrive(node, lambda: (crossings.append(node), loop(node, rounds - 1)))

    sim.schedule(0, loop, 0)
    sim.schedule(0, loop, 1)
    sim.run()
    assert barrier.crossings == 3
    assert len(crossings) == 6


def test_double_arrival_rejected():
    sim = Simulator()
    barrier = Barrier(sim, parties=3)
    barrier.arrive(0, lambda: None)
    with pytest.raises(RuntimeError):
        barrier.arrive(0, lambda: None)


def test_zero_parties_rejected():
    with pytest.raises(ValueError):
        Barrier(Simulator(), parties=0)


def test_waiting_count():
    sim = Simulator()
    barrier = Barrier(sim, parties=2)
    barrier.arrive(0, lambda: None)
    assert barrier.waiting_count == 1
