"""Scheduler parity: the bucket fast path must be indistinguishable from
the heap baseline.

The bucket scheduler is only allowed to exist because it changes *nothing*
observable: same-cycle events fire in scheduling order, cross-cycle events
fire in time order, and every workload produces bit-identical results.
This suite enforces that the hard way -- it runs every registered traffic
workload under both kernels and diffs the full structured metrics JSON
(totals, latency histograms, per-NIC counters, protocol event counts)
byte-for-byte.  Any divergence, however small, is a kernel bug, never
noise: the simulator is deterministic by construction.
"""

import json

import pytest

from repro.experiments import ExperimentSpec, run_experiment
from repro.obs import Observability, metrics_json
from repro.traffic import (
    CShiftConfig,
    Em3dConfig,
    HotSpotConfig,
    IncastConfig,
    PairStreamConfig,
    RadixSortConfig,
    RpcFanoutConfig,
    TrafficSpec,
    traffic_names,
)

NODES = 16

#: Every registered workload, sized to finish in a couple of seconds on a
#: 16-node fat tree while still exercising barriers, acks, retransmission
#: timers, and multi-phase traffic -- the full event-type mix.
WORKLOADS = {
    "heavy": dict(traffic=TrafficSpec("heavy"), run_cycles=3000),
    "light": dict(traffic=TrafficSpec("light"), run_cycles=3000),
    "cshift": dict(
        traffic=TrafficSpec("cshift", CShiftConfig(words_per_phase=24, phases=4)),
    ),
    "em3d": dict(
        traffic=TrafficSpec("em3d", Em3dConfig(n_nodes=4, d_nodes=3, iterations=2)),
    ),
    "radix": dict(
        traffic=TrafficSpec("radix", RadixSortConfig(buckets=32, keys_per_processor=8)),
    ),
    "hotspot": dict(
        traffic=TrafficSpec("hotspot", HotSpotConfig(packets_per_node=20)),
    ),
    "pairstream": dict(
        traffic=TrafficSpec("pairstream", PairStreamConfig(packets=30)),
    ),
    "incast": dict(
        traffic=TrafficSpec("incast", IncastConfig(rounds=2, packets_per_round=4)),
    ),
    "rpc": dict(
        traffic=TrafficSpec("rpc", RpcFanoutConfig(rounds=2, fanout=4, reply_packets=2)),
    ),
}


def test_parity_suite_covers_every_registered_workload():
    """A workload added to the registry must be added here too."""
    assert set(WORKLOADS) == set(traffic_names())


def _canonical_metrics(name: str, kernel: str) -> str:
    cfg = WORKLOADS[name]
    spec = ExperimentSpec(
        network="fattree",
        traffic=cfg["traffic"],
        num_nodes=NODES,
        run_cycles=cfg.get("run_cycles"),
        max_cycles=300_000,
        seed=7,
        kernel=kernel,
        observe=Observability(events=True),
    )
    result = run_experiment(spec)
    metrics = metrics_json(result)
    metrics.pop("self_profile", None)
    return json.dumps(metrics, sort_keys=True)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_bucket_and_heap_metrics_byte_identical(name):
    heap = _canonical_metrics(name, "heap")
    bucket = _canonical_metrics(name, "bucket")
    assert bucket == heap, (
        f"workload {name!r}: bucket scheduler diverged from the heap "
        "baseline (metrics JSON not byte-identical)"
    )


def _canonical_spray_metrics(kernel: str) -> str:
    """Incast on the spraying fabric under a reorder receiver: the kernel
    must stay bit-identical even when route choice, jitter, and the
    retransmission machinery all draw from seeded RNG streams."""
    spec = ExperimentSpec(
        network="fattree-spray",
        traffic=TrafficSpec("incast", IncastConfig(rounds=2, packets_per_round=4)),
        num_nodes=NODES,
        nic_mode="reorder-bitmap",
        max_cycles=300_000,
        seed=7,
        drop_prob=0.01,
        network_overrides={"path_skew": 4},
        kernel=kernel,
        observe=Observability(events=True),
    )
    result = run_experiment(spec)
    metrics = metrics_json(result)
    metrics.pop("self_profile", None)
    return json.dumps(metrics, sort_keys=True)


def test_spraying_fabric_parity():
    assert _canonical_spray_metrics("bucket") == _canonical_spray_metrics("heap")
