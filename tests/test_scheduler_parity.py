"""Scheduler parity: every registered kernel must be indistinguishable
from the heap baseline.

A non-heap scheduler (the bucket calendar ring, the epoch token-run
kernel) is only allowed to exist because it changes *nothing* observable:
same-cycle events fire in scheduling order, cross-cycle events fire in
time order, and every workload produces bit-identical results.  This
suite enforces that the hard way -- it runs every registered traffic
workload under every kernel in the scheduler registry and diffs the full
structured metrics JSON (totals, latency histograms, per-NIC counters,
protocol event counts) byte-for-byte against heap.  Any divergence,
however small, is a kernel bug, never noise: the simulator is
deterministic by construction.
"""

import json

import pytest

from repro.experiments import ExperimentSpec, run_experiment
from repro.nic import CollectiveParams
from repro.obs import Observability, metrics_json
from repro.sim import scheduler_names
from repro.traffic import (
    AllReduceConfig,
    CrashPointConfig,
    CShiftConfig,
    Em3dConfig,
    HotSpotConfig,
    IncastConfig,
    PairStreamConfig,
    RadixSortConfig,
    RpcFanoutConfig,
    TrafficSpec,
    traffic_names,
)

NODES = 16

#: Every registered workload, sized to finish in a couple of seconds on a
#: 16-node fat tree while still exercising barriers, acks, retransmission
#: timers, and multi-phase traffic -- the full event-type mix.
WORKLOADS = {
    "heavy": dict(traffic=TrafficSpec("heavy"), run_cycles=3000),
    "light": dict(traffic=TrafficSpec("light"), run_cycles=3000),
    "cshift": dict(
        traffic=TrafficSpec("cshift", CShiftConfig(words_per_phase=24, phases=4)),
    ),
    "em3d": dict(
        traffic=TrafficSpec("em3d", Em3dConfig(n_nodes=4, d_nodes=3, iterations=2)),
    ),
    "radix": dict(
        traffic=TrafficSpec("radix", RadixSortConfig(buckets=32, keys_per_processor=8)),
    ),
    "hotspot": dict(
        traffic=TrafficSpec("hotspot", HotSpotConfig(packets_per_node=20)),
    ),
    "pairstream": dict(
        traffic=TrafficSpec("pairstream", PairStreamConfig(packets=30)),
    ),
    "incast": dict(
        traffic=TrafficSpec("incast", IncastConfig(rounds=2, packets_per_round=4)),
    ),
    "rpc": dict(
        traffic=TrafficSpec("rpc", RpcFanoutConfig(rounds=2, fanout=4, reply_packets=2)),
    ),
    # NIC-offloaded combining tree: barriers/reductions become protocol
    # traffic, the collective-parity case the offload feature demands.
    "allreduce": dict(
        traffic=TrafficSpec("allreduce", AllReduceConfig(rounds=3)),
        collective_params=CollectiveParams(barrier="nic"),
    ),
    # Disarmed (after_packets == packets): runs as a clean pair stream.
    "crashpoint": dict(
        traffic=TrafficSpec(
            "crashpoint", CrashPointConfig(packets=30, after_packets=30)
        ),
    ),
}

#: Every kernel that must match the heap baseline.
CHALLENGERS = tuple(k for k in scheduler_names() if k != "heap")


def test_parity_suite_covers_every_registered_workload():
    """A workload added to the registry must be added here too."""
    assert set(WORKLOADS) == set(traffic_names())


def test_parity_suite_covers_every_registered_kernel():
    """A scheduler added to the registry is automatically matrixed here."""
    assert "heap" in scheduler_names()
    assert CHALLENGERS  # at least bucket and epoch


def _canonical_metrics(name: str, kernel: str) -> str:
    cfg = WORKLOADS[name]
    spec = ExperimentSpec(
        network="fattree",
        traffic=cfg["traffic"],
        num_nodes=NODES,
        run_cycles=cfg.get("run_cycles"),
        max_cycles=300_000,
        seed=7,
        kernel=kernel,
        collective_params=cfg.get("collective_params"),
        observe=Observability(events=True),
    )
    result = run_experiment(spec)
    metrics = metrics_json(result)
    metrics.pop("self_profile", None)
    return json.dumps(metrics, sort_keys=True)


@pytest.mark.parametrize("kernel", CHALLENGERS)
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_kernel_metrics_byte_identical_to_heap(name, kernel):
    heap = _canonical_metrics(name, "heap")
    challenger = _canonical_metrics(name, kernel)
    assert challenger == heap, (
        f"workload {name!r}: {kernel} scheduler diverged from the heap "
        "baseline (metrics JSON not byte-identical)"
    )


def _canonical_spray_metrics(kernel: str) -> str:
    """Incast on the spraying fabric under a reorder receiver: the kernel
    must stay bit-identical even when route choice, jitter, and the
    retransmission machinery all draw from seeded RNG streams."""
    spec = ExperimentSpec(
        network="fattree-spray",
        traffic=TrafficSpec("incast", IncastConfig(rounds=2, packets_per_round=4)),
        num_nodes=NODES,
        nic_mode="reorder-bitmap",
        max_cycles=300_000,
        seed=7,
        drop_prob=0.01,
        network_overrides={"path_skew": 4},
        kernel=kernel,
        observe=Observability(events=True),
    )
    result = run_experiment(spec)
    metrics = metrics_json(result)
    metrics.pop("self_profile", None)
    return json.dumps(metrics, sort_keys=True)


@pytest.mark.parametrize("kernel", CHALLENGERS)
def test_spraying_fabric_parity(kernel):
    assert _canonical_spray_metrics(kernel) == _canonical_spray_metrics("heap")


def _canonical_mesh_metrics(kernel: str) -> str:
    """A torus (cyclic credit chains, VC-class dateline routing) under the
    plain NIC: exercises the single-VC-per-direction links where epoch
    token runs cover almost all flit traffic."""
    spec = ExperimentSpec(
        network="torus2d",
        traffic=TrafficSpec("hotspot", HotSpotConfig(packets_per_node=12)),
        num_nodes=NODES,
        nic_mode="plain",
        max_cycles=300_000,
        seed=11,
        kernel=kernel,
        observe=Observability(events=True),
    )
    result = run_experiment(spec)
    metrics = metrics_json(result)
    metrics.pop("self_profile", None)
    return json.dumps(metrics, sort_keys=True)


@pytest.mark.parametrize("kernel", CHALLENGERS)
def test_torus_parity(kernel):
    assert _canonical_mesh_metrics(kernel) == _canonical_mesh_metrics("heap")


def test_long_window_epoch_smoke():
    """A >=200k-cycle window runs to completion under the epoch kernel and
    matches heap exactly -- the 'previously truncated' configuration class
    the token runs were built to unlock."""
    results = {}
    for kernel in ("heap", "epoch"):
        spec = ExperimentSpec(
            network="fattree",
            traffic=TrafficSpec("heavy"),
            num_nodes=NODES,
            run_cycles=200_000,
            seed=3,
            kernel=kernel,
        )
        result = run_experiment(spec)
        metrics = metrics_json(result)
        metrics.pop("self_profile", None)
        results[kernel] = json.dumps(metrics, sort_keys=True)
        assert result.cycles >= 200_000
    assert results["epoch"] == results["heap"]
