"""Tests for NIC-offloaded collectives (ROADMAP item 4).

Covers the combining tree shape, the per-NIC collective engine (epoch
numbering, duplicate healing, loss recovery), the host-side flat-combine
baseline, and end-to-end allreduce runs under both ``barrier="host"`` and
``barrier="nic"`` -- including the link-fail-mid-collective regression:
a faulted collective must neither hang nor double-contribute.
"""

import pytest

from repro.experiments import ExperimentSpec, run_experiment
from repro.faults import FaultEvent, FaultPlan
from repro.nic import (
    COLLECTIVE_OPS,
    CollectiveEngine,
    CollectiveParams,
    CollectiveTree,
    HostCollective,
)
from repro.obs import Observability, metrics_json
from repro.packets import (
    REPLY_NET,
    REQUEST_NET,
    CollectiveInfo,
    Packet,
    PacketKind,
    make_collective,
)
from repro.sim import Simulator
from repro.traffic import AllReduceConfig, TrafficSpec, expected_sum


class TestCollectiveTree:
    def test_root_is_lowest_member(self):
        tree = CollectiveTree(range(16), fanout=4)
        assert tree.root == 0
        assert tree.parent_of(0) is None

    def test_kary_shape(self):
        tree = CollectiveTree(range(16), fanout=4)
        assert tree.children_of(0) == [1, 2, 3, 4]
        assert tree.children_of(1) == [5, 6, 7, 8]
        assert tree.children_of(3) == [13, 14, 15]
        assert tree.children_of(5) == []
        assert tree.parent_of(13) == 3

    def test_parent_child_consistency(self):
        for fanout in (1, 2, 3, 4, 7):
            tree = CollectiveTree(range(13), fanout)
            for node in tree.members:
                for child in tree.children_of(node):
                    assert tree.parent_of(child) == node
                parent = tree.parent_of(node)
                if parent is not None:
                    assert node in tree.children_of(parent)

    def test_fanout_one_is_a_chain(self):
        tree = CollectiveTree(range(4), fanout=1)
        assert tree.children_of(0) == [1]
        assert tree.children_of(1) == [2]
        assert tree.children_of(3) == []

    def test_sparse_unsorted_members(self):
        tree = CollectiveTree((9, 2, 5), fanout=4)
        assert tree.root == 2
        assert tree.children_of(2) == [5, 9]
        assert not tree.is_member(0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CollectiveTree((), fanout=2)


class TestCollectiveParams:
    def test_defaults_are_valid(self):
        params = CollectiveParams()
        assert params.barrier == "host"
        assert params.op in COLLECTIVE_OPS

    @pytest.mark.parametrize("kwargs", [
        dict(barrier="fpga"),
        dict(fanout=0),
        dict(op="xor"),
        dict(retx_timeout=0),
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CollectiveParams(**kwargs)


class TestCollectivePackets:
    def test_contribution_rides_request_net(self):
        pkt = make_collective(3, 0, CollectiveInfo(phase="up", epoch=2, value=7))
        assert pkt.kind is PacketKind.COLLECTIVE
        assert pkt.logical_net == REQUEST_NET
        assert pkt.control_only and not pkt.needs_ack

    def test_release_rides_reply_net(self):
        pkt = make_collective(0, 3, CollectiveInfo(phase="down", epoch=2))
        assert pkt.logical_net == REPLY_NET

    def test_collective_kind_requires_info(self):
        with pytest.raises(ValueError):
            Packet(src=0, dst=1, kind=PacketKind.COLLECTIVE, size_bytes=16)


class TestHostCollective:
    def test_flat_combine_releases_sum(self):
        sim = Simulator()
        coll = HostCollective(sim, parties=3, release_cost=10)
        got = []
        for node in range(3):
            sim.schedule(node + 1, coll.arrive, node, 10 * (node + 1),
                         lambda v, n=node: got.append((n, v, sim.now)))
        sim.run()
        assert sorted(got) == [(0, 60, 13), (1, 60, 13), (2, 60, 13)]
        assert coll.crossings == 1

    @pytest.mark.parametrize("op,expect", [("max", 30), ("min", 10)])
    def test_other_operators(self, op, expect):
        sim = Simulator()
        coll = HostCollective(sim, parties=3, release_cost=1, op=op)
        got = []
        for node in range(3):
            coll.arrive(node, 10 * (node + 1), got.append)
        sim.run()
        assert got == [expect] * 3

    def test_pure_barrier_combines_to_none(self):
        sim = Simulator()
        coll = HostCollective(sim, parties=2, release_cost=1)
        got = []
        coll.arrive(0, None, got.append)
        coll.arrive(1, None, got.append)
        sim.run()
        assert got == [None, None]

    def test_membership_and_double_arrival_enforced(self):
        sim = Simulator()
        coll = HostCollective(sim, parties=(0, 4), release_cost=1)
        coll.arrive(0, 1, lambda v: None)
        with pytest.raises(RuntimeError, match="not a member"):
            coll.arrive(2, 1, lambda v: None)
        with pytest.raises(RuntimeError, match="twice"):
            coll.arrive(0, 1, lambda v: None)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            HostCollective(Simulator(), parties=2, op="xor")


class _StubNic:
    """A NIC whose injection port always accepts -- isolates engine logic."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.obs = None
        self.collective = None
        self.sent = []

    def _start_injection(self, packet):
        self.sent.append(packet)
        return True

    def _retry_when_port_frees(self, key, net, fn):  # pragma: no cover
        raise AssertionError("stub injection port never blocks")


def _engine(node_id, members=(0, 1), fanout=4, lossy=False, op="sum"):
    sim = Simulator()
    nic = _StubNic(node_id)
    engine = CollectiveEngine(
        sim, nic, CollectiveTree(members, fanout),
        CollectiveParams(barrier="nic", fanout=fanout, op=op), lossy=lossy,
    )
    nic.collective = engine
    return sim, nic, engine


class TestCollectiveEngine:
    def test_root_completes_and_releases(self):
        sim, nic, engine = _engine(0)
        got = []
        engine.arrive(5, got.append)
        assert got == []  # child 1 has not contributed yet
        engine.on_packet(make_collective(
            1, 0, CollectiveInfo(phase="up", epoch=0, value=7, count=1)))
        assert got == [12]
        assert engine.coll_completed == 1
        assert engine.pending_epochs == 0
        releases = [p for p in nic.sent if p.coll.phase == "down"]
        assert [p.dst for p in releases] == [1]
        assert releases[0].coll.value == 12

    def test_duplicate_child_contribution_dropped(self):
        sim, nic, engine = _engine(0, members=(0, 1, 2))
        got = []
        engine.arrive(1, got.append)
        up = make_collective(
            1, 0, CollectiveInfo(phase="up", epoch=0, value=10, count=1))
        engine.on_packet(up)
        engine.on_packet(up)  # retransmit race: must not double-fold
        assert engine.coll_duplicates == 1
        assert got == []  # child 2 still missing; not released early
        engine.on_packet(make_collective(
            2, 0, CollectiveInfo(phase="up", epoch=0, value=100, count=1)))
        assert got == [111]

    def test_stale_contribution_answered_with_fresh_release(self):
        sim, nic, engine = _engine(0)
        engine.arrive(5, lambda v: None)
        up = make_collective(
            1, 0, CollectiveInfo(phase="up", epoch=0, value=7, count=1))
        engine.on_packet(up)
        before = len([p for p in nic.sent if p.coll.phase == "down"])
        engine.on_packet(up)  # child evidently missed the release
        releases = [p for p in nic.sent if p.coll.phase == "down"]
        assert len(releases) == before + 1
        assert engine.coll_duplicates == 1

    def test_fast_child_runs_an_epoch_ahead(self):
        """A leaf may enter collective N+1 while N's release is in flight;
        epoch numbering keeps the two from being confused."""
        sim, nic, engine = _engine(1)  # leaf; parent is 0
        got = []
        engine.arrive(10, lambda v: got.append(("e0", v)))
        engine.arrive(20, lambda v: got.append(("e1", v)))
        ups = [p for p in nic.sent if p.coll.phase == "up"]
        assert [(p.coll.epoch, p.coll.value) for p in ups] == [(0, 10), (1, 20)]
        assert engine.pending_epochs == 2
        engine.on_packet(make_collective(
            0, 1, CollectiveInfo(phase="down", epoch=0, value=30)))
        engine.on_packet(make_collective(
            0, 1, CollectiveInfo(phase="down", epoch=1, value=70)))
        assert got == [("e0", 30), ("e1", 70)]
        assert engine.pending_epochs == 0

    def test_duplicate_release_ignored(self):
        sim, nic, engine = _engine(1)
        got = []
        engine.arrive(10, got.append)
        down = make_collective(
            0, 1, CollectiveInfo(phase="down", epoch=0, value=30))
        engine.on_packet(down)
        engine.on_packet(down)
        assert got == [30]

    def test_lossy_leaf_retransmits_until_released(self):
        sim, nic, engine = _engine(1, lossy=True)
        engine.arrive(10, lambda v: None)
        sim.run_until(engine.params.retx_timeout * 3 + 1)
        ups = [p for p in nic.sent if p.coll.phase == "up"]
        assert len(ups) >= 3  # original + timer-driven retransmits
        assert engine.coll_retransmits >= 2
        engine.on_packet(make_collective(
            0, 1, CollectiveInfo(phase="down", epoch=0, value=30)))
        sent_after = len(nic.sent)
        sim.run_until(sim.now + engine.params.retx_timeout * 3)
        assert len(nic.sent) == sent_after  # timer cancelled by the release

    def test_double_local_contribution_rejected(self):
        """The processor model never does this; the engine still refuses."""
        sim, nic, engine = _engine(0)
        engine.arrive(1, lambda v: None)
        engine._next_epoch = 0  # force a second arrive into the same epoch
        with pytest.raises(RuntimeError, match="twice"):
            engine.arrive(2, lambda v: None)


NODES = 16


def _allreduce_spec(barrier, **overrides):
    defaults = dict(
        network="fattree",
        traffic=TrafficSpec("allreduce", AllReduceConfig(rounds=3)),
        num_nodes=NODES,
        max_cycles=3_000_000,
        seed=3,
        collective_params=CollectiveParams(barrier=barrier),
        observe=Observability(validate=True, events=True),
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestAllReduceEndToEnd:
    """The allreduce driver self-verifies every reduced value against the
    closed form, so mere completion proves no contribution was lost or
    double-folded."""

    @pytest.mark.parametrize("barrier", ["host", "nic"])
    def test_clean_run_completes_without_violations(self, barrier):
        result = run_experiment(_allreduce_spec(barrier))
        assert result.completed
        assert result.violations == []
        assert result.metrics.barrier_latency.count == 3 * NODES

    def test_nic_mode_exports_collective_counters(self):
        result = run_experiment(_allreduce_spec("nic"))
        doc = metrics_json(result)
        counters = doc["collectives"]
        assert counters["coll_completed"] == 3  # root completes each epoch
        assert counters["coll_duplicates"] == 0
        assert counters["coll_contribs_sent"] == 3 * (NODES - 1)

    def test_host_mode_has_no_collective_counters(self):
        assert "collectives" not in metrics_json(
            run_experiment(_allreduce_spec("host")))

    def test_expected_sum_closed_form(self):
        n = 5
        for round_no in range(3):
            assert expected_sum(round_no, n) == sum(
                round_no * n + i for i in range(n))

    def test_link_fail_mid_collective_heals(self):
        """The CI regression: a link failure striking mid-collective (plus
        a loss burst) must neither hang the barrier nor double-contribute.
        The engine's idempotent retransmit path covers both nets."""
        plan = FaultPlan(events=(
            FaultEvent(kind="link_fail", at=1500, until=4000, link="ft:up0.0"),
            FaultEvent(kind="loss_burst", at=500, until=6000, prob=0.08),
        ))
        result = run_experiment(_allreduce_spec(
            "nic",
            traffic=TrafficSpec("allreduce", AllReduceConfig(rounds=6)),
            seed=5,
            fault_plan=plan,
        ))
        assert result.completed  # no hang
        assert result.violations == []  # no double-contribution, no loss
        doc = metrics_json(result)
        assert doc["collectives"]["coll_completed"] == 6

    def test_fanout_changes_tree_not_results(self):
        values = []
        for fanout in (2, 8):
            result = run_experiment(_allreduce_spec(
                "nic",
                collective_params=CollectiveParams(barrier="nic", fanout=fanout),
            ))
            assert result.completed and result.violations == []
            values.append(metrics_json(result)["collectives"]["coll_completed"])
        assert values == [3, 3]
