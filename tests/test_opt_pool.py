"""Unit tests for the OPT and the outgoing pool (rank/eligibility)."""

import pytest

from repro.nic import OutgoingPool, OutstandingPacketTable

from conftest import simple_packet


class TestOpt:
    def test_add_remove_membership(self):
        opt = OutstandingPacketTable(4)
        opt.add(7)
        assert 7 in opt
        assert len(opt) == 1
        opt.remove(7)
        assert 7 not in opt

    def test_capacity_enforced(self):
        opt = OutstandingPacketTable(2)
        opt.add(1)
        opt.add(2)
        assert opt.full
        with pytest.raises(RuntimeError):
            opt.add(3)

    def test_one_outstanding_per_destination(self):
        opt = OutstandingPacketTable(4)
        opt.add(5)
        with pytest.raises(RuntimeError):
            opt.add(5)

    def test_spurious_ack_detected(self):
        opt = OutstandingPacketTable(4)
        with pytest.raises(RuntimeError):
            opt.remove(9)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            OutstandingPacketTable(0)

    def test_iteration(self):
        opt = OutstandingPacketTable(4)
        opt.add(1)
        opt.add(2)
        assert sorted(opt) == [1, 2]


class TestPool:
    def test_insert_until_full(self):
        pool = OutgoingPool(3)
        assert all(pool.insert(simple_packet(0, d)) for d in (1, 2, 3))
        assert pool.full
        assert not pool.insert(simple_packet(0, 4))
        assert len(pool) == 3

    def test_front_is_fifo_per_destination(self):
        pool = OutgoingPool(8)
        a = simple_packet(0, 1, pair_seq=0)
        b = simple_packet(0, 1, pair_seq=1)
        other = simple_packet(0, 2)
        pool.insert(a)
        pool.insert(other)
        pool.insert(b)
        assert pool.front(1) is a
        assert pool.pop_front(1) is a
        assert pool.front(1) is b  # rank decremented: b now eligible

    def test_destinations_in_first_arrival_order(self):
        pool = OutgoingPool(8)
        for dst in (3, 1, 3, 2):
            pool.insert(simple_packet(0, dst))
        assert pool.destinations() == [3, 1, 2]

    def test_count_and_free_slots(self):
        pool = OutgoingPool(4)
        pool.insert(simple_packet(0, 1))
        pool.insert(simple_packet(0, 1))
        assert pool.count_for(1) == 2
        assert pool.count_for(9) == 0
        assert pool.free_slots == 2

    def test_pop_empty_destination_rejected(self):
        pool = OutgoingPool(2)
        with pytest.raises(RuntimeError):
            pool.pop_front(1)

    def test_iteration_covers_all(self):
        pool = OutgoingPool(8)
        packets = [simple_packet(0, d) for d in (1, 2, 1)]
        for p in packets:
            pool.insert(p)
        assert set(pool) == set(packets)

    def test_destination_removed_when_drained(self):
        pool = OutgoingPool(4)
        pool.insert(simple_packet(0, 5))
        pool.pop_front(5)
        assert pool.destinations() == []
        assert len(pool) == 0
