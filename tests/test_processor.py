"""Tests for the processor model: overheads, retry, barrier polling."""

import pytest

from repro.networks import build_network
from repro.nic import NifdyNIC, PlainNIC
from repro.node import (
    CM5_TIMING,
    Compute,
    Done,
    Ignore,
    Processor,
    Send,
    Timing,
    TrafficDriver,
    WaitBarrier,
)
from repro.sim import Barrier, RngFactory, Simulator

from conftest import simple_packet


class ScriptedDriver(TrafficDriver):
    """Replays a fixed list of actions, then Done forever."""

    def __init__(self, actions):
        self.actions = list(actions)
        self.received = []

    def next_action(self):
        if self.actions:
            return self.actions.pop(0)
        return Done()

    def on_packet(self, packet):
        self.received.append(packet)


def two_node_setup(nic_cls=PlainNIC, timing=CM5_TIMING, actions0=(), actions1=()):
    sim = Simulator()
    net = build_network("mesh2d", sim, 4, rng=RngFactory(0).stream("r"))
    nics = net.attach_nics(lambda n: nic_cls(sim, n))
    barrier = Barrier(sim, (0, 3), release_cost=timing.barrier_cost)
    d0, d1 = ScriptedDriver(actions0), ScriptedDriver(actions1)
    p0 = Processor(sim, 0, nics[0], d0, timing, barrier=barrier)
    p1 = Processor(sim, 3, nics[3], d1, timing, barrier=barrier)
    p0.start()
    p1.start()
    return sim, (p0, p1), (d0, d1), nics


class TestSendReceive:
    def test_send_pays_overhead_and_delivers(self):
        pkt = simple_packet(0, 3, pair_seq=0)
        sim, procs, drivers, nics = two_node_setup(actions0=[Send(pkt)])
        sim.run_until(20_000)
        assert procs[0].packets_sent == 1
        assert drivers[1].received == [pkt]
        assert pkt.delivered_cycle > pkt.created_cycle >= 0

    def test_send_overhead_precedes_injection(self):
        pkt = simple_packet(0, 3)
        sim, procs, drivers, nics = two_node_setup(actions0=[Send(pkt)])
        sim.run_until(20_000)
        assert pkt.injected_cycle >= CM5_TIMING.t_send

    def test_receive_priority_over_actions(self):
        """A processor with pending arrivals receives before computing."""
        pkt = simple_packet(0, 3)
        sim, procs, drivers, nics = two_node_setup(
            actions0=[Send(pkt)],
            actions1=[Compute(50_000)],  # first action is long compute
        )
        sim.run_until(80_000)
        # compute started first, but after it the packet is received
        assert drivers[1].received == [pkt]

    def test_nic_full_retries_until_accepted(self):
        packets = [simple_packet(0, 3, pair_seq=i) for i in range(6)]
        sim, procs, drivers, nics = two_node_setup(
            actions0=[Send(p) for p in packets]
        )
        sim.run_until(200_000)
        assert procs[0].packets_sent == 6
        assert len(drivers[1].received) == 6

    def test_busy_cycles_accounted(self):
        pkt = simple_packet(0, 3)
        sim, procs, drivers, nics = two_node_setup(actions0=[Send(pkt)])
        sim.run_until(20_000)
        assert procs[0].busy_cycles >= CM5_TIMING.t_send
        assert procs[1].busy_cycles >= CM5_TIMING.t_receive


class TestTimingModel:
    def test_receive_cost_reorder_penalty(self):
        t = Timing()
        base = t.receive_cost(1, in_order=False, exploit=False)
        multi = t.receive_cost(4, in_order=False, exploit=False)
        assert multi == base + t.reorder_penalty

    def test_receive_cost_inorder_discount_requires_exploit(self):
        t = Timing()
        assert t.receive_cost(4, True, False) == t.t_receive
        assert t.receive_cost(4, True, True) == t.t_receive - t.inorder_receive_discount

    def test_single_packet_messages_pay_no_penalty(self):
        t = Timing()
        assert t.receive_cost(1, False, False) == t.t_receive


class TestBarrier:
    def test_barrier_synchronises(self):
        sim, procs, drivers, nics = two_node_setup(
            actions0=[WaitBarrier(), Compute(1)],
            actions1=[Compute(5000), WaitBarrier(), Compute(1)],
        )
        sim.run_until(50_000)
        assert procs[0].done and procs[1].done

    def test_barrier_waiter_still_receives(self):
        """Node in the barrier keeps polling: the sender's packet must be
        accepted even though the receiver arrived at the barrier first."""
        pkt = simple_packet(0, 3)
        sim, procs, drivers, nics = two_node_setup(
            nic_cls=NifdyNIC,
            actions0=[Compute(3000), Send(pkt), WaitBarrier()],
            actions1=[WaitBarrier()],
        )
        sim.run_until(100_000)
        assert drivers[1].received == [pkt]
        assert procs[0].done and procs[1].done

    def test_missing_barrier_object_rejected(self):
        sim = Simulator()
        net = build_network("mesh2d", sim, 4)
        nics = net.attach_nics(lambda n: PlainNIC(sim, n))
        proc = Processor(
            sim, 0, nics[0], ScriptedDriver([WaitBarrier()]), CM5_TIMING,
            barrier=None,
        )
        proc.start()
        with pytest.raises(RuntimeError):
            sim.run_until(100)


class TestIgnore:
    def test_ignore_defers_reception(self):
        pkt = simple_packet(0, 3)
        sim, procs, drivers, nics = two_node_setup(
            actions0=[Send(pkt)],
            actions1=[Ignore(30_000)],
        )
        sim.run_until(25_000)
        assert drivers[1].received == []  # still deaf
        sim.run_until(80_000)
        assert drivers[1].received == [pkt]

    def test_done_processor_keeps_polling(self):
        pkt = simple_packet(0, 3)
        sim, procs, drivers, nics = two_node_setup(
            actions0=[Compute(10_000), Send(pkt)],
            actions1=[],  # immediately Done
        )
        sim.run_until(100_000)
        assert drivers[1].received == [pkt]
