"""Tests for the workload drivers (synthetic, C-shift, EM3D, radix sort)."""

import pytest

from repro.node import Compute, Done, Ignore, Send, WaitBarrier
from repro.sim import RngFactory
from repro.traffic import (
    CShiftConfig,
    CShiftDriver,
    Em3dConfig,
    Em3dDriver,
    RadixSortConfig,
    RadixSortDriver,
    SyntheticConfig,
    SyntheticDriver,
)


class FakeProc:
    """Just enough Processor surface for drivers pulled outside a sim."""

    class sim:
        now = 0

    class timing:
        t_poll = 22


def pull_actions(driver, limit=10_000):
    """Drain a driver's action stream (no simulator needed for send-only
    drivers); returns the actions up to Done or the limit."""
    if not hasattr(driver, "proc"):
        driver.proc = FakeProc()
    actions = []
    for _ in range(limit):
        action = driver.next_action()
        actions.append(action)
        if isinstance(action, Done):
            break
    return actions


class TestSynthetic:
    def test_heavy_phase_quota_and_barrier(self):
        cfg = SyntheticConfig.heavy_traffic(packets_per_phase=20, max_phases=2)
        driver = SyntheticDriver(3, 16, cfg, RngFactory(0))
        actions = pull_actions(driver)
        sends = [a for a in actions if isinstance(a, Send)]
        barriers = [a for a in actions if isinstance(a, WaitBarrier)]
        assert len(sends) == 40
        assert len(barriers) == 2
        assert isinstance(actions[-1], Done)

    def test_heavy_message_lengths_in_range(self):
        cfg = SyntheticConfig.heavy_traffic(packets_per_phase=100, max_phases=1)
        driver = SyntheticDriver(0, 16, cfg, RngFactory(1))
        sends = [a.packet for a in pull_actions(driver) if isinstance(a, Send)]
        lengths = {p.msg_len for p in sends}
        assert lengths <= {1, 2, 3, 4, 5}
        assert len(lengths) > 1

    def test_messages_are_consecutive_to_same_destination(self):
        cfg = SyntheticConfig.heavy_traffic(packets_per_phase=50, max_phases=1)
        driver = SyntheticDriver(0, 16, cfg, RngFactory(2))
        sends = [a.packet for a in pull_actions(driver) if isinstance(a, Send)]
        i = 0
        while i < len(sends):
            msg = [p for p in sends if p.msg_id == sends[i].msg_id]
            assert len({p.dst for p in msg}) == 1
            assert [p.msg_seq for p in msg] == list(range(len(msg)))
            i += len(msg)

    def test_no_self_sends(self):
        cfg = SyntheticConfig.heavy_traffic(packets_per_phase=200, max_phases=1)
        for node in (0, 7, 15):
            driver = SyntheticDriver(node, 16, cfg, RngFactory(3))
            sends = [a.packet for a in pull_actions(driver) if isinstance(a, Send)]
            assert all(p.dst != node for p in sends)

    def test_light_traffic_has_long_messages_and_ignores(self):
        cfg = SyntheticConfig.light_traffic(packets_per_phase=60, max_phases=20)
        driver = SyntheticDriver(5, 16, cfg, RngFactory(4))
        actions = pull_actions(driver, limit=50_000)
        lengths = {a.packet.msg_len for a in actions if isinstance(a, Send)}
        assert 10 in lengths or 20 in lengths
        assert any(isinstance(a, Ignore) and a.cycles >= 200 for a in actions)

    def test_traffic_identical_across_exploit_flag(self):
        """Section 3: the same burst sequence regardless of configuration."""
        cfg = SyntheticConfig.heavy_traffic(packets_per_phase=30, max_phases=2)
        a = SyntheticDriver(1, 16, cfg, RngFactory(9), exploit_inorder=False)
        b = SyntheticDriver(1, 16, cfg, RngFactory(9), exploit_inorder=True)
        sa = [(p.packet.dst, p.packet.msg_len) for p in pull_actions(a) if isinstance(p, Send)]
        sb = [(p.packet.dst, p.packet.msg_len) for p in pull_actions(b) if isinstance(p, Send)]
        assert sa == sb


class TestCShift:
    def test_destinations_follow_shift_pattern(self):
        cfg = CShiftConfig(words_per_phase=8, phases=3)
        driver = CShiftDriver(2, 8, cfg)
        sends = [a.packet for a in pull_actions(driver) if isinstance(a, Send)]
        dsts = []
        for p in sends:
            if p.dst not in dsts:
                dsts.append(p.dst)
        assert dsts == [(2 + 1) % 8, (2 + 2) % 8, (2 + 3) % 8]

    def test_full_run_covers_all_peers(self):
        cfg = CShiftConfig(words_per_phase=4)
        driver = CShiftDriver(0, 8, cfg)
        sends = [a.packet for a in pull_actions(driver) if isinstance(a, Send)]
        assert {p.dst for p in sends} == set(range(1, 8))

    def test_barrier_variant_emits_barriers(self):
        cfg = CShiftConfig(words_per_phase=4, barriers=True, phases=3)
        driver = CShiftDriver(0, 8, cfg)
        actions = pull_actions(driver)
        assert sum(isinstance(a, WaitBarrier) for a in actions) == 3

    def test_no_barrier_variant_runs_free(self):
        cfg = CShiftConfig(words_per_phase=4, barriers=False, phases=3)
        actions = pull_actions(CShiftDriver(0, 8, cfg))
        assert not any(isinstance(a, WaitBarrier) for a in actions)

    def test_inorder_mode_sends_fewer_packets(self):
        cfg = CShiftConfig(words_per_phase=60, phases=2)
        plain = [a for a in pull_actions(CShiftDriver(0, 8, cfg, exploit_inorder=False)) if isinstance(a, Send)]
        inorder = [a for a in pull_actions(CShiftDriver(0, 8, cfg, exploit_inorder=True)) if isinstance(a, Send)]
        assert len(inorder) < len(plain)


class TestEm3d:
    def test_graph_deterministic_across_configs(self):
        cfg = Em3dConfig(n_nodes=30, d_nodes=5, local_p=50, dist_span=3)
        a = Em3dDriver(4, 16, cfg, RngFactory(5), exploit_inorder=False)
        b = Em3dDriver(4, 16, cfg, RngFactory(5), exploit_inorder=True)
        assert a.remote == b.remote

    def test_remote_fraction_tracks_local_p(self):
        mostly_local = Em3dConfig(n_nodes=200, d_nodes=10, local_p=80, dist_span=5)
        mostly_remote = Em3dConfig(n_nodes=200, d_nodes=10, local_p=3, dist_span=5)
        rngf = RngFactory(6)
        local_driver = Em3dDriver(3, 16, mostly_local, rngf)
        remote_driver = Em3dDriver(3, 16, mostly_remote, RngFactory(6))
        count = lambda d: sum(sum(h.values()) for h in d.remote)
        assert count(remote_driver) > 3 * count(local_driver)

    def test_remote_targets_within_span(self):
        cfg = Em3dConfig(n_nodes=100, d_nodes=10, local_p=0, dist_span=2)
        driver = Em3dDriver(8, 32, cfg, RngFactory(7))
        allowed = {(8 + off) % 32 for off in (-2, -1, 1, 2)}
        for half in driver.remote:
            assert set(half) <= allowed

    def test_iteration_structure(self):
        cfg = Em3dConfig(n_nodes=10, d_nodes=4, local_p=0, dist_span=2,
                         iterations=2)
        driver = Em3dDriver(0, 8, cfg, RngFactory(8))

        class FakeProc:
            class sim:
                now = 0

        driver.proc = FakeProc()
        actions = pull_actions(driver, limit=100_000)
        barriers = sum(isinstance(a, WaitBarrier) for a in actions)
        computes = sum(isinstance(a, Compute) for a in actions)
        assert barriers == 4  # 2 halves x 2 iterations
        assert computes == 4


class TestRadixSort:
    def test_first_node_sends_all_buckets(self):
        cfg = RadixSortConfig(buckets=16)
        driver = RadixSortDriver(0, 4, cfg, RngFactory(0))

        class FakeProc:
            class sim:
                now = 0
            class timing:
                t_poll = 22

        driver.proc = FakeProc()
        actions = pull_actions(driver, limit=10_000)
        sends = [a for a in actions if isinstance(a, Send)]
        assert len(sends) == 16
        assert all(a.packet.dst == 1 for a in sends)

    def test_middle_node_waits_for_upstream(self):
        cfg = RadixSortConfig(buckets=4)
        driver = RadixSortDriver(1, 4, cfg, RngFactory(0))

        class FakeProc:
            class sim:
                now = 0
            class timing:
                t_poll = 22

        driver.proc = FakeProc()
        first = driver.next_action()
        assert isinstance(first, Ignore)  # nothing received yet
        # feed one upstream packet
        from conftest import simple_packet

        pkt = simple_packet(0, 1)
        pkt.payload = ("scan", 0)
        driver.on_packet(pkt)
        nxt = driver.next_action()
        assert isinstance(nxt, Compute)  # combine
        send = driver.next_action()
        assert isinstance(send, Send)
        assert send.packet.dst == 2

    def test_delay_variant_inserts_compute(self):
        cfg = RadixSortConfig(buckets=8, inter_send_delay=100)
        driver = RadixSortDriver(0, 4, cfg, RngFactory(0))

        class FakeProc:
            class sim:
                now = 0
            class timing:
                t_poll = 22

        driver.proc = FakeProc()
        actions = pull_actions(driver, limit=1000)
        delays = [a for a in actions if isinstance(a, Compute) and a.cycles == 100]
        assert len(delays) == 7  # between consecutive sends

    def test_coalesce_random_destinations(self):
        cfg = RadixSortConfig(buckets=2, run_coalesce=True, keys_per_processor=30)
        driver = RadixSortDriver(0, 8, cfg, RngFactory(1))

        class FakeProc:
            class sim:
                now = 0
            class timing:
                t_poll = 22

        driver.proc = FakeProc()
        actions = pull_actions(driver, limit=10_000)
        keys = [a.packet for a in actions if isinstance(a, Send)
                and isinstance(a.packet.payload, tuple) and a.packet.payload[0] == "key"]
        assert len(keys) == 30
        assert len({p.dst for p in keys}) > 1
        assert all(p.msg_len == 1 for p in keys)
