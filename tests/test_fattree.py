"""Tests for fat-tree topologies (full 4-ary and the CM-5 imitation)."""

import pytest

from repro.networks import build_fattree, build_network
from repro.routers import STORE_AND_FORWARD
from repro.sim import RngFactory, Simulator

from conftest import build_with_nics, drain_all, simple_packet


class TestFullFatTree:
    def test_router_count_64_nodes(self):
        sim = Simulator()
        net = build_network("fattree", sim, 64)
        # 3 levels x 16 routers
        assert len(net.routers) == 48

    def test_all_pairs_delivery_16(self):
        sim, net, nics = build_with_nics("fattree", 16)
        expected = 0
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    nics[src].try_send(simple_packet(src, dst, flits=2))
                    expected += 1
        assert len(drain_all(sim, nics, expected)) == expected

    def test_same_leaf_router_stays_local(self):
        """Nodes 0 and 1 share a leaf router: 2 hops, no climb."""
        sim = Simulator()
        net = build_network("fattree", sim, 64)
        assert net.min_hops(0, 1) == 2
        # node-R0-R1-R2-R1'-R0'-node: the paper's "maximum internode
        # distance is 6 hops" for the 64-node fat tree.
        assert net.min_hops(0, 63) == 6

    def test_max_hops_64_nodes(self):
        sim = Simulator()
        net = build_network("fattree", sim, 64)
        _avg, max_hops = net.hop_stats(sample=300)
        assert max_hops == 6  # matches Section 2.4.3

    def test_adaptive_up_routing_reorders_packets(self):
        """Many packets between one pair on an otherwise busy network should
        be able to arrive out of order (the network is marked accordingly)."""
        sim = Simulator()
        net = build_network("fattree", sim, 64)
        assert not net.delivers_in_order

    def test_heavy_cross_traffic_delivery(self):
        sim, net, nics = build_with_nics("fattree", 64)
        expected = 0
        for src in range(64):
            dst = 63 - src
            if dst == src:
                continue
            for _ in range(4):
                nics[src].try_send(simple_packet(src, dst, flits=4))
                expected += 1
        assert len(drain_all(sim, nics, expected)) == expected

    def test_bisection_exceeds_mesh(self):
        simf = Simulator()
        ft = build_network("fattree", simf, 64)
        simm = Simulator()
        mesh = build_network("mesh2d", simm, 64)
        assert ft.bisection_bandwidth() > mesh.bisection_bandwidth()


class TestStoreAndForwardFatTree:
    def test_sf_routers_have_packet_buffers(self):
        sim = Simulator()
        net = build_network("fattree-sf", sim, 16)
        inter = [l for l in net.links if id(l) not in net._nic_link_ids]
        assert all(l._vc_capacity >= 10 for l in inter)
        assert all(r.mode == STORE_AND_FORWARD for r in net.routers)

    def test_sf_slower_than_cutthrough(self):
        from repro.analysis import measure_latency_fit

        ct = measure_latency_fit("fattree", 16, max_probes=8)
        sf = measure_latency_fit("fattree-sf", 16, max_probes=8)
        # store-and-forward pays a full packet per hop
        assert sf[0] > ct[0] + 20

    def test_delivery(self):
        sim, net, nics = build_with_nics("fattree-sf", 16)
        count = 0
        for src in range(16):
            nics[src].try_send(simple_packet(src, (src + 5) % 16))
            count += 1
        assert len(drain_all(sim, nics, count)) == count


class TestCm5FatTree:
    def test_pruned_upper_levels(self):
        sim = Simulator()
        net = build_network("cm5", sim, 64)
        # level0: 16, level1: 8, level2: 4
        assert len(net.routers) == 28

    def test_split_links_per_logical_network(self):
        sim = Simulator()
        net = build_network("cm5", sim, 64)
        # every channel is two half-bandwidth sub-links
        assert all(link.cycles_per_flit == 16 for link in net.links)

    def test_all_pairs_delivery(self):
        sim, net, nics = build_with_nics("cm5", 16)
        expected = 0
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    nics[src].try_send(simple_packet(src, dst, flits=2))
                    expected += 1
        assert len(drain_all(sim, nics, expected, horizon=2_000_000)) == expected

    def test_bisection_below_full_fat_tree(self):
        sim1 = Simulator()
        cm5 = build_network("cm5", sim1, 64)
        sim2 = Simulator()
        full = build_network("fattree", sim2, 64)
        assert cm5.bisection_bandwidth() < full.bisection_bandwidth()

    def test_nifdy_nic_works_on_split_links(self):
        sim, net, nics = build_with_nics("cm5", 16, nic="nifdy")
        for src in range(16):
            nics[src].try_send(simple_packet(src, (src + 3) % 16, pair_seq=0))
        assert len(drain_all(sim, nics, 16, horizon=2_000_000)) == 16


class TestFatTreeValidation:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            build_fattree(Simulator(), variant="bogus")
