"""Tests for the lossy-network extension (Section 6.2)."""

import pytest

from repro.networks import build_network
from repro.nic import NifdyParams, RetransmittingNifdyNIC
from repro.sim import RngFactory, Simulator

from conftest import drain_all
from test_nifdy_protocol import feed, stream


def lossy_setup(drop_prob, num_nodes=16, network="fattree", params=None,
                retx_timeout=800, seed=5):
    sim = Simulator()
    rngf = RngFactory(seed)
    net = build_network(
        network, sim, num_nodes,
        rng=rngf.stream("route"),
        drop_prob=drop_prob,
        drop_rng=rngf.stream("drop"),
    )
    params = params or NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=4)
    nics = net.attach_nics(
        lambda n: RetransmittingNifdyNIC(sim, n, params, retx_timeout=retx_timeout)
    )
    return sim, net, nics


class TestScalarRetransmission:
    def test_all_packets_delivered_despite_drops(self):
        sim, net, nics = lossy_setup(0.15)
        feed(sim, nics[0], stream(0, 9, 15, {"bulk_threshold": 10 ** 9}))
        delivered = drain_all(sim, nics, 15, horizon=2_000_000)
        assert len(delivered) == 15
        assert nics[0].retransmissions > 0

    def test_delivery_remains_in_order(self):
        sim, net, nics = lossy_setup(0.2)
        feed(sim, nics[0], stream(0, 9, 20, {"bulk_threshold": 10 ** 9}))
        delivered = drain_all(sim, nics, 20, horizon=2_000_000)
        assert [p.pair_seq for p in delivered] == list(range(20))

    def test_no_duplicates_reach_processor(self):
        sim, net, nics = lossy_setup(0.25)
        feed(sim, nics[0], stream(0, 9, 15, {"bulk_threshold": 10 ** 9}))
        delivered = drain_all(sim, nics, 15, horizon=2_000_000)
        uids = [p.uid for p in delivered]
        assert len(uids) == len(set(uids)) == 15

    def test_reliable_network_needs_no_retransmissions(self):
        sim, net, nics = lossy_setup(0.0)
        feed(sim, nics[0], stream(0, 9, 10, {"bulk_threshold": 10 ** 9}))
        delivered = drain_all(sim, nics, 10)
        assert len(delivered) == 10
        assert nics[0].retransmissions == 0
        assert nics[9].duplicates_dropped == 0


class TestBulkRetransmission:
    def test_bulk_transfer_completes_despite_drops(self):
        sim, net, nics = lossy_setup(0.15)
        feed(sim, nics[0], stream(0, 9, 24, {"bulk_threshold": 4}))
        delivered = drain_all(sim, nics, 24, horizon=3_000_000)
        assert [p.pair_seq for p in delivered] == list(range(24))

    def test_dialog_eventually_torn_down(self):
        sim, net, nics = lossy_setup(0.15)
        feed(sim, nics[0], stream(0, 9, 12, {"bulk_threshold": 4}))
        delivered = drain_all(sim, nics, 12, horizon=3_000_000)
        assert len(delivered) == 12
        sim.run_until(sim.now + 100_000)
        assert nics[9]._rx_dialogs == {}
        assert nics[0]._bulk_out is None

    def test_many_pairs_under_loss(self):
        sim, net, nics = lossy_setup(0.1, num_nodes=16)
        expected = 0
        for src in range(0, 16, 2):
            dst = (src + 7) % 16
            feed(sim, nics[src], stream(src, dst, 8, {"bulk_threshold": 4}))
            expected += 8
        delivered = drain_all(sim, nics, expected, horizon=3_000_000)
        assert len(delivered) == expected


class TestGiveUp:
    def test_max_retries_raises(self):
        sim, net, nics = lossy_setup(1.0, retx_timeout=200)
        nics[0].max_retries = 3
        feed(sim, nics[0], stream(0, 9, 1, {"bulk_threshold": 10 ** 9}))
        # Exponential backoff: retries at ~200, 600, 1400; give-up ~3000.
        with pytest.raises(RuntimeError, match="gave up"):
            sim.run_until(200 * 40)

    def test_abandon_records_instead_of_raising(self):
        sim, net, nics = lossy_setup(1.0, retx_timeout=200)
        nics[0].max_retries = 3
        nics[0].on_exhaust = "abandon"
        abandoned = []
        nics[0].on_abandon = abandoned.append
        feed(sim, nics[0], stream(0, 9, 1, {"bulk_threshold": 10 ** 9}))
        sim.run_until(200 * 40)
        assert nics[0].packets_abandoned == 1
        assert len(abandoned) == 1
        assert abandoned[0].dst == 9
        assert len(nics[0].opt) == 0        # OPT entry was released
        assert nics[0]._hold == {}          # no timer left running

    def test_abandon_frees_traffic_to_other_destinations(self):
        # Partition node 9 only (its ejection link): traffic to 9 exhausts
        # and is abandoned, while a later stream to node 5 still completes.
        sim, net, nics = lossy_setup(0.0, retx_timeout=300)
        for link in net.links:
            if link.name == "ft:ej9":
                link.fail()
        nics[0].max_retries = 2
        nics[0].on_exhaust = "abandon"
        feed(sim, nics[0], stream(0, 9, 2, {"bulk_threshold": 10 ** 9}))
        feed(sim, nics[0], stream(0, 5, 4, {"bulk_threshold": 10 ** 9}))
        delivered = drain_all(sim, nics, 4, horizon=1_000_000)
        assert [p.dst for p in delivered] == [5, 5, 5, 5]
        assert nics[0].packets_abandoned >= 1

    def test_bulk_abandon_tears_down_whole_dialog(self):
        sim, net, nics = lossy_setup(1.0, retx_timeout=200)
        nics[0].max_retries = 2
        nics[0].on_exhaust = "abandon"
        feed(sim, nics[0], stream(0, 9, 8, {"bulk_threshold": 4}))
        sim.run_until(400_000)
        assert nics[0]._bulk_out is None
        assert nics[0]._hold == {}
        assert nics[0].packets_abandoned >= 1


class TestAdaptiveTimeout:
    def test_rtt_samples_shrink_the_timeout(self):
        # Start with a deliberately huge timer on a reliable network: the
        # estimator should pull the RTO down toward the measured RTT.
        sim, net, nics = lossy_setup(0.0, retx_timeout=50_000)
        feed(sim, nics[0], stream(0, 9, 10, {"bulk_threshold": 10 ** 9}))
        delivered = drain_all(sim, nics, 10, horizon=2_000_000)
        assert len(delivered) == 10
        assert nics[0].rtt_samples > 0
        assert nics[0].current_timeout < 50_000

    def test_timeout_respects_floor(self):
        sim, net, nics = lossy_setup(0.0, retx_timeout=800)
        nics[0].min_timeout = 700
        feed(sim, nics[0], stream(0, 9, 10, {"bulk_threshold": 10 ** 9}))
        drain_all(sim, nics, 10, horizon=2_000_000)
        assert nics[0].current_timeout >= 700

    def test_fixed_timeout_mode_never_adapts(self):
        sim, net, nics = lossy_setup(0.0, retx_timeout=900)
        nics[0].adaptive_timeout = False
        feed(sim, nics[0], stream(0, 9, 10, {"bulk_threshold": 10 ** 9}))
        drain_all(sim, nics, 10, horizon=2_000_000)
        assert nics[0].current_timeout == 900

    def test_retransmission_still_recovers_with_adaptation(self):
        sim, net, nics = lossy_setup(0.2, retx_timeout=800)
        feed(sim, nics[0], stream(0, 9, 20, {"bulk_threshold": 10 ** 9}))
        delivered = drain_all(sim, nics, 20, horizon=3_000_000)
        assert [p.pair_seq for p in delivered] == list(range(20))
        assert nics[0].retransmissions > 0
