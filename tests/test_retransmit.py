"""Tests for the lossy-network extension (Section 6.2)."""

import pytest

from repro.networks import build_network
from repro.nic import NifdyParams, RetransmittingNifdyNIC
from repro.sim import RngFactory, Simulator

from conftest import drain_all
from test_nifdy_protocol import feed, stream


def lossy_setup(drop_prob, num_nodes=16, network="fattree", params=None,
                retx_timeout=800, seed=5):
    sim = Simulator()
    rngf = RngFactory(seed)
    net = build_network(
        network, sim, num_nodes,
        rng=rngf.stream("route"),
        drop_prob=drop_prob,
        drop_rng=rngf.stream("drop"),
    )
    params = params or NifdyParams(opt_size=4, pool_size=8, dialogs=1, window=4)
    nics = net.attach_nics(
        lambda n: RetransmittingNifdyNIC(sim, n, params, retx_timeout=retx_timeout)
    )
    return sim, net, nics


class TestScalarRetransmission:
    def test_all_packets_delivered_despite_drops(self):
        sim, net, nics = lossy_setup(0.15)
        feed(sim, nics[0], stream(0, 9, 15, {"bulk_threshold": 10 ** 9}))
        delivered = drain_all(sim, nics, 15, horizon=2_000_000)
        assert len(delivered) == 15
        assert nics[0].retransmissions > 0

    def test_delivery_remains_in_order(self):
        sim, net, nics = lossy_setup(0.2)
        feed(sim, nics[0], stream(0, 9, 20, {"bulk_threshold": 10 ** 9}))
        delivered = drain_all(sim, nics, 20, horizon=2_000_000)
        assert [p.pair_seq for p in delivered] == list(range(20))

    def test_no_duplicates_reach_processor(self):
        sim, net, nics = lossy_setup(0.25)
        feed(sim, nics[0], stream(0, 9, 15, {"bulk_threshold": 10 ** 9}))
        delivered = drain_all(sim, nics, 15, horizon=2_000_000)
        uids = [p.uid for p in delivered]
        assert len(uids) == len(set(uids)) == 15

    def test_reliable_network_needs_no_retransmissions(self):
        sim, net, nics = lossy_setup(0.0)
        feed(sim, nics[0], stream(0, 9, 10, {"bulk_threshold": 10 ** 9}))
        delivered = drain_all(sim, nics, 10)
        assert len(delivered) == 10
        assert nics[0].retransmissions == 0
        assert nics[9].duplicates_dropped == 0


class TestBulkRetransmission:
    def test_bulk_transfer_completes_despite_drops(self):
        sim, net, nics = lossy_setup(0.15)
        feed(sim, nics[0], stream(0, 9, 24, {"bulk_threshold": 4}))
        delivered = drain_all(sim, nics, 24, horizon=3_000_000)
        assert [p.pair_seq for p in delivered] == list(range(24))

    def test_dialog_eventually_torn_down(self):
        sim, net, nics = lossy_setup(0.15)
        feed(sim, nics[0], stream(0, 9, 12, {"bulk_threshold": 4}))
        delivered = drain_all(sim, nics, 12, horizon=3_000_000)
        assert len(delivered) == 12
        sim.run_until(sim.now + 100_000)
        assert nics[9]._rx_dialogs == {}
        assert nics[0]._bulk_out is None

    def test_many_pairs_under_loss(self):
        sim, net, nics = lossy_setup(0.1, num_nodes=16)
        expected = 0
        for src in range(0, 16, 2):
            dst = (src + 7) % 16
            feed(sim, nics[src], stream(src, dst, 8, {"bulk_threshold": 4}))
            expected += 8
        delivered = drain_all(sim, nics, expected, horizon=3_000_000)
        assert len(delivered) == expected


class TestGiveUp:
    def test_max_retries_raises(self):
        sim, net, nics = lossy_setup(1.0, retx_timeout=200)
        nics[0].max_retries = 3
        feed(sim, nics[0], stream(0, 9, 1, {"bulk_threshold": 10 ** 9}))
        with pytest.raises(RuntimeError, match="gave up"):
            sim.run_until(200 * 10)
