"""Tests for packet formats and the traffic-layer packet factory."""

import pytest

from repro.packets import (
    ACK_WORDS,
    FLIT_BYTES,
    REPLY_NET,
    AckInfo,
    Packet,
    PacketKind,
    make_ack,
)
from repro.traffic import PacketFactory


def make_packet(**kw):
    defaults = dict(src=0, dst=1, kind=PacketKind.SCALAR, size_bytes=32)
    defaults.update(kw)
    return Packet(**defaults)


class TestPacket:
    def test_flit_count_rounds_up(self):
        assert make_packet(size_bytes=32).flits == 8
        assert make_packet(size_bytes=33).flits == 9
        assert make_packet(size_bytes=1).flits == 1

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            make_packet(size_bytes=0)

    def test_ack_requires_info(self):
        with pytest.raises(ValueError):
            make_packet(kind=PacketKind.ACK)

    def test_make_ack_rides_reply_network(self):
        ack = make_ack(3, 7, AckInfo(for_scalar=True))
        assert ack.kind is PacketKind.ACK
        assert ack.src == 3 and ack.dst == 7
        assert ack.logical_net == REPLY_NET
        assert ack.needs_ack is False
        assert ack.flits == ACK_WORDS

    def test_identity_semantics(self):
        a = make_packet()
        b = make_packet()
        assert a != b
        assert a == a
        assert len({a, b}) == 2

    def test_data_predicate(self):
        assert make_packet().is_data
        assert not make_ack(0, 1, AckInfo()).is_data


class TestPacketFactory:
    def test_message_basic_fields(self):
        factory = PacketFactory(2, packet_words=8, bulk_threshold=4)
        msg = factory.message(5, 3)
        assert len(msg) == 3
        assert all(p.src == 2 and p.dst == 5 for p in msg)
        assert [p.msg_seq for p in msg] == [0, 1, 2]
        assert all(p.msg_len == 3 for p in msg)
        assert all(p.size_bytes == 8 * FLIT_BYTES for p in msg)
        assert not any(p.bulk_request for p in msg)  # below threshold

    def test_bulk_request_set_at_threshold(self):
        factory = PacketFactory(0, bulk_threshold=4)
        assert all(p.bulk_request for p in factory.message(1, 4))
        assert not any(p.bulk_request for p in factory.message(1, 3))

    def test_pair_seq_monotonic_per_destination(self):
        factory = PacketFactory(0)
        seqs_to_1 = [p.pair_seq for p in factory.message(1, 2)]
        factory.message(2, 3)  # interleaved traffic to another node
        seqs_to_1 += [p.pair_seq for p in factory.message(1, 2)]
        assert seqs_to_1 == [0, 1, 2, 3]

    def test_self_send_rejected(self):
        with pytest.raises(ValueError):
            PacketFactory(4).message(4, 1)

    def test_empty_message_rejected(self):
        with pytest.raises(ValueError):
            PacketFactory(0).message(1, 0)

    def test_packets_for_words_without_inorder(self):
        # 6-word packet, 1 header + 1 bookkeeping -> 4 payload words/packet
        factory = PacketFactory(0, packet_words=6, exploit_inorder=False)
        assert factory.packets_for_words(4) == 1
        assert factory.packets_for_words(5) == 2
        assert factory.packets_for_words(16) == 4

    def test_packets_for_words_with_inorder_is_fewer(self):
        plain = PacketFactory(0, packet_words=6, exploit_inorder=False)
        inorder = PacketFactory(0, packet_words=6, exploit_inorder=True)
        # first packet 4 payload words, rest 5
        assert inorder.packets_for_words(4) == 1
        assert inorder.packets_for_words(9) == 2
        assert inorder.packets_for_words(14) == 3
        for words in (1, 8, 20, 100, 1000):
            assert inorder.packets_for_words(words) <= plain.packets_for_words(words)

    def test_zero_words_zero_packets(self):
        assert PacketFactory(0).packets_for_words(0) == 0
