"""Property-based tests (hypothesis) on the core data structures and the
end-to-end in-order delivery invariant."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.networks import build_network
from repro.nic import (
    NifdyParams,
    OutgoingPool,
    OutstandingPacketTable,
    ReorderParams,
    ReorderTolerantNIC,
)
from repro.sim import RngFactory, Simulator
from repro.traffic import PacketFactory

from conftest import build_with_nics, drain_all, simple_packet
from test_nifdy_protocol import feed


class TestKernelProperties:
    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=40))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.booleans()),
            max_size=30,
        )
    )
    def test_cancelled_events_never_fire(self, spec):
        sim = Simulator()
        fired = []
        for i, (delay, cancel) in enumerate(spec):
            event = sim.schedule(delay, fired.append, i)
            if cancel:
                event.cancel()
        sim.run()
        expected = [i for i, (_, cancel) in enumerate(spec) if not cancel]
        assert sorted(fired) == expected


class TestPoolProperties:
    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=30))
    def test_pool_count_never_exceeds_capacity(self, dsts):
        pool = OutgoingPool(4)
        inserted = 0
        for dst in dsts:
            if pool.insert(simple_packet(0, dst)):
                inserted += 1
            assert len(pool) <= 4
        assert inserted == min(len(dsts), 4)

    @given(st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=20))
    def test_pop_front_preserves_per_destination_fifo(self, dsts):
        pool = OutgoingPool(len(dsts))
        order = {}
        for i, dst in enumerate(dsts):
            pkt = simple_packet(0, dst, pair_seq=i)
            pool.insert(pkt)
            order.setdefault(dst, []).append(pkt)
        for dst, expected in order.items():
            popped = [pool.pop_front(dst) for _ in expected]
            assert popped == expected


class TestOptProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from("ar"), st.integers(0, 5)),
            max_size=40,
        )
    )
    def test_opt_is_a_bounded_set(self, ops):
        opt = OutstandingPacketTable(3)
        shadow = set()
        for op, dst in ops:
            if op == "a" and dst not in shadow and len(shadow) < 3:
                opt.add(dst)
                shadow.add(dst)
            elif op == "r" and dst in shadow:
                opt.remove(dst)
                shadow.discard(dst)
            assert set(opt) == shadow
            assert len(opt) <= 3


class TestFactoryProperties:
    @given(
        st.integers(min_value=1, max_value=500),
        st.booleans(),
    )
    def test_packets_for_words_covers_payload(self, words, exploit):
        factory = PacketFactory(0, packet_words=6, exploit_inorder=exploit)
        count = factory.packets_for_words(words)
        if exploit:
            capacity = factory.payload_words + (count - 1) * factory.payload_words_inorder
        else:
            capacity = count * factory.payload_words
        assert capacity >= words
        # minimality: one fewer packet would not fit
        if count > 1:
            if exploit:
                smaller = factory.payload_words + (count - 2) * factory.payload_words_inorder
            else:
                smaller = (count - 1) * factory.payload_words
            assert smaller < words

    @given(st.lists(st.integers(1, 6), min_size=1, max_size=12))
    def test_pair_seq_strictly_increasing(self, lengths):
        factory = PacketFactory(0)
        seqs = []
        for length in lengths:
            seqs.extend(p.pair_seq for p in factory.message(3, length))
        assert seqs == list(range(len(seqs)))


class TestEndToEndOrdering:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        network=st.sampled_from(["fattree", "multibutterfly", "torus2d"]),
        window=st.sampled_from([2, 4, 8]),
        opt=st.sampled_from([2, 8]),
        count=st.integers(min_value=5, max_value=25),
        threshold=st.sampled_from([3, 100]),
    )
    def test_nifdy_always_delivers_in_order(self, network, window, opt, count, threshold):
        """Whatever the parameters, NIFDY delivers each pair's packets in
        send order and loses nothing."""
        params = NifdyParams(opt_size=opt, pool_size=8, dialogs=1, window=window)
        sim, net, nics = build_with_nics(network, 16, nic="nifdy", params=params)
        factory = PacketFactory(0, bulk_threshold=threshold)
        feed(sim, nics[0], factory.message(9, count))
        delivered = drain_all(sim, nics, count, horizon=1_500_000)
        assert [p.pair_seq for p in delivered] == list(range(count))


class TestReorderEndToEnd:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        policy=st.sampled_from(["window", "bitmap", "dropcache"]),
        tx_window=st.sampled_from([2, 4, 8]),
        cache=st.sampled_from([0, 4]),
        count=st.integers(min_value=5, max_value=25),
        skew=st.sampled_from([0, 6]),
    )
    def test_reorder_nic_restores_order_on_spray_fabric(
        self, policy, tx_window, cache, count, skew,
    ):
        """Whatever the window/cache sizing, every recovery variant turns
        the spraying, jittering fabric back into an in-order channel."""
        params = ReorderParams(
            tx_window=tx_window, rx_window=2 * tx_window, cache_capacity=cache,
        )
        sim = Simulator()
        net = build_network(
            "fattree-spray", sim, 16,
            rng=RngFactory(5).stream("route"), path_skew=skew,
        )
        nics = net.attach_nics(
            lambda n: ReorderTolerantNIC(
                sim, n, policy=policy, params=params, retx_timeout=900,
            )
        )
        factory = PacketFactory(0, bulk_threshold=1000)
        feed(sim, nics[0], factory.message(9, count))
        delivered = drain_all(sim, nics, count, horizon=2_000_000)
        assert [p.pair_seq for p in delivered] == list(range(count))
