"""Modern-datacenter scenario pack: incast and RPC fan-out/fan-in traffic.

The paper's hot-spot workload already converges many senders on one node,
but it does so *statistically*: each sender independently biases a fraction
of its uniform traffic toward the hot node.  Datacenter incast is harsher --
many senders fire a burst at the same sink *simultaneously* (a storage
read striped over N servers, a partition-aggregate query) -- and RPC
fan-out/fan-in adds the reverse dependency: a root cannot make progress
until the replies converge back on it.

Both drivers here are deliberately round-structured so the bursts are
synchronised (that is what makes incast collapse) and both survive graceful
degradation: when a NIC abandons packets after retry exhaustion, the root
gives up on a round after a bounded wait instead of polling forever, and
workers that stop hearing requests retire themselves.  That bounded-wait
discipline is what lets the chaos engine fault these workloads without
wedging the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..node import Action, Done, PollFor, Send, TrafficDriver, WaitBarrier
from ..packets import Packet, SYNTHETIC_PACKET_WORDS
from ..sim import RngFactory
from .messages import PacketFactory


def _lowest_ids(num_nodes: int, exclude: int, count: int) -> Tuple[int, ...]:
    """The ``count`` lowest node ids excluding ``exclude`` (deterministic, so
    every node derives the same participant set without coordination)."""
    ids = [n for n in range(num_nodes) if n != exclude]
    return tuple(ids[:count])


# --------------------------------------------------------------------------
# Incast: synchronised many-to-one bursts.
# --------------------------------------------------------------------------


@dataclass
class IncastConfig:
    """Synchronised many-to-one bursts at a single sink.

    Each round, every sender fires a ``packets_per_round``-packet message at
    ``sink`` at the same time (a barrier separates rounds when
    ``sync_rounds`` is set, which is what produces the simultaneous burst).
    ``fan_in`` selects how many senders participate; 0 means every node but
    the sink.
    """

    sink: int = 0
    fan_in: int = 0               # 0 = all other nodes send
    rounds: int = 4
    packets_per_round: int = 8
    sync_rounds: bool = True      # barrier between rounds -> true incast burst
    bulk_threshold: int = 4
    packet_words: int = SYNTHETIC_PACKET_WORDS

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("need at least one round")
        if self.packets_per_round < 1:
            raise ValueError("need at least one packet per round")
        if self.fan_in < 0:
            raise ValueError("fan_in cannot be negative")


class IncastDriver(TrafficDriver):
    """Per-node driver: senders burst at the sink each round; everyone
    participates in the round barriers so the bursts stay synchronised."""

    def __init__(
        self,
        node_id: int,
        num_nodes: int,
        config: IncastConfig,
        rng_factory: RngFactory = None,
        exploit_inorder: bool = False,
    ):
        if config.sink >= num_nodes:
            raise ValueError("sink is not a node of this network")
        self.node_id = node_id
        self.num_nodes = num_nodes
        self.config = config
        fan_in = config.fan_in or (num_nodes - 1)
        self.senders = _lowest_ids(num_nodes, config.sink, fan_in)
        self.is_sender = node_id in self.senders
        self.is_sink = node_id == config.sink
        self.factory = PacketFactory(
            node_id,
            packet_words=config.packet_words,
            bulk_threshold=config.bulk_threshold,
            exploit_inorder=exploit_inorder,
        )
        self._queue: List[Packet] = []
        self._round = 0
        self._barrier_owed = False
        self.sink_received = 0

    def next_action(self) -> Action:
        cfg = self.config
        while True:
            if self._queue:
                return Send(self._queue.pop(0))
            if self._barrier_owed:
                self._barrier_owed = False
                return WaitBarrier()
            if self._round >= cfg.rounds:
                return Done()
            self._round += 1
            if self.is_sender:
                self._queue = self.factory.message(
                    cfg.sink, cfg.packets_per_round
                )
            if cfg.sync_rounds:
                # Everyone (sink and bystanders included) joins the barrier,
                # so the next burst starts only once this one is absorbed.
                self._barrier_owed = True
            elif not self.is_sender:
                self._round = cfg.rounds  # nothing to pace; retire now

    def on_packet(self, packet: Packet) -> None:
        if self.is_sink:
            self.sink_received += 1


# --------------------------------------------------------------------------
# RPC fan-out/fan-in: scatter requests, gather replies.
# --------------------------------------------------------------------------


@dataclass
class RpcFanoutConfig:
    """Partition-aggregate RPC: a root scatters requests, workers reply.

    Each round the root sends a ``request_packets``-packet request to each
    of ``fanout`` workers and then polls until the *cumulative* reply count
    catches up (every worker reply is ``reply_packets`` long -- the fan-in
    burst) or ``give_up_after`` cycles pass.  Cumulative accounting means a
    straggler's late reply still counts, and abandoned requests (reported
    through :meth:`TrafficDriver.on_abandoned`) shrink the expectation so
    graceful degradation cannot wedge the root.  Workers that stop hearing
    requests retire after ``give_up_after`` idle cycles and, once retired,
    never queue another reply.
    """

    root: int = 0
    fanout: int = 4
    rounds: int = 4
    request_packets: int = 1
    reply_packets: int = 4
    poll_chunk: int = 200           # PollFor granularity while waiting
    give_up_after: int = 60_000     # bounded wait; < the chaos watchdog
    bulk_threshold: int = 4
    packet_words: int = SYNTHETIC_PACKET_WORDS

    def __post_init__(self) -> None:
        if self.fanout < 1 or self.rounds < 1:
            raise ValueError("need at least one worker and one round")
        if self.request_packets < 1 or self.reply_packets < 1:
            raise ValueError("requests and replies need at least one packet")
        if self.poll_chunk < 1 or self.give_up_after < 1:
            raise ValueError("poll_chunk and give_up_after must be positive")


class RpcDriver(TrafficDriver):
    """Root scatters, waits (boundedly) for the gathered replies; workers
    answer each completed request with a reply burst."""

    def __init__(
        self,
        node_id: int,
        num_nodes: int,
        config: RpcFanoutConfig,
        rng_factory: RngFactory = None,
        exploit_inorder: bool = False,
    ):
        if config.root >= num_nodes:
            raise ValueError("root is not a node of this network")
        if config.fanout > num_nodes - 1:
            raise ValueError("fanout exceeds the available workers")
        self.node_id = node_id
        self.num_nodes = num_nodes
        self.config = config
        self.workers = _lowest_ids(num_nodes, config.root, config.fanout)
        self.is_root = node_id == config.root
        self.is_worker = node_id in self.workers
        self.factory = PacketFactory(
            node_id,
            packet_words=config.packet_words,
            bulk_threshold=config.bulk_threshold,
            exploit_inorder=exploit_inorder,
        )
        self._queue: List[Packet] = []
        # Root state: cumulative reply accounting (a straggler's late reply
        # for round r still counts toward round r+1's target).
        self._round = 0
        self._deadline = None
        self.reply_packets_received = 0
        self._expected_replies = 0
        self.rounds_given_up = 0
        # Worker state.
        self._req_progress: Dict[int, int] = {}   # msg_id -> packets seen
        self.requests_completed = 0
        self._gave_up = False
        self._last_activity = 0

    # ----------------------------------------------------------------- root
    def _root_action(self) -> Action:
        cfg = self.config
        while True:
            if self._queue:
                return Send(self._queue.pop(0))
            if self._deadline is not None:
                if self.reply_packets_received >= self._expected_replies:
                    self._deadline = None       # round gathered; move on
                    continue
                if self.proc.sim.now >= self._deadline:
                    self._deadline = None       # bounded wait: give up
                    self.rounds_given_up += 1
                    # Stop expecting this round's stragglers so a *later*
                    # round is not satisfied by them alone.
                    self._expected_replies = self.reply_packets_received
                    continue
                return PollFor(cfg.poll_chunk)
            if self._round >= cfg.rounds:
                return Done()
            self._round += 1
            for worker in self.workers:
                self._queue.extend(
                    self.factory.message(worker, cfg.request_packets)
                )
                self._expected_replies += cfg.reply_packets
            self._deadline = self.proc.sim.now + cfg.give_up_after
            if self._queue:  # recompute deadline after the sends finish? no:
                # the give-up window is generous enough to cover send time.
                return Send(self._queue.pop(0))

    # --------------------------------------------------------------- worker
    def _worker_action(self) -> Action:
        cfg = self.config
        if self._queue:
            self._last_activity = self.proc.sim.now
            return Send(self._queue.pop(0))
        if self.requests_completed >= cfg.rounds or self._gave_up:
            return Done()
        if self.proc.sim.now - self._last_activity >= cfg.give_up_after:
            # The root abandoned a request (or its NIC did): no more work is
            # coming.  Retire -- and never queue another reply -- so a done
            # worker cannot race the run-completion check.
            self._gave_up = True
            return Done()
        return PollFor(cfg.poll_chunk)

    def next_action(self) -> Action:
        if self.is_root:
            return self._root_action()
        if self.is_worker:
            return self._worker_action()
        return Done()

    def on_packet(self, packet: Packet) -> None:
        if self.is_root:
            if packet.src in self.workers:
                self.reply_packets_received += 1
            return
        if not self.is_worker or packet.src != self.config.root:
            return
        self._last_activity = self.proc.sim.now
        if self._gave_up:
            return
        seen = self._req_progress.get(packet.msg_id, 0) + 1
        if seen < packet.msg_len:
            self._req_progress[packet.msg_id] = seen
            return
        self._req_progress.pop(packet.msg_id, None)
        self.requests_completed += 1
        self._queue.extend(
            self.factory.message(self.config.root, self.config.reply_packets)
        )

    def on_abandoned(self, packet: Packet) -> None:
        if self.is_root and packet.dst in self.workers:
            # The request died at our own NIC: that worker will never see it,
            # so stop waiting for the reply it would have produced.  (A
            # worker's abandoned reply is covered by the give-up deadline.)
            self._expected_replies = max(
                self.reply_packets_received,
                self._expected_replies - self.config.reply_packets,
            )
