"""Allreduce rounds: compute, scatter background traffic, reduce, repeat.

The collective benchmark workload.  Every round each node computes, sends a
small deterministic block of background packets (so the reduction contends
with real traffic, the regime where the paper's heavy-traffic claims
matter), then contributes a deterministic value to a global reduction and
blocks until the combined result returns.  The driver *self-verifies*: with
the ``sum`` operator the combined value each round is known in closed form,
so a combining-tree bug (dropped or double-folded contribution) surfaces as
a hard error in the workload itself, not just an invariant flag.

Runs identically under ``barrier="host"`` (flat combine) and
``barrier="nic"`` (combining tree) -- that switch lives in
``ExperimentSpec.collective_params``, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..node import Action, AllReduce, Compute, Done, Send, TrafficDriver
from ..packets import Packet, SPLITC_PACKET_WORDS
from .messages import PacketFactory


@dataclass
class AllReduceConfig:
    """``rounds`` reductions separated by compute and background sends."""

    rounds: int = 8
    compute_cycles: int = 300
    #: Payload words of background traffic each node scatters per round
    #: (0 disables; destinations rotate deterministically).
    background_words: int = 48
    packet_words: int = SPLITC_PACKET_WORDS
    bulk_threshold: int = 4
    #: Check the combined value against the closed form (sum operator).
    verify: bool = True


def expected_sum(round_no: int, num_nodes: int) -> int:
    """The closed-form combined value for round ``round_no``: every node
    ``i`` contributes ``round_no * num_nodes + i``."""
    n = num_nodes
    return round_no * n * n + n * (n - 1) // 2


class AllReduceDriver(TrafficDriver):
    """Per-node driver for the allreduce rounds."""

    def __init__(
        self,
        node_id: int,
        num_nodes: int,
        config: AllReduceConfig,
        exploit_inorder: bool = False,
    ):
        self.node_id = node_id
        self.num_nodes = num_nodes
        self.config = config
        self.factory = PacketFactory(
            node_id,
            packet_words=config.packet_words,
            bulk_threshold=config.bulk_threshold,
            exploit_inorder=exploit_inorder,
        )
        self.round = 0
        self._computed = False
        self._queue: List[Packet] = []
        self._queued_round = -1
        self._reduced = False
        self.reductions = 0
        self.finished_cycle = None

    def _contribution(self) -> int:
        return self.round * self.num_nodes + self.node_id

    def next_action(self) -> Action:
        if self.round >= self.config.rounds:
            if self.finished_cycle is None:
                self.finished_cycle = self.proc.sim.now
            return Done()
        if not self._computed:
            self._computed = True
            return Compute(self.config.compute_cycles)
        if self.config.background_words and self.num_nodes > 1:
            if self._queued_round != self.round:
                self._queued_round = self.round
                dst = (self.node_id + 1 + self.round) % self.num_nodes
                if dst == self.node_id:
                    dst = (dst + 1) % self.num_nodes
                self._queue = self.factory.message_for_words(
                    dst, self.config.background_words
                )
            if self._queue:
                return Send(self._queue.pop(0))
        if not self._reduced:
            self._reduced = True
            return AllReduce(self._contribution())
        # on_reduced fired: advance to the next round.
        self.round += 1
        self._computed = False
        self._reduced = False
        return self.next_action()

    def on_reduced(self, value) -> None:
        self.reductions += 1
        if self.config.verify and value is not None:
            want = expected_sum(self.round, self.num_nodes)
            if value != want:
                raise RuntimeError(
                    f"node {self.node_id} round {self.round}: allreduce "
                    f"returned {value}, expected {want} (a contribution was "
                    "lost or double-folded)"
                )

    def on_packet(self, packet: Packet) -> None:
        pass
