"""The paper's traffic loads: synthetic heavy/light, C-shift, EM3D, radix sort."""

from .allreduce import AllReduceConfig, AllReduceDriver, expected_sum
from .crashpoint import CrashPointConfig, CrashPointDriver
from .cshift import CShiftConfig, CShiftDriver
from .em3d import Em3dConfig, Em3dDriver
from .hotspot import HotSpotConfig, HotSpotDriver
from .incast import IncastConfig, IncastDriver, RpcDriver, RpcFanoutConfig
from .messages import PacketFactory
from .pairstream import PairStreamConfig, PairStreamDriver
from .radix_sort import RadixSortConfig, RadixSortDriver
from .registry import TrafficSpec, register_traffic, traffic_entry, traffic_names
from .synthetic import SyntheticConfig, SyntheticDriver

__all__ = [
    "AllReduceConfig",
    "AllReduceDriver",
    "CShiftConfig",
    "CShiftDriver",
    "CrashPointConfig",
    "CrashPointDriver",
    "Em3dConfig",
    "Em3dDriver",
    "HotSpotConfig",
    "HotSpotDriver",
    "IncastConfig",
    "IncastDriver",
    "PacketFactory",
    "PairStreamConfig",
    "PairStreamDriver",
    "RadixSortConfig",
    "RadixSortDriver",
    "RpcDriver",
    "RpcFanoutConfig",
    "SyntheticConfig",
    "SyntheticDriver",
    "TrafficSpec",
    "expected_sum",
    "register_traffic",
    "traffic_entry",
    "traffic_names",
]
