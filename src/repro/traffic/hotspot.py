"""Hot-spot traffic: many senders converging on one receiver.

The paper's introduction lists hot spots as a primary source of internal
congestion, and Section 5 claims NIFDY "handles the more general case with
multiple nodes sending to one receiver, returning acks only at the rate at
which the receiver accepts packets.  This throttles the combined injection
rate of all the senders to a level that the receiver can handle" -- dynamic
bandwidth matching that "would be difficult and expensive to implement in
software".

This workload sends a configurable fraction of each node's packets to one
hot node and the rest uniformly; the interesting observable is not the hot
node's throughput (it is pinned at its receive rate either way) but the
*background* traffic, which secondary blocking around the hot spot destroys
unless admission is controlled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..node import Action, Done, PollFor, Send, TrafficDriver
from ..packets import Packet, SYNTHETIC_PACKET_WORDS
from ..sim import RngFactory
from .messages import PacketFactory


@dataclass
class HotSpotConfig:
    """Uniform random traffic with a converging hot-spot component."""

    hot_node: int = 0
    hot_fraction: float = 0.25
    packets_per_node: int = 200
    message_length: int = 1
    send_gap_cycles: int = 0      # optional pacing between sends
    bulk_threshold: int = 4
    packet_words: int = SYNTHETIC_PACKET_WORDS

    def __post_init__(self) -> None:
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be a probability")


class HotSpotDriver(TrafficDriver):
    """Per-node driver: fixed packet budget, hot-spot-biased destinations."""

    def __init__(
        self,
        node_id: int,
        num_nodes: int,
        config: HotSpotConfig,
        rng_factory: RngFactory,
        exploit_inorder: bool = False,
    ):
        self.node_id = node_id
        self.num_nodes = num_nodes
        self.config = config
        self.rng = rng_factory.stream(f"hotspot:{node_id}")
        self.factory = PacketFactory(
            node_id,
            packet_words=config.packet_words,
            bulk_threshold=config.bulk_threshold,
            exploit_inorder=exploit_inorder,
        )
        self.sent_quota = 0
        self._queue: List[Packet] = []
        self._gap_owed = False
        self.is_hot = node_id == config.hot_node
        self.background_received = 0
        self.hot_received = 0

    def _pick_destination(self) -> int:
        cfg = self.config
        if not self.is_hot and self.rng.random() < cfg.hot_fraction:
            return cfg.hot_node
        dst = self.rng.randrange(self.num_nodes - 1)
        return dst if dst < self.node_id else dst + 1

    def next_action(self) -> Action:
        cfg = self.config
        if self._gap_owed and cfg.send_gap_cycles > 0:
            self._gap_owed = False
            return PollFor(cfg.send_gap_cycles)
        if not self._queue:
            if self.sent_quota >= cfg.packets_per_node:
                return Done()
            length = min(cfg.message_length, cfg.packets_per_node - self.sent_quota)
            self._queue = self.factory.message(self._pick_destination(), length)
        self.sent_quota += 1
        self._gap_owed = True
        return Send(self._queue.pop(0))

    def on_packet(self, packet: Packet) -> None:
        if self.is_hot:
            self.hot_received += 1
        else:
            self.background_received += 1
