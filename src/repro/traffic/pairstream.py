"""Pair-stream microbenchmark: one sender, one receiver, maximum rate.

This is the workload behind the paper's Section 2.4 analysis ("traffic
between a single source/destination pair separated by d hops"): it measures
pairwise bandwidth on an otherwise idle network, which is what Equations
1-3 predict.  Used by the model-validation bench and handy as a
micro-benchmark for any NIC/network combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..node import Action, Done, Send, TrafficDriver
from ..packets import Packet, SYNTHETIC_PACKET_WORDS
from ..sim import RngFactory
from .messages import PacketFactory


@dataclass
class PairStreamConfig:
    """A single maximal-rate stream from ``src`` to ``dst``."""

    src: int = 0
    dst: int = 1
    packets: int = 60
    bulk: bool = False            # request a bulk dialog for the stream
    packet_words: int = SYNTHETIC_PACKET_WORDS

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("pair stream needs two distinct nodes")
        if self.packets < 1:
            raise ValueError("need at least one packet")


class PairStreamDriver(TrafficDriver):
    """Sender pushes the stream; every other node just stays responsive."""

    def __init__(
        self,
        node_id: int,
        num_nodes: int,
        config: PairStreamConfig,
        rng_factory: Optional[RngFactory] = None,
        exploit_inorder: bool = False,
    ):
        self.node_id = node_id
        self.config = config
        self._queue: List[Packet] = []
        self.first_send_cycle: Optional[int] = None
        self.last_receive_cycle: Optional[int] = None
        self.received = 0
        if node_id == config.src:
            factory = PacketFactory(
                node_id,
                packet_words=config.packet_words,
                bulk_threshold=1 if config.bulk else 10 ** 9,
                exploit_inorder=exploit_inorder,
            )
            self._queue = factory.message(config.dst, config.packets)

    def next_action(self) -> Action:
        if self._queue:
            if self.first_send_cycle is None:
                self.first_send_cycle = self.proc.sim.now
            return Send(self._queue.pop(0))
        return Done()

    def on_packet(self, packet: Packet) -> None:
        self.received += 1
        self.last_receive_cycle = self.proc.sim.now
