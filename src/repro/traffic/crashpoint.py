"""Crash-point traffic: a workload that kills its own worker on purpose.

The fault-tolerant sweep farm (:mod:`repro.farm`) has to be tested against
the failures it exists to contain: a worker process dying *hard* (the
``os._exit`` / segfault / OOM-kill class that raises no Python exception
and breaks a shared process pool), a worker wedging on wall clock, and a
plain in-point exception.  Those cannot be staged from a test module --
a subprocess worker re-imports ``repro`` in a fresh interpreter, so the
misbehaving traffic must live in the package registry itself.

``CrashPointConfig`` behaves exactly like a small
:class:`~repro.traffic.pairstream.PairStreamDriver` stream until the
sender has issued ``after_packets`` packets, then fails in the configured
``mode``.  Two knobs make the failure *schedulable* rather than merely
destructive:

* ``once_flag`` -- a filesystem path used as a one-shot armer: the first
  run creates the file and then crashes; any later run (a farm retry, or
  a baseline run with the flag pre-created) sees the file and completes
  cleanly.  A clean run's results are identical whether or not the config
  could have crashed, which is what lets the farm's resume test demand
  byte-identical output against an uninterrupted serial baseline.
* ``mode="raise"`` stays inside Python (ordinary per-point isolation);
  ``"exit"`` is the hard kill; ``"hang"`` sleeps the worker past any
  reasonable ``point_timeout``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List, Optional

from ..node import Action, Done, Send, TrafficDriver
from ..packets import Packet, SYNTHETIC_PACKET_WORDS
from ..sim import RngFactory
from .messages import PacketFactory

#: Exit status a hard-crashing worker dies with (visible in the farm's
#: ``worker_died`` diagnosis; chosen to be distinguishable from Python's
#: own exit codes).
CRASH_EXIT_CODE = 86

CRASH_MODES = ("exit", "raise", "hang")


@dataclass
class CrashPointConfig:
    """A pair stream whose sender fails after ``after_packets`` sends."""

    src: int = 0
    dst: int = 1
    packets: int = 8
    #: How the sender fails: ``exit`` (hard ``os._exit``, kills the worker
    #: with no Python unwind), ``raise`` (ordinary exception), ``hang``
    #: (sleeps ``hang_seconds`` of wall clock).
    mode: str = "exit"
    #: Sends issued before the failure fires; >= ``packets`` never fires.
    after_packets: int = 2
    exit_code: int = CRASH_EXIT_CODE
    hang_seconds: float = 3600.0
    #: One-shot armer path: crash only while the file does not exist (the
    #: file is created immediately before failing, so exactly one attempt
    #: dies and every later attempt runs clean).  ``None`` fails always.
    once_flag: Optional[str] = None
    packet_words: int = SYNTHETIC_PACKET_WORDS

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("crash-point stream needs two distinct nodes")
        if self.packets < 1:
            raise ValueError("need at least one packet")
        if self.mode not in CRASH_MODES:
            raise ValueError(
                f"unknown crash mode {self.mode!r}; choose from {CRASH_MODES}"
            )


class CrashPointDriver(TrafficDriver):
    """Pair-stream sender that fails mid-stream in the configured mode."""

    def __init__(
        self,
        node_id: int,
        num_nodes: int,
        config: CrashPointConfig,
        rng_factory: Optional[RngFactory] = None,
        exploit_inorder: bool = False,
    ):
        self.node_id = node_id
        self.config = config
        self.sent = 0
        self.received = 0
        self._queue: List[Packet] = []
        if node_id == config.src:
            factory = PacketFactory(
                node_id,
                packet_words=config.packet_words,
                exploit_inorder=exploit_inorder,
            )
            self._queue = factory.message(config.dst, config.packets)

    # ------------------------------------------------------------- failure
    def _armed(self) -> bool:
        flag = self.config.once_flag
        if flag is None:
            return True
        if os.path.exists(flag):
            return False
        # Create the flag BEFORE failing: exactly one attempt dies, and a
        # crash mode like os._exit gets no chance to write anything after.
        with open(flag, "w", encoding="utf-8") as handle:
            handle.write("crashed\n")
        return True

    def _fail(self) -> None:
        mode = self.config.mode
        if mode == "exit":
            os._exit(self.config.exit_code)
        if mode == "hang":
            time.sleep(self.config.hang_seconds)
            return
        raise RuntimeError(
            f"crashpoint traffic raised on purpose after "
            f"{self.sent} packet(s)"
        )

    # -------------------------------------------------------------- driver
    def next_action(self) -> Action:
        if self.sent == self.config.after_packets and self._queue:
            if self._armed():
                self._fail()
        if self._queue:
            self.sent += 1
            return Send(self._queue.pop(0))
        return Done()

    def on_packet(self, packet: Packet) -> None:
        self.received += 1
