"""The cyclic-shift (C-shift) all-to-all pattern (Section 4.3, after [BK94]).

P-1 phases; in phase ``p`` processor ``i`` sends a block of packets to
``(i + p) mod P``.  As long as phases stay separate every receiver has
exactly one sender; but without barriers fast nodes run ahead into the next
phase, giving some receivers two senders, which snowballs into the pile-ups
Figure 5 visualises.  Strata's fix is a global barrier between phases; the
paper shows NIFDY's admission control alone beats optimized barriers.

Variants:

* ``barriers=False`` -- free-running phases (the paper's NIFDY case).
* ``barriers=True``  -- a barrier after each phase (the Strata baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..node import Action, Done, Send, TrafficDriver, WaitBarrier
from ..packets import Packet, SPLITC_PACKET_WORDS
from .messages import PacketFactory


@dataclass
class CShiftConfig:
    """One block transfer per phase; sizes in payload words."""

    words_per_phase: int = 120
    barriers: bool = False
    bulk_threshold: int = 4
    packet_words: int = SPLITC_PACKET_WORDS
    phases: int = 0  # 0 means P-1 (the full shift)


class CShiftDriver(TrafficDriver):
    """Per-node driver for the cyclic shift."""

    def __init__(
        self,
        node_id: int,
        num_nodes: int,
        config: CShiftConfig,
        exploit_inorder: bool = False,
    ):
        self.node_id = node_id
        self.num_nodes = num_nodes
        self.config = config
        self.factory = PacketFactory(
            node_id,
            packet_words=config.packet_words,
            bulk_threshold=config.bulk_threshold,
            exploit_inorder=exploit_inorder,
        )
        self.phase = 1
        self._queue: List[Packet] = []
        self._pending_barrier = False
        self.total_phases = config.phases or (num_nodes - 1)
        self.finished_cycle = None

    def next_action(self) -> Action:
        if self._pending_barrier:
            self._pending_barrier = False
            return WaitBarrier()
        if self.phase > self.total_phases:
            if self.finished_cycle is None:
                self.finished_cycle = self.proc.sim.now
            return Done()
        if not self._queue:
            dst = (self.node_id + self.phase) % self.num_nodes
            self._queue = self.factory.message_for_words(
                dst, self.config.words_per_phase
            )
        packet = self._queue.pop(0)
        if not self._queue:
            # Message done: advance to the next phase (after a barrier, in
            # the Strata-style variant).
            self.phase += 1
            self._pending_barrier = self.config.barriers
        return Send(packet)

    def on_packet(self, packet: Packet) -> None:
        pass
