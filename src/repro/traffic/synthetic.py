"""Pseudo-random bursty synthetic traffic (Section 4.1).

Two patterns, both organised as barrier-separated phases:

* **heavy** -- every node sends each phase; message lengths are uniform on
  1..5 packets; a sender picks a new random destination after each message
  and pushes packets as fast as it can.  Rewards graceful handling of heavy
  load.
* **light** -- each node sends with probability 1/3 per phase; the message
  length distribution includes 10- and 20-packet messages ("most messages
  are short, but long messages account for more packets overall"); idle
  nodes periodically enter pseudo-random 'non-responsive' periods during
  which they neither send nor pull packets from the network.

Per-node dedicated RNG streams guarantee the same burst sequence regardless
of the network and NIC configuration under test (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..node import Action, Done, Ignore, PollFor, Send, TrafficDriver, WaitBarrier
from ..packets import Packet, SYNTHETIC_PACKET_WORDS
from ..sim import RngFactory
from .messages import PacketFactory

#: Light-traffic message-length distribution: mostly short, but the tail
#: carries most packets (Section 4.1).
LIGHT_LENGTHS: Tuple[int, ...] = (1, 2, 3, 5, 10, 20)
LIGHT_WEIGHTS: Tuple[int, ...] = (30, 20, 12, 10, 16, 12)


@dataclass
class SyntheticConfig:
    """Knobs for the synthetic phase traffic."""

    heavy: bool = True
    packets_per_phase: int = 100
    max_phases: Optional[int] = None     # None: run until the horizon
    send_probability: float = 1.0        # light traffic: 1/3
    ignore_probability: float = 0.0      # light: chance per gap to go deaf
    ignore_cycles: Tuple[int, int] = (200, 600)
    bulk_threshold: int = 4
    packet_words: int = SYNTHETIC_PACKET_WORDS
    #: Force every message to this many packets (Figure 4 uses "only short
    #: messages and no bulk dialogs": fixed_message_length=1).
    fixed_message_length: Optional[int] = None
    #: Pacing between sends, for offered-load sweeps (Section 1: networks
    #: "deliver maximum performance when the offered load is limited to a
    #: fraction of the maximum bandwidth" -- the operating range).
    send_gap_cycles: int = 0

    @classmethod
    def heavy_traffic(cls, **overrides) -> "SyntheticConfig":
        return cls(heavy=True, send_probability=1.0, **overrides)

    @classmethod
    def light_traffic(cls, **overrides) -> "SyntheticConfig":
        return cls(
            heavy=False,
            send_probability=1.0 / 3.0,
            ignore_probability=0.15,
            **overrides,
        )


class SyntheticDriver(TrafficDriver):
    """Per-node driver for the heavy/light synthetic patterns."""

    def __init__(
        self,
        node_id: int,
        num_nodes: int,
        config: SyntheticConfig,
        rng_factory: RngFactory,
        exploit_inorder: bool = False,
    ):
        self.node_id = node_id
        self.num_nodes = num_nodes
        self.config = config
        self.rng = rng_factory.stream(f"synthetic:{node_id}")
        self.factory = PacketFactory(
            node_id,
            packet_words=config.packet_words,
            bulk_threshold=config.bulk_threshold,
            exploit_inorder=exploit_inorder,
        )
        self.phase = 0
        self._queue: List[Packet] = []
        self._sent_this_phase = 0
        self._sending_phase = False
        self._phase_prepared = False
        self._idle_gaps = 0
        self._gap_owed = False

    # ------------------------------------------------------------- helpers
    def _random_dst(self) -> int:
        dst = self.rng.randrange(self.num_nodes - 1)
        return dst if dst < self.node_id else dst + 1

    def _message_length(self) -> int:
        if self.config.fixed_message_length is not None:
            return self.config.fixed_message_length
        if self.config.heavy:
            return self.rng.randint(1, 5)
        return self.rng.choices(LIGHT_LENGTHS, weights=LIGHT_WEIGHTS, k=1)[0]

    def _prepare_phase(self) -> None:
        self._phase_prepared = True
        self._sent_this_phase = 0
        self._idle_gaps = 0
        self._sending_phase = self.rng.random() < self.config.send_probability

    # --------------------------------------------------------- driver API
    def next_action(self) -> Action:
        cfg = self.config
        if cfg.max_phases is not None and self.phase >= cfg.max_phases:
            return Done()
        if not self._phase_prepared:
            self._prepare_phase()
        if self._sending_phase:
            if self._sent_this_phase >= cfg.packets_per_phase:
                return self._finish_phase()
            if self._gap_owed and cfg.send_gap_cycles > 0:
                self._gap_owed = False
                return PollFor(cfg.send_gap_cycles)
            if not self._queue:
                dst = self._random_dst()
                length = min(
                    self._message_length(),
                    cfg.packets_per_phase - self._sent_this_phase,
                )
                self._queue = self.factory.message(dst, length)
            self._sent_this_phase += 1
            self._gap_owed = True
            return Send(self._queue.pop(0))
        # Idle node: casual polling gaps with occasional deaf periods, then
        # wait at the barrier (where it polls attentively).
        if self._idle_gaps < 12:
            self._idle_gaps += 1
            if self.rng.random() < cfg.ignore_probability:
                lo, hi = cfg.ignore_cycles
                return Ignore(self.rng.randint(lo, hi))
            return Ignore(30)
        return self._finish_phase()

    def _finish_phase(self) -> Action:
        self.phase += 1
        self._phase_prepared = False
        return WaitBarrier()

    def on_packet(self, packet: Packet) -> None:
        pass
