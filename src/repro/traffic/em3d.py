"""EM3D: irregular electromagnetics kernel (Section 4.4, after [CDG+93]).

EM3D propagates electromagnetic waves on a bipartite graph of E and H
nodes; each iteration updates E nodes from their H dependencies and vice
versa.  Remote dependencies become network traffic: we model the Split-C
push style, where after computing its half of the graph a processor sends
each remote consumer the updated values, grouped into one message per
destination processor.

Graph generation follows the paper's parameters:

* ``n_nodes``  -- graph nodes owned per processor (per kind),
* ``d_nodes``  -- dependencies per node,
* ``local_p``  -- percentage of arcs that stay on-processor,
* ``dist_span``-- remote arcs land within +-dist_span processors.

Figure 7 uses (200, 10, 80, 5): mostly local arcs -> light communication.
Figure 8 uses (100, 20, 3, 20): almost all arcs remote -> heavy
communication.  The reported metric is cycles per iteration.

The arc counts are drawn from per-node dedicated RNG streams, so every
NIC/network configuration sees the identical communication graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..node import Action, Compute, Done, Send, TrafficDriver, WaitBarrier
from ..packets import Packet, SPLITC_PACKET_WORDS
from ..sim import RngFactory
from .messages import PacketFactory

#: Words sent per remote graph update: the value plus its target address
#: (the address becomes redundant under exploited in-order delivery, which
#: the PacketFactory accounts for via payload packing).
WORDS_PER_UPDATE = 2


@dataclass
class Em3dConfig:
    """Paper parameters plus run length and modelled compute cost."""

    n_nodes: int = 200
    d_nodes: int = 10
    local_p: int = 80
    dist_span: int = 5
    iterations: int = 3
    compute_cycles_per_node: int = 6
    bulk_threshold: int = 4
    packet_words: int = SPLITC_PACKET_WORDS

    @classmethod
    def light_communication(cls, scale: float = 1.0, **overrides) -> "Em3dConfig":
        """Figure 7 parameters; ``scale`` shrinks the graph for quick runs."""
        return cls(
            n_nodes=max(1, int(200 * scale)), d_nodes=10, local_p=80,
            dist_span=5, **overrides,
        )

    @classmethod
    def heavy_communication(cls, scale: float = 1.0, **overrides) -> "Em3dConfig":
        """Figure 8 parameters."""
        return cls(
            n_nodes=max(1, int(100 * scale)), d_nodes=20, local_p=3,
            dist_span=20, **overrides,
        )


class Em3dDriver(TrafficDriver):
    """Per-node driver: compute -> push remote updates -> barrier, twice per
    iteration (E half then H half)."""

    def __init__(
        self,
        node_id: int,
        num_nodes: int,
        config: Em3dConfig,
        rng_factory: RngFactory,
        exploit_inorder: bool = False,
    ):
        self.node_id = node_id
        self.num_nodes = num_nodes
        self.config = config
        self.factory = PacketFactory(
            node_id,
            packet_words=config.packet_words,
            bulk_threshold=config.bulk_threshold,
            exploit_inorder=exploit_inorder,
        )
        rng = rng_factory.stream(f"em3d:{node_id}")
        # remote update counts per destination, one dict per half-iteration
        self.remote: List[Dict[int, int]] = []
        for _half in range(2):
            counts: Dict[int, int] = {}
            for _node in range(config.n_nodes):
                for _arc in range(config.d_nodes):
                    if rng.randint(1, 100) <= config.local_p:
                        continue
                    offset = rng.randint(1, max(1, config.dist_span))
                    if rng.random() < 0.5:
                        offset = -offset
                    dst = (node_id + offset) % num_nodes
                    if dst == node_id:
                        continue
                    counts[dst] = counts.get(dst, 0) + 1
            self.remote.append(counts)
        self.iteration = 0
        self.half = 0
        self._stage = "compute"
        self._queue: List[Packet] = []
        self.iteration_marks: List[int] = []

    # --------------------------------------------------------- driver API
    def next_action(self) -> Action:
        cfg = self.config
        if self.iteration >= cfg.iterations:
            return Done()
        if self._stage == "compute":
            self._stage = "send"
            self._queue = []
            for dst, updates in sorted(self.remote[self.half].items()):
                self._queue.extend(
                    self.factory.message_for_words(dst, updates * WORDS_PER_UPDATE)
                )
            return Compute(cfg.compute_cycles_per_node * cfg.n_nodes)
        if self._stage == "send":
            if self._queue:
                return Send(self._queue.pop(0))
            self._stage = "barrier"
            return WaitBarrier()
        # barrier finished: advance half/iteration
        self._stage = "compute"
        self.half ^= 1
        if self.half == 0:
            self.iteration += 1
            self.iteration_marks.append(self.proc.sim.now)
        return self.next_action()

    def on_packet(self, packet: Packet) -> None:
        pass

    # ------------------------------------------------------------ metrics
    def cycles_per_iteration(self) -> float:
        """Average simulated cycles per completed EM3D iteration."""
        if not self.iteration_marks:
            raise RuntimeError("no completed iterations")
        start = 0
        return (self.iteration_marks[-1] - start) / len(self.iteration_marks)
