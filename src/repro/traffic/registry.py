"""Named, picklable traffic factories.

The experiment API describes a run as plain data (:class:`ExperimentSpec`),
which means the traffic load must be expressible as data too: a *registry
name* plus a *config dataclass* rather than an opaque closure.  A
:class:`TrafficSpec` carries exactly that pair.  It is still callable with
the classic factory signature ``(node, num_nodes, rng_factory,
exploit_inorder) -> driver``, so everything that consumed the old
closure-style factories keeps working -- but unlike a closure it pickles
across process boundaries, serialises to JSON, and hashes stably, which is
what the parallel sweep engine and its result cache key on.

Every driver shipped with the package registers itself here
(``register_traffic``); user code can register its own drivers the same
way and then use them by name in specs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, NamedTuple, Optional, Tuple

from .allreduce import AllReduceConfig, AllReduceDriver
from .crashpoint import CrashPointConfig, CrashPointDriver
from .cshift import CShiftConfig, CShiftDriver
from .em3d import Em3dConfig, Em3dDriver
from .hotspot import HotSpotConfig, HotSpotDriver
from .incast import IncastConfig, IncastDriver, RpcDriver, RpcFanoutConfig
from .pairstream import PairStreamConfig, PairStreamDriver
from .radix_sort import RadixSortConfig, RadixSortDriver
from .synthetic import SyntheticConfig, SyntheticDriver


class TrafficEntry(NamedTuple):
    """One registered traffic family."""

    config_cls: type
    #: ``() -> config``: the default configuration when a spec carries none.
    default_config: Callable[[], object]
    #: ``(node, num_nodes, config, rng_factory, exploit) -> driver``.
    builder: Callable


_REGISTRY: Dict[str, TrafficEntry] = {}


def register_traffic(
    name: str,
    config_cls: type,
    builder: Callable,
    default_config: Optional[Callable[[], object]] = None,
) -> None:
    """Register a traffic family under ``name`` (overwrites silently so
    tests can re-register stubs)."""
    _REGISTRY[name] = TrafficEntry(
        config_cls, default_config or config_cls, builder
    )


def traffic_names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def traffic_entry(name: str) -> TrafficEntry:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown traffic {name!r}; registered: {', '.join(traffic_names())}"
        ) from None


def _config_to_dict(config) -> Dict:
    data = dataclasses.asdict(config)
    # JSON has no tuples; canonicalise so to_dict(from_dict(d)) == d.
    return {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in data.items()
    }


def _config_from_dict(config_cls: type, data: Dict):
    """Rebuild a config dataclass, restoring tuple-typed fields that JSON
    flattened to lists (e.g. ``SyntheticConfig.ignore_cycles``)."""
    kwargs = dict(data)
    for f in dataclasses.fields(config_cls):
        if f.name in kwargs and isinstance(kwargs[f.name], list) and isinstance(
            f.default, tuple
        ):
            kwargs[f.name] = tuple(kwargs[f.name])
    return config_cls(**kwargs)


@dataclass(frozen=True)
class TrafficSpec:
    """A traffic load as data: registry ``name`` + optional ``config``.

    Callable with the classic factory signature, so it drops in anywhere a
    closure-style traffic factory was accepted.
    """

    name: str
    config: Optional[object] = None

    def __post_init__(self) -> None:
        entry = traffic_entry(self.name)  # fail fast on unknown names
        if self.config is not None and not isinstance(
            self.config, entry.config_cls
        ):
            raise TypeError(
                f"traffic {self.name!r} expects a {entry.config_cls.__name__}, "
                f"got {type(self.config).__name__}"
            )

    def resolved_config(self):
        entry = traffic_entry(self.name)
        return self.config if self.config is not None else entry.default_config()

    def __call__(self, node: int, num_nodes: int, rng_factory, exploit: bool):
        entry = traffic_entry(self.name)
        return entry.builder(
            node, num_nodes, self.resolved_config(), rng_factory, exploit
        )

    # -------------------------------------------------------- serialisation
    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "config": None if self.config is None
            else _config_to_dict(self.config),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TrafficSpec":
        entry = traffic_entry(data["name"])
        config = data.get("config")
        return cls(
            data["name"],
            None if config is None
            else _config_from_dict(entry.config_cls, config),
        )


# --------------------------------------------------------------------------
# Built-in registrations (the paper's workloads).
# --------------------------------------------------------------------------

register_traffic(
    "heavy", SyntheticConfig,
    lambda node, n, cfg, rngf, exploit: SyntheticDriver(node, n, cfg, rngf, exploit),
    default_config=SyntheticConfig.heavy_traffic,
)
register_traffic(
    "light", SyntheticConfig,
    lambda node, n, cfg, rngf, exploit: SyntheticDriver(node, n, cfg, rngf, exploit),
    default_config=SyntheticConfig.light_traffic,
)
register_traffic(
    "cshift", CShiftConfig,
    lambda node, n, cfg, rngf, exploit: CShiftDriver(node, n, cfg, exploit),
)
register_traffic(
    "em3d", Em3dConfig,
    lambda node, n, cfg, rngf, exploit: Em3dDriver(node, n, cfg, rngf, exploit),
    default_config=Em3dConfig.light_communication,
)
register_traffic(
    "radix", RadixSortConfig,
    lambda node, n, cfg, rngf, exploit: RadixSortDriver(node, n, cfg, rngf, exploit),
)
register_traffic(
    "hotspot", HotSpotConfig,
    lambda node, n, cfg, rngf, exploit: HotSpotDriver(node, n, cfg, rngf, exploit),
)
register_traffic(
    "pairstream", PairStreamConfig,
    lambda node, n, cfg, rngf, exploit: PairStreamDriver(node, n, cfg, rngf, exploit),
)
register_traffic(
    "incast", IncastConfig,
    lambda node, n, cfg, rngf, exploit: IncastDriver(node, n, cfg, rngf, exploit),
)
register_traffic(
    "rpc", RpcFanoutConfig,
    lambda node, n, cfg, rngf, exploit: RpcDriver(node, n, cfg, rngf, exploit),
)
register_traffic(
    "allreduce", AllReduceConfig,
    lambda node, n, cfg, rngf, exploit: AllReduceDriver(node, n, cfg, exploit),
)
register_traffic(
    "crashpoint", CrashPointConfig,
    lambda node, n, cfg, rngf, exploit: CrashPointDriver(node, n, cfg, rngf, exploit),
)
