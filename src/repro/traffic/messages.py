"""Packet construction shared by all workloads.

Handles the bookkeeping the paper's Section 2.2 discusses:

* every packet carries its source id (free under NIFDY, since the protocol
  needs it anyway);
* multi-packet messages above ``bulk_threshold`` packets request a bulk
  dialog (the software-set bulk-request header bit);
* when a message is specified by *data words* rather than packet count, the
  number of packets depends on whether the communication layer can rely on
  in-order delivery: with in-order delivery only the first packet carries
  the transfer's bookkeeping, so later packets carry more payload
  ("the payload per packet is increased because later packets need not
  include any bookkeeping information").

``pair_seq`` stamps every packet with its per-(src, dst) send order so the
metrics layer can verify in-order delivery claims.
"""

from __future__ import annotations

import itertools
from typing import Dict, List

from ..packets import (
    FLIT_BYTES,
    REQUEST_NET,
    Packet,
    PacketKind,
    SYNTHETIC_PACKET_WORDS,
)

_msg_ids = itertools.count()


class PacketFactory:
    """Builds the packet streams a node's driver hands to its processor."""

    def __init__(
        self,
        node_id: int,
        packet_words: int = SYNTHETIC_PACKET_WORDS,
        bulk_threshold: int = 4,
        exploit_inorder: bool = False,
        header_words: int = 1,
        bookkeeping_words: int = 1,
        needs_ack: bool = True,
    ):
        if packet_words <= header_words:
            raise ValueError("packets must have room for payload")
        self.node_id = node_id
        self.packet_words = packet_words
        self.bulk_threshold = bulk_threshold
        self.exploit_inorder = exploit_inorder
        self.header_words = header_words
        self.bookkeeping_words = bookkeeping_words
        self.needs_ack = needs_ack
        self._pair_seq: Dict[int, int] = {}

    # ------------------------------------------------------------ payload
    @property
    def payload_words(self) -> int:
        """Data words per packet when every packet carries bookkeeping."""
        return self.packet_words - self.header_words - self.bookkeeping_words

    @property
    def payload_words_inorder(self) -> int:
        """Data words per packet when in-order delivery removes per-packet
        bookkeeping (first packet still pays it)."""
        return self.packet_words - self.header_words

    def packets_for_words(self, data_words: int) -> int:
        """Packets needed to move ``data_words`` of payload."""
        if data_words <= 0:
            return 0
        if not self.exploit_inorder:
            return -(-data_words // self.payload_words)
        # First packet carries the transfer bookkeeping, the rest are pure
        # payload.
        first = self.payload_words
        if data_words <= first:
            return 1
        return 1 + -(-(data_words - first) // self.payload_words_inorder)

    # ------------------------------------------------------------ builders
    def message(self, dst: int, num_packets: int) -> List[Packet]:
        """A message of ``num_packets`` fixed-size packets to ``dst``."""
        if dst == self.node_id:
            raise ValueError("node cannot send a message to itself")
        if num_packets < 1:
            raise ValueError("a message needs at least one packet")
        msg_id = next(_msg_ids)
        bulk = num_packets >= self.bulk_threshold
        packets = []
        for i in range(num_packets):
            seq = self._pair_seq.get(dst, 0)
            self._pair_seq[dst] = seq + 1
            packets.append(
                Packet(
                    src=self.node_id,
                    dst=dst,
                    kind=PacketKind.SCALAR,
                    size_bytes=self.packet_words * FLIT_BYTES,
                    logical_net=REQUEST_NET,
                    bulk_request=bulk,
                    needs_ack=self.needs_ack,
                    msg_id=msg_id,
                    msg_seq=i,
                    msg_len=num_packets,
                    pair_seq=seq,
                )
            )
        return packets

    def message_for_words(self, dst: int, data_words: int) -> List[Packet]:
        """A message carrying ``data_words`` of payload to ``dst``.

        The packet count reflects the in-order payload benefit when
        ``exploit_inorder`` is set.
        """
        return self.message(dst, self.packets_for_words(data_words))
