"""Radix sort communication phases (Section 4.5, after [Dus94]).

Each radix-sort iteration has two communication phases:

* **scan** -- a parallel prefix over the per-bucket counts: for every bucket
  the partial sum flows processor 0 -> 1 -> ... -> P-1 (nearest-neighbour
  pipeline, one single-packet message per bucket per hop).  "The most
  notable feature ... is that the overall communication phase runs faster
  if delays are inserted between successive sends.  Without delays, the
  sends from one processor cause the next processor in the pipeline to
  continually receive with no chance to send, serializing the entire scan."
  ``inter_send_delay`` reproduces the paper's "with delay" variant.
* **coalesce** -- every key is sent to its destination processor as a
  single-packet message to an (effectively random) destination.  The paper
  found NIFDY neither helps nor hurts here.

The driver reports per-phase completion times for Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..node import Action, Compute, Done, Ignore, Send, TrafficDriver
from ..packets import Packet, SPLITC_PACKET_WORDS
from ..sim import RngFactory
from .messages import PacketFactory


@dataclass
class RadixSortConfig:
    """One scan (and optionally coalesce) pass."""

    buckets: int = 256           # 8-bit radix (Figure 9)
    inter_send_delay: int = 0    # cycles of delay between consecutive sends
    combine_cycles: int = 8      # local work to fold a bucket's partial sum
    run_coalesce: bool = False
    keys_per_processor: int = 64
    packet_words: int = SPLITC_PACKET_WORDS


class RadixSortDriver(TrafficDriver):
    """Per-node driver for the scan (and optional coalesce) phase."""

    def __init__(
        self,
        node_id: int,
        num_nodes: int,
        config: RadixSortConfig,
        rng_factory: RngFactory,
        exploit_inorder: bool = False,
    ):
        self.node_id = node_id
        self.num_nodes = num_nodes
        self.config = config
        self.rng = rng_factory.stream(f"radix:{node_id}")
        self.factory = PacketFactory(
            node_id,
            packet_words=config.packet_words,
            bulk_threshold=10 ** 9,  # single-packet messages; never bulk
            exploit_inorder=exploit_inorder,
        )
        self.next_bucket_to_send = 0
        self.buckets_received = 0
        self._delay_owed = False
        self._stashed: Optional[Packet] = None
        self.scan_finished_cycle: Optional[int] = None
        self.coalesce_finished_cycle: Optional[int] = None
        self._coalesce_left = config.keys_per_processor
        self._phase = "scan"

    # ------------------------------------------------------------- helpers
    @property
    def _is_first(self) -> bool:
        return self.node_id == 0

    @property
    def _is_last(self) -> bool:
        return self.node_id == self.num_nodes - 1

    def _scan_done(self) -> bool:
        if self._is_last:
            return self.buckets_received >= self.config.buckets
        return self.next_bucket_to_send >= self.config.buckets

    # --------------------------------------------------------- driver API
    def next_action(self) -> Action:
        cfg = self.config
        if self._stashed is not None:
            packet = self._stashed
            self._stashed = None
            return Send(packet)
        if self._phase == "scan":
            if self._scan_done():
                if self.scan_finished_cycle is None:
                    self.scan_finished_cycle = self.proc.sim.now
                self._phase = "coalesce" if cfg.run_coalesce else "done"
                return self.next_action()
            if self._is_last:
                # Sink of the pipeline: just keep polling.
                return Ignore(self.proc.timing.t_poll)
            ready = (
                self._is_first
                or self.buckets_received > self.next_bucket_to_send
            )
            if not ready:
                return Ignore(self.proc.timing.t_poll)
            if self._delay_owed and cfg.inter_send_delay > 0:
                self._delay_owed = False
                return Compute(cfg.inter_send_delay)
            bucket = self.next_bucket_to_send
            self.next_bucket_to_send += 1
            self._delay_owed = True
            packet = self.factory.message(self.node_id + 1, 1)[0]
            packet.payload = ("scan", bucket)
            if not self._is_first:
                # fold the received partial sum before passing it on
                return self._send_after(Compute(cfg.combine_cycles), packet)
            return Send(packet)
        if self._phase == "coalesce":
            if self._coalesce_left <= 0:
                if self.coalesce_finished_cycle is None:
                    self.coalesce_finished_cycle = self.proc.sim.now
                self._phase = "done"
                return Done()
            self._coalesce_left -= 1
            dst = self.rng.randrange(self.num_nodes - 1)
            dst = dst if dst < self.node_id else dst + 1
            packet = self.factory.message(dst, 1)[0]
            packet.payload = ("key", self._coalesce_left)
            return Send(packet)
        return Done()

    def _send_after(self, compute: Compute, packet: Packet) -> Action:
        """Model combine-then-send as one action pair."""
        self._stashed = packet
        return compute

    def on_packet(self, packet: Packet) -> None:
        if isinstance(packet.payload, tuple) and packet.payload[0] == "scan":
            self.buckets_received += 1
