"""Router building blocks: input units, forwarding modes, route functions."""

from .base import CUTTHROUGH, STORE_AND_FORWARD, InputUnit, RouteChoice, Router

__all__ = ["CUTTHROUGH", "STORE_AND_FORWARD", "InputUnit", "RouteChoice", "Router"]
