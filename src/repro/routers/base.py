"""Generic router: per-VC input units, routing, and output allocation.

A router owns one :class:`InputUnit` per (input port, VC).  Forwarding is
wormhole/virtual-cut-through by default -- a packet may start leaving as soon
as its head flit is buffered -- or store-and-forward (``mode="sf"``), where a
packet must be fully buffered before it competes for an output.

Routing is supplied by the topology (a callable): given the packet, input
port and input VC it returns an ordered list of ``(out_link, vc_candidates)``
choices.  Deterministic routers return one choice; adaptive routers (fat-tree
up-path, multibutterfly) return several and the first choice with a free VC
wins, so packets between the same pair of nodes can take different paths and
arrive out of order -- the situation NIFDY's reordering handles.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..links import FlitFeeder, FlitSink, Link
from ..obs.events import EventKind
from ..packets import Packet
from ..sim import Simulator

#: A routing choice: (output link, candidate VC indices on that link).
RouteChoice = Tuple[Link, Sequence[int]]

#: Topology routing function.
RouteFn = Callable[["Router", Packet, int, int], List[RouteChoice]]

CUTTHROUGH = "cutthrough"
STORE_AND_FORWARD = "sf"


class _Transit:
    """State of one packet occupying an input unit's buffer."""

    __slots__ = (
        "packet",
        "flits_buffered",
        "flits_forwarded",
        "tail_arrived",
        "route_ready",
        "routing_scheduled",
        "choices",
        "out_link",
        "out_vc",
        "waiting_for_vc",
    )

    def __init__(self, packet: Packet):
        self.packet = packet
        self.flits_buffered = 0
        self.flits_forwarded = 0
        self.tail_arrived = False
        self.route_ready = False
        self.routing_scheduled = False
        self.choices: List[RouteChoice] = []
        self.out_link: Optional[Link] = None
        self.out_vc = -1
        self.waiting_for_vc = False


class InputUnit(FlitFeeder):
    """Buffer + forwarding state machine for one (port, VC) of a router."""

    __slots__ = ("router", "port", "vc", "in_link", "queue")

    def __init__(self, router: "Router", port: int, vc: int, in_link: Link):
        self.router = router
        self.port = port
        self.vc = vc
        self.in_link = in_link
        self.queue: Deque[_Transit] = deque()

    # ----------------------------------------------------------- sink side
    def accept_flit(self, packet: Packet, is_head: bool, is_tail: bool) -> None:
        if is_head:
            self.queue.append(_Transit(packet))
        transit = self.queue[-1]
        if transit.packet is not packet:
            raise RuntimeError(
                f"router {self.router.rid} port {self.port} vc {self.vc}: "
                f"interleaved flits of {packet} into {transit.packet}"
            )
        transit.flits_buffered += 1
        if is_tail:
            transit.tail_arrived = True
        if transit is self.queue[0]:
            self._advance_head()

    # ------------------------------------------------------- head handling
    def _advance_head(self) -> None:
        if not self.queue:
            return
        transit = self.queue[0]
        if transit.out_link is not None:
            transit.out_link.notify_flit_ready(transit.out_vc)
            return
        if self.router.mode == STORE_AND_FORWARD and not transit.tail_arrived:
            return
        if not transit.route_ready:
            if not transit.routing_scheduled:
                transit.routing_scheduled = True
                delay = self.router.route_delay
                if self.router.route_jitter:
                    delay += self.router.jitter_rng.randrange(
                        self.router.route_jitter + 1
                    )
                # post(): route completions fire once per packet per hop and
                # are never cancelled, so the events are pool-recycled.
                self.router.sim.post(delay, self._route_done, transit)
            return
        self._try_allocate(transit)

    def _route_done(self, transit: _Transit) -> None:
        if not self.queue or self.queue[0] is not transit:
            raise RuntimeError("routing completed for a packet that moved on")
        transit.route_ready = True
        transit.choices = self.router.route(transit.packet, self.port, self.vc)
        if not transit.choices:
            raise RuntimeError(
                f"router {self.router.rid}: no route for {transit.packet} "
                f"arriving on port {self.port}"
            )
        self._try_allocate(transit)

    def _try_allocate(self, transit: _Transit) -> None:
        if transit.out_link is not None:
            return
        for link, vc_candidates in transit.choices:
            vc = link.allocate_vc(transit.packet, self, vc_candidates)
            if vc is not None:
                transit.out_link = link
                transit.out_vc = vc
                transit.waiting_for_vc = False
                link.notify_flit_ready(vc)
                return
        if not transit.waiting_for_vc:
            transit.waiting_for_vc = True
            obs = self.router.obs
            if obs is not None:
                packet = transit.packet
                obs.emit(
                    self.router.sim.now, EventKind.ROUTER_BLOCK, -1,
                    uid=packet.uid, src=packet.src, dst=packet.dst,
                    info=f"r{self.router.rid}:p{self.port}:v{self.vc}",
                )
            for link, _ in transit.choices:
                link.add_alloc_waiter(lambda t=transit: self._retry_allocate(t))

    def _retry_allocate(self, transit: _Transit) -> None:
        if transit.out_link is not None:
            return
        if not self.queue or self.queue[0] is not transit:
            return
        transit.waiting_for_vc = False
        self._try_allocate(transit)

    # ---------------------------------------------------------- feeder side
    def has_flit_ready(self, link: Link, vc: int) -> bool:
        if not self.queue:
            return False
        transit = self.queue[0]
        return (
            transit.out_link is link
            and transit.out_vc == vc
            and transit.flits_buffered > 0
        )

    def take_flit(self, link: Link, vc: int):
        transit = self.queue[0]
        transit.flits_buffered -= 1
        transit.flits_forwarded += 1
        is_head = transit.flits_forwarded == 1
        is_tail = transit.flits_forwarded == transit.packet.flits
        self.in_link.return_credit(self.vc)
        if is_tail:
            self.queue.popleft()
            if self.queue:
                self._advance_head()
        return transit.packet, is_head, is_tail

    def flit_run_handle(self, link: Link, vc: int):
        """Invite the epoch kernel's token runs to forward this packet's
        body flits inline: the head transit stays at the front of the
        queue until its tail is taken (which always goes through
        :meth:`take_flit`), so the link may read ``flits_buffered``, bump
        ``flits_forwarded`` and return credits on our input link directly
        -- the exact effects of repeated ``take_flit`` calls on non-tail
        flits."""
        return ("unit", self.queue[0], self.in_link, self.vc)

    @property
    def occupancy(self) -> int:
        """Flits currently buffered in this input unit."""
        return sum(t.flits_buffered for t in self.queue)


class Router(FlitSink):
    """A switch node.  Topologies attach input links and provide routing."""

    def __init__(
        self,
        sim: Simulator,
        rid: int,
        route_fn: RouteFn,
        mode: str = CUTTHROUGH,
        route_delay: int = 1,
    ) -> None:
        if mode not in (CUTTHROUGH, STORE_AND_FORWARD):
            raise ValueError(f"unknown forwarding mode {mode!r}")
        self.sim = sim
        self.rid = rid
        self.route_fn = route_fn
        self.mode = mode
        self.route_delay = route_delay
        #: Path-skew jitter: each hop's routing takes ``route_delay`` plus a
        #: uniform extra in ``[0, route_jitter]`` cycles drawn from
        #: ``jitter_rng``.  Same-VC flit order is unaffected (routing is
        #: per-packet), so this skews *paths*, not flit streams.
        self.route_jitter = 0
        self.jitter_rng: Optional[random.Random] = None
        self._input_units: Dict[int, List[InputUnit]] = {}
        self.out_links: Dict[int, Link] = {}
        #: Protocol event bus; None = un-instrumented (the common case).
        self.obs = None

    def attach_in_link(self, port: int, link: Link) -> None:
        """Register ``link`` as the input channel for ``port``.

        Creates one input unit per VC of the link.  The link must have been
        built with this router as its sink and ``port`` as its sink port.
        """
        if port in self._input_units:
            raise ValueError(f"router {self.rid}: port {port} already attached")
        self._input_units[port] = [
            InputUnit(self, port, vc, link) for vc in range(link.vc_count)
        ]

    def attach_out_link(self, port: int, link: Link) -> None:
        if port in self.out_links:
            raise ValueError(f"router {self.rid}: output port {port} already attached")
        self.out_links[port] = link

    # FlitSink interface -----------------------------------------------------
    def accept_flit(
        self, port: int, vc: int, packet: Packet, is_head: bool, is_tail: bool
    ) -> None:
        self._input_units[port][vc].accept_flit(packet, is_head, is_tail)

    def flit_target(self, port: int, vc: int):
        """Pre-bound accept for the epoch kernel's token runs: skips the
        per-flit port/VC dictionary dispatch above."""
        return self._input_units[port][vc].accept_flit

    def route(self, packet: Packet, in_port: int, in_vc: int) -> List[RouteChoice]:
        return self.route_fn(self, packet, in_port, in_vc)

    def buffered_flits(self) -> int:
        """Total flits currently buffered in this router (congestion probe)."""
        return sum(
            unit.occupancy
            for units in self._input_units.values()
            for unit in units
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Router {self.rid} ports={sorted(self._input_units)}>"
