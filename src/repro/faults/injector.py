"""Execute a :class:`~repro.faults.plan.FaultPlan` against a built network.

The injector is a passive peer of the experiment: it schedules one kernel
event per fault action and keeps a timeline of everything it actually did
(which links matched a pattern, when bursts started and stopped), so a
report can correlate delivery behaviour with the fault regime.

Link patterns are ``fnmatch`` globs over :attr:`Link.name`.  They may match
NIC attachment links (``*inj*`` / ``*ej*`` in every builder's scheme) --
failing one partitions that node outright, which is a legitimate scenario --
but a pattern that matches *nothing* is rejected at start, because a typo'd
plan that silently injects no faults is worse than an error.
"""

from __future__ import annotations

import random
from fnmatch import fnmatch
from typing import List, Optional, Sequence, Tuple

from ..links import Link
from ..networks import Network
from ..obs.events import EventKind
from ..sim import Simulator
from .plan import FaultEvent, FaultPlan


class FaultInjector:
    """Drives a fault plan off the simulation kernel.

    ``processors`` is only needed for ``node_pause`` events (anything with
    ``pause()``/``resume()``); ``rng`` feeds loss-burst drop decisions and
    defaults to a private deterministic stream so adding faults never
    perturbs the experiment's other random streams.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        plan: FaultPlan,
        processors: Optional[Sequence] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.plan = plan
        self.processors = list(processors) if processors is not None else []
        self.rng = rng or random.Random(0xFA01)
        #: (cycle, description) pairs, appended as actions execute.
        self.timeline: List[Tuple[int, str]] = []
        self._started = False
        #: Protocol event bus; None = un-instrumented (the common case).
        self.obs = None

    # -------------------------------------------------------------- set-up
    def _match_links(self, pattern: Optional[str]) -> List[Link]:
        pattern = pattern or "*"
        matched = [
            link for link in self.network.links if fnmatch(link.name, pattern)
        ]
        if not matched:
            names = ", ".join(sorted(link.name for link in self.network.links)[:8])
            raise ValueError(
                f"fault pattern {pattern!r} matches no link "
                f"(first few names: {names}, ...)"
            )
        return matched

    def start(self) -> None:
        """Validate the plan against this network and schedule every action."""
        if self._started:
            raise RuntimeError("fault injector already started")
        self._started = True
        for event in self.plan:
            if event.kind == "link_fail":
                links = self._match_links(event.link)
                self.sim.at(event.at, self._fail, event, links)
                if event.until is not None:
                    self.sim.at(event.until, self._repair, event, links)
            elif event.kind == "link_repair":
                links = self._match_links(event.link)
                self.sim.at(event.at, self._repair, event, links)
            elif event.kind == "loss_burst":
                links = self._match_links(event.link)
                self.sim.at(event.at, self._burst_start, event, links)
                self.sim.at(event.until, self._burst_stop, event, links)
            elif event.kind == "node_pause":
                if not 0 <= event.node < len(self.processors):
                    raise ValueError(
                        f"node_pause: node {event.node} out of range "
                        f"(have {len(self.processors)} processors)"
                    )
                self.sim.at(event.at, self._pause, event)
                self.sim.at(event.until, self._resume, event)

    # ------------------------------------------------------------- actions
    def _note(self, text: str, kind: str = EventKind.FAULT_FIRE) -> None:
        self.timeline.append((self.sim.now, text))
        if self.obs is not None:
            self.obs.emit(self.sim.now, kind, -1, info=text)

    def _fail(self, event: FaultEvent, links: List[Link]) -> None:
        for link in links:
            link.fail()
        self._note(f"failed {len(links)} link(s) matching '{event.link}'")

    def _repair(self, event: FaultEvent, links: List[Link]) -> None:
        for link in links:
            link.repair()
        self._note(
            f"repaired {len(links)} link(s) matching '{event.link}'",
            kind=EventKind.FAULT_REPAIR,
        )

    def _burst_start(self, event: FaultEvent, links: List[Link]) -> None:
        data = event.net in ("any", "data")
        acks = event.net in ("any", "ack")
        for link in links:
            link.set_fault_drop(event.prob, rng=self.rng, data=data, acks=acks)
        self._note(
            f"loss burst {event.prob:.0%} ({event.net}) on {len(links)} link(s)"
        )

    def _burst_stop(self, event: FaultEvent, links: List[Link]) -> None:
        for link in links:
            link.clear_fault_drop()
        self._note(
            f"loss burst ended on {len(links)} link(s)",
            kind=EventKind.FAULT_REPAIR,
        )

    def _pause(self, event: FaultEvent) -> None:
        self.processors[event.node].pause()
        self._note(f"paused node {event.node}")

    def _resume(self, event: FaultEvent) -> None:
        self.processors[event.node].resume()
        self._note(f"resumed node {event.node}", kind=EventKind.FAULT_REPAIR)
