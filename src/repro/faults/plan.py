"""Declarative fault plans: what breaks, when, and when it heals.

A :class:`FaultPlan` is an ordered set of timed :class:`FaultEvent` records
describing structured network faults -- the scenarios Section 6.2 of the
paper hand-waves ("simple hardware to mask an exceptional condition") posed
as first-class, reproducible experiments:

* ``link_fail`` / ``link_repair`` -- take links matching a name pattern out
  of service and bring them back (``until`` on a ``link_fail`` is shorthand
  for the matching repair).
* ``loss_burst``  -- a windowed per-packet drop probability on matching
  links; ``net`` restricts it to data packets or to acks only (the
  ack-network-only loss scenario).
* ``node_pause``  -- a processor stops polling for a window (a crashed or
  wedged node that later reboots), exercising end-point backpressure and
  retransmission against an unresponsive peer.

Plans are plain data: build them in Python, load them from a JSON file
(``FaultPlan.from_json_file``), or parse the CLI's compact shorthand
(``FaultPlan.from_shorthand``)::

    fail@5000-20000:link=ft:up1.0        # fail at 5000, repair at 20000
    burst@5000-20000:prob=0.1            # 10% loss on every fabric link
    burst@5000-20000:prob=0.3,net=ack    # ack-network-only loss
    pause@1000-4000:node=3               # node 3 stops polling

The :class:`~repro.faults.injector.FaultInjector` executes a plan against a
built network.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

FAULT_KINDS = ("link_fail", "link_repair", "loss_burst", "node_pause")

#: ``net`` selectors for loss bursts: which packet classes a burst may claim.
NET_SELECTORS = ("any", "data", "ack")

_SHORTHAND_KINDS = {
    "fail": "link_fail",
    "repair": "link_repair",
    "burst": "loss_burst",
    "pause": "node_pause",
}

_NET_ALIASES = {
    "any": "any",
    "data": "data",
    "request": "data",
    "ack": "ack",
    "acks": "ack",
    "reply": "ack",
}


@dataclass
class FaultEvent:
    """One timed fault action.

    ``at`` is the cycle the fault begins; ``until`` (where meaningful) is the
    cycle it ends -- the repair for a ``link_fail``, the stop of a
    ``loss_burst``, the resume of a ``node_pause``.  ``link`` is an
    ``fnmatch`` pattern over link names (see each topology builder for its
    naming scheme); ``node`` is a node id; ``prob`` the burst drop
    probability; ``net`` which packet classes a burst claims.
    """

    kind: str
    at: int
    until: Optional[int] = None
    link: Optional[str] = None
    node: Optional[int] = None
    prob: float = 0.0
    net: str = "any"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.at < 0:
            raise ValueError("fault events cannot start before cycle 0")
        if self.until is not None and self.until <= self.at:
            raise ValueError(
                f"{self.kind}: 'until' ({self.until}) must be after 'at' ({self.at})"
            )
        if self.kind in ("link_fail", "link_repair"):
            if not self.link:
                raise ValueError(f"{self.kind} needs a 'link' name pattern")
            if self.kind == "link_repair" and self.until is not None:
                raise ValueError("link_repair is instantaneous; drop 'until'")
        elif self.kind == "loss_burst":
            if not 0.0 < self.prob <= 1.0:
                raise ValueError("loss_burst needs 'prob' in (0, 1]")
            if self.until is None:
                raise ValueError("loss_burst needs an 'until' stop cycle")
            if self.net not in NET_SELECTORS:
                raise ValueError(
                    f"loss_burst net must be one of {NET_SELECTORS}, "
                    f"got {self.net!r}"
                )
        elif self.kind == "node_pause":
            if self.node is None:
                raise ValueError("node_pause needs a 'node' id")
            if self.until is None:
                raise ValueError("node_pause needs an 'until' resume cycle")

    def describe(self) -> str:
        """Human-readable one-liner for timelines and reports."""
        if self.kind == "link_fail":
            tail = f", repair @{self.until}" if self.until is not None else ""
            return f"fail links '{self.link}' @{self.at}{tail}"
        if self.kind == "link_repair":
            return f"repair links '{self.link}' @{self.at}"
        if self.kind == "loss_burst":
            scope = f" on '{self.link}'" if self.link else ""
            what = {"any": "packets", "data": "data packets", "ack": "acks"}[self.net]
            return (
                f"drop {self.prob:.0%} of {what}{scope} "
                f"@{self.at}-{self.until}"
            )
        return f"pause node {self.node} @{self.at}-{self.until}"

    # ------------------------------------------------------- serialisation
    def to_dict(self) -> Dict:
        """JSON-able form; inverse of :meth:`from_dict`.  Defaulted fields
        are kept so the artifact is self-describing."""
        return dataclasses.asdict(self)

    # ------------------------------------------------------------- parsing
    @classmethod
    def from_dict(cls, data: Dict) -> "FaultEvent":
        allowed = {"kind", "at", "until", "link", "node", "prob", "net"}
        unknown = set(data) - allowed
        if unknown:
            raise ValueError(f"unknown fault event fields: {sorted(unknown)}")
        if "kind" not in data or "at" not in data:
            raise ValueError("a fault event needs at least 'kind' and 'at'")
        kwargs = dict(data)
        if "net" in kwargs:
            kwargs["net"] = _NET_ALIASES.get(str(kwargs["net"]), kwargs["net"])
        return cls(**kwargs)

    @classmethod
    def from_shorthand(cls, spec: str) -> "FaultEvent":
        """Parse ``kind@start[-end][:key=val,...]`` (see module docstring)."""
        head, _, opts = spec.partition(":")
        name, at_sep, window = head.partition("@")
        name = name.strip()
        if name not in _SHORTHAND_KINDS:
            raise ValueError(
                f"unknown fault shorthand {name!r} in {spec!r}; "
                f"choose from {sorted(_SHORTHAND_KINDS)}"
            )
        if not at_sep or not window:
            raise ValueError(f"missing '@cycle' in fault spec {spec!r}")
        start_text, _, end_text = window.partition("-")
        try:
            at = int(start_text)
            until = int(end_text) if end_text else None
        except ValueError:
            raise ValueError(f"bad cycle window in fault spec {spec!r}") from None
        kwargs: Dict = {"kind": _SHORTHAND_KINDS[name], "at": at, "until": until}
        if opts:
            for item in opts.split(","):
                key, eq, value = item.partition("=")
                key = key.strip()
                if not eq:
                    raise ValueError(f"expected key=value, got {item!r} in {spec!r}")
                if key == "link":
                    kwargs["link"] = value.strip()
                elif key == "node":
                    kwargs["node"] = int(value)
                elif key == "prob":
                    kwargs["prob"] = float(value)
                elif key == "net":
                    net = _NET_ALIASES.get(value.strip().lower())
                    if net is None:
                        raise ValueError(f"unknown net selector {value!r} in {spec!r}")
                    kwargs["net"] = net
                else:
                    raise ValueError(f"unknown fault option {key!r} in {spec!r}")
        return cls(**kwargs)


@dataclass
class FaultPlan:
    """An ordered collection of fault events plus derived views of it."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = list(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __iter__(self):
        return iter(self.events)

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    # ------------------------------------------------------- serialisation
    def to_dict(self) -> Dict:
        """JSON-able form; the one serialisation shared by spec files,
        chaos repro artifacts, and ``examples/fault_scenario.py``."""
        return {"events": [event.to_dict() for event in self.events]}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------ loading
    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        if not isinstance(data, dict) or "events" not in data:
            raise ValueError("a fault plan is an object with an 'events' list")
        return cls([FaultEvent.from_dict(entry) for entry in data["events"]])

    @classmethod
    def from_json_file(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    @classmethod
    def from_shorthand(cls, specs: Sequence[str]) -> "FaultPlan":
        return cls([FaultEvent.from_shorthand(spec) for spec in specs])

    # ------------------------------------------------------------- queries
    @property
    def needs_retransmission(self) -> bool:
        """Whether the plan can lose packets outright (bursts do; pure
        fail/repair and pauses only delay them)."""
        return any(event.kind == "loss_burst" for event in self.events)

    def boundaries(self) -> List[int]:
        """Sorted distinct cycles at which the fault regime changes --
        the phase cut points for per-phase degradation reporting."""
        cuts = set()
        for event in self.events:
            cuts.add(event.at)
            if event.until is not None:
                cuts.add(event.until)
        return sorted(cuts)

    def repairs(self) -> List[FaultEvent]:
        """Events that *end* an outage (recovery reference points): explicit
        repairs plus the implicit ones carried by a windowed link_fail."""
        out = []
        for event in self.events:
            if event.kind == "link_repair":
                out.append(event)
            elif event.kind == "link_fail" and event.until is not None:
                out.append(
                    FaultEvent(kind="link_repair", at=event.until, link=event.link)
                )
        return sorted(out, key=lambda e: e.at)
