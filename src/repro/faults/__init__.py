"""Structured fault injection: declarative plans executed on the sim kernel.

See :mod:`repro.faults.plan` for the schema and shorthand grammar and
:mod:`repro.faults.injector` for execution semantics.
"""

from .injector import FaultInjector
from .plan import FAULT_KINDS, FaultEvent, FaultPlan

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultInjector", "FaultPlan"]
