"""Clean-exit signal handling for long campaigns.

SIGINT already surfaces as :class:`KeyboardInterrupt`; SIGTERM -- what a
CI cancel button, a batch scheduler, or ``kill`` sends -- normally just
drops the process, losing everything since the last checkpoint *and*
leaving orphaned worker processes behind.  :func:`interrupts_as_keyboard`
maps SIGTERM onto the same ``KeyboardInterrupt`` unwind path, so the
farm's interrupt handling (revert in-flight points, flush the manifest,
kill workers, exit 130) covers both signals with one code path.

A context manager rather than a global install: handlers are restored on
exit, and installation is skipped off the main thread (Python only
allows signal handlers there), so library callers embedding the farm in
a worker thread are unaffected.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager


@contextmanager
def interrupts_as_keyboard():
    """Within the block, SIGTERM raises ``KeyboardInterrupt`` (as SIGINT
    already does); previous handlers are restored on exit."""
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum, frame):  # noqa: ARG001 - signal handler signature
        raise KeyboardInterrupt(f"signal {signum}")

    previous = signal.signal(signal.SIGTERM, _raise)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)
