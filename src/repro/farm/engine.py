"""The farm engine: retrying, resumable, crash-surviving campaigns.

:class:`FarmEngine` is a drop-in for
:class:`~repro.experiments.engine.SweepEngine` (``run(specs) -> points``
in input order, a ``stats`` ledger, the same cache and progress hooks)
that adds the three things a long hostile campaign needs:

* **Pluggable execution** through the
  :mod:`~repro.farm.executors` registry -- a shared process pool for
  cheap friendly sweeps, one interpreter per point when workloads may
  kill their worker.
* **Retry with jittered exponential backoff** for worker-killing
  failures (hard deaths and watchdog timeouts), with a poison-point
  quarantine after :attr:`FarmPolicy.poison_after` deaths so one
  deterministic crasher cannot eat the whole retry budget forever.
  Plain in-point exceptions are *not* retried by default: the simulator
  is deterministic, so a Python exception reproduces identically on
  every attempt.
* **A resumable manifest** (:class:`~repro.farm.manifest.RunManifest`)
  checkpointed after every settled point.  Kill the farm at any instant
  -- SIGINT, SIGKILL, power loss -- and running it again against the
  same manifest re-executes only what never settled.

Backoff is *deterministic*: the jitter is drawn from a
``random.Random`` seeded by ``(policy seed, point index, attempt)``, so
a resumed campaign retries on exactly the schedule the interrupted one
would have used, and tests can assert delays to the digit.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

from ..experiments.engine import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    SweepEngine,
    SweepPoint,
    _execute_in_process,
    _point_from,
)
from ..experiments.spec import ExperimentSpec
from ..obs import EventBus, EventKind
from .executors import DEFAULT_EXECUTOR, FarmExecutor, resolve_executor
from .manifest import RunManifest


@dataclass
class FarmPolicy:
    """Retry/poison/backoff knobs of one campaign.

    ``retries`` bounds *extra* attempts per point (total attempts =
    ``retries + 1``).  ``poison_after`` is the worker-death count that
    quarantines a point as ``poisoned``; it defaults to the whole
    attempt budget, so a point that kills a worker on every attempt is
    quarantined exactly when its budget runs out.  ``retry_errors``
    opts plain (deterministic) in-point exceptions into the retry loop
    -- off by default, because retrying a deterministic failure only
    burns wall clock.
    """

    retries: int = 2
    poison_after: Optional[int] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    backoff_jitter: float = 0.5
    seed: int = 0
    retry_errors: bool = False

    @property
    def max_attempts(self) -> int:
        return 1 + max(0, self.retries)

    @property
    def poison_threshold(self) -> int:
        if self.poison_after is not None:
            return max(1, self.poison_after)
        return self.max_attempts

    def as_dict(self) -> Dict:
        return {
            "retries": self.retries,
            "poison_after": self.poison_after,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_max": self.backoff_max,
            "backoff_jitter": self.backoff_jitter,
            "seed": self.seed,
            "retry_errors": self.retry_errors,
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "FarmPolicy":
        names = {f for f in cls.__dataclass_fields__}  # noqa: C401
        return cls(**{k: v for k, v in doc.items() if k in names})


def backoff_delay(policy: FarmPolicy, index: int, attempt: int) -> float:
    """Seconds to wait before retry ``attempt`` (1-based) of point
    ``index``: capped exponential with deterministic downward jitter.

    The jitter RNG is seeded from ``(policy.seed, index, attempt)``
    alone, so the schedule is a pure function of the campaign -- an
    interrupted-and-resumed farm backs off exactly like an uninterrupted
    one, and distinct points never thundering-herd the machine.
    """
    if attempt <= 0:
        return 0.0
    base = policy.backoff_base * (policy.backoff_factor ** (attempt - 1))
    delay = min(policy.backoff_max, base)
    rng = random.Random(policy.seed * 1_000_003 + index * 8191 + attempt)
    return delay * (1.0 - policy.backoff_jitter * rng.random())


@dataclass
class FarmStats:
    """What one farm campaign (cumulatively) did."""

    points: int = 0
    executed: int = 0
    cache_hits: int = 0
    resumed: int = 0
    errors: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    retries: int = 0
    poisoned: int = 0
    wall_s: float = 0.0

    def as_dict(self) -> Dict:
        return {
            "points": self.points,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "resumed": self.resumed,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "worker_deaths": self.worker_deaths,
            "retries": self.retries,
            "poisoned": self.poisoned,
            "wall_s": round(self.wall_s, 3),
        }


def campaign_id_for(specs: Iterable[ExperimentSpec], executor: str) -> str:
    """A deterministic campaign id: hash of the ordered spec hashes plus
    the executor name.  Re-issuing the same campaign produces the same
    id (and therefore the same default manifest path), which is what
    makes ``repro farm`` resume naturally after a crash."""
    digest = hashlib.sha256()
    digest.update(executor.encode())
    for spec in specs:
        try:
            digest.update(spec.content_hash().encode())
        except Exception:  # noqa: BLE001 - non-portable spec
            digest.update(repr(spec.label).encode())
        digest.update(b"\0")
    return digest.hexdigest()[:12]


class FarmEngine:
    """Executes campaigns: cache, then resume ledger, then the executor.

    Constructor arguments mirror :class:`~repro.experiments.SweepEngine`
    (``jobs``, ``cache``, ``cache_dir``, ``progress``, ``bus``,
    ``point_timeout``) plus the farm's own: ``executor`` (a registry
    name or an instance), ``policy`` (:class:`FarmPolicy`), and
    ``manifest`` -- a :class:`~repro.farm.manifest.RunManifest` to
    checkpoint into and/or resume from.  ``sleep`` is injectable so
    tests can assert the backoff schedule without waiting it out.

    On :class:`KeyboardInterrupt` the engine reverts in-flight points to
    ``pending`` (the interrupted attempt does not count against their
    budget), flushes a final checkpoint, kills the backend's workers,
    and re-raises for the CLI to exit 130.
    """

    def __init__(
        self,
        executor: str = DEFAULT_EXECUTOR,
        jobs: int = 1,
        cache: bool = True,
        cache_dir: Optional[Path] = None,
        policy: Optional[FarmPolicy] = None,
        progress: Optional[Callable[[int, int, SweepPoint], None]] = None,
        bus: Optional[EventBus] = None,
        point_timeout: Optional[float] = None,
        manifest: Optional[RunManifest] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if isinstance(executor, FarmExecutor):
            self.executor = executor
        else:
            self.executor = resolve_executor(executor)()
        self.jobs = max(1, int(jobs))
        self.cache = ResultCache(cache_dir or DEFAULT_CACHE_DIR) if cache else None
        self.policy = policy or FarmPolicy()
        self.progress = progress
        self.bus = bus
        self.point_timeout = point_timeout
        self.manifest = manifest
        self.stats = FarmStats()
        self._sleep = sleep
        self._lock = threading.Lock()
        self._interrupt = threading.Event()

    # ----------------------------------------------------------------- run
    def run(self, specs: Iterable[ExperimentSpec]) -> List[SweepPoint]:
        """Execute (or finish) the campaign; points in input order."""
        specs = list(specs)
        started = time.perf_counter()
        total = len(specs)
        points: List[Optional[SweepPoint]] = [None] * total
        done_count = [0]

        manifest = self.manifest
        if manifest is None:
            manifest = RunManifest.new(
                campaign_id_for(specs, self.executor.name),
                specs, self.executor.name, self.policy.as_dict(),
            )
            self.manifest = manifest
        else:
            manifest.verify_resumable(specs)

        def settle(index: int, point: SweepPoint, *, from_resume=False) -> None:
            """Record one settled point (thread-safe) and checkpoint."""
            with self._lock:
                points[index] = point
                done_count[0] += 1
                self.stats.points += 1
                if from_resume:
                    self.stats.resumed += 1
                if point.error is not None:
                    self.stats.errors += 1
                    if point.poisoned:
                        self.stats.poisoned += 1
                    elif point.timed_out:
                        self.stats.timeouts += 1
                elif not from_resume:
                    if point.cached:
                        self.stats.cache_hits += 1
                    else:
                        self.stats.executed += 1
                stats = self.stats.as_dict()
                stats["wall_s"] = round(
                    time.perf_counter() - started + self.stats.wall_s, 3
                )
                manifest.checkpoint(stats)
                if self.progress is not None:
                    self.progress(done_count[0], total, point)

        # Interrupted attempts leave points marked "running"; they never
        # settled, so they go back on the queue with their budget intact.
        for ps in manifest.points:
            if ps.state == "running":
                ps.state = "pending"

        pending: List[int] = []
        for index, spec in enumerate(specs):
            ps = manifest.points[index]
            if ps.terminal:
                settle(index, self._from_ledger(spec, ps), from_resume=True)
                self._emit(EventKind.FARM_RESUME, index,
                           f"{ps.label}: {ps.state} (from manifest)")
                continue
            if self.cache is not None and SweepEngine._cacheable(spec):
                hit = self.cache.get(spec)
                if hit is not None:
                    ps.state = "done"
                    ps.result = hit
                    settle(index, _point_from(spec, hit, cached=True))
                    continue
            pending.append(index)

        manifest.checkpoint(self.stats.as_dict())  # the file exists early
        try:
            self._dispatch(specs, pending, settle)
        except KeyboardInterrupt:
            self._interrupt.set()
            self.executor.interrupt()
            with self._lock:
                for ps in manifest.points:
                    if ps.state == "running":
                        ps.state = "pending"
                self.stats.wall_s += time.perf_counter() - started
                manifest.checkpoint(self.stats.as_dict())
            raise
        finally:
            self.executor.shutdown()

        self.stats.wall_s += time.perf_counter() - started
        manifest.checkpoint(self.stats.as_dict())
        return [p for p in points if p is not None]

    # ------------------------------------------------------------ dispatch
    def _dispatch(self, specs, pending, settle) -> None:
        if not pending:
            return
        self.executor.start(self.jobs)
        if self.jobs == 1:
            for index in pending:
                self._run_point(specs, index, settle)
            return
        with ThreadPoolExecutor(max_workers=self.jobs) as threads:
            futures = [
                threads.submit(self._run_point, specs, index, settle)
                for index in pending
            ]
            try:
                for future in futures:
                    future.result()
            except KeyboardInterrupt:
                self._interrupt.set()
                self.executor.interrupt()
                for future in futures:
                    future.cancel()
                raise

    def _run_point(self, specs, index: int, settle) -> None:
        """One point's full retry loop (runs on a dispatcher thread)."""
        spec = specs[index]
        ps = self.manifest.points[index]
        policy = self.policy
        while True:
            if self._interrupt.is_set():
                return  # stays pending; the resume re-dispatches it
            ps.state = "running"
            ps.attempts += 1
            self._emit(EventKind.FARM_DISPATCH, index,
                       f"{ps.label}: attempt {ps.attempts}")
            result = self._execute(spec)
            if self._interrupt.is_set() and "error" in result:
                # The attempt was killed by the interrupt, not the
                # workload: it does not count against the budget.
                ps.attempts -= 1
                ps.state = "pending"
                return
            if "error" not in result:
                ps.state = "done"
                ps.error = None
                ps.result = result
                if self.cache is not None and SweepEngine._cacheable(spec):
                    self.cache.put(spec, result)
                settle(index, _point_from(spec, result, cached=False))
                return
            worker_killing = bool(
                result.get("worker_died") or result.get("timed_out")
            )
            if worker_killing:
                ps.worker_deaths += 1
                with self._lock:
                    self.stats.worker_deaths += 1
            if ps.worker_deaths >= policy.poison_threshold:
                ps.state = "poisoned"
                ps.error = result["error"]
                result = dict(result, poisoned=True)
                self._emit(EventKind.FARM_POISON, index,
                           f"{ps.label}: quarantined after "
                           f"{ps.worker_deaths} worker death(s)")
                settle(index, _point_from(spec, result, cached=False))
                return
            retryable = worker_killing or policy.retry_errors
            if retryable and ps.attempts < policy.max_attempts:
                delay = backoff_delay(policy, index, ps.attempts)
                with self._lock:
                    self.stats.retries += 1
                self._emit(EventKind.FARM_RETRY, index,
                           f"{ps.label}: attempt {ps.attempts} failed "
                           f"({'worker death' if worker_killing else 'error'}"
                           f"), backing off {delay:.3f}s")
                if delay > 0:
                    self._sleep(delay)
                continue
            ps.state = "timed_out" if result.get("timed_out") else "errored"
            ps.error = result["error"]
            settle(index, _point_from(spec, result, cached=False))
            return

    def _execute(self, spec: ExperimentSpec) -> Dict:
        if not spec.portable:
            # Opaque traffic callables cannot cross a process boundary:
            # run in-process, uncontained and unwatched, like the sweep
            # engine does.
            return _execute_in_process(spec)
        return self.executor.run_point(spec.to_dict(), self.point_timeout)

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _from_ledger(spec: ExperimentSpec, ps) -> SweepPoint:
        """Rebuild a settled point from its manifest entry."""
        if ps.state == "done" and ps.result is not None:
            return _point_from(spec, ps.result, cached=True)
        result = {
            "error": ps.error or f"point settled as {ps.state}",
            "timed_out": ps.state == "timed_out",
            "poisoned": ps.state == "poisoned",
            "worker_died": ps.worker_deaths > 0,
        }
        return _point_from(spec, result, cached=False)

    def _emit(self, kind: str, index: int, info: str) -> None:
        if self.bus is not None:
            self.bus.emit(index, kind, -1, info=info)
