"""Executor registry: the pluggable point-execution backends of the farm.

The sweep engine hardcodes one execution strategy (a shared
``ProcessPoolExecutor``).  The farm separates *what to run and how to
recover* (:class:`~repro.farm.engine.FarmEngine`) from *how a single point
is executed* (this module), behind the same registry idiom as
:mod:`repro.sim.schedulers`: implementations carry a ``name`` class
attribute, :func:`register_executor` is a decorator, re-registering the
same class is a no-op, and a name collision raises.

Two backends ship with the package:

``pool``
    A shared :class:`~concurrent.futures.ProcessPoolExecutor`.  Cheapest
    per point (workers are reused across points), but a hard worker death
    (``os._exit``, segfault, OOM kill) poisons the whole executor -- the
    backend regenerates the pool and reports the waited point as
    ``worker_died``; co-resident in-flight points may be reported as
    collateral ``worker_died`` and heal through the farm's retry loop.

``subprocess``
    One fresh interpreter per point (``python -m repro.farm.worker``).
    Slower to start, but a crash is *contained and exactly attributed*:
    only the crashing point is affected, and the backend reports its exit
    status.  This is the backend whose :attr:`FarmExecutor.contains_crashes`
    is true -- what the crash-survival tests and the chaos engine's
    hostile workloads want.

Both backends treat ``timeout`` as the per-point liveness watchdog: a
worker that produces no result inside the bound is killed and the point
reported ``timed_out``.

The contract is data-in/data-out: ``run_point`` takes a spec dict (from
:meth:`~repro.experiments.spec.ExperimentSpec.to_dict`) and returns a
result dict in the engine's slim shape -- either a real result or an
``{"error": ...}`` diagnosis carrying optional ``worker_died`` /
``timed_out`` / ``exit_code`` markers.  ``run_point`` must be safe to call
from several dispatcher threads at once.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Dict, Optional, Tuple, Type

from ..experiments.engine import _execute_spec_dict

_REGISTRY: Dict[str, Type["FarmExecutor"]] = {}

#: Backend used when a farm is built without an explicit name.
DEFAULT_EXECUTOR = "pool"


class FarmExecutor:
    """Interface of a point-execution backend.

    Class attributes:

    ``name``
        Registry key (CLI ``--executor`` choice).
    ``description``
        One line for ``--help`` texts and docs.
    ``contains_crashes``
        True when a hard worker death affects only the crashing point
        (exact attribution); false when co-resident points may be
        reported as collateral ``worker_died``.
    """

    name: str = ""
    description: str = ""
    contains_crashes: bool = False

    def start(self, jobs: int) -> None:
        """Bring the backend up for ``jobs`` concurrent points."""

    def run_point(
        self, spec_dict: Dict, timeout: Optional[float] = None
    ) -> Dict:
        """Execute one spec dict; return the slim result dict.

        Never raises for per-point failures: an in-point exception, a
        dead worker, or a watchdog timeout all come back as an
        ``{"error": ...}`` dict with the matching marker.  Thread-safe.
        """
        raise NotImplementedError

    def interrupt(self) -> None:
        """Kill in-flight work (SIGINT/SIGTERM path); idempotent."""

    def shutdown(self) -> None:
        """Release the backend's resources; idempotent."""


def register_executor(cls: Type[FarmExecutor]) -> Type[FarmExecutor]:
    """Register ``cls`` under ``cls.name``.  Usable as a decorator.

    Re-registering a name with the *same* class is a no-op (module
    reloads); with a different class it raises, because silently swapping
    the execution backend underneath a resumable manifest would make
    crash diagnoses lie.
    """
    name = cls.name
    if not name:
        raise ValueError(f"executor class {cls!r} has no name")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"executor {name!r} already registered to {existing!r}"
        )
    _REGISTRY[name] = cls
    return cls


def executor_names() -> Tuple[str, ...]:
    """Registered backend names, in registration order (= CLI order)."""
    return tuple(_REGISTRY)


def executor_descriptions() -> Dict[str, str]:
    return {name: cls.description for name, cls in _REGISTRY.items()}


def resolve_executor(name: str) -> Type[FarmExecutor]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; registered: "
            f"{', '.join(executor_names())}"
        ) from None


# --------------------------------------------------------------------------
# "pool": shared process pool, regenerated across breaks.
# --------------------------------------------------------------------------


@register_executor
class PoolExecutor(FarmExecutor):
    """Shared process pool; cheapest per point, coarse crash attribution.

    A hard worker death breaks the whole ``ProcessPoolExecutor``, so the
    backend keeps a *generation* counter: the first ``run_point`` to
    observe a break (or a watchdog timeout) tears the pool down and builds
    a fresh generation; threads waiting on the dead generation report
    their points as collateral ``worker_died`` and the farm's retry loop
    heals them.
    """

    name = "pool"
    description = (
        "shared process pool; fastest, but a hard crash takes collateral "
        "in-flight points with it (healed by retry)"
    )
    contains_crashes = False

    def __init__(self) -> None:
        self._jobs = 1
        self._pool: Optional[ProcessPoolExecutor] = None
        self._generation = 0
        self._lock = threading.Lock()

    def start(self, jobs: int) -> None:
        self._jobs = max(1, int(jobs))
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self._jobs)

    def _current(self) -> Tuple[ProcessPoolExecutor, int]:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self._jobs)
            return self._pool, self._generation

    def _degrade(self, generation: int, kill: bool) -> None:
        """Replace the pool, once per observed generation."""
        with self._lock:
            if self._generation != generation or self._pool is None:
                return  # another thread already regenerated
            pool, self._pool = self._pool, None
            self._generation += 1
        if kill:
            # A wedged worker would block shutdown indefinitely.
            for proc in list(getattr(pool, "_processes", {}).values()):
                proc.terminate()
        pool.shutdown(wait=False, cancel_futures=True)

    def run_point(
        self, spec_dict: Dict, timeout: Optional[float] = None
    ) -> Dict:
        pool, generation = self._current()
        try:
            future = pool.submit(_execute_spec_dict, spec_dict)
        except Exception:  # noqa: BLE001 - pool broke between points
            self._degrade(generation, kill=False)
            return {
                "error": "process pool was broken before dispatch; "
                         "pool regenerated",
                "worker_died": True,
            }
        try:
            return future.result(timeout=timeout)
        except FuturesTimeout:
            self._degrade(generation, kill=True)
            return {
                "error": (
                    f"point exceeded the {timeout}s liveness watchdog; "
                    "pool generation terminated, point not cached"
                ),
                "timed_out": True,
            }
        except BrokenProcessPool:
            self._degrade(generation, kill=False)
            return {
                "error": (
                    "worker process died abruptly while this point was in "
                    "flight (hard exit, segfault, or OOM kill); pool "
                    "regenerated -- the victim may be collateral under "
                    "the shared-pool backend"
                ),
                "worker_died": True,
            }
        except Exception:  # noqa: BLE001 - cancellation, pickling failures
            return {"error": traceback.format_exc()}

    def interrupt(self) -> None:
        with self._lock:
            generation = self._generation
            has_pool = self._pool is not None
        if has_pool:
            self._degrade(generation, kill=True)

    def shutdown(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


# --------------------------------------------------------------------------
# "subprocess": one fresh interpreter per point.
# --------------------------------------------------------------------------


def _worker_env() -> Dict[str, str]:
    """Child environment with this package importable.

    The repo runs uninstalled (``PYTHONPATH=src``); a worker interpreter
    must find ``repro`` the same way regardless of how the parent did.
    """
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_dir + os.pathsep + existing if existing else src_dir
        )
    return env


@register_executor
class SubprocessExecutor(FarmExecutor):
    """One ``python -m repro.farm.worker`` interpreter per point.

    The worker reads the spec dict as JSON on stdin and writes the slim
    result as JSON on stdout; anything the simulation prints is diverted
    to stderr.  A nonzero exit status (or garbage on stdout) is diagnosed
    as ``worker_died`` with the exit code and a stderr tail -- and affects
    nobody else, which is the point.
    """

    name = "subprocess"
    description = (
        "one interpreter per point; slower, but hard crashes are "
        "contained and exactly attributed (exit status preserved)"
    )
    contains_crashes = True

    #: Kept stderr tail length in a ``worker_died`` diagnosis.
    STDERR_TAIL = 2000

    def __init__(self) -> None:
        self._env = _worker_env()
        self._live: Dict[int, subprocess.Popen] = {}
        self._lock = threading.Lock()
        self._interrupted = False

    def start(self, jobs: int) -> None:
        self._interrupted = False

    def run_point(
        self, spec_dict: Dict, timeout: Optional[float] = None
    ) -> Dict:
        if self._interrupted:
            return {"error": "farm interrupted before dispatch"}
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.farm.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=self._env,
            text=True,
        )
        with self._lock:
            self._live[proc.pid] = proc
        try:
            try:
                out, err = proc.communicate(
                    json.dumps(spec_dict), timeout=timeout
                )
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate()
                return {
                    "error": (
                        f"point exceeded the {timeout}s liveness "
                        "watchdog; worker killed, point not cached"
                    ),
                    "timed_out": True,
                }
        finally:
            with self._lock:
                self._live.pop(proc.pid, None)
        if proc.returncode != 0:
            tail = (err or "").strip()[-self.STDERR_TAIL:]
            return {
                "error": (
                    f"worker exited with status {proc.returncode} "
                    "(hard exit, signal, or OOM kill)"
                    + (f"; stderr tail:\n{tail}" if tail else "")
                ),
                "worker_died": True,
                "exit_code": proc.returncode,
            }
        try:
            return json.loads(out)
        except ValueError:
            return {
                "error": (
                    "worker exited 0 but wrote no parseable result "
                    f"(stdout: {out[:200]!r})"
                ),
                "worker_died": True,
                "exit_code": 0,
            }

    def interrupt(self) -> None:
        self._interrupted = True
        with self._lock:
            live = list(self._live.values())
        for proc in live:
            try:
                proc.kill()
            except OSError:
                pass

    def shutdown(self) -> None:
        self.interrupt()
        self._interrupted = False
