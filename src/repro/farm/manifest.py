"""Run manifests: the crash-surviving ledger of a farm campaign.

A campaign is an ordered list of specs plus, for each, where it stands:
``pending`` / ``running`` / ``done`` / ``errored`` / ``timed_out`` /
``poisoned``.  The farm checkpoints this ledger to one JSON file
(atomic tmp + ``os.replace``, like every archive in this repo) after
every settled point, so the file on disk is *always* a consistent
snapshot -- kill the farm at any instant and ``repro farm --resume
<manifest>`` picks up from the last checkpoint, re-executing nothing
that already settled.

The on-disk shape is the results schema's :class:`~repro.report.schema.
CampaignRecord` (kind ``repro-campaign``), so ``load_record`` sniffs
manifests like any other artifact and the report's run-health page can
roll them up.  ``done`` points carry their slim result dict *inline*:
a resume does not depend on the sweep cache (which may be disabled, as
it is for chaos campaigns) to reproduce the settled portion.

Two safety latches guard a resume:

* **Spec identity.**  The manifest stores every spec dict and its content
  hash; resuming against a different grid (any hash mismatch, any length
  mismatch) refuses rather than silently mixing campaigns.
* **Code identity.**  The manifest stores the
  :func:`~repro.experiments.engine.code_version` it ran under; resuming
  under different code invalidates the settled results (the simulator
  changed -- results may differ), so the farm starts the campaign over.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..experiments.engine import code_version
from ..experiments.spec import ExperimentSpec
from ..report.schema import (
    CAMPAIGN_POINT_STATES,
    CAMPAIGN_TERMINAL_STATES,
    CampaignRecord,
    load_record,
    write_record_atomic,
)

#: Default manifest directory, next to the sweep cache.
DEFAULT_CAMPAIGN_DIR = Path("benchmarks/results/campaigns")


class ManifestMismatch(ValueError):
    """A manifest cannot be resumed against the offered campaign."""


@dataclass
class PointState:
    """One spec's position in the campaign ledger."""

    index: int
    spec_hash: Optional[str]
    label: str
    state: str = "pending"
    attempts: int = 0
    worker_deaths: int = 0
    error: Optional[str] = None
    #: Slim result dict, inline, once the point is ``done``.
    result: Optional[Dict] = None

    def __post_init__(self) -> None:
        if self.state not in CAMPAIGN_POINT_STATES:
            raise ValueError(
                f"unknown point state {self.state!r}; "
                f"choose from {CAMPAIGN_POINT_STATES}"
            )

    @property
    def terminal(self) -> bool:
        return self.state in CAMPAIGN_TERMINAL_STATES

    def to_dict(self) -> Dict:
        return {
            "index": self.index,
            "spec_hash": self.spec_hash,
            "label": self.label,
            "state": self.state,
            "attempts": self.attempts,
            "worker_deaths": self.worker_deaths,
            "error": self.error,
            "result": self.result,
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "PointState":
        return cls(
            index=int(doc.get("index", 0)),
            spec_hash=doc.get("spec_hash"),
            label=doc.get("label", ""),
            state=doc.get("state", "pending"),
            attempts=int(doc.get("attempts", 0)),
            worker_deaths=int(doc.get("worker_deaths", 0)),
            error=doc.get("error"),
            result=doc.get("result"),
        )


class RunManifest:
    """The live ledger behind one campaign's manifest file."""

    def __init__(
        self,
        campaign_id: str,
        executor: str,
        policy: Dict,
        specs: List[Dict],
        points: List[PointState],
        path: Optional[Path] = None,
        created: str = "",
        code: Optional[str] = None,
    ):
        self.campaign_id = campaign_id
        self.executor = executor
        self.policy = dict(policy)
        self.specs = specs
        self.points = points
        self.path = Path(path) if path is not None else None
        self.created = created or time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        )
        self.code_version = code if code is not None else code_version()

    # ------------------------------------------------------------ lifecycle
    @classmethod
    def new(
        cls,
        campaign_id: str,
        specs: List[ExperimentSpec],
        executor: str,
        policy: Dict,
        path: Optional[Path] = None,
    ) -> "RunManifest":
        points = []
        spec_dicts = []
        for index, spec in enumerate(specs):
            try:
                spec_dicts.append(spec.to_dict())
                spec_hash: Optional[str] = spec.content_hash()
            except Exception:  # noqa: BLE001 - non-portable spec
                spec_dicts.append({"label": spec.label, "portable": False})
                spec_hash = None
            points.append(
                PointState(
                    index=index,
                    spec_hash=spec_hash,
                    label=spec.label or spec.describe(),
                )
            )
        return cls(campaign_id, executor, dict(policy), spec_dicts, points,
                   path=path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        record = load_record(Path(path))
        if not isinstance(record, CampaignRecord):
            raise ManifestMismatch(
                f"{path}: not a campaign manifest "
                f"(got {type(record).__name__})"
            )
        return cls(
            campaign_id=record.campaign_id,
            executor=record.executor,
            policy=record.policy,
            specs=record.specs,
            points=[PointState.from_dict(p) for p in record.points],
            path=Path(path),
            created=record.created,
            code=record.code_version,
        )

    def checkpoint(self, stats: Optional[Dict] = None) -> None:
        """Atomically persist the current ledger (no-op without a path)."""
        if stats is not None:
            self._stats = dict(stats)
        if self.path is None:
            return
        write_record_atomic(self.path, self.record())

    # ------------------------------------------------------------- queries
    def record(self) -> CampaignRecord:
        return CampaignRecord(
            campaign_id=self.campaign_id,
            created=self.created,
            executor=self.executor,
            code_version=self.code_version,
            policy=dict(self.policy),
            specs=self.specs,
            points=[p.to_dict() for p in self.points],
            stats=dict(getattr(self, "_stats", {})),
        )

    @property
    def complete(self) -> bool:
        return all(p.terminal for p in self.points)

    def state_counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in CAMPAIGN_POINT_STATES}
        for point in self.points:
            counts[point.state] += 1
        return counts

    def verify_resumable(self, specs: List[ExperimentSpec]) -> None:
        """Raise :class:`ManifestMismatch` unless this manifest describes
        exactly the offered campaign, run under the current code."""
        if len(specs) != len(self.points):
            raise ManifestMismatch(
                f"manifest {self.campaign_id!r} holds {len(self.points)} "
                f"point(s) but the campaign offers {len(specs)}"
            )
        for point, spec in zip(self.points, specs):
            try:
                spec_hash: Optional[str] = spec.content_hash()
            except Exception:  # noqa: BLE001
                spec_hash = None
            if point.spec_hash != spec_hash:
                raise ManifestMismatch(
                    f"manifest {self.campaign_id!r} point {point.index} "
                    f"({point.label!r}) hashes {point.spec_hash!r}, the "
                    f"offered spec hashes {spec_hash!r}: different campaign"
                )
        if self.code_version != code_version():
            raise ManifestMismatch(
                f"manifest {self.campaign_id!r} ran under code "
                f"{self.code_version[:12]}, current is "
                f"{code_version()[:12]}: settled results are stale"
            )
