"""The fault-tolerant sweep farm: pluggable executors, resumable
manifests, crash-surviving campaigns.

Built over :mod:`repro.experiments`' sweep machinery: the farm reuses
the spec/cache/point vocabulary and adds execution backends
(:mod:`~repro.farm.executors`), a per-point retry/poison policy, and an
on-disk run manifest that makes ``repro farm --resume`` safe after any
kind of death -- the worker's or the farm's own.
"""

from .engine import (
    FarmEngine,
    FarmPolicy,
    FarmStats,
    backoff_delay,
    campaign_id_for,
)
from .executors import (
    DEFAULT_EXECUTOR,
    FarmExecutor,
    PoolExecutor,
    SubprocessExecutor,
    executor_descriptions,
    executor_names,
    register_executor,
    resolve_executor,
)
from .manifest import (
    DEFAULT_CAMPAIGN_DIR,
    ManifestMismatch,
    PointState,
    RunManifest,
)
from .signals import interrupts_as_keyboard

__all__ = [
    "DEFAULT_CAMPAIGN_DIR",
    "DEFAULT_EXECUTOR",
    "FarmEngine",
    "FarmExecutor",
    "FarmPolicy",
    "FarmStats",
    "ManifestMismatch",
    "PointState",
    "PoolExecutor",
    "RunManifest",
    "SubprocessExecutor",
    "backoff_delay",
    "campaign_id_for",
    "executor_descriptions",
    "executor_names",
    "interrupts_as_keyboard",
    "register_executor",
    "resolve_executor",
]
