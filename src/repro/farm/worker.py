"""Subprocess worker entry point: one spec in, one slim result out.

``python -m repro.farm.worker`` reads an
:class:`~repro.experiments.spec.ExperimentSpec` dict as JSON on stdin,
executes it, and writes the slim result dict as JSON on stdout.  The
protocol is deliberately the dumbest thing that works, because the whole
point of the :class:`~repro.farm.executors.SubprocessExecutor` backend is
that this interpreter may die at any instruction:

* stdout is reserved for the result; while the simulation runs,
  ``sys.stdout`` is pointed at stderr so a chatty workload cannot corrupt
  the protocol stream.
* Ordinary exceptions are already converted to ``{"error": traceback}``
  by :func:`~repro.experiments.engine._execute_spec_dict`, so this
  process exits 0 for them -- a nonzero exit status always means a *hard*
  death (``os._exit``, signal, OOM kill), which is exactly how the parent
  classifies it.
"""

from __future__ import annotations

import json
import sys


def main() -> int:
    spec_dict = json.loads(sys.stdin.read())

    # Import after stdin is consumed: a broken pipe should surface as a
    # JSON error on stdin handling, not as an import-time crash.
    from ..experiments.engine import _execute_spec_dict

    real_stdout = sys.stdout
    sys.stdout = sys.stderr
    try:
        result = _execute_spec_dict(spec_dict)
    finally:
        sys.stdout = real_stdout
    json.dump(result, real_stdout)
    real_stdout.write("\n")
    real_stdout.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main())
