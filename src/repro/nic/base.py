"""Common NIC machinery: injection/ejection plumbing shared by all NICs.

Every NIC variant (plain, buffers-only, NIFDY) sits between a processor and
a router port.  The *injection* side feeds flits onto the node's injection
link(s); the *ejection* side is the sink of the node's ejection link(s),
assembling flits back into packets.  Credits on the ejection link are the
network-visible backpressure: a NIC that leaves an ejected packet unconsumed
(e.g. its arrivals FIFO is full) withholds the credits, which eventually
blocks the network -- the end-point congestion the paper studies.

Most topologies demand-multiplex the request and reply logical networks over
one physical channel, so the NIC has a single injection and a single ejection
link carrying both nets' VCs.  The CM-5 imitation time-multiplexes the nets,
modelled as one half-bandwidth link per net (``attach_injection_pair`` /
``attach_ejection_pair``).

The processor-facing interface is uniform:

* ``try_send(packet)``  -- hand a packet to the NIC; False if the NIC cannot
  buffer it (the processor must retry, typically after polling).
* ``has_arrival()`` / ``receive()`` -- polling reception; ``receive`` pops the
  next in-FIFO packet.  The processor calls :meth:`accepted` once its receive
  overhead has elapsed, which is when NIFDY generates acks (footnote 2 of the
  paper: acking earlier, on FIFO insert, is "surprisingly less effective" --
  we keep that as an ablation flag).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..links import FlitFeeder, FlitSink, Link
from ..obs.events import EventKind
from ..packets import Packet, PacketKind
from ..sim import Simulator


class _InjectionStream:
    """One packet currently streaming onto an injection-link VC."""

    __slots__ = ("packet", "flits_sent")

    def __init__(self, packet: Packet):
        self.packet = packet
        self.flits_sent = 0


class BaseNIC(FlitFeeder, FlitSink):
    """Plumbing shared by every NIC variant."""

    def __init__(self, sim: Simulator, node_id: int):
        self.sim = sim
        self.node_id = node_id
        self._inj_links: List[Link] = []
        self._inj_by_net: Dict[int, Link] = {}
        self._ej_links: Dict[int, Link] = {}
        # injection: at most one stream per (link, VC)
        self._inj_streams: Dict[Tuple[int, int], _InjectionStream] = {}
        self._port_retries: set = set()
        # ejection: per-(port, VC) partial packet flit counts
        self._ej_flits: Dict[Tuple[int, int], int] = {}
        # statistics
        self.packets_injected = 0
        self.packets_ejected = 0
        self.packets_accepted = 0
        # hooks for experiment-level accounting
        self.on_accept: Optional[Callable[[Packet], None]] = None
        self.on_inject: Optional[Callable[[Packet], None]] = None
        #: Fired when a data packet's tail flit is assembled at this NIC
        #: (destination-side ejection, before any arrivals-FIFO stall).
        self.on_eject: Optional[Callable[[Packet], None]] = None
        #: Fired when a NIC gives up on delivering a packet (retransmitting
        #: variants with ``on_exhaust="abandon"``); never fires on reliable
        #: NICs, but lives here so collectors can hook every NIC uniformly.
        self.on_abandon: Optional[Callable[[Packet], None]] = None
        #: Protocol event bus (:class:`repro.obs.EventBus`); ``None`` keeps
        #: every emission site a single pointer comparison.
        self.obs = None
        #: NIC-offloaded collective engine
        #: (:class:`repro.nic.collectives.CollectiveEngine`); ``None`` when
        #: collectives run on the host.  Collective packets bypass the
        #: subclass protocol machinery entirely -- they are combined in
        #: dedicated registers, not buffered in the arrivals FIFO.
        self.collective = None

    # ------------------------------------------------------------- wiring
    def attach_injection(self, link: Link) -> None:
        """Single injection link carrying every logical network's VCs."""
        self._inj_links = [link]
        self._inj_by_net = {net: link for net in set(link.net_of_vc)}

    def attach_injection_pair(self, links: Sequence[Link]) -> None:
        """One injection link per logical network (CM-5 time-mux model)."""
        self._inj_links = list(links)
        self._inj_by_net = {}
        for link in links:
            for net in set(link.net_of_vc):
                self._inj_by_net[net] = link

    def attach_ejection(self, link: Link) -> None:
        self._ej_links = {link.sink_port: link}

    def attach_ejection_pair(self, links: Sequence[Link]) -> None:
        self._ej_links = {link.sink_port: link for link in links}

    @property
    def inj_link(self) -> Link:
        """The injection link (single-link topologies)."""
        if len(self._inj_links) != 1:
            raise RuntimeError("NIC has multiple injection links; use per-net")
        return self._inj_links[0]

    def _inj_link_for(self, net: int) -> Link:
        return self._inj_by_net[net]

    # ------------------------------------------------------ injection side
    def _start_injection(self, packet: Packet) -> bool:
        """Begin streaming ``packet`` onto its logical network's link.

        A data packet and an ack can stream concurrently (on different VCs,
        interleaving flits on the wire), but two packets of the same logical
        network serialise.  Returns False when every VC of the packet's
        logical network is busy.
        """
        link = self._inj_link_for(packet.logical_net)
        lid = id(link)
        candidates = [
            vc for vc in link.vcs_for_net(packet.logical_net)
            if (lid, vc) not in self._inj_streams
        ]
        if not candidates:
            return False
        vc = link.allocate_vc(packet, self, candidates)
        if vc is None:
            return False
        self._inj_streams[(lid, vc)] = _InjectionStream(packet)
        packet.injected_cycle = self.sim.now
        if (
            packet.is_data
            and not packet.control_only
            and not packet.is_retransmission
        ):
            if self.on_inject is not None:
                self.on_inject(packet)
            if self.obs is not None:
                self.obs.emit_packet(
                    self.sim.now, EventKind.INJECT, self.node_id, packet
                )
        link.notify_flit_ready(vc)
        return True

    def _injection_port_free(self, net: int) -> bool:
        """True when some VC of ``net`` is both unclaimed by us and released
        by the link (a finished packet's VC frees only once its tail flit has
        fully crossed the wire, a few cycles after our stream ends)."""
        link = self._inj_link_for(net)
        lid = id(link)
        return any(
            (lid, vc) not in self._inj_streams and link.vc_free(vc)
            for vc in link.vcs_for_net(net)
        )

    def _retry_when_port_frees(self, key: str, net: int, fn: Callable[[], None]) -> None:
        """Re-run ``fn`` when an injection VC releases (at most one pending
        retry per ``key``, so repeated pump attempts don't pile up)."""
        if key in self._port_retries:
            return
        self._port_retries.add(key)

        def _fire() -> None:
            self._port_retries.discard(key)
            fn()

        self._inj_link_for(net).add_alloc_waiter(_fire)

    # FlitFeeder interface ---------------------------------------------------
    def has_flit_ready(self, link: Link, vc: int) -> bool:
        return (id(link), vc) in self._inj_streams

    def take_flit(self, link: Link, vc: int):
        stream = self._inj_streams[(id(link), vc)]
        stream.flits_sent += 1
        is_head = stream.flits_sent == 1
        is_tail = stream.flits_sent == stream.packet.flits
        if is_tail:
            del self._inj_streams[(id(link), vc)]
            self.packets_injected += 1
            # Let the subclass queue the next packet for this VC.
            self.sim.post(0, self._dispatch_injection_complete, stream.packet)
        return stream.packet, is_head, is_tail

    def take_flits(self, link: Link, vc: int, max_flits: int):
        """Bulk take: body flits are a pure ``flits_sent`` counter bump
        (nothing reads the counter until the tail), so claiming them in one
        step is indistinguishable from repeated :meth:`take_flit` calls.
        The tail, if reached, goes through :meth:`take_flit` so its
        completion side effects fire identically."""
        if max_flits <= 0:
            return []
        stream = self._inj_streams.get((id(link), vc))
        if stream is None:
            return []
        packet = stream.packet
        first_is_head = stream.flits_sent == 0
        body = min(max_flits, packet.flits - stream.flits_sent - 1)
        flits = [(packet, False, False)] * body
        if body > 0:
            stream.flits_sent += body
            if first_is_head:
                flits[0] = (packet, True, False)
        if body < max_flits:
            flits.append(self.take_flit(link, vc))
        return flits

    def untake_flits(self, link: Link, vc: int, count: int) -> None:
        """Hand back body flits claimed by :meth:`take_flits` (an epoch
        token run truncated early): the stream's counter returns to exactly
        what the classic per-flit path expects."""
        if count > 0:
            self._inj_streams[(id(link), vc)].flits_sent -= count

    def flit_run_handle(self, link: Link, vc: int):
        stream = self._inj_streams.get((id(link), vc))
        if stream is None:
            return None
        return ("claim", stream.packet.flits - stream.flits_sent)

    def _dispatch_injection_complete(self, packet: Packet) -> None:
        """Route a finished injection to its owner.

        Collective packets belong to the collective engine's private pump;
        handing them to the subclass would confuse protocol state machines
        that match completions against their own queues."""
        if packet.kind is PacketKind.COLLECTIVE:
            if self.collective is not None:
                self.collective.on_injection_complete(packet)
            return
        self._on_injection_complete(packet)

    def _on_injection_complete(self, packet: Packet) -> None:
        """Called (next cycle) after a packet's tail left the NIC."""

    # ------------------------------------------------------- ejection side
    # FlitSink interface

    #: Body-flit arrivals only bump an assembly counter; every observable
    #: effect (stats, obs events, credit release) happens at the tail, so
    #: the epoch kernel may defer and batch body deliveries.
    passive_flit_sink = True

    def accept_flit(
        self, port: int, vc: int, packet: Packet, is_head: bool, is_tail: bool
    ) -> None:
        key = (port, vc)
        self._ej_flits[key] = self._ej_flits.get(key, 0) + 1
        if is_tail:
            if self._ej_flits[key] < packet.flits:
                # Flits of a packet arrive contiguously per VC.
                raise RuntimeError(
                    f"node {self.node_id}: tail before all flits of {packet}"
                )
            self._ej_flits[key] -= packet.flits
            self.packets_ejected += 1
            if packet.is_data and not packet.control_only:
                packet.ejected_cycle = self.sim.now
                if self.on_eject is not None:
                    self.on_eject(packet)
                if self.obs is not None:
                    self.obs.emit_packet(
                        self.sim.now, EventKind.EJECT, self.node_id, packet
                    )
            if packet.kind is PacketKind.COLLECTIVE:
                # Combined in dedicated registers: credits return at once,
                # the subclass arrivals machinery never sees the packet.
                self._release_ejection(packet, vc, port)
                if self.collective is None:
                    raise RuntimeError(
                        f"node {self.node_id}: collective packet {packet} "
                        "arrived but no collective engine is attached"
                    )
                self.collective.on_packet(packet)
                return
            self._on_packet_ejected(packet, vc, port)

    def accept_flits(
        self, port: int, vc: int, packet: Packet, count: int,
        first_is_head: bool = False,
    ) -> None:
        """Bulk body-flit delivery (never includes the tail): one counter
        bump replaces ``count`` single-flit calls."""
        key = (port, vc)
        self._ej_flits[key] = self._ej_flits.get(key, 0) + count

    def _release_ejection(self, packet: Packet, vc: int, port: int = 0) -> None:
        """Return the ejection-buffer credits held by ``packet``."""
        link = self._ej_links[port]
        for _ in range(packet.flits):
            link.return_credit(vc)

    def _on_packet_ejected(self, packet: Packet, vc: int, port: int) -> None:
        raise NotImplementedError

    # --------------------------------------------------- processor interface
    def try_send(self, packet: Packet) -> bool:
        raise NotImplementedError

    def can_send(self) -> bool:
        """Cheap check used by processors to avoid building a packet early."""
        raise NotImplementedError

    def has_arrival(self) -> bool:
        raise NotImplementedError

    def receive(self) -> Optional[Packet]:
        raise NotImplementedError

    def accepted(self, packet: Packet) -> None:
        """Processor finished its receive overhead for ``packet``."""
        self.packets_accepted += 1
        packet.delivered_cycle = self.sim.now
        if self.on_accept is not None:
            self.on_accept(packet)
        if self.obs is not None:
            self.obs.emit_packet(
                self.sim.now, EventKind.ACCEPT, self.node_id, packet
            )

    # ------------------------------------------------------------- queries
    @property
    def guarantees_order(self) -> bool:
        """Whether software may rely on per-sender in-order delivery."""
        return False
