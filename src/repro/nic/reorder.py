"""Reorder-tolerant receiver NICs: the modern-datacenter recovery variants.

NIFDY's bulk dialogs already solve receiver-side reordering for 1995-era
fabrics; the modern literature reopened the fight for multipath datacenter
networks where *every* packet may be sprayed onto a different path.  This
module implements three receiver-side recovery strategies behind one sender
(a per-destination sliding window with retransmission timers, the stream
analogue of NIFDY's OPT+timer machinery):

* ``window``    -- a NIFDY-style bounded reorder window: out-of-order
  packets are buffered (up to ``rx_window`` per source) and acknowledged
  only cumulatively, so a hole leaves the buffered successors' timers
  running and they are eventually retransmitted spuriously.
* ``bitmap``    -- an Eunomia-style bitmap tracker (arXiv 2412.08540): the
  same bounded buffer, but every ack carries the set of buffered sequence
  numbers (:attr:`repro.packets.AckInfo.sack`), so the sender stops the
  timers of packets that arrived out of order and retransmits only the
  holes -- selective repeat instead of go-back-N.
* ``dropcache`` -- a Jain-style receiver (DEC-TR-342): out-of-order packets
  are cached only up to ``cache_capacity`` packets (0 = the classic
  drop-everything-out-of-order receiver) and dropped beyond that, trading
  receiver buffer for retransmission bandwidth.

All three deliver to the processor strictly in per-source order
(``guarantees_order`` is True), so they pair with the spraying fabrics
(``fattree-spray`` / ``multibutterfly-spray``) the way NIFDY pairs with the
adaptive ones.

Graceful degradation: when a packet exhausts ``max_retries`` the sender
abandons the whole outstanding window to that destination (a hole would
stall the receiver's stream forever) and every subsequent data packet
carries :attr:`repro.packets.Packet.stream_base` -- the sender's lowest
unacked sequence -- so the receiver skips abandoned holes instead of
waiting on them.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from ..obs.events import EventKind
from ..packets import (
    AckInfo,
    Packet,
    PacketKind,
    REPLY_NET,
    REQUEST_NET,
    make_ack,
)
from ..sim import Event, Simulator
from .base import BaseNIC
from .retransmit import _BACKOFF_CAP, EXHAUST_POLICIES

#: Receiver recovery policies.
REORDER_POLICIES = ("window", "bitmap", "dropcache")

#: nic_mode name -> receiver policy (the experiment-facing spelling).
REORDER_NIC_MODES = {
    "reorder-window": "window",
    "reorder-bitmap": "bitmap",
    "reorder-jain": "dropcache",
}


@dataclass(frozen=True)
class ReorderParams:
    """Sizing of a reorder-tolerant NIC.

    ``tx_window`` bounds unacked packets per destination; ``rx_window``
    bounds the receiver's per-source reorder buffer (and must cover the
    send window, or the receiver would drop in steady state even without
    loss).  ``cache_capacity`` is the *total* out-of-order packets a
    ``dropcache`` receiver will hold across all sources (Jain's drop-vs-
    cache knob; ignored by the other policies).  ``nic_delay`` mirrors
    NIFDY's per-end processing latency.
    """

    tx_window: int = 8
    rx_window: int = 16
    cache_capacity: int = 0
    out_capacity: int = 64
    arrivals_capacity: int = 2
    nic_delay: int = 2

    def __post_init__(self) -> None:
        if self.tx_window < 1:
            raise ValueError("tx_window must be at least 1")
        if self.rx_window < self.tx_window:
            raise ValueError("rx_window must cover tx_window")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be >= 0")
        if self.out_capacity < 1 or self.arrivals_capacity < 1:
            raise ValueError("NIC buffer capacities must be at least 1")
        if self.nic_delay < 0:
            raise ValueError("nic_delay must be >= 0")


class _RxStream:
    """Per-source receiver state: next expected seq and the reorder buffer."""

    __slots__ = ("expect", "buffer", "bitmap", "stalled")

    def __init__(self) -> None:
        self.expect = 0
        #: seq -> packet, ejection credits already released (dedicated NIC
        #: buffer, like a NIFDY dialog's window buffers).
        self.buffer: Dict[int, Packet] = {}
        #: The advertised SACK set (bitmap policy); must mirror ``buffer``.
        self.bitmap: set = set()
        #: An in-order packet awaiting arrivals-FIFO space, still holding
        #: its network credits: (packet, vc, port).
        self.stalled: Optional[Tuple[Packet, int, int]] = None


class ReorderTolerantNIC(BaseNIC):
    """Windowed sender + one of three reorder-tolerant receivers."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        policy: str = "window",
        params: Optional[ReorderParams] = None,
        retx_timeout: int = 1000,
        max_retries: int = 50,
        on_exhaust: str = "raise",
        adaptive_timeout: bool = True,
        min_timeout: Optional[int] = None,
        max_timeout: Optional[int] = None,
    ):
        super().__init__(sim, node_id)
        if policy not in REORDER_POLICIES:
            raise ValueError(
                f"policy must be one of {REORDER_POLICIES}, got {policy!r}"
            )
        if on_exhaust not in EXHAUST_POLICIES:
            raise ValueError(
                f"on_exhaust must be one of {EXHAUST_POLICIES}, got {on_exhaust!r}"
            )
        self.policy = policy
        self.reorder_params = params or ReorderParams()
        self.retx_timeout = retx_timeout
        self.max_retries = max_retries
        self.on_exhaust = on_exhaust
        self.adaptive_timeout = adaptive_timeout
        self.min_timeout = min_timeout if min_timeout is not None else max(
            32, retx_timeout // 8
        )
        self.max_timeout = max_timeout if max_timeout is not None else (
            retx_timeout * 64
        )
        # RTT estimator (Jacobson/Karels, as in RetransmittingNifdyNIC) ----
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._rto = retx_timeout
        # sender ----------------------------------------------------------
        self._out: Deque[Packet] = deque()          # not yet committed
        self._staged: Optional[Packet] = None       # committed, next on wire
        self._retx_queue: Deque[Packet] = deque()   # timers refired
        self._next_seq: Dict[int, int] = {}         # dst -> next stream seq
        self._cum: Dict[int, int] = {}              # dst -> highest cum ack
        #: key ("r", dst, seq) -> (packet, timer event, tries, armed cycle)
        self._hold: Dict[Tuple, Tuple[Packet, Event, int, int]] = {}
        #: sacked: received out-of-order at the peer, timer stopped, kept
        #: only so a later stream abandonment can write them off too.
        self._sacked: Dict[Tuple[int, int], Packet] = {}
        # receiver --------------------------------------------------------
        self._rx: Dict[int, _RxStream] = {}
        self._cached = 0                            # buffered OOO, all srcs
        self._arrivals: Deque[Packet] = deque()
        self._ack_due: Dict[int, None] = {}
        self._ack_queue: Deque[Packet] = deque()
        # statistics ------------------------------------------------------
        self.retransmissions = 0
        self.duplicates_dropped = 0
        self.receiver_drops = 0
        self.packets_abandoned = 0
        self.acks_sent = 0
        self.acks_received = 0
        self.rtt_samples = 0
        self.max_reorder_buffered = 0

    # ------------------------------------------------------------- queries
    @property
    def guarantees_order(self) -> bool:
        return True

    @property
    def reorder_rx(self) -> Dict[int, _RxStream]:
        """Receiver streams, exposed for the invariant monitor."""
        return self._rx

    @property
    def reorder_cached(self) -> int:
        """Out-of-order packets currently buffered across all sources."""
        return self._cached

    @property
    def pending_out(self) -> int:
        return len(self._out) + (1 if self._staged is not None else 0)

    @property
    def current_timeout(self) -> int:
        return self._rto if self.adaptive_timeout else self.retx_timeout

    def _unacked(self, dst: int) -> int:
        return self._next_seq.get(dst, 0) - (self._cum.get(dst, -1) + 1)

    def _tx_base(self, dst: int) -> int:
        return self._cum.get(dst, -1) + 1

    # ----------------------------------------------------------- send path
    def can_send(self) -> bool:
        return len(self._out) < self.reorder_params.out_capacity

    def try_send(self, packet: Packet) -> bool:
        if not self.can_send():
            return False
        packet.created_cycle = (
            packet.created_cycle if packet.created_cycle >= 0 else self.sim.now
        )
        self._out.append(packet)
        self._pump_data()
        return True

    def _next_transmit(self) -> Optional[Packet]:
        if self._staged is not None:
            return self._staged
        while self._retx_queue:
            packet = self._retx_queue.popleft()
            held = self._hold.get(("r", packet.dst, packet.seq))
            if held is None or held[0] is not packet:
                continue  # acked or abandoned while queued
            self._staged = packet
            return packet
        for i, packet in enumerate(self._out):
            if self._unacked(packet.dst) < self.reorder_params.tx_window:
                del self._out[i]
                seq = self._next_seq.get(packet.dst, 0)
                self._next_seq[packet.dst] = seq + 1
                packet.seq = seq
                self._arm(("r", packet.dst, seq), packet)
                self._staged = packet
                return packet
        return None

    def _pump_data(self) -> None:
        while True:
            packet = self._next_transmit()
            if packet is None:
                return
            held = self._hold.get(("r", packet.dst, packet.seq))
            if held is None or held[0] is not packet:
                # Acked or abandoned while staged: nothing left to send.
                self._staged = None
                continue
            if not self._injection_port_free(REQUEST_NET):
                self._retry_when_port_frees("data", REQUEST_NET, self._pump_data)
                return
            packet.stream_base = self._tx_base(packet.dst)
            if not self._start_injection(packet):
                # Allocation refused (e.g. a faulted link): retry later.
                self._retry_when_port_frees("data", REQUEST_NET, self._pump_data)
                return
            self._staged = None

    def _on_injection_complete(self, packet: Packet) -> None:
        if packet.kind is PacketKind.ACK:
            self._pump_acks()
        else:
            self._pump_data()

    # -------------------------------------------------- timers & estimator
    def _retx_delay(self, key: Tuple, tries: int) -> int:
        base = self._rto if self.adaptive_timeout else self.retx_timeout
        delay = base << min(tries, _BACKOFF_CAP)
        span = max(1, base // 8)
        jitter = zlib.crc32(f"{self.node_id}|{key}|{tries}".encode()) % span
        return min(self.max_timeout, delay + jitter)

    def _note_rtt(self, sample: int) -> None:
        self.rtt_samples += 1
        if self._srtt is None:
            self._srtt = float(sample)
            self._rttvar = sample / 2.0
        else:
            err = sample - self._srtt
            self._srtt += err / 8.0
            self._rttvar += (abs(err) - self._rttvar) / 4.0
        self._rto = int(
            min(self.max_timeout, max(self.min_timeout, self._srtt + 4.0 * self._rttvar))
        )

    def _arm(self, key: Tuple, packet: Packet, tries: int = 0) -> None:
        delay = self._retx_delay(key, tries)
        event = self.sim.schedule(delay, self._timeout, key)
        self._hold[key] = (packet, event, tries, self.sim.now)
        if tries > 0 and self.obs is not None:
            self.obs.emit(
                self.sim.now, EventKind.BACKOFF, self.node_id,
                uid=packet.uid, src=packet.src, dst=packet.dst,
                info=f"try={tries} delay={delay}",
            )

    def _disarm(self, key: Tuple) -> None:
        held = self._hold.pop(key, None)
        if held is not None:
            held[1].cancel()
            if self.adaptive_timeout and held[2] == 0:
                # Karn's rule: only clean samples feed the estimator.
                self._note_rtt(self.sim.now - held[3])

    def _timeout(self, key: Tuple) -> None:
        held = self._hold.get(key)
        if held is None:
            return
        packet, _, tries, _ = held
        if tries >= self.max_retries:
            if self.on_exhaust == "raise":
                raise RuntimeError(
                    f"node {self.node_id}: gave up retransmitting {packet} "
                    f"after {tries} tries"
                )
            self._abandon_stream(key[1])
            return
        packet.is_retransmission = True
        self.retransmissions += 1
        if self.obs is not None:
            self.obs.emit_packet(
                self.sim.now, EventKind.RETRANSMIT, self.node_id, packet
            )
        self._arm(key, packet, tries + 1)
        self._retx_queue.append(packet)
        self._pump_data()

    # ------------------------------------------------ graceful degradation
    def _abandon_stream(self, dst: int) -> None:
        """Write off every unacked packet to ``dst``.

        A single abandoned hole would stall the receiver's stream forever,
        so the whole outstanding window goes at once (the stream analogue
        of NIFDY's dialog teardown); later packets carry a ``stream_base``
        past the hole so the receiver resynchronises.
        """
        for key in [k for k in self._hold if k[1] == dst]:
            held = self._hold.pop(key)
            held[1].cancel()
            self._count_abandon(held[0])
        for skey in [s for s in self._sacked if s[0] == dst]:
            self._count_abandon(self._sacked.pop(skey))
        if self._staged is not None and self._staged.dst == dst:
            self._staged = None
        self._cum[dst] = self._next_seq.get(dst, 0) - 1
        self._pump_data()

    def _count_abandon(self, packet: Packet) -> None:
        self.packets_abandoned += 1
        packet.abandoned_cycle = self.sim.now
        if self.on_abandon is not None:
            self.on_abandon(packet)
        if self.obs is not None:
            self.obs.emit_packet(
                self.sim.now, EventKind.ABANDON, self.node_id, packet
            )

    # ------------------------------------------------------- ack handling
    def _process_ack(self, ack: Packet) -> None:
        info = ack.ack
        peer = ack.src
        cum = info.acked_seq
        if cum is not None and cum > self._cum.get(peer, -1):
            for seq in range(self._cum.get(peer, -1) + 1, cum + 1):
                self._disarm(("r", peer, seq))
                self._sacked.pop((peer, seq), None)
            self._cum[peer] = cum
        if info.sack:
            for seq in info.sack:
                key = ("r", peer, seq)
                held = self._hold.get(key)
                if held is not None:
                    # Buffered at the peer: stop the timer (selective
                    # repeat), but remember the packet so a later stream
                    # abandonment still writes it off.
                    self._sacked[(peer, seq)] = held[0]
                    self._disarm(key)
        self._pump_data()

    def _note_duplicate(self, packet: Packet) -> None:
        self.duplicates_dropped += 1
        if self.obs is not None:
            self.obs.emit_packet(
                self.sim.now, EventKind.DUPLICATE, self.node_id, packet
            )

    # ------------------------------------------------------- receive path
    def _rx_stream(self, src: int) -> _RxStream:
        st = self._rx.get(src)
        if st is None:
            st = self._rx[src] = _RxStream()
        return st

    def _on_packet_ejected(self, packet: Packet, vc: int, port: int) -> None:
        if packet.kind is PacketKind.ACK:
            self.acks_received += 1
            self._release_ejection(packet, vc, port)
            self.sim.post(self.reorder_params.nic_delay, self._process_ack, packet)
            return
        src = packet.src
        st = self._rx_stream(src)
        if packet.stream_base is not None and packet.stream_base > st.expect:
            self._skip_to(st, src, packet.stream_base)
        seq = packet.seq
        if seq is None:
            raise RuntimeError(
                f"node {self.node_id}: unsequenced data packet {packet} "
                f"at a reorder-tolerant receiver"
            )
        stalled_dup = st.stalled is not None and seq == st.stalled[0].seq
        if seq < st.expect or seq in st.buffer or stalled_dup:
            # Already delivered or already buffered: the ack was lost.
            self._note_duplicate(packet)
            self._release_ejection(packet, vc, port)
            self._ack_due[src] = None
            self._flush_acks()
            return
        params = self.reorder_params
        if seq >= st.expect + params.rx_window:
            # Beyond the reorder window: drop unacked; the sender retries.
            self.receiver_drops += 1
            self._release_ejection(packet, vc, port)
            return
        if seq == st.expect and st.stalled is None:
            if len(self._arrivals) < params.arrivals_capacity:
                self._arrivals.append(packet)
                self._release_ejection(packet, vc, port)
                st.expect += 1
                self._ack_due[src] = None
            else:
                # Withhold credits: network backpressure, not a drop.  The
                # cumulative ack advances when the processor drains it.
                st.stalled = (packet, vc, port)
            self._drain()
            self._flush_acks()
            return
        # Out of order: cache it (the policy decides how much cache exists).
        if self.policy == "dropcache" and self._cached >= params.cache_capacity:
            self.receiver_drops += 1
            self._release_ejection(packet, vc, port)
            return
        st.buffer[seq] = packet
        if self.policy == "bitmap":
            st.bitmap.add(seq)
        self._cached += 1
        if self._cached > self.max_reorder_buffered:
            self.max_reorder_buffered = self._cached
        self._release_ejection(packet, vc, port)
        self._ack_due[src] = None
        self._flush_acks()

    def _skip_to(self, st: _RxStream, src: int, base: int) -> None:
        """The sender wrote off everything below ``base``: drop any cached
        copies of the abandoned range and resume the stream there."""
        if st.stalled is not None and st.stalled[0].seq < base:
            pkt, vc, port = st.stalled
            st.stalled = None
            self._release_ejection(pkt, vc, port)
            self.receiver_drops += 1
        for seq in [s for s in st.buffer if s < base]:
            del st.buffer[seq]
            st.bitmap.discard(seq)
            self._cached -= 1
            self.receiver_drops += 1
        st.expect = base
        self._ack_due[src] = None

    def _drain(self) -> None:
        """Move deliverable packets into the arrivals FIFO, oldest first."""
        progressed = True
        while progressed and len(self._arrivals) < self.reorder_params.arrivals_capacity:
            progressed = False
            for src, st in self._rx.items():
                if len(self._arrivals) >= self.reorder_params.arrivals_capacity:
                    break
                if st.stalled is not None:
                    pkt, vc, port = st.stalled
                    st.stalled = None
                    self._arrivals.append(pkt)
                    self._release_ejection(pkt, vc, port)
                    st.expect += 1
                    self._ack_due[src] = None
                    progressed = True
                    continue
                pkt = st.buffer.pop(st.expect, None)
                if pkt is not None:
                    st.bitmap.discard(st.expect)
                    self._cached -= 1
                    self._arrivals.append(pkt)
                    st.expect += 1
                    self._ack_due[src] = None
                    progressed = True

    def has_arrival(self) -> bool:
        return bool(self._arrivals)

    def receive(self) -> Optional[Packet]:
        if not self._arrivals:
            return None
        packet = self._arrivals.popleft()
        self._drain()
        self._flush_acks()
        return packet

    # ---------------------------------------------------------- ack output
    def _flush_acks(self) -> None:
        for src in list(self._ack_due):
            st = self._rx.get(src)
            if st is None:
                continue
            sack = None
            if self.policy == "bitmap" and st.buffer:
                sack = tuple(sorted(st.buffer))
            info = AckInfo(for_scalar=True, acked_seq=st.expect - 1, sack=sack)
            self.acks_sent += 1
            self.sim.post(
                self.reorder_params.nic_delay,
                self._ack_ready,
                make_ack(self.node_id, src, info),
            )
        self._ack_due.clear()

    def _ack_ready(self, ack: Packet) -> None:
        self._ack_queue.append(ack)
        self._pump_acks()

    def _pump_acks(self) -> None:
        while self._ack_queue:
            if not self._start_injection(self._ack_queue[0]):
                self._retry_when_port_frees("ack", REPLY_NET, self._pump_acks)
                return
            self._ack_queue.popleft()
