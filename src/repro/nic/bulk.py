"""Bulk dialog state machines (sender and receiver sides).

Section 2.1.2: a sender requests a bulk dialog by setting the bulk-request
bit on a (scalar) packet; the receiver grants by returning a dialog number in
the ack, or signals rejection.  A sender maintains at most ONE outgoing
dialog; a receiver maintains at most D incoming dialogs, each with W hardware
packet buffers driven as a sliding window with one combined ack per W/2
delivered packets (Section 2.4.2).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..packets import Packet


def wire_encode_sequence(seq: int, window: int) -> int:
    """Encode an absolute sequence number for the wire: seq mod 2W.

    Section 2.1.2: "Sequence numbers, which need only be as large as W, are
    included in the header of each packet" -- a log2(2W)-bit field suffices
    because the window protocol keeps at most W packets unacknowledged."""
    return seq % (2 * window)


def wire_decode_sequence(
    wire_seq: int, next_expected: int, window: int
) -> Tuple[int, bool]:
    """Recover (absolute sequence, is_old_duplicate) from a wire field.

    Given the invariant that live packets lie in
    ``[next_expected, next_expected + W)``, the offset of the wire value
    from ``next_expected`` (mod 2W) is unambiguous: offsets below W are
    live packets, offsets in [W, 2W) can only be duplicates of packets
    delivered within the last W (a lossy network's retransmission race,
    Section 6.2)."""
    space = 2 * window
    delta = (wire_seq - next_expected) % space
    if delta < window:
        return next_expected + delta, False
    return next_expected + delta - space, True


class BulkSender:
    """Sender-side record of the (single) outgoing bulk dialog."""

    __slots__ = ("dst", "dialog", "granted", "credits", "next_seq", "exited",
                 "exit_acked")

    def __init__(self, dst: int):
        self.dst = dst
        self.dialog: Optional[int] = None
        self.granted = False
        self.credits = 0
        self.next_seq = 0
        self.exited = False       # bulk-exit packet has been injected
        self.exit_acked = False   # receiver confirmed dialog teardown

    def grant(self, dialog: int, credits: int) -> None:
        self.dialog = dialog
        self.granted = True
        self.credits = credits

    def take_credit(self) -> int:
        """Consume one window credit; returns the sequence number to use."""
        if self.credits <= 0:
            raise RuntimeError("bulk send without window credit")
        self.credits -= 1
        seq = self.next_seq
        self.next_seq += 1
        return seq

    def __repr__(self) -> str:  # pragma: no cover
        state = "granted" if self.granted else "requesting"
        if self.exited:
            state = "exiting"
        return f"<BulkSender dst={self.dst} {state} credits={self.credits}>"


class BulkReceiverDialog:
    """Receiver-side record of one incoming bulk dialog.

    ``buffers`` is the hardware reorder store: W packet slots.  Sequence
    numbers are modelled as unbounded integers; hardware would use
    ``seq mod 2W`` which is unambiguous because at most W packets are
    unacknowledged at any time.
    """

    __slots__ = ("src", "dialog", "window", "next_deliver_seq", "buffers",
                 "freed_since_ack", "exiting", "exit_seq")

    def __init__(self, src: int, dialog: int, window: int):
        self.src = src
        self.dialog = dialog
        self.window = window
        self.next_deliver_seq = 0
        self.buffers: Dict[int, Packet] = {}
        self.freed_since_ack = 0
        self.exiting = False
        self.exit_seq: Optional[int] = None

    def store(self, packet: Packet) -> None:
        if packet.seq is None:
            raise RuntimeError(f"bulk packet without sequence number: {packet}")
        if packet.seq in self.buffers or packet.seq < self.next_deliver_seq:
            raise RuntimeError(f"duplicate bulk sequence {packet.seq} from {self.src}")
        if len(self.buffers) >= self.window:
            raise RuntimeError(
                f"reorder buffer overflow: sender violated window of {self.window}"
            )
        # Verify the header field really needs only log2(2W) bits: the
        # mod-2W wire encoding must reconstruct the absolute sequence.
        decoded, duplicate = wire_decode_sequence(
            wire_encode_sequence(packet.seq, self.window),
            self.next_deliver_seq,
            self.window,
        )
        if duplicate or decoded != packet.seq:
            raise RuntimeError(
                f"sequence {packet.seq} not representable in a mod-{2 * self.window} "
                "header field: window invariant violated"
            )
        self.buffers[packet.seq] = packet
        if packet.bulk_exit:
            self.exiting = True
            self.exit_seq = packet.seq

    def next_in_order(self) -> Optional[Packet]:
        """The packet that can be delivered next, if it has arrived."""
        return self.buffers.get(self.next_deliver_seq)

    def pop_next(self) -> Packet:
        packet = self.buffers.pop(self.next_deliver_seq)
        self.next_deliver_seq += 1
        self.freed_since_ack += 1
        return packet

    @property
    def complete(self) -> bool:
        """All packets through the exit packet have been delivered."""
        return (
            self.exiting
            and self.exit_seq is not None
            and self.next_deliver_seq > self.exit_seq
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<BulkDialog src={self.src} #{self.dialog} "
            f"next={self.next_deliver_seq} buffered={len(self.buffers)}>"
        )
