"""Network interfaces: the NIFDY unit and the baseline NICs it is compared to."""

from .base import BaseNIC
from .collectives import (
    COLLECTIVE_OPS,
    CollectiveEngine,
    CollectiveParams,
    CollectiveTree,
    HostCollective,
)
from .bulk import (
    BulkReceiverDialog,
    BulkSender,
    wire_decode_sequence,
    wire_encode_sequence,
)
from .nifdy import NifdyNIC, NifdyParams
from .opt import OutstandingPacketTable
from .plain import BufferedNIC, PlainNIC
from .pool import OutgoingPool
from .reorder import (
    REORDER_NIC_MODES,
    REORDER_POLICIES,
    ReorderParams,
    ReorderTolerantNIC,
)
from .retransmit import RetransmittingNifdyNIC

__all__ = [
    "REORDER_NIC_MODES",
    "REORDER_POLICIES",
    "ReorderParams",
    "ReorderTolerantNIC",
    "BaseNIC",
    "BufferedNIC",
    "BulkReceiverDialog",
    "BulkSender",
    "COLLECTIVE_OPS",
    "CollectiveEngine",
    "CollectiveParams",
    "CollectiveTree",
    "HostCollective",
    "NifdyNIC",
    "NifdyParams",
    "OutgoingPool",
    "OutstandingPacketTable",
    "PlainNIC",
    "RetransmittingNifdyNIC",
    "wire_decode_sequence",
    "wire_encode_sequence",
]
