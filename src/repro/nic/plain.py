"""Baseline NICs: plain (no NIFDY) and buffers-only.

``PlainNIC`` models a conventional MPP network interface: a single outgoing
staging buffer and a small arrivals FIFO.  When the network cannot accept the
staged packet the processor is simply blocked from sending -- backpressure is
the only flow control, exactly the situation Section 1.1 describes.

``BufferedNIC`` is the paper's "buffering only" configuration (Section 3):
the NIFDY units are present but the protocol is disabled, so their buffer
space is usable as a deeper outgoing FIFO and a deeper arrivals queue, "in
order to make the fairest comparison ... the same total amount of buffering
is always used, although ... it is redistributed to be most effective"
(at least half of it on the arrivals queue).  The outgoing queue is strictly
FIFO, so it suffers the head-of-line blocking NIFDY's rank/eligibility pool
removes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..packets import Packet
from ..sim import Simulator
from .base import BaseNIC


class PlainNIC(BaseNIC):
    """Direct-injection NIC without admission control.

    ``arrivals_capacity`` is in packets.  ``out_capacity`` of 1 models the
    staging register of a bare network interface.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        out_capacity: int = 1,
        arrivals_capacity: int = 2,
    ):
        super().__init__(sim, node_id)
        if out_capacity < 1 or arrivals_capacity < 1:
            raise ValueError("NIC buffer capacities must be at least 1")
        self.out_capacity = out_capacity
        self.arrivals_capacity = arrivals_capacity
        self._out_queue: Deque[Packet] = deque()
        self._arrivals: Deque[Packet] = deque()
        self._stalled: Deque[tuple] = deque()  # (packet, vc) awaiting FIFO space
        self._inj_pending = False

    # ------------------------------------------------------------ send path
    def can_send(self) -> bool:
        return len(self._out_queue) < self.out_capacity

    def try_send(self, packet: Packet) -> bool:
        if len(self._out_queue) >= self.out_capacity:
            return False
        packet.created_cycle = (
            packet.created_cycle if packet.created_cycle >= 0 else self.sim.now
        )
        self._out_queue.append(packet)
        self._pump_injection()
        return True

    def _pump_injection(self) -> None:
        while self._out_queue:
            head = self._out_queue[0]
            if not self._injection_port_free(head.logical_net) or not self._start_injection(head):
                self._retry_when_port_frees("out", head.logical_net, self._pump_injection)
                return
            self._out_queue.popleft()

    def _on_injection_complete(self, packet: Packet) -> None:
        self._pump_injection()

    # --------------------------------------------------------- receive path
    def _on_packet_ejected(self, packet: Packet, vc: int, port: int) -> None:
        if len(self._arrivals) < self.arrivals_capacity:
            self._arrivals.append(packet)
            self._release_ejection(packet, vc, port)
        else:
            # Withhold credits: the network backs up behind this node.
            self._stalled.append((packet, vc, port))

    def has_arrival(self) -> bool:
        return bool(self._arrivals)

    def receive(self) -> Optional[Packet]:
        if not self._arrivals:
            return None
        packet = self._arrivals.popleft()
        while self._stalled and len(self._arrivals) < self.arrivals_capacity:
            stalled_pkt, vc, port = self._stalled.popleft()
            self._arrivals.append(stalled_pkt)
            self._release_ejection(stalled_pkt, vc, port)
        return packet

    # ------------------------------------------------------------- queries
    @property
    def pending_out(self) -> int:
        return len(self._out_queue)


class BufferedNIC(PlainNIC):
    """The paper's "buffering only" configuration.

    ``total_buffers`` is the packet-buffer budget of the NIFDY configuration
    it is being compared against (B + arrivals + D*W); at least half goes to
    the arrivals queue, the rest to the outgoing FIFO.
    """

    def __init__(self, sim: Simulator, node_id: int, total_buffers: int = 16):
        if total_buffers < 2:
            raise ValueError("buffers-only NIC needs at least 2 packet buffers")
        arrivals = max(1, (total_buffers + 1) // 2)
        outgoing = max(1, total_buffers - arrivals)
        super().__init__(
            sim,
            node_id,
            out_capacity=outgoing,
            arrivals_capacity=arrivals,
        )
        self.total_buffers = total_buffers
