"""NIC-offloaded collectives: combining-ack barrier, broadcast, and reduce.

ROADMAP item 4.  The Quadrics/Myrinet line of work (PAPERS.md, arXiv
cs/0402027) puts barrier and reduction logic on the NIC: contributions climb
a k-ary combining tree, interior NICs merge their children's values into one
combined packet upstream -- the ack IS the reduction op -- and the root's
release rides a broadcast fan-out back down.  NIFDY's combined-ack machinery
(Section 2.4.2) makes this a natural protocol extension: contributions travel
on the request network, releases on the reply network, mirroring the data/ack
split that keeps the base protocol fetch-deadlock-free.

Loss recovery is timer-driven and idempotent, armed only on lossy runs (the
same trigger that selects :class:`RetransmittingNifdyNIC`):

* a non-root node retransmits its combined contribution until the release
  for that epoch arrives;
* a combiner that sees a contribution for an epoch it has already released
  answers with a fresh release (the child evidently missed it);
* duplicate ``(epoch, child)`` contributions are dropped and counted.

Epochs number successive collectives, so a fast child running one barrier
ahead of its parent is never mistaken for a duplicate.

:class:`HostCollective` is the host-side analogue for reductions (the flat
central combine the paper's stub barrier performs), so ``allreduce``
workloads run under either ``barrier="host"`` or ``barrier="nic"``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, List, Optional, Union

from ..obs.events import EventKind
from ..packets import (REPLY_NET, REQUEST_NET, CollectiveInfo, Packet,
                       make_collective)
from ..sim import Simulator

#: Reduction operators a combining NIC can apply in hardware.
COLLECTIVE_OPS = ("sum", "max", "min")


def _combine(op: str, a: Optional[int], b: Optional[int]) -> Optional[int]:
    """Fold two contributions; ``None`` (pure barrier) stays ``None``."""
    if a is None or b is None:
        return None
    if op == "sum":
        return a + b
    if op == "max":
        return a if a >= b else b
    return a if a <= b else b


@dataclass(frozen=True)
class CollectiveParams:
    """Knobs for the collective subsystem.

    ``barrier`` selects where barriers/reductions run: ``"host"`` keeps the
    zero-network flat combine, ``"nic"`` routes them through the combining
    tree.  ``fanout`` is the tree arity k, ``op`` the reduction operator,
    ``retx_timeout`` the per-epoch retransmit timer (cycles) armed on lossy
    runs only.
    """

    barrier: str = "host"
    fanout: int = 4
    op: str = "sum"
    retx_timeout: int = 2000

    def __post_init__(self) -> None:
        if self.barrier not in ("host", "nic"):
            raise ValueError(f"barrier must be 'host' or 'nic': {self.barrier}")
        if self.fanout < 1:
            raise ValueError("fanout must be >= 1")
        if self.op not in COLLECTIVE_OPS:
            raise ValueError(f"unknown collective op {self.op!r}")
        if self.retx_timeout <= 0:
            raise ValueError("retx_timeout must be positive")


class CollectiveTree:
    """A k-ary combining tree over the participating node ids.

    Members are sorted; member ``i`` (by rank) has parent ``(i-1)//k`` and
    children ``k*i+1 .. k*i+k``.  Rank 0 is the root.
    """

    def __init__(self, members: Iterable[int], fanout: int):
        self.members: List[int] = sorted(members)
        if not self.members:
            raise ValueError("collective tree needs at least one member")
        self.fanout = fanout
        self._rank = {node: i for i, node in enumerate(self.members)}

    @property
    def root(self) -> int:
        return self.members[0]

    def parent_of(self, node: int) -> Optional[int]:
        rank = self._rank[node]
        if rank == 0:
            return None
        return self.members[(rank - 1) // self.fanout]

    def children_of(self, node: int) -> List[int]:
        rank = self._rank[node]
        first = self.fanout * rank + 1
        return self.members[first:first + self.fanout]

    def is_member(self, node: int) -> bool:
        return node in self._rank


class _EpochState:
    """Per-epoch combining registers of one NIC."""

    __slots__ = ("resume", "value", "count", "have_local", "contribs",
                 "sent_up", "timer")

    def __init__(self) -> None:
        self.resume: Optional[Callable] = None
        self.value: Optional[int] = None   # combined partial
        self.count = 0                     # leaf contributions folded in
        self.have_local = False
        self.contribs: Dict[int, bool] = {}  # child -> seen
        self.sent_up = False
        self.timer = None


class CollectiveEngine:
    """The collective protocol engine of one NIC.

    Attached to :attr:`BaseNIC.collective`; the base NIC routes every
    COLLECTIVE packet here (dedicated combining registers, never the
    arrivals FIFO) and returns ejection credits immediately.
    """

    def __init__(
        self,
        sim: Simulator,
        nic,
        tree: CollectiveTree,
        params: CollectiveParams,
        lossy: bool = False,
    ):
        self.sim = sim
        self.nic = nic
        self.tree = tree
        self.params = params
        self.lossy = lossy
        self.node_id = nic.node_id
        self.children = tree.children_of(self.node_id)
        self.parent = tree.parent_of(self.node_id)
        self.is_root = self.parent is None
        self._epochs: Dict[int, _EpochState] = {}
        self._next_epoch = 0      # epoch of the NEXT local arrive()
        self._released = -1       # highest epoch released at this node
        #: release values kept for lossy re-release of completed epochs
        self._release_values: Dict[int, Optional[int]] = {}
        self._txq: Dict[int, Deque[Packet]] = {
            REQUEST_NET: deque(), REPLY_NET: deque(),
        }
        # statistics (summed into metrics_json per run)
        self.coll_contribs_sent = 0
        self.coll_releases_sent = 0
        self.coll_retransmits = 0
        self.coll_duplicates = 0
        self.coll_completed = 0

    # ------------------------------------------------------ processor side
    def arrive(self, value: Optional[int], resume: Callable) -> None:
        """Local processor contributes ``value`` (``None`` = pure barrier)
        and blocks; ``resume(combined)`` fires when the release arrives."""
        epoch = self._next_epoch
        self._next_epoch += 1
        state = self._state(epoch)
        if state.have_local:
            raise RuntimeError(
                f"node {self.node_id} contributed twice to epoch {epoch}"
            )
        state.have_local = True
        state.resume = resume
        if state.count == 0:
            state.value = value
        else:
            state.value = _combine(self.params.op, state.value, value)
        state.count += 1
        self._emit(EventKind.COLL_CONTRIB, src=self.node_id, epoch=epoch)
        self._maybe_advance(epoch)

    # -------------------------------------------------------- network side
    def on_packet(self, packet: Packet) -> None:
        info = packet.coll
        if info.phase == "up":
            self._on_contribution(packet.src, info)
        else:
            self._on_release(info)

    def _on_contribution(self, child: int, info: CollectiveInfo) -> None:
        epoch = info.epoch
        if epoch <= self._released:
            # The child missed (or has not yet seen) the release for an
            # epoch this node completed: answer with a fresh release.
            self.coll_duplicates += 1
            self._emit(EventKind.COLL_DUP, src=child, epoch=epoch)
            self._send_release(child, epoch, self._release_values.get(epoch))
            return
        state = self._state(epoch)
        if child in state.contribs:
            self.coll_duplicates += 1
            self._emit(EventKind.COLL_DUP, src=child, epoch=epoch)
            return
        state.contribs[child] = True
        if state.count == 0:
            state.value = info.value
        else:
            state.value = _combine(self.params.op, state.value, info.value)
        state.count += info.count
        self._emit(EventKind.COLL_CONTRIB, src=child, epoch=epoch)
        self._maybe_advance(epoch)

    def _on_release(self, info: CollectiveInfo) -> None:
        epoch = info.epoch
        if epoch <= self._released:
            return  # duplicate release from a lossy-mode retransmit race
        state = self._epochs.get(epoch)
        self._finish_epoch(epoch, info.value, state)

    # ----------------------------------------------------------- combining
    def _state(self, epoch: int) -> _EpochState:
        state = self._epochs.get(epoch)
        if state is None:
            state = self._epochs[epoch] = _EpochState()
        return state

    def _maybe_advance(self, epoch: int) -> None:
        state = self._epochs[epoch]
        if not state.have_local or len(state.contribs) < len(self.children):
            return
        if self.is_root:
            self.coll_completed += 1
            self._emit(EventKind.COLL_RELEASE, src=self.node_id, epoch=epoch)
            for child in self.children:
                self._send_release(child, epoch, state.value)
            self._finish_epoch(epoch, state.value, state)
        elif not state.sent_up:
            state.sent_up = True
            self._send_up(epoch, state)
            if self.lossy:
                self._arm_timer(epoch, state)

    def _finish_epoch(
        self, epoch: int, value: Optional[int], state: Optional[_EpochState]
    ) -> None:
        """Deliver the release locally and fan it out to the children."""
        self._released = epoch
        if self.lossy:
            self._release_values[epoch] = value
        if not self.is_root:
            self._emit(EventKind.COLL_RELEASE, src=self.node_id, epoch=epoch)
            for child in self.children:
                self._send_release(child, epoch, value)
        resume = None
        if state is not None:
            if state.timer is not None:
                state.timer.cancel()
                state.timer = None
            resume = state.resume
            del self._epochs[epoch]
        if resume is not None:
            resume(value)

    # ------------------------------------------------------------ transmit
    def _send_up(self, epoch: int, state: _EpochState) -> None:
        info = CollectiveInfo(phase="up", epoch=epoch, op=self.params.op,
                              value=state.value, count=state.count)
        self.coll_contribs_sent += 1
        self._enqueue(make_collective(self.node_id, self.parent, info))

    def _send_release(self, child: int, epoch: int,
                      value: Optional[int]) -> None:
        info = CollectiveInfo(phase="down", epoch=epoch, op=self.params.op,
                              value=value, count=0)
        self.coll_releases_sent += 1
        self._enqueue(make_collective(self.node_id, child, info))

    def _enqueue(self, packet: Packet) -> None:
        packet.created_cycle = self.sim.now
        self._txq[packet.logical_net].append(packet)
        self._pump(packet.logical_net)

    def _pump(self, net: int) -> None:
        queue = self._txq[net]
        while queue:
            if not self.nic._start_injection(queue[0]):
                self.nic._retry_when_port_frees(
                    f"coll{net}", net, lambda: self._pump(net)
                )
                return
            queue.popleft()

    def on_injection_complete(self, packet: Packet) -> None:
        self._pump(packet.logical_net)

    # ---------------------------------------------------------- loss cover
    def _arm_timer(self, epoch: int, state: _EpochState) -> None:
        state.timer = self.sim.schedule(
            self.params.retx_timeout, self._timeout, epoch
        )

    def _timeout(self, epoch: int) -> None:
        state = self._epochs.get(epoch)
        if state is None or not state.sent_up:
            return
        self.coll_retransmits += 1
        self._send_up(epoch, state)
        self._arm_timer(epoch, state)

    # ------------------------------------------------------------- queries
    @property
    def pending_epochs(self) -> int:
        """Collectives with unfinished combining state at this node."""
        return len(self._epochs)

    def _emit(self, kind: str, src: int, epoch: int) -> None:
        if self.nic.obs is not None:
            self.nic.obs.emit(
                self.sim.now, kind, self.node_id, src=src, seq=epoch
            )


class HostCollective:
    """Host-side allreduce: a flat central combine with a release latency.

    The reduction analogue of :class:`repro.sim.Barrier` -- same membership
    validation and generation-tagged release window, plus an operator fold
    over the contributions.  This is what ``barrier="host"`` runs, so the
    NIC-offloaded tree has a faithful software baseline.
    """

    def __init__(
        self,
        sim: Simulator,
        parties: Union[int, Iterable[int]],
        release_cost: int = 100,
        op: str = "sum",
    ):
        if isinstance(parties, int):
            members = frozenset(range(parties))
        else:
            members = frozenset(parties)
        if not members:
            raise ValueError("collective needs at least one party")
        if op not in COLLECTIVE_OPS:
            raise ValueError(f"unknown collective op {op!r}")
        self.sim = sim
        self.members = members
        self.parties = len(members)
        self.release_cost = release_cost
        self.op = op
        self._waiting: Dict[int, Callable] = {}
        self._value: Optional[int] = None
        self._count = 0
        self._pending_release: Dict[int, int] = {}
        self._generation = 0
        self.crossings = 0

    def arrive(self, node_id: int, value: Optional[int],
               resume: Callable) -> None:
        if node_id not in self.members:
            raise RuntimeError(
                f"node {node_id} is not a member of this collective"
            )
        if node_id in self._waiting:
            raise RuntimeError(
                f"node {node_id} arrived at collective twice"
            )
        if node_id in self._pending_release:
            raise RuntimeError(
                f"node {node_id} re-arrived during the release window of "
                f"generation {self._pending_release[node_id]}"
            )
        self._waiting[node_id] = resume
        self._value = value if self._count == 0 else _combine(
            self.op, self._value, value)
        self._count += 1
        if len(self._waiting) == self.parties:
            waiters = list(self._waiting.items())
            combined = self._value
            self._waiting.clear()
            self._value = None
            self._count = 0
            generation = self._generation
            self._generation += 1
            self.crossings += 1
            for node, fn in waiters:
                self._pending_release[node] = generation
                self.sim.post(self.release_cost, self._fire, generation,
                              node, fn, combined)

    def _fire(self, generation: int, node: int, fn: Callable,
              combined: Optional[int]) -> None:
        if self._pending_release.get(node) == generation:
            del self._pending_release[node]
        fn(combined)
