"""The Outstanding Packet Table (OPT).

Section 2.3: a small content-addressable memory whose tags are destination
node ids; the number of tags is O, the maximum number of outstanding scalar
packets.  The protocol guarantees at most one outstanding scalar packet per
destination, so membership is a set.
"""

from __future__ import annotations

from typing import Iterator, Set


class OutstandingPacketTable:
    """Set of destinations with an unacknowledged scalar packet in flight."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("OPT capacity must be at least 1")
        self.capacity = capacity
        self._entries: Set[int] = set()

    def __contains__(self, dst: int) -> bool:
        return dst in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[int]:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def add(self, dst: int) -> None:
        if dst in self._entries:
            raise RuntimeError(f"destination {dst} already has an outstanding packet")
        if self.full:
            raise RuntimeError("OPT overflow: injected past the admission limit")
        self._entries.add(dst)

    def remove(self, dst: int) -> None:
        if dst not in self._entries:
            raise RuntimeError(f"ack from {dst} but no OPT entry for it")
        self._entries.discard(dst)
