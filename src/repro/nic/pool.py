"""The outgoing buffer pool with its rank/eligibility discipline.

Section 2.1.1: packets enter the pool from the processor; the
rank/eligibility unit ranks each packet relative to other packets for the
same destination, and only rank-zero ("eligible") packets may be injected.
Keeping the pool in insertion order and selecting the *frontmost* packet per
destination is exactly equivalent to the paper's explicit rank counters (a
packet's rank is the number of pool/outstanding packets ahead of it for the
same destination), so that is how we implement it.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Iterator, List, Optional

from ..packets import Packet


class OutgoingPool:
    """B packet buffers holding packets the processor has handed to NIFDY."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("pool capacity must be at least 1")
        self.capacity = capacity
        self._queues: "OrderedDict[int, Deque[Packet]]" = OrderedDict()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        return self._count >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - self._count

    def insert(self, packet: Packet) -> bool:
        """Add ``packet``; False when all B buffers are occupied."""
        if self._count >= self.capacity:
            return False
        queue = self._queues.get(packet.dst)
        if queue is None:
            queue = deque()
            self._queues[packet.dst] = queue
        queue.append(packet)
        self._count += 1
        return True

    def destinations(self) -> List[int]:
        """Destinations that have at least one waiting packet, in the order
        their first packet arrived (used for round-robin selection)."""
        return list(self._queues.keys())

    def front(self, dst: int) -> Optional[Packet]:
        """The frontmost (rank-zero candidate) packet for ``dst``."""
        queue = self._queues.get(dst)
        return queue[0] if queue else None

    def pop_front(self, dst: int) -> Packet:
        """Remove and return the frontmost packet for ``dst``."""
        queue = self._queues.get(dst)
        if not queue:
            raise RuntimeError(f"no pool packet for destination {dst}")
        packet = queue.popleft()
        if not queue:
            del self._queues[dst]
        self._count -= 1
        return packet

    def count_for(self, dst: int) -> int:
        queue = self._queues.get(dst)
        return len(queue) if queue else 0

    def __iter__(self) -> Iterator[Packet]:
        for queue in self._queues.values():
            yield from queue
