"""NIFDY extension for unreliable networks (Section 6.2).

"To handle networks that drop packets the sender must be able to retransmit
packets.  In addition, the receiver must be able to distinguish and eliminate
duplicate packets.  To accomplish retransmission we add one timer and one
message buffer per entry in the OPT and per outgoing bulk packet. ... To
distinguish duplicate packets, one additional bit in the header is enough for
both scalar and bulk packets."

Sender side: every injected data packet is held (with a timer) until it is
covered by an ack; on timeout it is re-injected ahead of new traffic.
Receiver side: scalar duplicates are detected with the alternating
``retx_bit``; bulk duplicates with the sequence number.  Duplicates are
discarded but re-acked, because the duplicate usually means the *ack* was
lost.  Acks themselves can be dropped, so bulk window credits are recovered
from the cumulative ``acked_seq`` an ack carries rather than from the
incremental credit count.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple

from ..obs.events import EventKind
from ..packets import AckInfo, Packet, PacketKind
from ..sim import Event, Simulator
from .nifdy import NifdyNIC, NifdyParams

#: Give-up policies when a packet exhausts ``max_retries``.
EXHAUST_POLICIES = ("raise", "abandon")

#: Cap on the exponential backoff shift (2**6 = 64x the base timeout).
_BACKOFF_CAP = 6


class RetransmittingNifdyNIC(NifdyNIC):
    """NIFDY with timers, retransmission, and duplicate elimination.

    ``retx_timeout`` seeds the retransmission timer.  By default the timer
    then *adapts*: acked (never-retransmitted) packets feed a Jacobson-style
    estimator (SRTT gain 1/8, RTTVAR gain 1/4, RTO = SRTT + 4*RTTVAR), so
    the timer tracks the loaded round-trip time instead of requiring the
    per-network sweep the paper likens to Compressionless Routing's abort
    timeout.  Retries back off exponentially with deterministic jitter
    (reproducible runs; no retransmission storms in lock-step).
    ``adaptive_timeout=False`` restores the fixed timer for ablations.

    When ``max_retries`` is exhausted the NIC either raises (the seed
    behaviour, ``on_exhaust="raise"``) or **degrades gracefully**
    (``on_exhaust="abandon"``): the packet -- and, for bulk, its whole
    dialog -- is dropped from the protocol state, ``packets_abandoned`` is
    incremented, and the ``on_abandon`` hook fires so the traffic layer
    learns that the software-visible reliability guarantee was released.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        params: Optional[NifdyParams] = None,
        retx_timeout: int = 1000,
        max_retries: int = 50,
        on_exhaust: str = "raise",
        adaptive_timeout: bool = True,
        min_timeout: Optional[int] = None,
        max_timeout: Optional[int] = None,
    ):
        super().__init__(sim, node_id, params)
        if self.params.scalar_ack_on_insert:
            # The 1-bit duplicate filter needs the receiver's bit to advance
            # in lockstep with ack emission (at FIFO pop); acking at insert
            # would let two live packets alias one bit.
            raise ValueError(
                "scalar_ack_on_insert is incompatible with retransmission"
            )
        if on_exhaust not in EXHAUST_POLICIES:
            raise ValueError(
                f"on_exhaust must be one of {EXHAUST_POLICIES}, got {on_exhaust!r}"
            )
        self.retx_timeout = retx_timeout
        self.max_retries = max_retries
        self.on_exhaust = on_exhaust
        self.adaptive_timeout = adaptive_timeout
        self.min_timeout = min_timeout if min_timeout is not None else max(
            32, retx_timeout // 8
        )
        self.max_timeout = max_timeout if max_timeout is not None else (
            retx_timeout * 64
        )
        # RTT estimator state (Jacobson/Karels) -----------------------------
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._rto = retx_timeout
        # sender side -------------------------------------------------------
        #: key -> (packet, timer event, tries so far, cycle last armed)
        self._hold: Dict[Tuple, Tuple[Packet, Event, int, int]] = {}
        self._next_bit: Dict[int, int] = {}       # per-destination scalar bit
        # receiver side -----------------------------------------------------
        self._last_acked_bit: Dict[int, int] = {}
        self._infifo_bits: Dict[int, int] = {}     # src -> bit in FIFO, if any
        # statistics
        self.retransmissions = 0
        self.duplicates_dropped = 0
        self.packets_abandoned = 0
        self.rtt_samples = 0

    @property
    def current_timeout(self) -> int:
        """The base (pre-backoff) retransmission timeout in use right now."""
        return self._rto if self.adaptive_timeout else self.retx_timeout

    # ------------------------------------------------------------- sender
    def _commit_scalar(self, dst: int) -> Packet:
        packet = super()._commit_scalar(dst)
        bit = self._next_bit.get(dst, 0) ^ 1
        self._next_bit[dst] = bit
        packet.retx_bit = bit
        self._arm(("s", dst), packet)
        return packet

    def _commit_bulk(self, dst: int, bulk) -> Packet:
        packet = super()._commit_bulk(dst, bulk)
        self._arm(("b", packet.dst, packet.dialog, packet.seq), packet)
        return packet

    def _queue_control_exit(self, bulk) -> Packet:
        exit_packet = super()._queue_control_exit(bulk)
        self._arm(
            ("b", exit_packet.dst, exit_packet.dialog, exit_packet.seq),
            exit_packet,
        )
        return exit_packet

    # -------------------------------------------------- timers & estimator
    def _retx_delay(self, key: Tuple, tries: int) -> int:
        """Timeout for attempt ``tries``: adaptive (or fixed) base, doubled
        per retry, plus a small deterministic jitter so a burst of holders
        armed in the same cycle do not all fire in the same cycle."""
        base = self._rto if self.adaptive_timeout else self.retx_timeout
        delay = base << min(tries, _BACKOFF_CAP)
        span = max(1, base // 8)
        jitter = zlib.crc32(f"{self.node_id}|{key}|{tries}".encode()) % span
        return min(self.max_timeout, delay + jitter)

    def _note_rtt(self, sample: int) -> None:
        """Fold one clean (never-retransmitted) RTT sample into the RTO."""
        self.rtt_samples += 1
        if self._srtt is None:
            self._srtt = float(sample)
            self._rttvar = sample / 2.0
        else:
            err = sample - self._srtt
            self._srtt += err / 8.0
            self._rttvar += (abs(err) - self._rttvar) / 4.0
        self._rto = int(
            min(self.max_timeout, max(self.min_timeout, self._srtt + 4.0 * self._rttvar))
        )

    def _arm(self, key: Tuple, packet: Packet, tries: int = 0) -> None:
        delay = self._retx_delay(key, tries)
        event = self.sim.schedule(delay, self._timeout, key)
        self._hold[key] = (packet, event, tries, self.sim.now)
        if tries > 0 and self.obs is not None:
            self.obs.emit(
                self.sim.now, EventKind.BACKOFF, self.node_id,
                uid=packet.uid, src=packet.src, dst=packet.dst,
                info=f"try={tries} delay={delay}",
            )

    def _disarm(self, key: Tuple) -> None:
        held = self._hold.pop(key, None)
        if held is not None:
            held[1].cancel()
            if self.adaptive_timeout and held[2] == 0:
                # Karn's rule: only never-retransmitted packets yield an
                # unambiguous (send, ack) pairing worth sampling.
                self._note_rtt(self.sim.now - held[3])

    def _timeout(self, key: Tuple) -> None:
        held = self._hold.get(key)
        if held is None:
            return
        packet, _, tries, _ = held
        if tries >= self.max_retries:
            if self.on_exhaust == "raise":
                raise RuntimeError(
                    f"node {self.node_id}: gave up retransmitting {packet} "
                    f"after {tries} tries"
                )
            self._abandon(key)
            return
        packet.is_retransmission = True
        self.retransmissions += 1
        if self.obs is not None:
            self.obs.emit_packet(
                self.sim.now, EventKind.RETRANSMIT, self.node_id, packet
            )
        self._arm(key, packet, tries + 1)
        self._control_queue.append(packet)
        self._pump_data()


    def _note_duplicate(self, packet: Packet) -> None:
        self.duplicates_dropped += 1
        if self.obs is not None:
            self.obs.emit_packet(
                self.sim.now, EventKind.DUPLICATE, self.node_id, packet
            )

    # ------------------------------------------------ graceful degradation
    def _abandon(self, key: Tuple) -> None:
        """Release a packet the network cannot deliver (partition, dead
        peer): free its protocol state so unrelated traffic keeps flowing,
        and record the loss instead of crashing the simulation."""
        held = self._hold.pop(key, None)
        if held is None:
            return
        packet = held[0]
        held[1].cancel()
        if key[0] == "s":
            # Free the OPT entry so later packets to this destination may
            # try again (they get fresh timers of their own).
            if packet.dst in self.opt:
                self.opt.remove(packet.dst)
            bulk = self._bulk_out
            if (
                bulk is not None
                and bulk.dst == packet.dst
                and not bulk.granted
                and self.pool.count_for(packet.dst) == 0
            ):
                self._bulk_out = None  # the dialog request died with it
        else:
            # A bulk packet that cannot be delivered strands its dialog's
            # in-order window: give up on the whole dialog at once.
            dst, dialog = key[1], key[2]
            for other in [
                k for k in self._hold
                if k[0] == "b" and k[1] == dst and k[2] == dialog
            ]:
                self._abandon(other)
            bulk = self._bulk_out
            if bulk is not None and bulk.dst == dst and bulk.dialog == dialog:
                self._bulk_out = None
        try:
            self._control_queue.remove(packet)
        except ValueError:
            pass
        self.packets_abandoned += 1
        packet.abandoned_cycle = self.sim.now
        if self.on_abandon is not None:
            self.on_abandon(packet)
        if self.obs is not None:
            self.obs.emit_packet(
                self.sim.now, EventKind.ABANDON, self.node_id, packet
            )
        self._pump_data()

    def _process_ack(self, ack: Packet) -> None:
        info = ack.ack
        peer = ack.src
        if info.for_scalar:
            held = self._hold.get(("s", peer))
            if held is None or held[0].retx_bit != info.acked_bit:
                # Duplicate or stale ack: the packet it covers has already
                # been acked (and a newer one may be in flight) -- ignore.
                self.acks_received += 1
                self._note_duplicate(ack)
                return
            self._disarm(("s", peer))
        else:
            bulk = self._bulk_out
            current = (
                bulk is not None and bulk.dst == peer and bulk.dialog == info.dialog
            )
            if current:
                if info.acked_seq is not None and info.acked_seq >= 0:
                    # Cumulative credit recovery: everything through
                    # acked_seq is delivered, so the window refills to
                    # W - in_flight regardless of which acks were lost.
                    for seq in range(info.acked_seq + 1):
                        self._disarm(("b", peer, info.dialog, seq))
                    in_flight = bulk.next_seq - (info.acked_seq + 1)
                    target = self.params.window - in_flight
                    info.credits = max(0, target - bulk.credits)
            elif info.dialog_terminated and info.acked_seq is not None:
                # Late terminate (re-)ack for a dialog this NIC already left
                # behind: stop the stale packet timers it covers, or they
                # would retransmit into a dead dialog until exhaustion.
                for seq in range(info.acked_seq + 1):
                    self._disarm(("b", peer, info.dialog, seq))
        super()._process_ack(ack)

    # ------------------------------------------------------------ receiver
    def _on_packet_ejected(self, packet: Packet, vc: int, port: int) -> None:
        # A duplicate data packet is discarded below, but any ack riding in
        # its header is still fresh protocol state -- process it first.
        self._note_piggyback(packet)
        if packet.kind is PacketKind.SCALAR and packet.needs_ack:
            bit = packet.retx_bit
            src = packet.src
            if self._last_acked_bit.get(src) == bit:
                # Duplicate of an already-acked packet: the ack was lost.
                self._note_duplicate(packet)
                self._release_ejection(packet, vc, port)
                self._emit_scalar_ack(packet)
                return
            if self._infifo_bits.get(src) == bit:
                # Duplicate of a packet still queued for the processor;
                # its ack fires when that copy is popped, so just drop this.
                self._note_duplicate(packet)
                self._release_ejection(packet, vc, port)
                return
            self._infifo_bits[src] = bit
        elif packet.kind is PacketKind.BULK:
            dialog = self._rx_dialogs.get(packet.dialog)
            if dialog is None or dialog.src != packet.src:
                # Dialog already torn down (and, on a src mismatch, its id
                # re-granted to a different sender); the terminated ack was
                # lost.  Re-ack so the stale sender stops its timer.
                self._note_duplicate(packet)
                self._release_ejection(packet, vc, port)
                self._send_ack(
                    packet.src,
                    AckInfo(
                        for_scalar=False,
                        credits=0,
                        dialog=packet.dialog,
                        dialog_terminated=True,
                        acked_seq=packet.seq,
                    ),
                )
                return
            if packet.seq < dialog.next_deliver_seq or packet.seq in dialog.buffers:
                self._note_duplicate(packet)
                self._release_ejection(packet, vc, port)
                self._emit_bulk_ack(dialog, terminate=False)
                return
            if packet.seq >= dialog.next_deliver_seq + 2 * dialog.window:
                # No live sender can legally be this far ahead of the
                # window: it is a stale retransmission from an earlier
                # dialog generation with this same (src, id).  Its original
                # was delivered and acked; drop the wire garbage silently
                # (a terminate re-ack here would poison the live dialog).
                self._note_duplicate(packet)
                self._release_ejection(packet, vc, port)
                return
        super()._on_packet_ejected(packet, vc, port)

    def receive(self):
        packet = super().receive()
        if (
            packet is not None
            and packet.kind is PacketKind.SCALAR
            and packet.needs_ack
        ):
            # The pop is the accept event (it is when the ack goes out), so
            # the duplicate-filter bit must advance here too.
            src = packet.src
            self._last_acked_bit[src] = packet.retx_bit
            if self._infifo_bits.get(src) == packet.retx_bit:
                del self._infifo_bits[src]
        return packet
