"""NIFDY extension for unreliable networks (Section 6.2).

"To handle networks that drop packets the sender must be able to retransmit
packets.  In addition, the receiver must be able to distinguish and eliminate
duplicate packets.  To accomplish retransmission we add one timer and one
message buffer per entry in the OPT and per outgoing bulk packet. ... To
distinguish duplicate packets, one additional bit in the header is enough for
both scalar and bulk packets."

Sender side: every injected data packet is held (with a timer) until it is
covered by an ack; on timeout it is re-injected ahead of new traffic.
Receiver side: scalar duplicates are detected with the alternating
``retx_bit``; bulk duplicates with the sequence number.  Duplicates are
discarded but re-acked, because the duplicate usually means the *ack* was
lost.  Acks themselves can be dropped, so bulk window credits are recovered
from the cumulative ``acked_seq`` an ack carries rather than from the
incremental credit count.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..packets import AckInfo, Packet, PacketKind
from ..sim import Event, Simulator
from .nifdy import NifdyNIC, NifdyParams


class RetransmittingNifdyNIC(NifdyNIC):
    """NIFDY with timers, retransmission, and duplicate elimination.

    ``retx_timeout`` should comfortably exceed the loaded round-trip time;
    the paper notes this timeout has the same sensitivity as Compressionless
    Routing's abort timeout, and it is the one parameter worth sweeping on a
    lossy network (see the ablation bench).
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        params: Optional[NifdyParams] = None,
        retx_timeout: int = 1000,
        max_retries: int = 50,
    ):
        super().__init__(sim, node_id, params)
        if self.params.scalar_ack_on_insert:
            # The 1-bit duplicate filter needs the receiver's bit to advance
            # in lockstep with ack emission (at FIFO pop); acking at insert
            # would let two live packets alias one bit.
            raise ValueError(
                "scalar_ack_on_insert is incompatible with retransmission"
            )
        self.retx_timeout = retx_timeout
        self.max_retries = max_retries
        # sender side -------------------------------------------------------
        self._hold: Dict[Tuple, Tuple[Packet, Event, int]] = {}
        self._next_bit: Dict[int, int] = {}       # per-destination scalar bit
        # receiver side -----------------------------------------------------
        self._last_acked_bit: Dict[int, int] = {}
        self._infifo_bits: Dict[int, int] = {}     # src -> bit in FIFO, if any
        # statistics
        self.retransmissions = 0
        self.duplicates_dropped = 0

    # ------------------------------------------------------------- sender
    def _commit_scalar(self, dst: int) -> Packet:
        packet = super()._commit_scalar(dst)
        bit = self._next_bit.get(dst, 0) ^ 1
        self._next_bit[dst] = bit
        packet.retx_bit = bit
        self._arm(("s", dst), packet)
        return packet

    def _commit_bulk(self, dst: int, bulk) -> Packet:
        packet = super()._commit_bulk(dst, bulk)
        self._arm(("b", packet.dialog, packet.seq), packet)
        return packet

    def _queue_control_exit(self, bulk) -> Packet:
        exit_packet = super()._queue_control_exit(bulk)
        self._arm(("b", exit_packet.dialog, exit_packet.seq), exit_packet)
        return exit_packet

    def _arm(self, key: Tuple, packet: Packet, tries: int = 0) -> None:
        event = self.sim.schedule(self.retx_timeout, self._timeout, key)
        self._hold[key] = (packet, event, tries)

    def _disarm(self, key: Tuple) -> None:
        held = self._hold.pop(key, None)
        if held is not None:
            held[1].cancel()

    def _timeout(self, key: Tuple) -> None:
        held = self._hold.get(key)
        if held is None:
            return
        packet, _, tries = held
        if tries >= self.max_retries:
            raise RuntimeError(
                f"node {self.node_id}: gave up retransmitting {packet} "
                f"after {tries} tries"
            )
        packet.is_retransmission = True
        self.retransmissions += 1
        self._arm(key, packet, tries + 1)
        self._control_queue.append(packet)
        self._pump_data()

    def _process_ack(self, ack: Packet) -> None:
        info = ack.ack
        peer = ack.src
        if info.for_scalar:
            held = self._hold.get(("s", peer))
            if held is None or held[0].retx_bit != info.acked_bit:
                # Duplicate or stale ack: the packet it covers has already
                # been acked (and a newer one may be in flight) -- ignore.
                self.acks_received += 1
                self.duplicates_dropped += 1
                return
            self._disarm(("s", peer))
        else:
            bulk = self._bulk_out
            if bulk is not None and bulk.dst == peer and bulk.dialog == info.dialog:
                if info.acked_seq is not None and info.acked_seq >= 0:
                    # Cumulative credit recovery: everything through
                    # acked_seq is delivered, so the window refills to
                    # W - in_flight regardless of which acks were lost.
                    for seq in range(info.acked_seq + 1):
                        self._disarm(("b", info.dialog, seq))
                    in_flight = bulk.next_seq - (info.acked_seq + 1)
                    target = self.params.window - in_flight
                    info.credits = max(0, target - bulk.credits)
        super()._process_ack(ack)

    # ------------------------------------------------------------ receiver
    def _on_packet_ejected(self, packet: Packet, vc: int, port: int) -> None:
        # A duplicate data packet is discarded below, but any ack riding in
        # its header is still fresh protocol state -- process it first.
        self._note_piggyback(packet)
        if packet.kind is PacketKind.SCALAR and packet.needs_ack:
            bit = packet.retx_bit
            src = packet.src
            if self._last_acked_bit.get(src) == bit:
                # Duplicate of an already-acked packet: the ack was lost.
                self.duplicates_dropped += 1
                self._release_ejection(packet, vc, port)
                self._emit_scalar_ack(packet)
                return
            if self._infifo_bits.get(src) == bit:
                # Duplicate of a packet still queued for the processor;
                # its ack fires when that copy is popped, so just drop this.
                self.duplicates_dropped += 1
                self._release_ejection(packet, vc, port)
                return
            self._infifo_bits[src] = bit
        elif packet.kind is PacketKind.BULK:
            dialog = self._rx_dialogs.get(packet.dialog)
            if dialog is None:
                # Dialog already torn down; the terminated ack was lost.
                self.duplicates_dropped += 1
                self._release_ejection(packet, vc, port)
                self._send_ack(
                    packet.src,
                    AckInfo(
                        for_scalar=False,
                        credits=0,
                        dialog=packet.dialog,
                        dialog_terminated=True,
                        acked_seq=packet.seq,
                    ),
                )
                return
            if packet.seq < dialog.next_deliver_seq or packet.seq in dialog.buffers:
                self.duplicates_dropped += 1
                self._release_ejection(packet, vc, port)
                self._emit_bulk_ack(dialog, terminate=False)
                return
        super()._on_packet_ejected(packet, vc, port)

    def receive(self):
        packet = super().receive()
        if (
            packet is not None
            and packet.kind is PacketKind.SCALAR
            and packet.needs_ack
        ):
            # The pop is the accept event (it is when the ack goes out), so
            # the duplicate-filter bit must advance here too.
            src = packet.src
            self._last_acked_bit[src] = packet.retx_bit
            if self._infifo_bits.get(src) == packet.retx_bit:
                del self._infifo_bits[src]
        return packet
