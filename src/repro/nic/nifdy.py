"""The NIFDY unit: admission control + in-order delivery at the network edge.

This is the paper's contribution (Section 2).  The unit sits between the
processor and the network port and implements:

* **Scalar protocol** -- at most one unacknowledged packet per destination;
  destinations with an outstanding packet are recorded in the OPT (size O);
  up to B outgoing packets wait in a pool whose rank/eligibility unit picks
  the frontmost packet of any destination that is clear to send.
* **Bulk protocol** -- software sets the bulk-request header bit; the
  receiver grants one of its D dialog slots by returning a dialog number in
  the ack, giving the sender a window of W packets acknowledged W/2 at a
  time.  Out-of-order arrivals wait in the dialog's W hardware reorder
  buffers; packets are handed to the processor strictly in send order.
* **Acks** -- hardware-generated, riding the reply network, consumed by the
  sending node's NIFDY.  A scalar packet is acked when the processor accepts
  it (the paper's footnote 2 found acking at FIFO-insert time "surprisingly
  less effective"; ``scalar_ack_on_insert`` keeps that as an ablation).

Resource usage is exactly the paper's: O CAM entries, B pool buffers,
D*W reorder buffers, a 2-packet arrivals FIFO -- independent of machine size.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..obs.events import EventKind
from ..packets import (
    AckInfo,
    FLIT_BYTES,
    Packet,
    PacketKind,
    REPLY_NET,
    REQUEST_NET,
    make_ack,
)
from ..sim import Simulator
from .base import BaseNIC
from .bulk import BulkReceiverDialog, BulkSender
from .opt import OutstandingPacketTable
from .pool import OutgoingPool


@dataclass
class NifdyParams:
    """Tuning parameters of a NIFDY unit (Section 2.1).

    ``opt_size`` is O, ``pool_size`` is B, ``dialogs`` is D, ``window`` is W.
    Setting ``dialogs`` or ``window`` to zero disables the bulk protocol
    (the butterfly's best configuration in Table 3).
    """

    opt_size: int = 8
    pool_size: int = 8
    dialogs: int = 1
    window: int = 8
    arrivals_capacity: int = 2
    #: NIFDY processing cycles at each end (T_ackproc = 2 * nifdy_delay).
    nifdy_delay: int = 2
    #: Ablation (paper footnote 2): ack scalars when inserted into the
    #: arrivals FIFO instead of when the processor accepts them.
    scalar_ack_on_insert: bool = False
    #: Combined-ack interval; None means the paper's W/2 (Section 2.4.2).
    #: 1 reproduces the per-packet ack alternative (Equation 4).
    ack_every: Optional[int] = None
    #: Section 6.1 extension: hold acks briefly and ride them in the header
    #: of a data packet headed to the same node (e.g. the user-level reply),
    #: falling back to a standalone ack after ``piggyback_window`` cycles.
    piggyback_acks: bool = False
    piggyback_window: int = 30
    #: Footnote 3 extension: request a bulk dialog automatically when the
    #: locally observed traffic shows at least this many pool packets queued
    #: for one destination (None = only software-set request bits).
    auto_bulk_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        if self.opt_size < 1 or self.pool_size < 1:
            raise ValueError("O and B must be at least 1")
        if self.dialogs < 0 or self.window < 0:
            raise ValueError("D and W cannot be negative")
        if self.window == 1:
            raise ValueError("a bulk window needs at least 2 buffers")

    @property
    def bulk_enabled(self) -> bool:
        return self.dialogs > 0 and self.window >= 2

    @property
    def ack_interval(self) -> int:
        if self.ack_every is not None:
            return max(1, self.ack_every)
        return max(1, self.window // 2)

    @property
    def total_buffers(self) -> int:
        """Packet buffers a buffers-only NIC gets for a fair comparison."""
        return (
            self.pool_size
            + self.arrivals_capacity
            + (self.dialogs * self.window if self.bulk_enabled else 0)
        )


class NifdyNIC(BaseNIC):
    """A network interface with flow control and in-order delivery."""

    def __init__(self, sim: Simulator, node_id: int, params: Optional[NifdyParams] = None):
        super().__init__(sim, node_id)
        self.params = params or NifdyParams()
        # ----- sender side
        self.pool = OutgoingPool(self.params.pool_size)
        self.opt = OutstandingPacketTable(self.params.opt_size)
        self._bulk_out: Optional[BulkSender] = None
        self._control_queue: Deque[Packet] = deque()
        self._data_streaming: Optional[Packet] = None
        self._rr_offset = 0
        # ----- receiver side
        self._arrivals: Deque[Packet] = deque()
        self._stalled_scalar: Deque[Tuple[Packet, int]] = deque()
        self._rx_dialogs: Dict[int, BulkReceiverDialog] = {}
        self._free_dialogs: List[int] = list(range(self.params.dialogs))
        self._dialog_by_src: Dict[int, int] = {}
        self._ack_queue: Deque[Packet] = deque()
        self._piggyback_pending: Dict[int, Deque] = {}
        # ----- statistics
        self.acks_sent = 0
        self.acks_received = 0
        self.bulk_grants = 0
        self.bulk_rejects = 0
        self.scalar_sent = 0
        self.bulk_sent = 0

    # ====================================================== processor: send
    def can_send(self) -> bool:
        return not self.pool.full

    def try_send(self, packet: Packet) -> bool:
        """Insert ``packet`` into the outgoing pool (rank assigned there)."""
        if packet.created_cycle < 0:
            packet.created_cycle = self.sim.now
        if not self.pool.insert(packet):
            return False
        if self.obs is not None:
            self.obs.emit_packet(
                self.sim.now, EventKind.POOL_ENQUEUE, self.node_id, packet
            )
        self._pump_data()
        return True

    # ------------------------------------------------- eligibility + inject
    def _pump_data(self) -> None:
        """Inject the next eligible packet, if the network port is free."""
        if self._data_streaming is not None:
            return
        if not self._injection_port_free(REQUEST_NET):
            # The previous packet's tail is still crossing the injection
            # wire; retry when its VC is released.
            self._retry_when_port_frees("data", REQUEST_NET, self._pump_data)
            return
        packet = self._next_control() or self._select_eligible()
        if packet is None:
            return
        self._maybe_piggyback(packet)
        if not self._start_injection(packet):
            # The port-free check passed but allocation was refused: the
            # injection link failed in between (fault injection).  The
            # packet's protocol state is already committed, so requeue it
            # at the head and retry when the link frees -- or is repaired.
            self._control_queue.appendleft(packet)
            self._retry_when_port_frees("data", REQUEST_NET, self._pump_data)
            return
        self._data_streaming = packet
        if packet.kind is PacketKind.SCALAR:
            self.scalar_sent += 1
        else:
            self.bulk_sent += 1

    def _next_control(self) -> Optional[Packet]:
        if self._control_queue:
            return self._control_queue.popleft()
        return None

    def _select_eligible(self) -> Optional[Packet]:
        """The rank/eligibility unit: pick an eligible frontmost packet.

        Selection rotates over destinations so streams to different nodes
        interleave ("if several messages are ready to go to different
        processors, they can be interleaved up to the limit of the OPT").
        Returns the chosen packet with its header fields committed (OPT
        entry inserted or window credit consumed).
        """
        dsts = self.pool.destinations()
        if not dsts:
            return None
        n = len(dsts)
        self._rr_offset = (self._rr_offset + 1) % n
        for i in range(n):
            dst = dsts[(self._rr_offset + i) % n]
            front = self.pool.front(dst)
            bulk = self._bulk_out
            if front.needs_ack is False:
                # Section 6.1 extension: protocol-bypassing packets are
                # always eligible and consume no OPT entry.
                return self._commit_bypass(dst)
            if bulk is not None and bulk.dst == dst:
                if bulk.granted:
                    if bulk.exited and not bulk.exit_acked:
                        continue  # dialog teardown in flight; preserve order
                    if bulk.credits > 0:
                        return self._commit_bulk(dst, bulk)
                    continue  # window closed
                # Dialog requested but not yet granted: keep sending scalar
                # packets (with the request bit) one at a time.
            if dst in self.opt:
                if self.obs is not None:
                    self.obs.emit(
                        self.sim.now, EventKind.OPT_HIT, self.node_id, dst=dst
                    )
                continue
            if self.opt.full:
                if self.obs is not None:
                    self.obs.emit(
                        self.sim.now, EventKind.OPT_FULL, self.node_id, dst=dst
                    )
                continue
            return self._commit_scalar(dst)
        return None

    def _pool_take(self, dst: int) -> Packet:
        """Pop the frontmost pool packet for ``dst`` (instrumented)."""
        packet = self.pool.pop_front(dst)
        if self.obs is not None:
            self.obs.emit_packet(
                self.sim.now, EventKind.POOL_DEQUEUE, self.node_id, packet
            )
        return packet

    def _commit_scalar(self, dst: int) -> Packet:
        packet = self._pool_take(dst)
        packet.kind = PacketKind.SCALAR
        auto = self.params.auto_bulk_threshold
        wants_bulk = (
            packet.bulk_request
            # Footnote 3: request bulk mode automatically when the locally
            # observed traffic (packets queued behind this one) justifies it.
            or (auto is not None and self.pool.count_for(dst) + 1 >= auto)
        ) and self.params.bulk_enabled
        if wants_bulk and self._bulk_out is None:
            self._bulk_out = BulkSender(dst)
        packet.bulk_request = (
            wants_bulk
            and self._bulk_out is not None
            and self._bulk_out.dst == dst
            and not self._bulk_out.granted
        )
        self.opt.add(dst)
        return packet

    def _commit_bulk(self, dst: int, bulk: BulkSender) -> Packet:
        packet = self._pool_take(dst)
        packet.kind = PacketKind.BULK
        packet.bulk_request = False
        packet.dialog = bulk.dialog
        packet.seq = bulk.take_credit()
        if packet.msg_seq == packet.msg_len - 1:
            packet.bulk_exit = True
            bulk.exited = True
        return packet

    def _commit_bypass(self, dst: int) -> Packet:
        packet = self._pool_take(dst)
        packet.kind = PacketKind.SCALAR
        packet.bulk_request = False
        return packet

    def _queue_control_exit(self, bulk: BulkSender) -> Packet:
        """Close a dialog we no longer have traffic for (grant raced past
        the end of the message).  A header-only bulk packet with the exit
        bit frees the receiver's dialog slot.  Returns the exit packet so
        subclasses can track it."""
        packet = Packet(
            src=self.node_id,
            dst=bulk.dst,
            kind=PacketKind.BULK,
            size_bytes=2 * FLIT_BYTES,
            logical_net=REQUEST_NET,
            control_only=True,
            bulk_exit=True,
            dialog=bulk.dialog,
            seq=bulk.take_credit(),
        )
        bulk.exited = True
        self._control_queue.append(packet)
        self._pump_data()
        return packet

    def _on_injection_complete(self, packet: Packet) -> None:
        if packet.kind is PacketKind.ACK:
            self._pump_acks()
            return
        if packet is self._data_streaming:
            self._data_streaming = None
        self._pump_data()

    # =================================================== network: ejection
    def _note_piggyback(self, packet: Packet) -> None:
        """Process (then clear) an ack riding in a data packet's header."""
        info = packet.piggyback_ack
        if info is None:
            return
        packet.piggyback_ack = None
        carrier = make_ack(packet.src, self.node_id, info)
        self.sim.post(self.params.nifdy_delay, self._process_ack, carrier)

    def _on_packet_ejected(self, packet: Packet, vc: int, port: int) -> None:
        self._note_piggyback(packet)
        if packet.kind is PacketKind.ACK:
            self._release_ejection(packet, vc, port)
            self.sim.post(self.params.nifdy_delay, self._process_ack, packet)
            return
        if packet.kind is PacketKind.BULK:
            dialog = self._rx_dialogs.get(packet.dialog)
            if dialog is None:
                raise RuntimeError(
                    f"node {self.node_id}: bulk packet for unknown dialog "
                    f"{packet.dialog}: {packet}"
                )
            dialog.store(packet)
            # The reorder buffers are dedicated hardware; window credits
            # guarantee space, so the network buffer frees immediately.
            self._release_ejection(packet, vc, port)
            self._drain()
            return
        # Scalar data: into the arrivals FIFO if there is room, otherwise
        # it occupies network buffering -- end-point backpressure.
        if len(self._arrivals) < self.params.arrivals_capacity:
            self._enqueue_arrival(packet)
            self._release_ejection(packet, vc, port)
        else:
            self._stalled_scalar.append((packet, vc, port))

    def _enqueue_arrival(self, packet: Packet) -> None:
        self._arrivals.append(packet)
        if (
            packet.needs_ack
            and self.params.scalar_ack_on_insert
            and packet.kind is PacketKind.SCALAR
        ):
            self._emit_scalar_ack(packet)

    def _drain(self) -> None:
        """Move deliverable packets toward the processor.

        Order sources: stalled scalar ejects first (they hold network
        buffers), then in-order bulk packets from each dialog.  Dialog
        bookkeeping (exit packets, combined acks) happens here.
        """
        progress = True
        while progress:
            progress = False
            while (
                self._stalled_scalar
                and len(self._arrivals) < self.params.arrivals_capacity
            ):
                packet, vc, port = self._stalled_scalar.popleft()
                self._enqueue_arrival(packet)
                self._release_ejection(packet, vc, port)
                progress = True
            for dialog in list(self._rx_dialogs.values()):
                while True:
                    nxt = dialog.next_in_order()
                    if nxt is None:
                        break
                    if nxt.control_only:
                        dialog.pop_next()
                        progress = True
                    elif len(self._arrivals) < self.params.arrivals_capacity:
                        self._enqueue_arrival(dialog.pop_next())
                        progress = True
                    else:
                        break
                self._service_dialog_acks(dialog)

    def _service_dialog_acks(self, dialog: BulkReceiverDialog) -> None:
        interval = self.params.ack_interval
        if dialog.complete:
            self._emit_bulk_ack(dialog, terminate=True)
            del self._rx_dialogs[dialog.dialog]
            del self._dialog_by_src[dialog.src]
            self._free_dialogs.append(dialog.dialog)
            if self.obs is not None:
                self.obs.emit(
                    self.sim.now, EventKind.DIALOG_CLOSE, self.node_id,
                    src=dialog.src, dst=self.node_id,
                    info=f"dialog={dialog.dialog}",
                )
        elif dialog.freed_since_ack >= interval:
            self._emit_bulk_ack(dialog, terminate=False)

    # ------------------------------------------------------- ack generation
    def _emit_scalar_ack(self, packet: Packet) -> None:
        info = AckInfo(for_scalar=True, acked_bit=packet.retx_bit)
        if packet.bulk_request and self.params.bulk_enabled:
            existing = self._dialog_by_src.get(packet.src)
            if existing is not None:
                info.dialog_granted = existing  # idempotent re-grant
                info.credits = self.params.window
            elif self._free_dialogs:
                dialog_id = self._free_dialogs.pop()
                self._rx_dialogs[dialog_id] = BulkReceiverDialog(
                    packet.src, dialog_id, self.params.window
                )
                self._dialog_by_src[packet.src] = dialog_id
                info.dialog_granted = dialog_id
                info.credits = self.params.window
                self.bulk_grants += 1
                if self.obs is not None:
                    self.obs.emit(
                        self.sim.now, EventKind.DIALOG_GRANT, self.node_id,
                        src=packet.src, dst=self.node_id,
                        info=f"dialog={dialog_id}",
                    )
            else:
                info.dialog_rejected = True
                self.bulk_rejects += 1
                if self.obs is not None:
                    self.obs.emit(
                        self.sim.now, EventKind.DIALOG_DENY, self.node_id,
                        src=packet.src, dst=self.node_id,
                    )
        elif packet.bulk_request:
            info.dialog_rejected = True
            self.bulk_rejects += 1
            if self.obs is not None:
                self.obs.emit(
                    self.sim.now, EventKind.DIALOG_DENY, self.node_id,
                    src=packet.src, dst=self.node_id,
                )
        self._send_ack(packet.src, info)

    def _emit_bulk_ack(self, dialog: BulkReceiverDialog, terminate: bool) -> None:
        info = AckInfo(
            for_scalar=False,
            credits=dialog.freed_since_ack,
            dialog=dialog.dialog,
            dialog_terminated=terminate,
            acked_seq=dialog.next_deliver_seq - 1,
        )
        dialog.freed_since_ack = 0
        self._send_ack(dialog.src, info)

    def _send_ack(self, to: int, info: AckInfo) -> None:
        if self.params.piggyback_acks:
            pending = self._piggyback_pending.setdefault(to, deque())
            event = self.sim.schedule(
                self.params.nifdy_delay + self.params.piggyback_window,
                self._piggyback_expire, to, info,
            )
            pending.append((info, event))
            return
        ack = make_ack(self.node_id, to, info)
        # post(): ack hand-offs are fire-and-forget (only the piggyback
        # expiry above ever needs cancelling, and it keeps schedule()).
        self.sim.post(self.params.nifdy_delay, self._ack_ready, ack)

    # ------------------------------------------------ piggybacking (S6.1)
    def _maybe_piggyback(self, packet: Packet) -> None:
        """Ride the oldest pending ack for this destination in the data
        packet's header (one extra bit plus fields the header already has)."""
        pending = self._piggyback_pending.get(packet.dst)
        if not pending or packet.piggyback_ack is not None:
            return
        info, event = pending.popleft()
        event.cancel()
        packet.piggyback_ack = info

    def _piggyback_expire(self, to: int, info: AckInfo) -> None:
        """No data packet showed up in time; send the standalone ack."""
        pending = self._piggyback_pending.get(to)
        if not pending:
            return
        for entry in pending:
            if entry[0] is info:
                pending.remove(entry)
                break
        else:
            return
        self._ack_ready(make_ack(self.node_id, to, info))

    def _ack_ready(self, ack: Packet) -> None:
        self._ack_queue.append(ack)
        self._pump_acks()

    def _pump_acks(self) -> None:
        while self._ack_queue:
            if not self._start_injection(self._ack_queue[0]):
                self._retry_when_port_frees("ack", REPLY_NET, self._pump_acks)
                return
            self._ack_queue.popleft()
            self.acks_sent += 1

    # ------------------------------------------------------- ack reception
    def _process_ack(self, ack: Packet) -> None:
        """Sender-side ack handling, after the NIFDY processing delay."""
        self.acks_received += 1
        if self.obs is not None:
            self.obs.emit_packet(
                self.sim.now, EventKind.ACK_CONSUMED, self.node_id, ack
            )
        info = ack.ack
        peer = ack.src
        bulk = self._bulk_out
        if info.for_scalar:
            self.opt.remove(peer)
            if info.dialog_granted is not None:
                if bulk is not None and bulk.dst == peer:
                    if not bulk.granted:
                        bulk.grant(info.dialog_granted, info.credits)
                        if self.pool.count_for(peer) == 0:
                            self._queue_control_exit(bulk)
                    # else: duplicate grant for an already-granted dialog.
                else:
                    # We no longer want the dialog; free the receiver's slot
                    # with a header-only exit (transient sender state).
                    orphan = BulkSender(peer)
                    orphan.grant(info.dialog_granted, info.credits)
                    self._queue_control_exit(orphan)
            elif bulk is not None and bulk.dst == peer and not bulk.granted:
                # Rejected or plain ack while requesting: drop the request
                # state if the message finished without a grant.
                if self.pool.count_for(peer) == 0 and peer not in self.opt:
                    self._bulk_out = None
        else:
            if bulk is not None and bulk.dst == peer and bulk.dialog == info.dialog:
                bulk.credits += info.credits
                if info.dialog_terminated:
                    bulk.exit_acked = True
                    if bulk.exited:
                        self._bulk_out = None
            # else: ack for an already-abandoned dialog; nothing to update.
        self._pump_data()

    # ================================================== processor: receive
    def has_arrival(self) -> bool:
        return bool(self._arrivals)

    def receive(self) -> Optional[Packet]:
        if not self._arrivals:
            return None
        packet = self._arrivals.popleft()
        # "When it is accepted by the processor an ack is returned": the
        # processor taking the packet out of the arrivals FIFO is the accept
        # event -- flow control tracks the processor's pull rate without
        # charging the software handler's execution to the round trip.
        if (
            packet.kind is PacketKind.SCALAR
            and packet.needs_ack
            and not self.params.scalar_ack_on_insert
        ):
            self._emit_scalar_ack(packet)
        self._drain()
        return packet

    def accepted(self, packet: Packet) -> None:
        super().accepted(packet)
        self._drain()

    # ------------------------------------------------------------- queries
    @property
    def guarantees_order(self) -> bool:
        return True

    @property
    def outstanding(self) -> int:
        """Scalar packets currently unacknowledged (<= O, an invariant)."""
        return len(self.opt)

    @property
    def pending_out(self) -> int:
        return len(self.pool) + (1 if self._data_streaming else 0)
