"""Figure builders: archived bench records -> plottable figure data.

One builder per evaluation artifact of the paper (Figures 2-9, Tables 2
and 3).  Each consumes the corresponding :class:`~repro.report.schema.
BenchRecord` and produces a :class:`FigureData`: the series to plot, the
paper's reference values to overlay (dashed lines / expected formulas),
and a list of :class:`FidelityCheck` rows quantifying how far this tree's
numbers sit from the paper's claims.  Builders never raise on missing or
pre-schema data -- they return a figure marked ``missing`` so the report
can fall back to the archived text and say *why* the plot is absent.

The paper's quantitative anchors encoded here (all from the bench
docstrings / EXPERIMENTS.md provenance notes):

* Table 2: latency fits ``mesh 4d+14``, ``fat tree 5d+2`` (head latency).
* Figure 6: ordering free-run < NIFDY- < barriers-or-NIFDY (we document
  the known divergence on NIFDY- vs optimized barriers).
* Figures 7/8: in-order gain ~1.10x under light communication, up to
  ~2x for heavy all-to-all patterns.
* Figure 9: inserted delays rescue the serialised scan ~8x; NIFDY beats
  even the hand-tuned delays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .schema import BenchRecord


@dataclass
class PaperRef:
    """One paper-reference overlay: a labelled horizontal line (``value``
    set) or a purely textual anchor for the caption."""

    label: str
    value: Optional[float] = None


@dataclass
class FidelityCheck:
    """One quantified claim: measured vs the paper's reference.

    ``delta`` is measured-minus-reference in the claim's own unit (so 0 is
    a perfect reproduction); ``divergence`` marks checks that fail by
    design and are documented in EXPERIMENTS.md rather than being bugs.
    """

    claim: str
    measured: float
    reference: float
    ok: bool
    unit: str = ""
    divergence: bool = False

    @property
    def delta(self) -> float:
        return self.measured - self.reference


@dataclass
class Series:
    """One plotted series.  ``ys`` aligns with the figure's categories for
    bar charts, or with ``xs`` for line charts."""

    label: str
    ys: List[float]
    xs: Optional[List[float]] = None


@dataclass
class FigureData:
    """Everything the plotting and markdown layers need for one page."""

    name: str
    title: str
    kind: str = "bar"  # "bar" | "line"
    ylabel: str = ""
    xlabel: str = ""
    categories: List[str] = field(default_factory=list)
    series: List[Series] = field(default_factory=list)
    paper_refs: List[PaperRef] = field(default_factory=list)
    fidelity: List[FidelityCheck] = field(default_factory=list)
    caption: str = ""
    #: Markdown table rows (first row = header); rendered under the plot.
    table: Optional[List[List[str]]] = None
    #: Reason the figure could not be built (data missing / pre-record
    #: archive); the page then embeds the archived text instead.
    missing: Optional[str] = None
    log_y: bool = False
    source_bench: str = ""


@dataclass(frozen=True)
class FigureSpec:
    """Registry row binding a report page to its bench and builder."""

    name: str
    title: str
    bench: str
    build: Callable[["FigureSpec", Optional[BenchRecord]], FigureData]


def _missing(spec: FigureSpec, reason: str) -> FigureData:
    return FigureData(
        name=spec.name, title=spec.title, missing=reason,
        source_bench=spec.bench,
    )


def _need(spec: FigureSpec, record: Optional[BenchRecord],
          *keys: str) -> Optional[str]:
    """Why the figure cannot be built, or None when all keys are present."""
    if record is None:
        return f"bench {spec.bench} has no archived JSON"
    for key in keys:
        if key not in record.data:
            return (
                f"bench {spec.bench} archive predates structured recording "
                f"(missing data[{key!r}]); re-run the bench to regenerate"
            )
    return None


# ---------------------------------------------------------------- Fig 2 / 3

_SYNTH_MODES = ("plain", "buffered", "nifdy-")
_MODE_LABELS = {"plain": "no NIFDY", "buffered": "buffers only",
                "nifdy-": "NIFDY"}
#: Topologies the paper singles out as blocking-prone (big NIFDY wins).
_BLOCKING_NETWORKS = ("torus2d", "fattree", "multibutterfly")


def _build_synthetic(spec: FigureSpec, record: Optional[BenchRecord],
                     heavy: bool) -> FigureData:
    reason = _need(spec, record, "delivered")
    if reason:
        return _missing(spec, reason)
    rows: Dict[str, Dict[str, int]] = record.data["delivered"]
    networks = list(rows)
    fig = FigureData(
        name=spec.name, title=spec.title, kind="bar",
        ylabel=f"packets delivered in {record.bench_cycles:,} cycles",
        categories=networks,
        series=[
            Series(_MODE_LABELS[mode],
                   [float(rows[n].get(mode, 0)) for n in networks])
            for mode in _SYNTH_MODES
        ],
        paper_refs=[PaperRef(
            "paper: NIFDY ≥ buffers ≥ plain on every congestible "
            "topology" + ("" if heavy else "; NIFDY wins everywhere"),
        )],
        source_bench=spec.bench,
    )
    ratios = {
        n: rows[n]["nifdy-"] / rows[n]["plain"]
        for n in networks if rows[n].get("plain")
    }
    if ratios:
        worst = min(ratios, key=ratios.get)
        fig.fidelity.append(FidelityCheck(
            claim="NIFDY at least matches the bare NIC on every network "
                  f"(worst: {worst})",
            measured=round(ratios[worst], 3), reference=1.0, unit="x",
            ok=ratios[worst] >= 0.93,
        ))
        blockers = [n for n in _BLOCKING_NETWORKS if n in ratios]
        if blockers:
            gain = min(ratios[n] for n in blockers)
            fig.fidelity.append(FidelityCheck(
                claim="clear protocol win on the blocking-prone topologies "
                      "(torus / fat trees / multibutterfly)",
                measured=round(gain, 3), reference=1.15, unit="x",
                ok=gain > 1.15,
            ))
    buffer_wins = sum(
        rows[n].get("buffered", 0) >= rows[n].get("plain", 0) for n in networks
    )
    fig.fidelity.append(FidelityCheck(
        claim="buffering alone already helps over the bare interface "
              "(networks where buffers ≥ plain)",
        measured=buffer_wins, reference=float(len(networks)),
        ok=buffer_wins >= len(networks) - 2, unit="networks",
    ))
    fig.table = [["network"] + [_MODE_LABELS[m] for m in _SYNTH_MODES]
                 + ["NIFDY/plain"]]
    for n in networks:
        fig.table.append(
            [n] + [f"{rows[n].get(m, 0):,}" for m in _SYNTH_MODES]
            + [f"{ratios.get(n, 0):.2f}x"]
        )
    fig.caption = (
        "Fixed-window synthetic throughput per NIC configuration "
        "(Figure 2's bars exclude the in-order payload benefit, exactly as "
        "the paper's caption notes)." if heavy else
        "Light traffic (1/3 senders, long-message tail): the bulk window "
        "carries the long messages, so NIFDY leads on all eight networks."
    )
    return fig


def build_fig2(spec: FigureSpec, record: Optional[BenchRecord]) -> FigureData:
    return _build_synthetic(spec, record, heavy=True)


def build_fig3(spec: FigureSpec, record: Optional[BenchRecord]) -> FigureData:
    return _build_synthetic(spec, record, heavy=False)


# -------------------------------------------------------------------- Fig 4

def build_fig4(spec: FigureSpec, record: Optional[BenchRecord]) -> FigureData:
    reason = _need(spec, record, "normalized_by_pool", "normalized_by_opt")
    if reason:
        return _missing(spec, reason)

    def parse(cells: Dict[str, float], prefix: str) -> Dict[str, Dict[int, float]]:
        # keys look like "n64/B4" (or "n64/O4"): size x parameter grid.
        out: Dict[str, Dict[int, float]] = {}
        for key, value in cells.items():
            size_part, param_part = key.split("/", 1)
            out.setdefault(param_part, {})[int(size_part[1:])] = float(value)
        return out

    fig = FigureData(
        name=spec.name, title=spec.title, kind="line",
        ylabel="delivered, normalized to no-NIFDY at each size",
        xlabel="machine size (nodes)",
        paper_refs=[
            PaperRef("no-NIFDY baseline", 1.0),
            PaperRef("paper: relative benefit must not shrink with size"),
        ],
        source_bench=spec.bench,
    )
    all_curves: Dict[str, Dict[int, float]] = {}
    for data_key, prefix in (("normalized_by_pool", "B"),
                             ("normalized_by_opt", "O")):
        all_curves.update(parse(record.data[data_key], prefix))
    for param in sorted(all_curves):
        curve = all_curves[param]
        sizes = sorted(curve)
        fig.series.append(Series(
            param, xs=[float(s) for s in sizes], ys=[curve[s] for s in sizes],
        ))
    # Fidelity: for every curve, the largest machine keeps at least ~90% of
    # the smallest machine's normalized benefit (the paper's scalability
    # claim: "the relative benefit does not decrease with machine size").
    retention = []
    for param, curve in all_curves.items():
        sizes = sorted(curve)
        if len(sizes) >= 2 and curve[sizes[0]] > 0:
            retention.append(curve[sizes[-1]] / curve[sizes[0]])
    if retention:
        fig.fidelity.append(FidelityCheck(
            claim="normalized benefit retained from the smallest to the "
                  "largest machine (worst parameter curve)",
            measured=round(min(retention), 3), reference=1.0, unit="x",
            ok=min(retention) >= 0.9,
        ))
    fig.caption = (
        "Full fat tree, short messages, no bulk dialogs; each curve is one "
        "buffer-pool (B) or OPT (O) size, normalized to the no-NIFDY "
        "baseline at the same machine size."
    )
    return fig


# -------------------------------------------------------------------- Fig 5

def build_fig5(spec: FigureSpec, record: Optional[BenchRecord]) -> FigureData:
    reason = _need(spec, record, "mean_peak_backlog", "finished_cycles")
    if reason:
        return _missing(spec, reason)
    data = record.data
    configs = list(data["mean_peak_backlog"])
    fig = FigureData(
        name=spec.name, title=spec.title, kind="bar",
        ylabel="pending packets per receiver",
        categories=configs,
        series=[
            Series("mean peak backlog",
                   [float(data["mean_peak_backlog"][c]) for c in configs]),
            Series("worst backlog",
                   [float(data["worst_backlog"][c]) for c in configs]),
        ],
        paper_refs=[PaperRef(
            "paper: without NIFDY perturbations snowball (≥20 pending); "
            "with NIFDY they dissipate"
        )],
        source_bench=spec.bench,
    )
    plain, nifdy = configs[0], configs[-1]
    fig.fidelity.append(FidelityCheck(
        claim="NIFDY's mean peak backlog vs the uncontrolled run's "
              "(ratio; paper: clearly below 1)",
        measured=round(data["mean_peak_backlog"][nifdy]
                       / data["mean_peak_backlog"][plain], 3),
        reference=1.0, unit="x",
        ok=data["mean_peak_backlog"][nifdy] <= data["mean_peak_backlog"][plain],
    ))
    fig.fidelity.append(FidelityCheck(
        claim="same transfer finishes no later under NIFDY "
              "(finish-cycle ratio)",
        measured=round(data["finished_cycles"][nifdy]
                       / data["finished_cycles"][plain], 3),
        reference=1.0, unit="x",
        ok=data["finished_cycles"][nifdy] <= data["finished_cycles"][plain],
    ))
    fig.table = [["configuration", "finished (cycles)", "mean peak backlog",
                  "worst backlog"]]
    for c in configs:
        fig.table.append([
            c, f"{data['finished_cycles'][c]:,}",
            f"{data['mean_peak_backlog'][c]:.2f}",
            f"{data['worst_backlog'][c]}",
        ])
    fig.caption = (
        "C-shift on the 32-active-node CM-5 tree without barriers.  Our "
        "pile-ups are milder than the paper's because even the plain NIC "
        "exerts FIFO backpressure; the heatmaps live in the bench's text "
        "archive."
    )
    return fig


# -------------------------------------------------------------------- Fig 6

def build_fig6(spec: FigureSpec, record: Optional[BenchRecord]) -> FigureData:
    reason = _need(spec, record, "words_per_kcycle")
    if reason:
        return _missing(spec, reason)
    tput: Dict[str, float] = record.data["words_per_kcycle"]
    configs = list(tput)
    fig = FigureData(
        name=spec.name, title=spec.title, kind="bar",
        ylabel="words per kcycle",
        categories=configs,
        series=[Series("C-shift throughput", [float(tput[c]) for c in configs])],
        paper_refs=[PaperRef(
            "paper ordering: free-run < optimized barriers < NIFDY-; "
            "in-order NIFDY best"
        )],
        source_bench=spec.bench,
    )

    def get(sub: str) -> Optional[float]:
        for name, value in tput.items():
            if sub in name:
                return float(value)
        return None

    freerun = get("no barriers")
    barriers = get(", barriers")
    flowctl = get("flow ctl")
    inorder = get("in-order")
    if None not in (freerun, barriers, flowctl, inorder):
        fig.fidelity.append(FidelityCheck(
            claim="in-order NIFDY vs optimized barriers (ratio; paper: >1)",
            measured=round(inorder / barriers, 3), reference=1.0, unit="x",
            ok=inorder > barriers,
        ))
        fig.fidelity.append(FidelityCheck(
            claim="flow control alone vs optimized barriers (paper: >1; "
                  "known divergence 2 -- our hardware barrier pays no "
                  "straggler cost)",
            measured=round(flowctl / barriers, 3), reference=1.0, unit="x",
            ok=flowctl > barriers, divergence=flowctl <= barriers,
        ))
        fig.fidelity.append(FidelityCheck(
            claim="flow control alone vs free-running phases (paper: >1)",
            measured=round(flowctl / freerun, 3), reference=1.0, unit="x",
            ok=flowctl > freerun,
        ))
    fig.caption = (
        "C-shift words/kcycle across the four software configurations.  "
        "EXPERIMENTS.md divergence 2: our NIFDY- lands ~6% behind the "
        "optimized-barrier bar (the paper has it ahead) because the "
        "simulated CM-5 barrier is nearly free and the C-shift offers no "
        "alternate-destination work."
    )
    return fig


# ---------------------------------------------------------------- Fig 7 / 8

def _build_em3d(spec: FigureSpec, record: Optional[BenchRecord],
                heavy: bool) -> FigureData:
    reason = _need(spec, record, "cycles_per_iteration")
    if reason:
        return _missing(spec, reason)
    rows: Dict[str, Dict[str, float]] = record.data["cycles_per_iteration"]
    networks = list(rows)
    gains = {n: rows[n]["buffered"] / rows[n]["nifdy"] for n in networks}
    ref_gain = 2.0 if heavy else 1.10
    fig = FigureData(
        name=spec.name, title=spec.title, kind="bar",
        ylabel="gain: buffers-only / NIFDY cycles per iteration",
        categories=networks,
        series=[Series("in-order gain", [round(gains[n], 3) for n in networks])],
        paper_refs=[
            PaperRef("parity (no gain)", 1.0),
            PaperRef(
                "paper: up to ~2x for heavy all-to-all patterns" if heavy
                else "paper: ~10% under light communication", ref_gain,
            ),
        ],
        source_bench=spec.bench,
    )
    fig.fidelity.append(FidelityCheck(
        claim="the in-order library beats buffers-only in all cases "
              "(minimum gain)",
        measured=round(min(gains.values()), 3), reference=1.0, unit="x",
        ok=min(gains.values()) > 1.0,
    ))
    mean_gain = sum(gains.values()) / len(gains)
    fig.fidelity.append(FidelityCheck(
        claim=("mean gain under heavy communication (paper: larger than "
               "light's ~1.1x)" if heavy
               else "mean gain under light communication (paper: ~1.1x)"),
        measured=round(mean_gain, 3),
        reference=1.35 if heavy else 1.10, unit="x",
        ok=mean_gain > 1.08,
    ))
    modes = ("plain", "buffered", "nifdy-", "nifdy")
    fig.table = [["network"] + list(modes) + ["gain"]]
    for n in networks:
        fig.table.append(
            [n] + [f"{rows[n][m]:,.0f}" for m in modes]
            + [f"{gains[n]:.2f}x"]
        )
    fig.caption = (
        "EM3D cycles per iteration (table; lower is better) and the "
        "buffers-only/NIFDY gain (bars).  On the in-order-by-construction "
        "meshes and butterfly the margin is the paper's ~10%-or-less; on "
        "reordering fabrics it is large"
        + (" and grows with communication volume." if heavy else ".")
    )
    return fig


def build_fig7(spec: FigureSpec, record: Optional[BenchRecord]) -> FigureData:
    return _build_em3d(spec, record, heavy=False)


def build_fig8(spec: FigureSpec, record: Optional[BenchRecord]) -> FigureData:
    return _build_em3d(spec, record, heavy=True)


# -------------------------------------------------------------------- Fig 9

def build_fig9(spec: FigureSpec, record: Optional[BenchRecord]) -> FigureData:
    reason = _need(spec, record, "scan_cycles")
    if reason:
        return _missing(spec, reason)
    scans: Dict[str, int] = record.data["scan_cycles"]
    # keys: "<network>/<nic>/<delay|no-delay>"
    networks, cells = [], {}
    for key, value in scans.items():
        network, nic, delay = key.split("/")
        if network not in networks:
            networks.append(network)
        cells[(network, nic, delay)] = float(value)
    combos = (("plain", "no-delay"), ("plain", "delay"),
              ("nifdy", "no-delay"), ("nifdy", "delay"))
    labels = {("plain", "no-delay"): "plain",
              ("plain", "delay"): "plain + delays",
              ("nifdy", "no-delay"): "NIFDY",
              ("nifdy", "delay"): "NIFDY + delays"}
    fig = FigureData(
        name=spec.name, title=spec.title, kind="bar",
        ylabel="cycles for one 128-bucket scan (log scale)",
        categories=networks, log_y=True,
        series=[
            Series(labels[c],
                   [cells.get((n,) + c, 0.0) for n in networks])
            for c in combos
        ],
        paper_refs=[PaperRef(
            "paper: inserted delays rescue the serialised scan ~8x; NIFDY "
            "alone beats the hand-tuned delays"
        )],
        source_bench=spec.bench,
    )
    ft = "fattree"
    if (ft, "plain", "no-delay") in cells:
        rescue = cells[(ft, "plain", "no-delay")] / cells[(ft, "plain", "delay")]
        nifdy_win = cells[(ft, "plain", "no-delay")] / cells[(ft, "nifdy", "no-delay")]
        fig.fidelity.append(FidelityCheck(
            claim="inserted delays rescue the serialised fat-tree scan "
                  "(paper: ~8x)",
            measured=round(rescue, 2), reference=8.0, unit="x",
            ok=rescue > 4.0,
        ))
        fig.fidelity.append(FidelityCheck(
            claim="NIFDY alone vs the serialised scan (paper: beats even "
                  "hand-tuned delays, ~12x here)",
            measured=round(nifdy_win, 2), reference=8.0, unit="x",
            ok=cells[(ft, "nifdy", "no-delay")] < cells[(ft, "plain", "delay")],
        ))
    coalesce = record.data.get("coalesce_cycles")
    if coalesce and coalesce.get("nifdy"):
        ratio = coalesce["plain"] / coalesce["nifdy"]
        fig.fidelity.append(FidelityCheck(
            claim="coalesce phase with vs without NIFDY (paper: virtually "
                  "identical)",
            measured=round(ratio, 3), reference=1.0, unit="x",
            ok=0.9 <= ratio <= 1.15,
        ))
    fig.caption = (
        "Radix-sort scan: without NIFDY the byte-wide fat trees serialise "
        "(sender swamps the next pipeline stage); the locally restrictive "
        "protocol yields more global throughput.  EXPERIMENTS.md "
        "divergence 3 covers the CM-5 row."
    )
    return fig


# ------------------------------------------------------------------ Table 2

#: The paper's uncontended latency formulas (Section 2.4.3): slope
#: cycles/hop and head-latency intercept.
PAPER_LATENCY_FITS = {"mesh2d": (4.0, 14.0), "fattree": (5.0, 2.0)}


def build_table2(spec: FigureSpec, record: Optional[BenchRecord]) -> FigureData:
    reason = _need(spec, record, "latency_fits")
    if reason:
        return _missing(spec, reason)
    fits: Dict[str, Sequence[float]] = record.data["latency_fits"]
    fig = FigureData(
        name=spec.name, title=spec.title, kind="line",
        ylabel="uncontended tail-arrival latency (cycles)",
        xlabel="distance (hops)",
        source_bench=spec.bench,
    )
    distances = [1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0]
    for name in fits:
        slope, intercept = fits[name]
        fig.series.append(Series(
            f"{name} measured: {slope:.1f}d + {intercept:.0f}",
            xs=distances, ys=[slope * d + intercept for d in distances],
        ))
    for name, (slope, intercept) in PAPER_LATENCY_FITS.items():
        if name in fits:
            fig.series.append(Series(
                f"{name} paper: {slope:.0f}d + {intercept:.0f} (head)",
                xs=distances, ys=[slope * d + intercept for d in distances],
            ))
    fig.paper_refs.append(PaperRef(
        "paper formulas are head latency; our intercept adds the 7-flit "
        "tail streaming time"
    ))
    for name, (paper_slope, _) in PAPER_LATENCY_FITS.items():
        if name in fits:
            fig.fidelity.append(FidelityCheck(
                claim=f"{name} per-hop cost vs the paper's "
                      f"{paper_slope:.0f} cycles/hop",
                measured=round(float(fits[name][0]), 2),
                reference=paper_slope, unit="cycles/hop",
                ok=abs(float(fits[name][0]) - paper_slope) <= 0.5,
            ))
    if "cm5" in fits:
        fig.fidelity.append(FidelityCheck(
            claim="CM-5 per-hop cost (4-bit time-sliced links; paper: "
                  "round trips ~2x the full tree's -> ~16 cycles/hop)",
            measured=round(float(fits["cm5"][0]), 2), reference=16.0,
            unit="cycles/hop", ok=14.0 <= float(fits["cm5"][0]) <= 20.0,
        ))
    costs = record.data.get("software_costs", {})
    fig.table = [["quantity", "cycles (paper = simulator constant)"]]
    for label, value in costs.items():
        fig.table.append([label, str(value)])
    for name in fits:
        slope, intercept = fits[name]
        paper = PAPER_LATENCY_FITS.get(name)
        fig.table.append([
            f"{name} latency fit",
            f"T(d) = {slope:.1f}d + {intercept:.1f}"
            + (f"  (paper: {paper[0]:.0f}d + {paper[1]:.0f})" if paper else ""),
        ])
    fig.caption = (
        "Simulator calibration: measured uncontended latency fits against "
        "the paper's Section 2.4.3 formulas (dashed paper lines are head "
        "latency; the offset is the 8-word packet's tail streaming time)."
    )
    return fig


# ------------------------------------------------------------------ Table 3

def build_table3(spec: FigureSpec, record: Optional[BenchRecord]) -> FigureData:
    reason = _need(spec, record, "characteristics")
    if reason:
        return _missing(spec, reason)
    rows: Dict[str, Dict] = record.data["characteristics"]
    networks = list(rows)
    fig = FigureData(
        name=spec.name, title=spec.title, kind="bar",
        ylabel="bytes/cycle across the bisection",
        categories=networks,
        series=[Series(
            "bisection bandwidth",
            [float(rows[n]["bisection_bytes_per_cycle"]) for n in networks],
        )],
        paper_refs=[PaperRef(
            "paper ordering: mesh narrow, full fat tree widest, CM-5 "
            "variant narrowest"
        )],
        source_bench=spec.bench,
    )
    by = {n: rows[n]["bisection_bytes_per_cycle"] for n in networks}
    if {"mesh2d", "fattree", "cm5"} <= set(by):
        fig.fidelity.append(FidelityCheck(
            claim="full fat tree vs mesh bisection (paper: tree is the "
                  "wide end)",
            measured=round(by["fattree"] / by["mesh2d"], 2), reference=4.0,
            unit="x", ok=by["fattree"] > by["mesh2d"],
        ))
        fig.fidelity.append(FidelityCheck(
            claim="CM-5 variant vs full tree bisection (paper: far below, "
                  "<1/4)",
            measured=round(by["cm5"] / by["fattree"], 3), reference=0.25,
            unit="x", ok=by["cm5"] < by["fattree"] / 4,
        ))
    if "fattree" in rows:
        fig.fidelity.append(FidelityCheck(
            claim="full fat tree max distance (Section 2.4.3)",
            measured=float(rows["fattree"]["max_hops"]), reference=6.0,
            unit="hops", ok=rows["fattree"]["max_hops"] == 6,
        ))
    fig.table = [["network", "volume (words/node)", "bisection (B/cycle)",
                  "avg/max hops", "in-order", "latency fit"]]
    for n in networks:
        row = rows[n]
        fig.table.append([
            n, f"{row['volume_words_per_node']:.1f}",
            f"{row['bisection_bytes_per_cycle']:.1f}",
            f"{row['avg_hops']:.1f} / {row['max_hops']}",
            "yes" if row["delivers_in_order"] else "no",
            row.get("formula", ""),
        ])
    best = record.data.get("best_params", {})
    if best:
        fig.table.append(["", "", "", "", "", ""])
        for network, cell in best.items():
            fig.table.append([
                f"{network} best (O, W)", cell, "", "", "", "",
            ])
    fig.caption = (
        "Measured 64-node network characteristics (left half of the "
        "paper's Table 3) and the swept best (O, W) choices (right half).  "
        "EXPERIMENTS.md divergence 1 covers the butterfly's bulk window."
    )
    return fig


# -------------------------------------------------------------- Collectives

def build_collectives(spec: FigureSpec,
                      record: Optional[BenchRecord]) -> FigureData:
    reason = _need(spec, record, "barrier_latency_mean", "barrier_latency_p99")
    if reason:
        return _missing(spec, reason)
    data = record.data
    means: Dict[str, float] = data["barrier_latency_mean"]
    p99s: Dict[str, float] = data["barrier_latency_p99"]
    modes = list(means)
    fig = FigureData(
        name=spec.name, title=spec.title, kind="bar",
        ylabel="barrier latency (cycles, arrive → release)",
        categories=modes,
        series=[
            Series("mean", [float(means[m]) for m in modes]),
            Series("p99", [float(p99s[m]) for m in modes]),
        ],
        paper_refs=[PaperRef(
            "'host' models a dedicated hardware barrier (fixed release "
            "cost, no data-network traffic); 'nic' runs the combining tree "
            "over the loaded request/reply networks"
        )],
        source_bench=spec.bench,
    )
    violations: Dict[str, int] = data.get("violations", {})
    counters: Dict[str, int] = data.get("collectives", {})
    fig.fidelity.append(FidelityCheck(
        claim="NIC combining tree stays correct under heavy background "
              "traffic (invariant violations, both modes)",
        measured=float(sum(violations.values())), reference=0.0,
        unit="violations", ok=sum(violations.values()) == 0,
    ))
    if counters:
        dups = counters.get("coll_duplicates", 0)
        fig.fidelity.append(FidelityCheck(
            claim="no contribution double-folded on the clean run "
                  "(duplicate collective packets)",
            measured=float(dups), reference=0.0, unit="packets",
            ok=dups == 0,
        ))
    if {"host", "nic"} <= set(means) and means["host"]:
        ratio = float(means["nic"]) / float(means["host"])
        fig.fidelity.append(FidelityCheck(
            claim="data-network barrier cost over the idealised hardware "
                  "barrier (mean-latency ratio; ≥1 by construction, small "
                  "is good)",
            measured=round(ratio, 2), reference=1.0, unit="x",
            ok=1.0 <= ratio <= 6.0,
        ))
    maxima = data.get("barrier_latency_max", {})
    cycles = data.get("cycles", {})
    fig.table = [["barrier", "mean", "p99", "max", "run cycles"]]
    for m in modes:
        fig.table.append([
            m, f"{float(means[m]):.0f}", f"{p99s[m]}",
            f"{maxima.get(m, '')}",
            f"{cycles[m]:,}" if m in cycles else "",
        ])
    fig.caption = (
        "Driver-verified allreduce with heavy background traffic: barriers "
        "either run as a host-side flat combine (a stand-in for the CM-5's "
        "dedicated control network) or as NIFDY collective packets on a "
        "k-ary combining tree -- the combined ack IS the reduction op "
        "(docs/protocol.md, NIC-offloaded collectives)."
    )
    return fig


#: The report's page order: every evaluation artifact of the paper.
FIGURES: List[FigureSpec] = [
    FigureSpec("fig2", "Figure 2 · heavy synthetic throughput",
               "test_fig2_heavy_synthetic", build_fig2),
    FigureSpec("fig3", "Figure 3 · light synthetic throughput",
               "test_fig3_light_synthetic", build_fig3),
    FigureSpec("fig4", "Figure 4 · scalability with machine size",
               "test_fig4_scalability", build_fig4),
    FigureSpec("fig5", "Figure 5 · C-shift congestion",
               "test_fig5_cshift_congestion", build_fig5),
    FigureSpec("fig6", "Figure 6 · C-shift throughput",
               "test_fig6_cshift_throughput", build_fig6),
    FigureSpec("fig7", "Figure 7 · EM3D, light communication",
               "test_fig7_em3d_light", build_fig7),
    FigureSpec("fig8", "Figure 8 · EM3D, heavy communication",
               "test_fig8_em3d_heavy", build_fig8),
    FigureSpec("fig9", "Figure 9 · radix-sort scan",
               "test_fig9_radix_scan", build_fig9),
    FigureSpec("table2", "Table 2 · calibration vs the CM-5",
               "test_table2_calibration", build_table2),
    FigureSpec("table3", "Table 3 · network characteristics",
               "test_table3_characteristics", build_table3),
    FigureSpec("collectives", "Extension · NIC-offloaded vs host barriers",
               "test_barrier_offload", build_collectives),
]
