"""Reporting subsystem: the unified results schema, figure regeneration
(`repro report`), and the append-only perf-history archive.

Layering: :mod:`~repro.report.schema` is pure stdlib and is imported by
the bench conftest, the sweep engine, and the CLI; the generator side
(:mod:`figures` / :mod:`plotting` / :mod:`history` / :mod:`generate`)
sits on top and is only pulled in by ``repro report`` and the tests.
"""

from .figures import FIGURES, FidelityCheck, FigureData, PaperRef, Series
from .generate import ReportResult, generate_report
from .history import (append_snapshot, git_sha, load_history,
                      snapshot_from_summary, trajectory_figures)
from .schema import (RUN_STATS_FIELDS, SCHEMA_VERSION, BenchRecord,
                     BenchSummary, CampaignRecord, ChaosArtifact,
                     EngineStats, HistorySnapshot, KernelPerfRecord,
                     KernelRun, RunStats, SchemaError, SweepPointRecord,
                     SweepRecord, load_record, load_results_tree,
                     write_record_atomic)

__all__ = [
    "SCHEMA_VERSION", "RUN_STATS_FIELDS", "SchemaError",
    "RunStats", "EngineStats", "BenchRecord", "BenchSummary",
    "KernelRun", "KernelPerfRecord", "SweepPointRecord", "SweepRecord",
    "CampaignRecord", "ChaosArtifact",
    "HistorySnapshot", "load_record", "load_results_tree",
    "write_record_atomic",
    "FIGURES", "FigureData", "FidelityCheck", "PaperRef", "Series",
    "generate_report", "ReportResult",
    "append_snapshot", "git_sha", "load_history", "snapshot_from_summary",
    "trajectory_figures",
]
