"""The unified results schema: every JSON artifact this repo archives,
as versioned dataclasses with one loader.

Before this module each producer invented its own dict shape: the bench
conftest wrote ``{"bench": ..., "data": ...}``, the sweep cache wrote
``{"spec": ..., "result": ...}``, the chaos engine wrote reproducers, the
kernel-perf bench and ``repro perf`` each wrote their own performance
blob.  The reporting layer has to read *all* of them, so the shapes live
here, in one place, stamped with ``"schema": SCHEMA_VERSION`` and a
``"kind"`` discriminator:

=========================  ==============================================
``repro-run``              one experiment's slim result (:class:`RunStats`)
``repro-bench``            one bench's archived JSON (:class:`BenchRecord`)
``repro-bench-summary``    the merged ``BENCH_summary.json``
``repro-kernel-perf``      kernel events/sec (:class:`KernelPerfRecord`)
``repro-sweep-point``      one sweep-cache entry (:class:`SweepPointRecord`)
``repro-chaos-reproducer`` a shrunk chaos artifact (:class:`ChaosArtifact`)
``repro-history-snapshot`` one bench run's perf snapshot
``repro-sweep``            a ``repro sweep --json`` result set
``repro-campaign``         a farm run manifest (:class:`CampaignRecord`)
=========================  ==============================================

:func:`load_record` sniffs any archived document -- including every
*pre-schema* (v0) shape already on disk -- and migrates it to the current
dataclass, so old results trees keep rendering.  This module imports
nothing from the protocol stack: the simulator, the engine, the benches,
and the report generator all depend on it, never the other way around.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Current schema version.  Bump when a dataclass field changes meaning;
#: add a migration step in the matching ``from_dict`` when you do.
SCHEMA_VERSION = 1

#: The slim, cacheable subset of an ExperimentResult -- the field list the
#: sweep engine's cache, the ``--json`` CLI outputs, and the report all
#: agree on.  Order matters: it is the CSV column order too.
RUN_STATS_FIELDS = (
    "network", "nic_mode", "num_nodes", "cycles", "sent", "delivered",
    "completed", "order_violations", "mean_network_latency",
    "mean_total_latency", "abandoned", "stall_report", "violations",
)


class SchemaError(ValueError):
    """An archived document does not match any known kind/version."""


def _stamp(kind: str, payload: Dict) -> Dict:
    """Prefix a payload with the schema discriminators."""
    doc = {"schema": SCHEMA_VERSION, "kind": kind}
    doc.update(payload)
    return doc


@dataclass
class RunStats:
    """One experiment's result as plain data (kind ``repro-run``).

    This is the shape the sweep cache stores, ``repro run --json`` prints,
    and :class:`BenchRecord` data cells may embed -- duck-typed from
    :class:`~repro.experiments.runner.ExperimentResult` but holding no
    live simulator objects.
    """

    network: str = ""
    nic_mode: str = ""
    num_nodes: int = 0
    cycles: int = 0
    sent: int = 0
    delivered: int = 0
    completed: bool = True
    order_violations: int = 0
    mean_network_latency: float = 0.0
    mean_total_latency: float = 0.0
    abandoned: int = 0
    stall_report: Optional[str] = None
    violations: List[Dict] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Packets delivered per 1000 cycles."""
        return 1000.0 * self.delivered / self.cycles if self.cycles else 0.0

    @classmethod
    def from_result(cls, result) -> "RunStats":
        """Slim a live ExperimentResult (duck-typed) down to data."""
        return cls(**{name: getattr(result, name) for name in RUN_STATS_FIELDS})

    def to_dict(self, stamped: bool = False) -> Dict:
        payload = {name: getattr(self, name) for name in RUN_STATS_FIELDS}
        return _stamp("repro-run", payload) if stamped else payload

    @classmethod
    def from_dict(cls, doc: Dict) -> "RunStats":
        known = {k: doc[k] for k in RUN_STATS_FIELDS if k in doc}
        return cls(**known)


@dataclass
class EngineStats:
    """A sweep engine's cache-hit ledger (embedded, never a file of its own)."""

    points: int = 0
    cache_hits: int = 0
    executed: int = 0
    errors: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    hit_rate: float = 0.0
    wall_s: float = 0.0

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict) -> "EngineStats":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in names})


@dataclass
class BenchRecord:
    """One bench's archived JSON (kind ``repro-bench``).

    ``data`` holds whatever the bench recorded (figure rows, fits,
    heatmaps); ``engine`` is the cache ledger when the bench ran through a
    :class:`~repro.experiments.SweepEngine`.  v0 files (no ``schema`` key,
    engine stats buried inside ``data``) migrate transparently.
    """

    bench: str
    bench_cycles: int = 0
    bench_seed: int = 0
    wall_seconds: float = 0.0
    data: Dict = field(default_factory=dict)
    engine: Optional[EngineStats] = None

    def to_dict(self) -> Dict:
        return _stamp("repro-bench", {
            "bench": self.bench,
            "bench_cycles": self.bench_cycles,
            "bench_seed": self.bench_seed,
            "wall_seconds": self.wall_seconds,
            "data": self.data,
            "engine": None if self.engine is None else self.engine.to_dict(),
        })

    @classmethod
    def from_dict(cls, doc: Dict) -> "BenchRecord":
        data = dict(doc.get("data") or {})
        engine = doc.get("engine")
        if engine is None and "engine" in data:
            # v0: the conftest's engine fixture recorded its stats as a
            # plain data cell; hoist it to the typed field.
            engine = data.pop("engine")
        return cls(
            bench=doc.get("bench", ""),
            bench_cycles=int(doc.get("bench_cycles", 0) or 0),
            bench_seed=int(doc.get("bench_seed", 0) or 0),
            wall_seconds=float(doc.get("wall_seconds", 0.0) or 0.0),
            data=data,
            engine=None if engine is None else EngineStats.from_dict(engine),
        )


@dataclass
class KernelRun:
    """One scheduler's measured throughput inside a kernel-perf record."""

    events: int = 0
    loop_seconds: float = 0.0
    events_per_sec: float = 0.0
    delivered: int = 0

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict) -> "KernelRun":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in names})


@dataclass
class KernelPerfRecord:
    """Kernel events/sec on the fixed reference workload (kind
    ``repro-kernel-perf``): what ``repro perf --json`` emits and what the
    kernel bench embeds in ``BENCH_summary.json``."""

    workload: Dict = field(default_factory=dict)
    kernels: Dict[str, KernelRun] = field(default_factory=dict)
    #: Historical scalar: bucket events/sec over heap (kept stable so old
    #: trajectory points stay comparable).
    speedup: float = 0.0
    #: Per-kernel events/sec over the heap baseline, one entry per
    #: registered non-heap kernel that ran (``{"bucket": ..., "epoch": ...}``).
    speedups: Dict[str, float] = field(default_factory=dict)
    parity_ok: bool = True

    def __post_init__(self) -> None:
        # Derive the per-kernel map when a caller (or a pre-epoch JSON
        # file) supplied only the kernel runs: keeps direct construction
        # and from_dict round-trips equal.
        if not self.speedups and "heap" in self.kernels:
            heap_eps = self.kernels["heap"].events_per_sec
            if heap_eps:
                self.speedups = {
                    name: round(run.events_per_sec / heap_eps, 3)
                    for name, run in self.kernels.items()
                    if name != "heap" and run.events_per_sec
                }

    def to_dict(self) -> Dict:
        return _stamp("repro-kernel-perf", {
            "workload": self.workload,
            "kernels": {k: run.to_dict() for k, run in self.kernels.items()},
            "speedup": self.speedup,
            "speedups": self.speedups,
            "parity_ok": self.parity_ok,
        })

    @classmethod
    def from_dict(cls, doc: Dict) -> "KernelPerfRecord":
        kernels = {
            name: KernelRun.from_dict(run)
            for name, run in (doc.get("kernels") or {}).items()
        }
        heap_eps = kernels["heap"].events_per_sec if "heap" in kernels else 0.0
        speedup = doc.get("speedup", 0.0)
        if not speedup and heap_eps and "bucket" in kernels:
            # v0 `repro perf --json` files carry no speedup field.
            speedup = round(kernels["bucket"].events_per_sec / heap_eps, 3)
        speedups = {
            k: float(v) for k, v in (doc.get("speedups") or {}).items()
        }
        return cls(
            workload=dict(doc.get("workload") or {}),
            kernels=kernels,
            speedup=speedup,
            speedups=speedups,
            parity_ok=bool(doc.get("parity_ok", True)),
        )


@dataclass
class SweepPointRecord:
    """One sweep-cache entry (kind ``repro-sweep-point``): the spec that
    ran, the code version it ran under, and the slim result."""

    spec: Dict = field(default_factory=dict)
    code_version: str = ""
    result: RunStats = field(default_factory=RunStats)

    def to_dict(self) -> Dict:
        return _stamp("repro-sweep-point", {
            "spec": self.spec,
            "code_version": self.code_version,
            "result": self.result.to_dict(),
        })

    @classmethod
    def from_dict(cls, doc: Dict) -> "SweepPointRecord":
        return cls(
            spec=dict(doc.get("spec") or {}),
            code_version=doc.get("code_version", ""),
            result=RunStats.from_dict(doc.get("result") or {}),
        )


@dataclass
class ChaosArtifact:
    """A shrunk chaos reproducer (kind ``repro-chaos-reproducer``).

    The chaos engine has always written this kind string; the schema
    wrapper adds typed access and keeps the raw document intact so
    ``repro chaos --replay`` artifacts round-trip byte-compatibly.
    """

    failure: str = ""
    detail: str = ""
    spec: Dict = field(default_factory=dict)
    trial: int = 0
    engine_seed: int = 0
    original_events: int = 0
    shrunk_events: int = 0
    shrink_probes: int = 0
    version: int = 1

    def to_dict(self) -> Dict:
        doc = _stamp("repro-chaos-reproducer", dataclasses.asdict(self))
        doc["kind"] = "repro-chaos-reproducer"
        return doc

    @classmethod
    def from_dict(cls, doc: Dict) -> "ChaosArtifact":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in names})

    @property
    def failure_class(self) -> str:
        """Coarse class for the run-health rollup (``invariant:x`` -> ``invariant``)."""
        return self.failure.split(":", 1)[0] if self.failure else "unknown"


@dataclass
class SweepRecord:
    """A whole ``repro sweep --json`` result set (kind ``repro-sweep``).

    Points are kept as plain dicts (label + the slim outcome counters):
    a sweep point's full spec lives in the cache's
    :class:`SweepPointRecord`, not here -- this envelope is what scripts
    consume instead of parsing the human table.
    """

    sweep: str = ""           # "params" | "load" | "sizes"
    network: str = ""
    points: List[Dict] = field(default_factory=list)
    engine: Optional[EngineStats] = None

    def to_dict(self) -> Dict:
        return _stamp("repro-sweep", {
            "sweep": self.sweep,
            "network": self.network,
            "points": self.points,
            "engine": None if self.engine is None else self.engine.to_dict(),
        })

    @classmethod
    def from_dict(cls, doc: Dict) -> "SweepRecord":
        engine = doc.get("engine")
        return cls(
            sweep=doc.get("sweep", ""),
            network=doc.get("network", ""),
            points=list(doc.get("points") or ()),
            engine=None if engine is None else EngineStats.from_dict(engine),
        )


#: Every per-point state a campaign manifest may carry.  ``pending`` and
#: ``running`` appear only in manifests of interrupted campaigns (a clean
#: finish settles everything); the four terminal states are what the
#: run-health rollup counts.
CAMPAIGN_POINT_STATES = (
    "pending", "running", "done", "errored", "timed_out", "poisoned",
)

#: Campaign point states that count as settled (no further attempts).
CAMPAIGN_TERMINAL_STATES = ("done", "errored", "timed_out", "poisoned")


@dataclass
class CampaignRecord:
    """A farm run manifest (kind ``repro-campaign``).

    This is the on-disk checkpoint :class:`repro.farm.RunManifest` writes
    under ``benchmarks/results/campaigns/`` after every settled point --
    the document ``repro farm --resume`` reads back.  ``specs`` holds the
    full ordered spec dicts (so a resume can verify it is continuing the
    *same* campaign by content hash); ``points`` holds one state dict per
    spec (state, attempts, worker deaths, inline slim result when done);
    ``stats`` is the farm's ledger for the completed portion.
    """

    campaign_id: str = ""
    created: str = ""
    executor: str = "pool"
    code_version: str = ""
    policy: Dict = field(default_factory=dict)
    specs: List[Dict] = field(default_factory=list)
    points: List[Dict] = field(default_factory=list)
    stats: Dict = field(default_factory=dict)

    def state_counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in CAMPAIGN_POINT_STATES}
        for point in self.points:
            counts[point.get("state", "pending")] = (
                counts.get(point.get("state", "pending"), 0) + 1
            )
        return counts

    @property
    def complete(self) -> bool:
        """Every point reached a terminal state (done or diagnosed)."""
        return all(
            point.get("state") in CAMPAIGN_TERMINAL_STATES
            for point in self.points
        )

    def to_dict(self) -> Dict:
        return _stamp("repro-campaign", {
            "campaign_id": self.campaign_id,
            "created": self.created,
            "executor": self.executor,
            "code_version": self.code_version,
            "policy": self.policy,
            "specs": self.specs,
            "points": self.points,
            "stats": self.stats,
        })

    @classmethod
    def from_dict(cls, doc: Dict) -> "CampaignRecord":
        return cls(
            campaign_id=doc.get("campaign_id", ""),
            created=doc.get("created", ""),
            executor=doc.get("executor", "pool"),
            code_version=doc.get("code_version", ""),
            policy=dict(doc.get("policy") or {}),
            specs=list(doc.get("specs") or ()),
            points=list(doc.get("points") or ()),
            stats=dict(doc.get("stats") or {}),
        )


@dataclass
class BenchSummary:
    """The merged ``BENCH_summary.json`` (kind ``repro-bench-summary``)."""

    benches: Dict[str, BenchRecord] = field(default_factory=dict)
    kernel: Optional[KernelPerfRecord] = None
    #: Farm campaigns found under ``results/campaigns/`` when the bench
    #: session closed: campaign id -> :class:`CampaignRecord` (pre-farm
    #: summaries simply carry none).
    campaigns: Dict[str, CampaignRecord] = field(default_factory=dict)

    @property
    def bench_count(self) -> int:
        return len(self.benches)

    def to_dict(self) -> Dict:
        return _stamp("repro-bench-summary", {
            "bench_count": self.bench_count,
            "benches": {
                name: self.benches[name].to_dict()
                for name in sorted(self.benches)
            },
            "kernel": None if self.kernel is None else self.kernel.to_dict(),
            "campaigns": {
                cid: self.campaigns[cid].to_dict()
                for cid in sorted(self.campaigns)
            },
        })

    @classmethod
    def from_dict(cls, doc: Dict) -> "BenchSummary":
        benches = {
            name: BenchRecord.from_dict(bench)
            for name, bench in (doc.get("benches") or {}).items()
        }
        kernel = doc.get("kernel")
        if kernel is None:
            # v0 summaries surface kernel perf only when the bench ran;
            # recover it from the bench record either way.
            bench = benches.get("test_kernel_events_per_sec")
            if bench is not None:
                kernel = bench.data.get("kernel_perf")
        return cls(
            benches=benches,
            kernel=None if kernel is None else KernelPerfRecord.from_dict(kernel),
            campaigns={
                cid: CampaignRecord.from_dict(campaign)
                for cid, campaign in (doc.get("campaigns") or {}).items()
            },
        )


@dataclass
class HistorySnapshot:
    """One bench run's perf trajectory point (kind ``repro-history-snapshot``).

    Appended to ``benchmarks/results/history/`` at the end of every bench
    session -- never overwritten -- so consecutive runs accumulate into a
    per-commit performance trajectory.
    """

    timestamp: str = ""
    git_sha: str = "unknown"
    bench_count: int = 0
    #: Benches that actually executed in the session that took the snapshot
    #: (the merged summary may carry older, stale siblings).
    session_benches: List[str] = field(default_factory=list)
    #: Per-bench wall clock from the merged summary, seconds.
    bench_wall: Dict[str, float] = field(default_factory=dict)
    #: Kernel throughput per scheduler, events/sec.
    kernel_events_per_sec: Dict[str, float] = field(default_factory=dict)
    kernel_speedup: float = 0.0
    #: Per-kernel speedup over the heap baseline (one column per
    #: registered non-heap kernel; pre-epoch snapshots carry only the
    #: bucket-vs-heap scalar above).
    kernel_speedups: Dict[str, float] = field(default_factory=dict)
    bench_cycles: int = 0
    #: Farm campaign totals at snapshot time (``campaigns``, ``points``,
    #: ``retries``, ``worker_deaths``, ``poisoned``, ``resumed``); empty
    #: for pre-farm snapshots and farm-less sessions.
    farm: Dict[str, int] = field(default_factory=dict)

    @property
    def wall_total(self) -> float:
        return sum(self.bench_wall.values())

    def to_dict(self) -> Dict:
        return _stamp("repro-history-snapshot", dataclasses.asdict(self))

    @classmethod
    def from_dict(cls, doc: Dict) -> "HistorySnapshot":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in names})


#: kind -> dataclass, for the stamped (v1+) path of :func:`load_record`.
_KINDS = {
    "repro-run": RunStats,
    "repro-bench": BenchRecord,
    "repro-bench-summary": BenchSummary,
    "repro-kernel-perf": KernelPerfRecord,
    "repro-sweep-point": SweepPointRecord,
    "repro-sweep": SweepRecord,
    "repro-chaos-reproducer": ChaosArtifact,
    "repro-history-snapshot": HistorySnapshot,
    "repro-campaign": CampaignRecord,
}


def sniff_kind(doc: Dict) -> str:
    """Classify an archived document, including every v0 shape on disk."""
    kind = doc.get("kind")
    if kind in _KINDS:
        return kind
    # v0 sniffing: the shapes pre-date the "kind" stamp.
    if "benches" in doc and "bench_count" in doc:
        return "repro-bench-summary"
    if "bench" in doc and "data" in doc:
        return "repro-bench"
    if "campaign_id" in doc and "points" in doc:
        return "repro-campaign"
    if "spec" in doc and "result" in doc:
        return "repro-sweep-point"
    if "kernels" in doc and "workload" in doc:
        return "repro-kernel-perf"
    if all(k in doc for k in ("network", "nic_mode", "delivered")):
        return "repro-run"
    raise SchemaError(
        f"unrecognised results document (kind={kind!r}, "
        f"keys={sorted(doc)[:8]})"
    )


def load_record(source: Union[str, os.PathLike, Dict]):
    """Load any archived results document into its schema dataclass.

    ``source`` is a path or an already-parsed dict.  v0 documents (no
    ``schema`` stamp) are migrated; unknown shapes raise
    :class:`SchemaError`.
    """
    if isinstance(source, (str, os.PathLike)):
        doc = json.loads(Path(source).read_text())
    else:
        doc = source
    if not isinstance(doc, dict):
        raise SchemaError(f"expected a JSON object, got {type(doc).__name__}")
    version = doc.get("schema", 0)
    if version > SCHEMA_VERSION:
        raise SchemaError(
            f"document has schema {version}, newer than this code's "
            f"{SCHEMA_VERSION}; upgrade the repro package to read it"
        )
    return _KINDS[sniff_kind(doc)].from_dict(doc)


def write_record_atomic(path: Union[str, os.PathLike], record) -> None:
    """Write a record's JSON atomically (tmp + rename), creating parents.

    Atomicity matters for the artifacts that accumulate across partial
    runs (``BENCH_summary.json``, history snapshots): a crashed or
    concurrent writer must never leave a half-written file behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = record.to_dict() if hasattr(record, "to_dict") else record
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=False, default=str) + "\n")
    os.replace(tmp, path)


def load_results_tree(results_dir: Union[str, os.PathLike]) -> BenchSummary:
    """Build a :class:`BenchSummary` from a results directory.

    Prefers the per-bench JSON files (the source of truth; the summary is
    derived), falling back to any benches only present in an existing
    ``BENCH_summary.json`` -- so a partially re-run tree keeps its stale
    siblings instead of losing them.
    """
    results_dir = Path(results_dir)
    summary = BenchSummary()
    summary_path = results_dir / "BENCH_summary.json"
    if summary_path.is_file():
        try:
            summary = load_record(summary_path)
        except (SchemaError, ValueError, OSError):
            summary = BenchSummary()
    for path in sorted(results_dir.glob("*.json")):
        if path.name == "BENCH_summary.json":
            continue
        try:
            record = load_record(path)
        except (SchemaError, ValueError, OSError):
            continue
        if isinstance(record, BenchRecord):
            summary.benches[path.stem] = record
    kernel_bench = summary.benches.get("test_kernel_events_per_sec")
    if kernel_bench is not None and "kernel_perf" in kernel_bench.data:
        summary.kernel = KernelPerfRecord.from_dict(
            kernel_bench.data["kernel_perf"]
        )
    # Farm campaign manifests: the farm's own directory plus the chaos
    # engine's (interrupted batches park their ledger under chaos/).
    for sub in ("campaigns", "chaos/campaigns"):
        campaign_dir = results_dir / sub
        if not campaign_dir.is_dir():
            continue
        for path in sorted(campaign_dir.glob("*.json")):
            try:
                record = load_record(path)
            except (SchemaError, ValueError, OSError):
                continue
            if isinstance(record, CampaignRecord):
                summary.campaigns[record.campaign_id] = record
    return summary
