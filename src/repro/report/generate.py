"""``repro report``: regenerate the paper's figures from archived results.

Reads a ``benchmarks/results/`` tree (per-bench JSON, chaos reproducers,
the history archive), builds every registered figure
(:data:`~repro.report.figures.FIGURES`), renders plots, and writes a
markdown (or html) report::

    REPORT.md            index: fidelity dashboard, run health, trajectory
    fig2.md .. table3.md one page per paper artifact
    figures/*.svg|png    the plots (SVG without matplotlib)

The generator is deterministic for a given results tree -- no wall-clock
stamps in the output -- so tests can diff it byte-for-byte.  Progress is
emitted over the obs bus (``report_page`` / ``report_done``) when one is
passed in.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .figures import FIGURES, FigureData
from .history import load_history, trajectory_figures
from .plotting import HAVE_MATPLOTLIB, render_figure
from .schema import (BenchSummary, ChaosArtifact, EngineStats, SchemaError,
                     load_record, load_results_tree)


@dataclass
class ReportResult:
    """What :func:`generate_report` produced (for the CLI and tests)."""

    out_dir: Path
    index: Path
    pages: List[str] = field(default_factory=list)
    figures_rendered: int = 0
    figures_missing: List[str] = field(default_factory=list)
    checks_total: int = 0
    checks_ok: int = 0
    history_points: int = 0


def _slug_ok(check_ok: bool, divergence: bool) -> str:
    if check_ok:
        return "✅"
    return "⚠️ known divergence" if divergence else "❌"


def _fidelity_table(fig: FigureData) -> List[str]:
    lines = ["| claim | measured | paper | Δ | status |",
             "|---|---:|---:|---:|---|"]
    for check in fig.fidelity:
        lines.append(
            f"| {check.claim} | {check.measured:g}{check.unit} "
            f"| {check.reference:g}{check.unit} "
            f"| {check.delta:+g} | {_slug_ok(check.ok, check.divergence)} |"
        )
    return lines


def _md_table(rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(rows[0]) + " |",
             "|" + "---|" * len(rows[0])]
    for row in rows[1:]:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def _figure_page(fig: FigureData, image: Optional[Path],
                 results_dir: Path) -> str:
    lines = [f"# {fig.title}", ""]
    if fig.missing:
        lines += [f"*Figure unavailable: {fig.missing}.*", ""]
        text = results_dir / f"{fig.source_bench}.txt"
        if text.is_file():
            lines += ["Archived bench text output:", "", "```"]
            lines += text.read_text().splitlines()[:80]
            lines += ["```", ""]
        return "\n".join(lines) + "\n"
    if image is not None:
        lines += [f"![{fig.name}](figures/{image.name})", ""]
    if fig.caption:
        lines += [fig.caption, ""]
    for ref in fig.paper_refs:
        marker = f" (overlay at {ref.value:g})" if ref.value is not None else ""
        lines.append(f"- **paper reference:** {ref.label}{marker}")
    if fig.paper_refs:
        lines.append("")
    if fig.fidelity:
        lines += ["## Fidelity vs the paper", ""]
        lines += _fidelity_table(fig)
        lines.append("")
    if fig.table:
        lines += ["## Data", ""]
        lines += _md_table(fig.table)
        lines.append("")
    lines.append(f"*Source: `benchmarks/results/{fig.source_bench}.json`.*")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------- run health

def _load_chaos_artifacts(results_dir: Path) -> List[ChaosArtifact]:
    chaos_dir = results_dir / "chaos"
    if not chaos_dir.is_dir():
        return []
    artifacts = []
    for path in sorted(chaos_dir.glob("*.json")):
        try:
            record = load_record(path)
        except (SchemaError, ValueError, OSError):
            continue
        if isinstance(record, ChaosArtifact):
            artifacts.append(record)
    return artifacts


def _run_health(summary: BenchSummary,
                artifacts: List[ChaosArtifact]) -> List[str]:
    lines = ["## Run health", ""]
    total = EngineStats()
    engine_rows = [["bench", "wall s", "points", "cache hits", "executed",
                    "errors", "timeouts"]]
    for name in sorted(summary.benches):
        bench = summary.benches[name]
        eng = bench.engine
        if eng is None:
            continue
        total.points += eng.points
        total.cache_hits += eng.cache_hits
        total.executed += eng.executed
        total.errors += eng.errors
        total.timeouts += eng.timeouts
        total.wall_s += bench.wall_seconds
        engine_rows.append([
            name.replace("test_", ""), f"{bench.wall_seconds:.1f}",
            str(eng.points), str(eng.cache_hits), str(eng.executed),
            str(eng.errors), str(eng.timeouts),
        ])
    if len(engine_rows) > 1:
        hit_rate = (100.0 * total.cache_hits / total.points
                    if total.points else 0.0)
        lines += [
            f"Sweep-engine totals across {len(engine_rows) - 1} benches: "
            f"**{total.points} points**, {total.cache_hits} cache hits "
            f"({hit_rate:.0f}%), {total.executed} executed, "
            f"{total.errors} errors, {total.timeouts} timeouts.",
            "",
        ]
        lines += _md_table(engine_rows)
        lines.append("")
    else:
        lines += ["No sweep-engine statistics in this tree (benches "
                  "pre-date engine recording, or none ran sweeps).", ""]
    if summary.kernel is not None:
        parity = "✅ byte-identical" if summary.kernel.parity_ok else "❌ MISMATCH"
        lines += [
            f"Kernel parity (bucket vs heap metrics JSON): {parity}; "
            f"speedup {summary.kernel.speedup:.2f}x.",
            "",
        ]
    if summary.campaigns:
        rows = [["campaign", "executor", "points", "done", "resumed",
                 "retries", "worker deaths", "poisoned", "state"]]
        for cid in sorted(summary.campaigns):
            campaign = summary.campaigns[cid]
            counts = campaign.state_counts()
            stats = campaign.stats
            rows.append([
                cid, campaign.executor, str(len(campaign.points)),
                str(counts.get("done", 0)),
                str(stats.get("resumed", 0)),
                str(stats.get("retries", 0)),
                str(stats.get("worker_deaths", 0)),
                str(counts.get("poisoned", 0)),
                "complete" if campaign.complete else "interrupted",
            ])
        lines += [
            f"**Farm campaigns on disk: {len(summary.campaigns)}** -- "
            "resumable run manifests from `repro farm` / `repro chaos`; "
            "an `interrupted` campaign finishes with "
            "`repro farm --resume <manifest>`.",
            "",
        ]
        lines += _md_table(rows)
        lines.append("")
    if artifacts:
        by_class: Dict[str, int] = {}
        for artifact in artifacts:
            by_class[artifact.failure_class] = (
                by_class.get(artifact.failure_class, 0) + 1
            )
        rollup = ", ".join(f"{k}: {by_class[k]}" for k in sorted(by_class))
        lines += [
            f"**Chaos reproducers on disk: {len(artifacts)}** ({rollup}) -- "
            "each is a shrunk failing fault plan; replay with "
            "`repro chaos --replay <file>`.",
            "",
        ]
        rows = [["failure", "trial", "events (orig→shrunk)", "probes"]]
        for artifact in artifacts:
            rows.append([
                artifact.failure, str(artifact.trial),
                f"{artifact.original_events}→{artifact.shrunk_events}",
                str(artifact.shrink_probes),
            ])
        lines += _md_table(rows)
        lines.append("")
    else:
        lines += ["Chaos: no reproducer artifacts on disk "
                  "(`benchmarks/results/chaos/` is clean).", ""]
    return lines


# -------------------------------------------------------------------- index

def _index(summary: BenchSummary, figures: List[FigureData],
           trajectories: List[FigureData], history_points: int,
           artifacts: List[ChaosArtifact], fmt: str) -> str:
    ext = "html" if fmt == "html" else "md"
    lines = [
        "# NIFDY reproduction report",
        "",
        f"Regenerated from `benchmarks/results/` "
        f"({summary.bench_count} archived benches"
        + (", kernel perf present" if summary.kernel else "")
        + f", {history_points} history snapshot"
        + ("s" if history_points != 1 else "") + ").",
        "",
        "## Fidelity dashboard",
        "",
        "| page | status | fidelity checks | worst Δ |",
        "|---|---|---|---|",
    ]
    for fig in figures:
        link = f"[{fig.title}]({fig.name}.{ext})"
        if fig.missing:
            lines.append(f"| {link} | ⬜ no data | – | – |")
            continue
        ok = sum(1 for c in fig.fidelity if c.ok)
        hard_fails = [c for c in fig.fidelity if not c.ok and not c.divergence]
        soft_fails = [c for c in fig.fidelity if not c.ok and c.divergence]
        if hard_fails:
            status = "❌ check failed"
        elif soft_fails:
            status = "⚠️ known divergence"
        else:
            status = "✅"
        worst = max(fig.fidelity, key=lambda c: abs(c.delta), default=None)
        worst_txt = (f"{worst.delta:+g}{worst.unit}" if worst else "–")
        lines.append(
            f"| {link} | {status} | {ok}/{len(fig.fidelity)} | {worst_txt} |"
        )
    lines.append("")

    lines += ["## Perf trajectory", ""]
    if trajectories:
        for fig in trajectories:
            img_ext = "png" if HAVE_MATPLOTLIB else "svg"
            lines += [f"![{fig.name}](figures/{fig.name}.{img_ext})", ""]
            if fig.caption:
                lines += [fig.caption, ""]
    else:
        lines += [
            "Fewer than 2 history snapshots under "
            "`benchmarks/results/history/` -- run the benches twice "
            "(`PYTHONPATH=src python -m pytest benchmarks -q`) to start the "
            "trajectory.",
            "",
        ]

    lines += _run_health(summary, artifacts)
    lines += [
        "---",
        "",
        "Paper: *NIFDY: A Low Overhead, High Throughput Network Interface* "
        "(ISCA '95).  Reference values and documented divergences: "
        "EXPERIMENTS.md.",
    ]
    return "\n".join(lines) + "\n"


# --------------------------------------------------------- optional html out

_MD_IMG = re.compile(r"!\[([^\]]*)\]\(([^)]+)\)")
_MD_LINK = re.compile(r"\[([^\]]+)\]\(([^)]+)\)")
_MD_BOLD = re.compile(r"\*\*([^*]+)\*\*")
_MD_CODE = re.compile(r"`([^`]+)`")


def _md_to_html(md: str, title: str) -> str:
    """Small, dependency-free markdown-to-html for the report's own subset
    (headings, tables, images, links, bold, inline code, fenced code)."""
    body: List[str] = []
    in_code = False
    in_table = False

    def inline(s: str) -> str:
        s = (s.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;"))
        s = _MD_IMG.sub(r'<img alt="\1" src="\2" style="max-width:100%">', s)
        s = _MD_LINK.sub(r'<a href="\2">\1</a>', s)
        s = _MD_BOLD.sub(r"<b>\1</b>", s)
        s = _MD_CODE.sub(r"<code>\1</code>", s)
        return s

    for line in md.splitlines():
        if line.startswith("```"):
            body.append("<pre>" if not in_code else "</pre>")
            in_code = not in_code
            continue
        if in_code:
            body.append(line.replace("&", "&amp;").replace("<", "&lt;"))
            continue
        if line.startswith("|"):
            cells = [c.strip() for c in line.strip("|").split("|")]
            if all(set(c) <= {"-", ":", " "} and c for c in cells):
                continue  # separator row
            if not in_table:
                body.append("<table border='1' cellpadding='4' "
                            "style='border-collapse:collapse'>")
                in_table = True
                body.append("<tr>" + "".join(f"<th>{inline(c)}</th>"
                                             for c in cells) + "</tr>")
            else:
                body.append("<tr>" + "".join(f"<td>{inline(c)}</td>"
                                             for c in cells) + "</tr>")
            continue
        if in_table:
            body.append("</table>")
            in_table = False
        if line.startswith("#"):
            level = len(line) - len(line.lstrip("#"))
            body.append(f"<h{level}>{inline(line[level:].strip())}</h{level}>")
        elif line.strip() == "---":
            body.append("<hr>")
        elif line.startswith("- "):
            body.append(f"<li>{inline(line[2:])}</li>")
        elif line.strip():
            body.append(f"<p>{inline(line)}</p>")
    if in_table:
        body.append("</table>")
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{title}</title>"
        "<style>body{font-family:Helvetica,Arial,sans-serif;"
        "max-width:980px;margin:2em auto;padding:0 1em;color:#222}</style>"
        "</head><body>\n" + "\n".join(body) + "\n</body></html>\n"
    )


def _rewrite_links(md: str, ext: str) -> str:
    """Point cross-page links at the right extension for the output format."""
    return re.sub(r"\]\((\w+)\.(?:md|html)\)", rf"](\1.{ext})", md)


# ---------------------------------------------------------------- generator

def generate_report(
    results_dir: Union[str, Path],
    out_dir: Union[str, Path],
    fmt: str = "md",
    bus=None,
) -> ReportResult:
    """Build the whole report; returns what was written."""
    if fmt not in ("md", "html"):
        raise ValueError(f"unknown report format {fmt!r} (want md or html)")
    results_dir = Path(results_dir)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    ext = "html" if fmt == "html" else "md"

    summary = load_results_tree(results_dir)
    history = load_history(results_dir)
    trajectories = trajectory_figures(history)
    artifacts = _load_chaos_artifacts(results_dir)
    result = ReportResult(out_dir=out_dir, index=out_dir / f"REPORT.{ext}",
                          history_points=len(history))

    def emit(page: str) -> None:
        if bus is not None:
            bus.emit(len(result.pages), "report_page", -1, info=page)

    figures = []
    for spec in FIGURES:
        fig = spec.build(spec, summary.benches.get(spec.bench))
        figures.append(fig)
        image = None
        if fig.missing:
            result.figures_missing.append(fig.name)
        else:
            image = render_figure(fig, out_dir / "figures")
            result.figures_rendered += 1
        page_md = _figure_page(fig, image, results_dir)
        page_md = _rewrite_links(page_md, ext)
        page_path = out_dir / f"{fig.name}.{ext}"
        page_path.write_text(
            _md_to_html(page_md, fig.title) if fmt == "html" else page_md
        )
        result.pages.append(page_path.name)
        result.checks_total += len(fig.fidelity)
        result.checks_ok += sum(1 for c in fig.fidelity if c.ok)
        emit(page_path.name)

    for fig in trajectories:
        render_figure(fig, out_dir / "figures")
        result.figures_rendered += 1

    index_md = _rewrite_links(
        _index(summary, figures, trajectories, len(history), artifacts, fmt),
        ext,
    )
    result.index.write_text(
        _md_to_html(index_md, "NIFDY reproduction report")
        if fmt == "html" else index_md
    )
    result.pages.insert(0, result.index.name)
    if bus is not None:
        bus.emit(len(result.pages), "report_done", -1,
                 info=str(result.index))
    return result
