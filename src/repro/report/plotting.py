"""Render :class:`~repro.report.figures.FigureData` to image files.

matplotlib is an optional dependency: when importable we emit PNGs via
the Agg backend, otherwise we fall back to a small deterministic SVG
renderer (pure stdlib, byte-stable output for the same input -- which is
what the report tests diff).  Both paths draw the same content: grouped
bars or marker lines, dashed paper-reference overlay lines, a legend,
and tick labels.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .figures import FigureData, Series

try:  # pragma: no cover - exercised only where matplotlib is installed
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    HAVE_MATPLOTLIB = True
except Exception:  # pragma: no cover
    plt = None
    HAVE_MATPLOTLIB = False

# Okabe-Ito palette: colorblind-safe, stable ordering.
PALETTE = ("#0072B2", "#E69F00", "#009E73", "#D55E00",
           "#CC79A7", "#56B4E9", "#F0E442", "#000000")

_W, _H = 880, 460
_ML, _MR, _MT, _MB = 72, 24, 46, 64


def _fmt(value: float) -> str:
    """Deterministic short number formatting for tick/coordinate output."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _esc(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def nice_ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """~n round tick values covering [lo, hi] (linear scale)."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(n, 1)
    mag = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = mag * mult
        if span / step <= n:
            break
    first = math.floor(lo / step) * step
    ticks = []
    t = first
    while t <= hi + step * 1e-9:
        if t >= lo - step * 1e-9:
            ticks.append(round(t, 10))
        t += step
    return ticks or [lo, hi]


def _log_ticks(lo: float, hi: float) -> List[float]:
    lo = max(lo, 1e-12)
    ticks = []
    e = math.floor(math.log10(lo))
    while 10.0 ** e <= hi * 1.0001:
        if 10.0 ** e >= lo * 0.9999:
            ticks.append(10.0 ** e)
        e += 1
    return ticks or [lo, hi]


def _value_range(fig: FigureData) -> Tuple[float, float]:
    values = [y for s in fig.series for y in s.ys]
    values += [r.value for r in fig.paper_refs if r.value is not None]
    if not values:
        values = [0.0, 1.0]
    lo, hi = min(values), max(values)
    if fig.log_y:
        lo = min((v for v in values if v > 0), default=1.0)
        return lo / 1.5, hi * 1.5 if hi > 0 else 1.0
    if lo > 0 and fig.kind == "bar":
        lo = 0.0  # bars grow from zero
    pad = (hi - lo) * 0.08 or abs(hi) * 0.08 or 1.0
    return lo, hi + pad


class _Svg:
    """Tiny deterministic SVG builder."""

    def __init__(self, width: int, height: int) -> None:
        self.parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}" '
            f'font-family="Helvetica,Arial,sans-serif">',
            f'<rect width="{width}" height="{height}" fill="#ffffff"/>',
        ]

    def line(self, x1: float, y1: float, x2: float, y2: float, color: str,
             width: float = 1.0, dash: str = "") -> None:
        d = f' stroke-dasharray="{dash}"' if dash else ""
        self.parts.append(
            f'<line x1="{_fmt(round(x1, 2))}" y1="{_fmt(round(y1, 2))}" '
            f'x2="{_fmt(round(x2, 2))}" y2="{_fmt(round(y2, 2))}" '
            f'stroke="{color}" stroke-width="{_fmt(width)}"{d}/>'
        )

    def rect(self, x: float, y: float, w: float, h: float, fill: str) -> None:
        self.parts.append(
            f'<rect x="{_fmt(round(x, 2))}" y="{_fmt(round(y, 2))}" '
            f'width="{_fmt(round(w, 2))}" height="{_fmt(round(h, 2))}" '
            f'fill="{fill}"/>'
        )

    def circle(self, x: float, y: float, r: float, fill: str) -> None:
        self.parts.append(
            f'<circle cx="{_fmt(round(x, 2))}" cy="{_fmt(round(y, 2))}" '
            f'r="{_fmt(r)}" fill="{fill}"/>'
        )

    def polyline(self, pts: Sequence[Tuple[float, float]], color: str) -> None:
        coords = " ".join(
            f"{_fmt(round(x, 2))},{_fmt(round(y, 2))}" for x, y in pts
        )
        self.parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )

    def text(self, x: float, y: float, s: str, size: int = 12,
             anchor: str = "start", color: str = "#222222",
             rotate: Optional[float] = None) -> None:
        tr = (f' transform="rotate({_fmt(rotate)} {_fmt(round(x, 2))} '
              f'{_fmt(round(y, 2))})"' if rotate else "")
        self.parts.append(
            f'<text x="{_fmt(round(x, 2))}" y="{_fmt(round(y, 2))}" '
            f'font-size="{size}" text-anchor="{anchor}" '
            f'fill="{color}"{tr}>{_esc(s)}</text>'
        )

    def render(self) -> str:
        return "\n".join(self.parts + ["</svg>"]) + "\n"


def render_svg(fig: FigureData) -> str:
    """Render a figure to a deterministic standalone SVG string."""
    svg = _Svg(_W, _H)
    lo, hi = _value_range(fig)
    plot_w = _W - _ML - _MR
    plot_h = _H - _MT - _MB

    if fig.log_y:
        llo, lhi = math.log10(max(lo, 1e-12)), math.log10(max(hi, lo * 10))

        def ypix(v: float) -> float:
            f = (math.log10(max(v, 1e-12)) - llo) / (lhi - llo or 1.0)
            return _MT + plot_h * (1.0 - f)

        ticks = _log_ticks(lo, hi)
    else:

        def ypix(v: float) -> float:
            f = (v - lo) / ((hi - lo) or 1.0)
            return _MT + plot_h * (1.0 - f)

        ticks = nice_ticks(lo, hi)

    svg.text(_ML, 22, fig.title, size=15, color="#000000")
    # gridlines + y ticks
    for t in ticks:
        y = ypix(t)
        svg.line(_ML, y, _W - _MR, y, "#dddddd")
        label = _fmt(t) if abs(t) < 1e6 else f"{t:.1e}"
        svg.text(_ML - 6, y + 4, label, size=11, anchor="end",
                 color="#555555")
    # axes
    svg.line(_ML, _MT, _ML, _MT + plot_h, "#333333")
    svg.line(_ML, _MT + plot_h, _W - _MR, _MT + plot_h, "#333333")
    if fig.ylabel:
        svg.text(16, _MT + plot_h / 2, fig.ylabel, size=12, anchor="middle",
                 rotate=-90.0)
    if fig.xlabel:
        svg.text(_ML + plot_w / 2, _H - 10, fig.xlabel, size=12,
                 anchor="middle")

    if fig.kind == "bar":
        cats = fig.categories or [""]
        ncat, nser = len(cats), max(len(fig.series), 1)
        slot = plot_w / ncat
        bar_w = min(slot * 0.8 / nser, 46.0)
        group_w = bar_w * nser
        base = ypix(max(lo, min(0.0, hi)) if not fig.log_y else lo)
        for si, series in enumerate(fig.series):
            color = PALETTE[si % len(PALETTE)]
            for ci, value in enumerate(series.ys):
                x = _ML + slot * ci + (slot - group_w) / 2 + bar_w * si
                y = ypix(value)
                top, bot = min(y, base), max(y, base)
                svg.rect(x, top, bar_w - 1.5, max(bot - top, 0.5), color)
        for ci, cat in enumerate(cats):
            svg.text(_ML + slot * (ci + 0.5), _MT + plot_h + 16,
                     str(cat)[:18], size=11, anchor="middle")
    else:  # line
        xs_all = [x for s in fig.series for x in (s.xs or
                  range(len(s.ys)))]
        xlo, xhi = (min(xs_all), max(xs_all)) if xs_all else (0.0, 1.0)

        def xpix(v: float) -> float:
            f = (v - xlo) / ((xhi - xlo) or 1.0)
            return _ML + plot_w * f

        for si, series in enumerate(fig.series):
            color = PALETTE[si % len(PALETTE)]
            xs = series.xs or list(range(len(series.ys)))
            pts = [(xpix(x), ypix(y)) for x, y in zip(xs, series.ys)]
            if len(pts) > 1:
                svg.polyline(pts, color)
            for px, py in pts:
                svg.circle(px, py, 3.2, color)
        if fig.categories and len(fig.categories) == len(set(xs_all)):
            for x, cat in zip(sorted(set(xs_all)), fig.categories):
                svg.text(xpix(x), _MT + plot_h + 16, str(cat)[:14],
                         size=10, anchor="middle")
        else:
            for t in nice_ticks(xlo, xhi, 6):
                svg.text(xpix(t), _MT + plot_h + 16, _fmt(t), size=11,
                         anchor="middle")

    # paper-reference overlay lines
    for ri, ref in enumerate(fig.paper_refs):
        if ref.value is None:
            continue
        y = ypix(ref.value)
        svg.line(_ML, y, _W - _MR, y, "#666666", width=1.4, dash="7 4")
        svg.text(_W - _MR - 4, y - 5, ref.label[:60], size=10, anchor="end",
                 color="#666666")

    # legend (top-right, one row per series)
    lx = _W - _MR - 230
    ly = _MT + 6
    for si, series in enumerate(fig.series):
        color = PALETTE[si % len(PALETTE)]
        svg.rect(lx, ly + si * 17, 11, 11, color)
        svg.text(lx + 16, ly + si * 17 + 10, series.label[:40], size=11)
    return svg.render()


def _render_matplotlib(fig: FigureData, path: Path) -> None:  # pragma: no cover
    plot, ax = plt.subplots(figsize=(8.8, 4.6), dpi=110)
    if fig.kind == "bar":
        cats = fig.categories or [""]
        idx = list(range(len(cats)))
        nser = max(len(fig.series), 1)
        width = 0.8 / nser
        for si, series in enumerate(fig.series):
            offs = [i + (si - (nser - 1) / 2) * width for i in idx]
            ax.bar(offs, series.ys, width=width * 0.92, label=series.label,
                   color=PALETTE[si % len(PALETTE)])
        ax.set_xticks(idx)
        ax.set_xticklabels(cats, rotation=20, ha="right")
    else:
        for si, series in enumerate(fig.series):
            xs = series.xs or list(range(len(series.ys)))
            ax.plot(xs, series.ys, marker="o", label=series.label,
                    color=PALETTE[si % len(PALETTE)])
    for ref in fig.paper_refs:
        if ref.value is not None:
            ax.axhline(ref.value, color="#666666", linestyle="--",
                       linewidth=1.2)
            ax.annotate(ref.label[:60], xy=(0.99, ref.value),
                        xycoords=("axes fraction", "data"),
                        ha="right", va="bottom", fontsize=8, color="#666666")
    if fig.log_y:
        ax.set_yscale("log")
    ax.set_title(fig.title)
    ax.set_ylabel(fig.ylabel)
    ax.set_xlabel(fig.xlabel)
    if fig.series:
        ax.legend(fontsize=8)
    ax.grid(axis="y", color="#dddddd", linewidth=0.6)
    plot.tight_layout()
    plot.savefig(path)
    plt.close(plot)


def render_figure(fig: FigureData, out_dir: Path) -> Path:
    """Render ``fig`` into ``out_dir`` and return the written path.

    PNG via matplotlib when available, deterministic SVG otherwise.
    """
    out_dir.mkdir(parents=True, exist_ok=True)
    if HAVE_MATPLOTLIB:  # pragma: no cover - container has no matplotlib
        path = out_dir / f"{fig.name}.png"
        _render_matplotlib(fig, path)
        return path
    path = out_dir / f"{fig.name}.svg"
    path.write_text(render_svg(fig))
    return path
