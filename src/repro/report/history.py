"""Append-only perf-history archive under ``benchmarks/results/history/``.

Every bench session appends one timestamped, git-SHA-stamped
:class:`~repro.report.schema.HistorySnapshot` instead of overwriting its
summary, so consecutive runs (and consecutive commits) accumulate into a
kernel-throughput and bench-wall-clock trajectory the report can chart.

Layout::

    benchmarks/results/history/
        20260808T141502Z-1a2b3c4.json    # one snapshot per bench session
        20260808T152210Z-5d6e7f8.json

File names sort chronologically; the loader also orders by the embedded
timestamp so hand-copied snapshots still land in the right place.
"""

from __future__ import annotations

import subprocess
import time
from pathlib import Path
from typing import List, Optional, Sequence, Union

from .figures import FigureData, Series
from .schema import (BenchSummary, HistorySnapshot, SchemaError, load_record,
                     write_record_atomic)

HISTORY_DIRNAME = "history"


def git_sha(repo_dir: Optional[Union[str, Path]] = None) -> str:
    """The current short commit SHA, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(repo_dir) if repo_dir else None,
            capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def snapshot_from_summary(
    summary: BenchSummary,
    session_benches: Sequence[str] = (),
    sha: Optional[str] = None,
    timestamp: Optional[str] = None,
) -> HistorySnapshot:
    """Distil the merged summary into one trajectory point."""
    kernel_eps = {}
    speedup = 0.0
    speedups = {}
    if summary.kernel is not None:
        kernel_eps = {
            name: run.events_per_sec
            for name, run in summary.kernel.kernels.items()
        }
        speedup = summary.kernel.speedup
        speedups = dict(summary.kernel.speedups)
    cycles = max(
        (b.bench_cycles for b in summary.benches.values()), default=0
    )
    farm = {}
    if summary.campaigns:
        farm = {"campaigns": len(summary.campaigns)}
        for key in ("points", "retries", "worker_deaths", "poisoned",
                    "resumed"):
            farm[key] = sum(
                int(c.stats.get(key, 0) or 0)
                for c in summary.campaigns.values()
            )
    return HistorySnapshot(
        timestamp=timestamp or time.strftime("%Y%m%dT%H%M%SZ", time.gmtime()),
        git_sha=sha if sha is not None else git_sha(),
        bench_count=summary.bench_count,
        session_benches=sorted(session_benches),
        bench_wall={
            name: round(b.wall_seconds, 3)
            for name, b in sorted(summary.benches.items())
        },
        kernel_events_per_sec=kernel_eps,
        kernel_speedup=speedup,
        kernel_speedups=speedups,
        bench_cycles=cycles,
        farm=farm,
    )


def append_snapshot(results_dir: Union[str, Path],
                    snapshot: HistorySnapshot) -> Path:
    """Write one snapshot into the history dir; never overwrites."""
    history_dir = Path(results_dir) / HISTORY_DIRNAME
    stem = f"{snapshot.timestamp}-{snapshot.git_sha}"
    path = history_dir / f"{stem}.json"
    n = 1
    while path.exists():  # same second + same SHA: suffix, don't clobber
        path = history_dir / f"{stem}-{n}.json"
        n += 1
    write_record_atomic(path, snapshot)
    return path


def load_history(results_dir: Union[str, Path]) -> List[HistorySnapshot]:
    """All snapshots, oldest first (by embedded timestamp, then filename)."""
    history_dir = Path(results_dir) / HISTORY_DIRNAME
    if not history_dir.is_dir():
        return []
    loaded = []
    for path in sorted(history_dir.glob("*.json")):
        try:
            record = load_record(path)
        except (SchemaError, ValueError, OSError):
            continue
        if isinstance(record, HistorySnapshot):
            loaded.append((record.timestamp, path.name, record))
    loaded.sort(key=lambda item: (item[0], item[1]))
    return [record for _, _, record in loaded]


def _labels(snapshots: Sequence[HistorySnapshot]) -> List[str]:
    """Short x-axis labels: the SHA, deduplicated for re-runs of one commit."""
    labels, seen = [], {}
    for snap in snapshots:
        seen[snap.git_sha] = seen.get(snap.git_sha, 0) + 1
        n = seen[snap.git_sha]
        labels.append(snap.git_sha if n == 1 else f"{snap.git_sha}·{n}")
    return labels


def trajectory_figures(snapshots: Sequence[HistorySnapshot],
                       top_benches: int = 5) -> List[FigureData]:
    """Kernel-throughput and bench-wall-clock trajectory charts.

    Needs >= 2 snapshots to make a trajectory; returns [] otherwise.
    """
    if len(snapshots) < 2:
        return []
    xs = [float(i) for i in range(len(snapshots))]
    labels = _labels(snapshots)
    figures = []

    kernels = sorted({k for s in snapshots for k in s.kernel_events_per_sec})
    if kernels:
        fig = FigureData(
            name="trajectory_kernel",
            title="Perf trajectory · kernel events/sec across bench runs",
            kind="line", ylabel="events per second",
            xlabel="bench run (git SHA)", categories=labels,
            source_bench="history/",
        )
        for kernel in kernels:
            fig.series.append(Series(
                kernel, xs=xs,
                ys=[float(s.kernel_events_per_sec.get(kernel, 0.0))
                    for s in snapshots],
            ))
        latest = snapshots[-1].kernel_speedups
        if latest:
            fig.caption = "Latest speedups vs heap: " + ", ".join(
                f"{k} {v:.2f}x" for k, v in sorted(latest.items())
            ) + "."
        else:
            speedups = [s.kernel_speedup for s in snapshots if s.kernel_speedup]
            if speedups:
                fig.caption = (
                    f"Bucket-vs-heap speedup over the window: "
                    f"{min(speedups):.2f}x – {max(speedups):.2f}x "
                    f"(latest {speedups[-1]:.2f}x)."
                )
        figures.append(fig)

    # Wall clock: the total plus the currently slowest benches.
    last_wall = snapshots[-1].bench_wall
    slowest = sorted(last_wall, key=lambda b: -last_wall[b])[:top_benches]
    fig = FigureData(
        name="trajectory_wall",
        title="Perf trajectory · bench wall clock across bench runs",
        kind="line", ylabel="seconds",
        xlabel="bench run (git SHA)", categories=labels,
        source_bench="history/",
        caption=(
            "Total archived bench wall clock plus the "
            f"{len(slowest)} slowest individual benches.  Points reflect "
            "each snapshot's merged summary, so a partial session carries "
            "its stale siblings' last-known timings forward."
        ),
    )
    fig.series.append(Series(
        "total (all benches)", xs=xs,
        ys=[round(s.wall_total, 3) for s in snapshots],
    ))
    for bench in slowest:
        fig.series.append(Series(
            bench.replace("test_", ""), xs=xs,
            ys=[round(s.bench_wall.get(bench, 0.0), 3) for s in snapshots],
        ))
    figures.append(fig)
    return figures
