"""Measured network characteristics (Table 3, left half).

For each topology we report what the paper tabulates: node count, network
volume, bisection bandwidth, hop statistics, and the fitted uncontended
latency formula T_lat(d) = a*d + b -- measured by injecting lone probe
packets between node pairs on an otherwise idle network and regressing
head latency on hop count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..networks import build_network
from ..nic import PlainNIC
from ..packets import FLIT_BYTES, Packet, PacketKind, REQUEST_NET
from ..sim import RngFactory, Simulator


@dataclass
class NetworkCharacteristics:
    """One row of Table 3 (left half)."""

    name: str
    num_nodes: int
    volume_words_per_node: float
    bisection_bytes_per_cycle: float
    avg_hops: float
    max_hops: int
    latency_slope: float      # a in T_lat(d) = a*d + b
    latency_intercept: float  # b
    delivers_in_order: bool

    def t_lat(self, d: float) -> float:
        return self.latency_slope * d + self.latency_intercept

    def formula(self) -> str:
        return f"T_lat(d) = {self.latency_slope:.1f}*d + {self.latency_intercept:.1f}"


def _probe_latency(
    network_name: str, src: int, dst: int, num_nodes: int, packet_words: int
) -> Tuple[int, int]:
    """(hops, head latency) for one probe packet on an idle network."""
    sim = Simulator()
    net = build_network(network_name, sim, num_nodes, rng=RngFactory(7).stream("r"))
    nics = net.attach_nics(lambda node: PlainNIC(sim, node))
    packet = Packet(
        src=src,
        dst=dst,
        kind=PacketKind.SCALAR,
        size_bytes=packet_words * FLIT_BYTES,
        logical_net=REQUEST_NET,
    )
    start = sim.now
    assert nics[src].try_send(packet)
    arrival = {}

    def poll():
        got = nics[dst].receive()
        if got is not None:
            arrival["cycle"] = sim.now
            nics[dst].accepted(got)
        else:
            sim.schedule(1, poll)

    sim.schedule(1, poll)
    sim.run_until(100_000)
    if "cycle" not in arrival:
        raise RuntimeError(
            f"probe {src}->{dst} never arrived on {network_name}"
        )
    hops = net.min_hops(src, dst)
    # Head latency: subtract the tail streaming time already included in the
    # arrival of the last flit at the destination (packet assembled on tail).
    return hops, arrival["cycle"] - start


def measure_latency_fit(
    network_name: str,
    num_nodes: int = 64,
    packet_words: int = 8,
    max_probes: int = 24,
) -> Tuple[float, float]:
    """Fit T_arrival(d) = a*d + b over probe packets at varied distances.

    The measured value is tail-arrival latency of a ``packet_words`` packet,
    the quantity that bounds the scalar-mode round trip."""
    rng = np.random.default_rng(11)
    pairs = set()
    attempts = 0
    while len(pairs) < max_probes and attempts < max_probes * 20:
        attempts += 1
        src = int(rng.integers(num_nodes))
        dst = int(rng.integers(num_nodes))
        if src != dst:
            pairs.add((src, dst))
    xs, ys = [], []
    for src, dst in sorted(pairs):
        hops, latency = _probe_latency(network_name, src, dst, num_nodes, packet_words)
        xs.append(hops)
        ys.append(latency)
    if len(set(xs)) < 2:
        return 0.0, float(np.mean(ys))
    slope, intercept = np.polyfit(xs, ys, 1)
    return float(slope), float(intercept)


def measure_pairwise_bandwidth(
    network_name: str,
    src: int,
    dst: int,
    *,
    num_nodes: int = 64,
    nic_mode: str = "plain",
    bulk: bool = False,
    packets: int = 60,
    packet_words: int = 8,
    seed: int = 0,
) -> float:
    """Measured steady-state bandwidth (bytes/cycle) of one pair's stream
    on an otherwise idle network -- the quantity Equations 1-3 predict.

    The first packet's end-to-end latency is excluded (steady state), so
    the result is payload_bytes / mean inter-arrival time at the receiver.
    """
    from ..experiments import ExperimentSpec, run_experiment
    from ..traffic import TrafficSpec
    from ..traffic.pairstream import PairStreamConfig

    config = PairStreamConfig(
        src=src, dst=dst, packets=packets, bulk=bulk, packet_words=packet_words
    )
    result = run_experiment(ExperimentSpec(
        network=network_name, traffic=TrafficSpec("pairstream", config),
        num_nodes=num_nodes, nic_mode=nic_mode, seed=seed,
        max_cycles=10_000_000,
    ))
    if not result.completed:
        raise RuntimeError(f"pair stream {src}->{dst} did not complete")
    receiver = result.drivers[dst]
    sender = result.drivers[src]
    span = receiver.last_receive_cycle - sender.first_send_cycle
    # steady state: charge (packets - 1) inter-arrival gaps
    per_packet = span / max(1, packets - 1)
    return packet_words * FLIT_BYTES / per_packet


def characterize(
    network_name: str,
    num_nodes: int = 64,
    hop_sample: Optional[int] = 500,
    measure_latency: bool = True,
) -> NetworkCharacteristics:
    """Compute one Table 3 row for ``network_name``."""
    sim = Simulator()
    net = build_network(network_name, sim, num_nodes, rng=RngFactory(7).stream("r"))
    net.attach_nics(lambda node: PlainNIC(sim, node))
    avg_hops, max_hops = net.hop_stats(sample=hop_sample)
    if measure_latency:
        slope, intercept = measure_latency_fit(network_name, num_nodes)
    else:
        slope = intercept = 0.0
    return NetworkCharacteristics(
        name=net.name,
        num_nodes=num_nodes,
        volume_words_per_node=net.volume_words_per_node(),
        bisection_bytes_per_cycle=net.bisection_bandwidth(),
        avg_hops=avg_hops,
        max_hops=max_hops,
        latency_slope=slope,
        latency_intercept=intercept,
        delivers_in_order=net.delivers_in_order,
    )
