"""Analytic models: Equations 1-4, the parameter advisor, Table 3 rows."""

from .advisor import Recommendation, recommend_params
from .bandwidth import (
    NetworkModel,
    PAPER_FATTREE_64,
    PAPER_MESH_8X8,
    min_window_combined_acks,
    min_window_per_packet_acks,
    pairwise_bandwidth,
    roundtrip_time,
    scalar_mode_sufficient,
)
from .characteristics import (
    NetworkCharacteristics,
    characterize,
    measure_latency_fit,
    measure_pairwise_bandwidth,
)

__all__ = [
    "NetworkCharacteristics",
    "NetworkModel",
    "PAPER_FATTREE_64",
    "PAPER_MESH_8X8",
    "Recommendation",
    "characterize",
    "measure_latency_fit",
    "measure_pairwise_bandwidth",
    "min_window_combined_acks",
    "min_window_per_packet_acks",
    "pairwise_bandwidth",
    "recommend_params",
    "roundtrip_time",
    "scalar_mode_sufficient",
]
