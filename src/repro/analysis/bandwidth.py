"""The closed-form performance model of Section 2.4 (Equations 1-4).

All times are in processor cycles; packet sizes in bytes; ``d`` is the hop
count between the two nodes under discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable



def pairwise_bandwidth(
    payload_bytes: float, t_send: float, t_receive: float, t_link: float
) -> float:
    """Equation 1: bandwidth between two nodes without a NIFDY unit.

    ``t_link`` is the time for one packet to cross a link along the path in
    the absence of contention (the hardware limit on inter-packet arrival).
    The bandwidth is limited by the slowest of software send, software
    receive, and the wire."""
    return payload_bytes / max(t_send, t_receive, t_link)


def roundtrip_time(t_lat_d: float, t_ackproc: float) -> float:
    """Equation 2: T_roundtrip(d) = 2 * T_lat(d) + T_ackproc."""
    return 2.0 * t_lat_d + t_ackproc


def scalar_mode_sufficient(
    t_roundtrip: float, t_send: float, t_receive: float, t_link: float
) -> bool:
    """Section 2.4.1: the basic protocol reaches full pairwise bandwidth iff
    T_roundtrip(d) <= max(T_send, T_receive, T_link)."""
    return t_roundtrip <= max(t_send, t_receive, t_link)


def min_window_combined_acks(t_roundtrip: float, t_limit: float) -> int:
    """Equation 3: with one ack per W/2 packets, hiding the round trip needs
    W >= 2 * (T_roundtrip / T_limit - 1), where T_limit is whichever of
    T_receive / T_send / T_link is the per-packet bottleneck."""
    import math

    needed = 2.0 * (t_roundtrip / t_limit - 1.0)
    return max(2, math.ceil(needed))


def min_window_per_packet_acks(t_roundtrip: float, t_limit: float) -> int:
    """Equation 4 (per-packet acks): the window must cover the
    bandwidth-delay product, W >= T_roundtrip / T_limit.

    (The equation's right-hand side is illegible in our scan of the paper;
    this is the standard sliding-window condition it denotes.)"""
    import math

    return max(2, math.ceil(t_roundtrip / t_limit))


@dataclass
class NetworkModel:
    """Analytic description of one network, enough to drive Section 2.4.

    ``t_lat`` maps hop count to one-way latency, e.g. the paper's mesh is
    ``lambda d: 4 * d + 14`` and its fat tree ``lambda d: 5 * d + 2``.
    """

    t_lat: Callable[[int], float]
    max_hops: int
    avg_hops: float
    volume_words_per_node: float
    bisection_bytes_per_cycle: float
    num_nodes: int = 64
    t_ackproc: float = 4.0

    @property
    def bisection_per_node(self) -> float:
        """Bytes/cycle of bisection bandwidth per node -- the quantity that
        decides how restrictive admission control must be (Section 2.4.2)."""
        return self.bisection_bytes_per_cycle / self.num_nodes

    def roundtrip(self, d: int) -> float:
        return roundtrip_time(self.t_lat(d), self.t_ackproc)

    def max_roundtrip(self) -> float:
        return self.roundtrip(self.max_hops)

    def avg_roundtrip(self) -> float:
        return roundtrip_time(self.t_lat(int(round(self.avg_hops))), self.t_ackproc)


#: The two worked examples of Section 2.4.3.
PAPER_MESH_8X8 = NetworkModel(
    t_lat=lambda d: 4 * d + 14,
    max_hops=14,
    avg_hops=6.0,
    volume_words_per_node=8.0,
    bisection_bytes_per_cycle=8.0,
    num_nodes=64,
)

PAPER_FATTREE_64 = NetworkModel(
    t_lat=lambda d: 5 * d + 2,
    max_hops=6,
    avg_hops=5.5,
    volume_words_per_node=10.0,
    bisection_bytes_per_cycle=64.0,
    num_nodes=64,
)
