"""NIFDY parameter selection (Section 2.4): from network characteristics to
(O, B, D, W).

This codifies the reasoning of Sections 2.4.1-2.4.3:

* If the scalar round trip already hides under the software overheads, bulk
  dialogs help only marginally (full fat tree); otherwise size the window
  by Equation 3 (mesh: W = 2, "possibly 3 or 4 if we can afford to be
  generous").
* Small network volume / bisection argue for restrictive O and B (a few
  extra packets congest a small network quickly); large volume argues for
  generous ones to reduce head-of-line blocking.
* D stays 1 unless the receive rate far exceeds the send rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nic import NifdyParams
from ..node import CM5_TIMING, Timing
from .bandwidth import (
    NetworkModel,
    min_window_combined_acks,
    scalar_mode_sufficient,
)


@dataclass
class Recommendation:
    """Advisor output: parameters plus the reasoning behind them."""

    params: NifdyParams
    scalar_sufficient: bool
    max_roundtrip: float
    notes: str


def recommend_params(
    model: NetworkModel,
    timing: Timing = CM5_TIMING,
    t_link: float = 32.0,
    generous: bool = False,
) -> Recommendation:
    """Recommend NIFDY parameters for a network described by ``model``.

    ``t_link`` is the per-packet wire time (32 cycles for an 8-word packet
    on a byte-wide link).  ``generous`` picks the upper end of the ranges
    Section 2.4.3 discusses.
    """
    t_limit = max(timing.t_send, timing.t_receive, t_link)
    rtt = model.max_roundtrip()
    sufficient = scalar_mode_sufficient(rtt, timing.t_send, timing.t_receive, t_link)

    # Volume/bisection decide how restrictive admission should be.  The
    # paper's small mesh (8 words/node, 1/8 B/cycle/node of bisection)
    # gets O=B=4; its fat tree (8x the bisection) gets O=B=8.
    small_network = (
        model.volume_words_per_node < 10 or model.bisection_per_node < 0.5
    )
    if small_network:
        opt_size, pool_size = 4, 4
    else:
        opt_size, pool_size = 8, 8

    if sufficient:
        # Bulk only marginally useful; a modest window "probably won't
        # hurt much either".
        window = 4 if not small_network else 2
        notes = (
            "scalar round trip hides under software overhead; bulk dialogs "
            "help only marginally"
        )
    else:
        window = min_window_combined_acks(rtt, t_limit)
        if generous:
            window *= 2
        if small_network:
            window = min(window, 4)  # congestion dominates on small volume
            notes = (
                "round trip exceeds overhead but volume is small: window "
                "capped to avoid congestion"
            )
        else:
            notes = "window sized by Equation 3 to hide the round trip"
    # Hardware windows are powers of two (sequence numbers are mod 2W).
    window = max(2, 1 << (window - 1).bit_length())

    return Recommendation(
        params=NifdyParams(
            opt_size=opt_size, pool_size=pool_size, dialogs=1, window=window
        ),
        scalar_sufficient=sufficient,
        max_roundtrip=rtt,
        notes=notes,
    )
