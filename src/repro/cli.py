"""Command-line interface: run experiments without writing Python.

Usage (after ``pip install -e .``)::

    python -m repro list
    python -m repro run --network fattree --traffic heavy --nic nifdy
    python -m repro run --network cm5 --traffic cshift --nic plain --nodes 16
    python -m repro run --network fattree --traffic heavy \
        --metrics-out run.json --trace-chrome trace.json \
        --sample-interval 500 --profile
    python -m repro characterize --network mesh2d
    python -m repro advise --network cm5

``run`` prints the same metrics the benchmark suite reports (packets
delivered, throughput, latency percentiles, ordering); ``characterize``
prints a Table-3 row; ``advise`` runs the Section 2.4 parameter advisor on
measured characteristics.

Observability flags on ``run``: ``--metrics-out FILE`` writes the full
structured metrics JSON (totals, latency histograms, per-NIC counters,
protocol event counts); ``--trace-chrome FILE`` writes a Chrome-trace /
Perfetto timeline of packet lifecycles and fault windows;
``--sample-interval N`` records Figure-5-style time series every N cycles
(embedded in the metrics JSON); ``--profile`` prints simulator
self-profiling (events/sec, per-handler wall-clock).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import NetworkModel, characterize, recommend_params
from .faults import FaultPlan
from .metrics import degradation_report, format_degradation
from .experiments import (
    best_params,
    cshift,
    em3d,
    heavy_synthetic,
    hotspot,
    light_synthetic,
    radix_sort,
    run_experiment,
)
from .networks import EXTENSION_NETWORK_NAMES, NETWORK_NAMES
from .nic import NifdyParams
from .obs import Observability, chrome_trace, metrics_json, write_json

TRAFFIC_CHOICES = ("heavy", "light", "cshift", "em3d", "radix", "hotspot")
NIC_CHOICES = ("plain", "buffered", "nifdy", "nifdy-")


def _traffic_factory(name: str):
    if name == "heavy":
        return heavy_synthetic()
    if name == "light":
        return light_synthetic()
    if name == "cshift":
        return cshift()
    if name == "em3d":
        from .traffic import Em3dConfig

        return em3d(Em3dConfig.light_communication(scale=0.15, iterations=2))
    if name == "radix":
        return radix_sort()
    if name == "hotspot":
        return hotspot()
    raise ValueError(f"unknown traffic {name!r}")


def _cmd_list(args) -> int:
    print("networks:")
    for name in NETWORK_NAMES:
        print(f"  {name}")
    print("extension networks:")
    for name in EXTENSION_NETWORK_NAMES:
        print(f"  {name}")
    print("traffic loads:", ", ".join(TRAFFIC_CHOICES))
    print("NIC modes    :", ", ".join(NIC_CHOICES))
    return 0


def _fault_plan_from_args(args) -> Optional[FaultPlan]:
    plan = None
    if args.fault_plan:
        plan = FaultPlan.from_json_file(args.fault_plan)
    if args.fault:
        shorthand = FaultPlan.from_shorthand(args.fault)
        if plan is None:
            plan = shorthand
        else:
            for event in shorthand:
                plan.add(event)
    return plan


def _cmd_run(args) -> int:
    params = None
    if any(v is not None for v in (args.opt, args.pool, args.dialogs, args.window)):
        base = best_params(args.network)
        params = NifdyParams(
            opt_size=args.opt if args.opt is not None else base.opt_size,
            pool_size=args.pool if args.pool is not None else base.pool_size,
            dialogs=args.dialogs if args.dialogs is not None else base.dialogs,
            window=args.window if args.window is not None else base.window,
        )
    plan = _fault_plan_from_args(args)
    fixed_horizon = args.traffic in ("heavy", "light")
    observe = None
    if args.metrics_out or args.trace_chrome or args.sample_interval or args.profile:
        observe = Observability(
            events=bool(args.metrics_out),
            sample_interval=args.sample_interval,
            trace=bool(args.trace_chrome),
            profile=args.profile,
        )
    result = run_experiment(
        args.network,
        _traffic_factory(args.traffic),
        num_nodes=args.nodes,
        nic_mode=args.nic,
        nifdy_params=params,
        run_cycles=args.cycles if fixed_horizon else None,
        max_cycles=args.max_cycles,
        seed=args.seed,
        drop_prob=args.drop,
        max_retries=args.max_retries,
        fault_plan=plan,
        watchdog_cycles=args.watchdog,
        observe=observe,
    )
    hist = result.metrics.network_latency
    print(f"network          : {result.network}")
    print(f"NIC mode         : {result.nic_mode}")
    print(f"cycles simulated : {result.cycles:,}"
          + ("" if result.completed else "  (did NOT complete)"))
    print(f"packets sent     : {result.sent:,}")
    print(f"packets delivered: {result.delivered:,}")
    print(f"throughput       : {result.throughput:.1f} packets/kcycle")
    print(f"latency          : mean {hist.mean:.0f}  p50 {hist.p50}  "
          f"p90 {hist.p90}  p99 {hist.p99}  max {hist.maximum} cycles "
          "(injection -> accept)")
    print(f"order violations : {result.order_violations}")
    if plan is not None or args.drop > 0.0:
        # A faulted run earns its degradation section: how much of the
        # offered traffic survived and what the recovery machinery cost.
        report = degradation_report(
            metrics=result.metrics,
            nics=result.nics,
            network=result.network_obj,
            cycles=result.cycles,
            boundaries=plan.boundaries() if plan else (),
            repairs=[(e.at, e.describe()) for e in plan.repairs()] if plan else (),
            timeline=result.fault_injector.timeline if result.fault_injector else (),
        )
        print(format_degradation(report))
        if result.fault_injector is not None:
            print("fault timeline:")
            for cycle, text in result.fault_injector.timeline:
                print(f"  @{cycle:>9,}  {text}")
    if result.stall_report:
        print(result.stall_report)
    if observe is not None:
        _write_observability(args, plan, result, observe)
    return 0 if result.completed or fixed_horizon else 1


def _write_observability(args, plan, result, observe) -> None:
    """Emit the JSON artifacts / self-profile the obs flags asked for."""
    if args.metrics_out:
        run_args = {
            "network": args.network, "traffic": args.traffic, "nic": args.nic,
            "nodes": args.nodes, "cycles": args.cycles, "seed": args.seed,
            "drop": args.drop, "faults": [e.describe() for e in plan] if plan else [],
        }
        write_json(args.metrics_out, metrics_json(result, run_args=run_args))
        print(f"metrics JSON     : {args.metrics_out}")
    if args.trace_chrome:
        windows = [(e.at, e.until, e.describe()) for e in plan] if plan else []
        timeline = result.fault_injector.timeline if result.fault_injector else []
        trace = chrome_trace(
            observe.tracer,
            fault_windows=windows,
            fault_timeline=timeline,
            run_label=f"{args.network}/{args.traffic}/{args.nic}",
        )
        write_json(args.trace_chrome, trace)
        print(f"chrome trace     : {args.trace_chrome} "
              f"({len(observe.tracer.traces)} packets; open in ui.perfetto.dev)")
    if observe.sampler is not None:
        s = observe.sampler
        print(f"sampler          : {len(s)} samples @ {s.interval} cycles; "
              f"peak pool {s.peak_pool()}, peak OPT {s.peak_opt()}, "
              f"peak in-network {s.peak_in_network()}, "
              f"mean link busy {s.mean_link_busy():.3f}")
    if observe.kernel_profile is not None:
        print(observe.kernel_profile.format())


def _cmd_characterize(args) -> int:
    row = characterize(args.network, args.nodes)
    print(f"network   : {row.name}")
    print(f"volume    : {row.volume_words_per_node:.1f} words/node")
    print(f"bisection : {row.bisection_bytes_per_cycle:.1f} bytes/cycle")
    print(f"hops      : avg {row.avg_hops:.1f}, max {row.max_hops}")
    print(f"latency   : {row.formula()}")
    print(f"in-order  : {row.delivers_in_order}")
    return 0


def _cmd_advise(args) -> int:
    row = characterize(args.network, args.nodes)
    model = NetworkModel(
        t_lat=row.t_lat,
        max_hops=row.max_hops,
        avg_hops=row.avg_hops,
        volume_words_per_node=row.volume_words_per_node,
        bisection_bytes_per_cycle=row.bisection_bytes_per_cycle,
        num_nodes=row.num_nodes,
    )
    rec = recommend_params(model)
    p = rec.params
    print(f"network     : {row.name}")
    print(f"max RTT     : {rec.max_roundtrip:.0f} cycles")
    print(f"recommended : O={p.opt_size} B={p.pool_size} D={p.dialogs} W={p.window}")
    print(f"reasoning   : {rec.notes}")
    tuned = best_params(args.network)
    print(f"library tune: O={tuned.opt_size} B={tuned.pool_size} "
          f"D={tuned.dialogs} W={tuned.window}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NIFDY (ISCA '95) reproduction: simulate MPP networks "
        "with and without NIFDY network interfaces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list networks, traffic loads, NIC modes")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("--network", required=True,
                     choices=NETWORK_NAMES + EXTENSION_NETWORK_NAMES)
    run.add_argument("--traffic", default="heavy", choices=TRAFFIC_CHOICES)
    run.add_argument("--nic", default="nifdy", choices=NIC_CHOICES)
    run.add_argument("--nodes", type=int, default=64)
    run.add_argument("--cycles", type=int, default=20_000,
                     help="measurement window for synthetic traffic")
    run.add_argument("--max-cycles", type=int, default=20_000_000,
                     help="safety bound for run-to-completion workloads")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--drop", type=float, default=0.0,
                     help="per-link packet drop probability (Section 6.2)")
    run.add_argument("--fault-plan", default=None, metavar="FILE",
                     help="JSON fault plan (see docs/protocol.md, Fault model)")
    run.add_argument("--fault", action="append", default=[], metavar="SPEC",
                     help="shorthand fault event, repeatable; e.g. "
                     "'fail@5000-20000:link=ft:up1.0', "
                     "'burst@5000-20000:prob=0.1', "
                     "'burst@1000-3000:prob=0.3,net=ack', "
                     "'pause@1000-4000:node=3'")
    run.add_argument("--max-retries", type=int, default=50,
                     help="retransmission attempts before a packet is "
                     "abandoned (graceful degradation)")
    run.add_argument("--watchdog", type=int, default=200_000,
                     help="liveness watchdog horizon in cycles "
                     "(0 disables; run-to-completion workloads only)")
    run.add_argument("--metrics-out", default=None, metavar="FILE",
                     help="write structured metrics JSON (totals, latency "
                     "histograms, per-NIC counters, protocol event counts)")
    run.add_argument("--trace-chrome", default=None, metavar="FILE",
                     help="write a Chrome-trace/Perfetto JSON timeline of "
                     "packet lifecycles and fault windows")
    run.add_argument("--sample-interval", type=int, default=None, metavar="N",
                     help="sample per-node/per-link state every N cycles "
                     "(time series embedded in the metrics JSON)")
    run.add_argument("--profile", action="store_true",
                     help="print simulator self-profiling "
                     "(events/sec, per-handler wall-clock)")
    run.add_argument("--opt", type=int, default=None, help="NIFDY O")
    run.add_argument("--pool", type=int, default=None, help="NIFDY B")
    run.add_argument("--dialogs", type=int, default=None, help="NIFDY D")
    run.add_argument("--window", type=int, default=None, help="NIFDY W")

    for name in ("characterize", "advise"):
        cmd = sub.add_parser(name, help=f"{name} a network")
        cmd.add_argument("--network", required=True,
                         choices=NETWORK_NAMES + EXTENSION_NETWORK_NAMES)
        cmd.add_argument("--nodes", type=int, default=64)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "characterize": _cmd_characterize,
        "advise": _cmd_advise,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
