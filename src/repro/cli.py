"""Command-line interface: run experiments without writing Python.

Usage (after ``pip install -e .``)::

    python -m repro list
    python -m repro run --network fattree --traffic heavy --nic nifdy
    python -m repro run --network cm5 --traffic cshift --nic plain --nodes 16
    python -m repro run --network fattree --traffic heavy \
        --metrics-out run.json --trace-chrome trace.json \
        --sample-interval 500 --profile
    python -m repro sweep --network fattree --jobs 4
    python -m repro sweep --network mesh2d --kind load --gaps 800,200,0
    python -m repro characterize --network mesh2d
    python -m repro advise --network cm5
    python -m repro perf
    python -m repro report --out report/

``run``, ``sweep``, and ``perf`` accept ``--json`` for machine-readable
stdout (schema-stamped documents from :mod:`repro.report.schema`; the
human output moves to stderr).  ``report`` regenerates the paper's
figures, fidelity deltas, run health, and the perf trajectory from the
archived ``benchmarks/results/`` tree.

``run`` prints the same metrics the benchmark suite reports (packets
delivered, throughput, latency percentiles, ordering); ``sweep`` runs a
parameter/load/size grid through the parallel, cache-backed
:class:`~repro.experiments.SweepEngine` (``--jobs N`` for worker processes,
``--no-cache`` to force re-execution; the ranked table goes to stdout,
progress and cache statistics to stderr so sweep outputs diff cleanly);
``characterize`` prints a Table-3 row; ``advise`` runs the Section 2.4
parameter advisor on measured characteristics.

Observability flags on ``run``: ``--metrics-out FILE`` writes the full
structured metrics JSON (totals, latency histograms, per-NIC counters,
protocol event counts); ``--trace-chrome FILE`` writes a Chrome-trace /
Perfetto timeline of packet lifecycles and fault windows;
``--sample-interval N`` records Figure-5-style time series every N cycles
(embedded in the metrics JSON); ``--profile`` prints simulator
self-profiling (events/sec, per-handler wall-clock).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import List, Optional

from pathlib import Path

from .analysis import NetworkModel, characterize, recommend_params
from .farm import DEFAULT_EXECUTOR, executor_names, interrupts_as_keyboard
from .faults import FaultPlan
from .metrics import degradation_report, format_degradation
from .experiments import (
    ExperimentSpec,
    SweepEngine,
    allreduce,
    best_params,
    offered_load_specs,
    cshift,
    default_param_grid,
    em3d,
    heavy_synthetic,
    hotspot,
    incast,
    light_synthetic,
    perf_reference_spec,
    radix_sort,
    rpc_fanout,
    run_experiment,
    sweep_machine_sizes,
    sweep_nifdy_params,
    sweep_offered_load,
)
from .networks import EXTENSION_NETWORK_NAMES, NETWORK_NAMES
from .nic import CollectiveParams, NifdyParams
from .obs import Observability, chrome_trace, metrics_json, write_json
from .sim import scheduler_names

TRAFFIC_CHOICES = (
    "heavy", "light", "cshift", "em3d", "radix", "hotspot", "incast", "rpc",
    "allreduce",
)
NIC_CHOICES = (
    "plain", "buffered", "nifdy", "nifdy-",
    "reorder-window", "reorder-bitmap", "reorder-jain",
)


def _traffic_factory(name: str):
    if name == "heavy":
        return heavy_synthetic()
    if name == "light":
        return light_synthetic()
    if name == "cshift":
        return cshift()
    if name == "em3d":
        from .traffic import Em3dConfig

        return em3d(Em3dConfig.light_communication(scale=0.15, iterations=2))
    if name == "radix":
        return radix_sort()
    if name == "hotspot":
        return hotspot()
    if name == "incast":
        return incast()
    if name == "rpc":
        return rpc_fanout()
    if name == "allreduce":
        return allreduce()
    raise ValueError(f"unknown traffic {name!r}")


def _cmd_list(args) -> int:
    print("networks:")
    for name in NETWORK_NAMES:
        print(f"  {name}")
    print("extension networks:")
    for name in EXTENSION_NETWORK_NAMES:
        print(f"  {name}")
    print("traffic loads:", ", ".join(TRAFFIC_CHOICES))
    print("NIC modes    :", ", ".join(NIC_CHOICES))
    return 0


def _fault_plan_from_args(args) -> Optional[FaultPlan]:
    plan = None
    if args.fault_plan:
        plan = FaultPlan.from_json_file(args.fault_plan)
    if args.fault:
        shorthand = FaultPlan.from_shorthand(args.fault)
        if plan is None:
            plan = shorthand
        else:
            for event in shorthand:
                plan.add(event)
    return plan


def _cmd_run(args) -> int:
    params = None
    if any(v is not None for v in (args.opt, args.pool, args.dialogs, args.window)):
        base = best_params(args.network)
        params = NifdyParams(
            opt_size=args.opt if args.opt is not None else base.opt_size,
            pool_size=args.pool if args.pool is not None else base.pool_size,
            dialogs=args.dialogs if args.dialogs is not None else base.dialogs,
            window=args.window if args.window is not None else base.window,
        )
    plan = _fault_plan_from_args(args)
    fixed_horizon = args.traffic in ("heavy", "light")
    observe = None
    if args.metrics_out or args.trace_chrome or args.sample_interval or args.profile:
        observe = Observability(
            events=bool(args.metrics_out),
            sample_interval=args.sample_interval,
            trace=bool(args.trace_chrome),
            profile=args.profile,
        )
    collective_params = None
    if args.barrier == "nic":
        collective_params = CollectiveParams(
            barrier="nic", fanout=args.coll_fanout,
        )
    result = run_experiment(ExperimentSpec(
        network=args.network,
        traffic=_traffic_factory(args.traffic),
        num_nodes=args.nodes,
        nic_mode=args.nic,
        nifdy_params=params,
        collective_params=collective_params,
        run_cycles=args.cycles if fixed_horizon else None,
        max_cycles=args.max_cycles,
        seed=args.seed,
        drop_prob=args.drop,
        max_retries=args.max_retries,
        fault_plan=plan,
        network_overrides={"path_skew": args.path_skew}
        if args.path_skew else None,
        watchdog_cycles=args.watchdog,
        kernel=args.kernel,
        observe=observe,
    ))
    if args.json:
        # Machine-readable mode: the schema-stamped RunStats document is
        # the only thing on stdout; the human stats move to stderr.
        with contextlib.redirect_stdout(sys.stderr):
            _print_run_human(args, plan, result, observe)
        print(json.dumps(result.run_stats().to_dict(stamped=True),
                         indent=2, default=str))
    else:
        _print_run_human(args, plan, result, observe)
    return 0 if result.completed or fixed_horizon else 1


def _print_run_human(args, plan, result, observe) -> None:
    hist = result.metrics.network_latency
    print(f"network          : {result.network}")
    print(f"NIC mode         : {result.nic_mode}")
    print(f"cycles simulated : {result.cycles:,}"
          + ("" if result.completed else "  (did NOT complete)"))
    print(f"packets sent     : {result.sent:,}")
    print(f"packets delivered: {result.delivered:,}")
    print(f"throughput       : {result.throughput:.1f} packets/kcycle")
    print(f"latency          : mean {hist.mean:.0f}  p50 {hist.p50}  "
          f"p90 {hist.p90}  p99 {hist.p99}  max {hist.maximum} cycles "
          "(injection -> accept)")
    print(f"order violations : {result.order_violations}")
    engines = [nic.collective for nic in result.nics
               if getattr(nic, "collective", None) is not None]
    if engines:
        blat = result.metrics.barrier_latency
        print(f"collectives      : "
              f"{sum(e.coll_completed for e in engines)} completed on the "
              f"NIC tree, {sum(e.coll_retransmits for e in engines)} "
              f"retransmit(s), {sum(e.coll_duplicates for e in engines)} "
              f"duplicate(s); barrier latency mean {blat.mean:.0f} "
              f"p99 {blat.p99} cycles")
    depth = result.metrics.reorder_depth
    if depth.count:
        print(f"reorder depth    : p50 {depth.p50}  p99 {depth.p99}  "
              f"max {depth.maximum} over "
              f"{len(result.metrics.reorder_depth_by_pair)} (src,dst) pairs")
    if plan is not None or args.drop > 0.0:
        # A faulted run earns its degradation section: how much of the
        # offered traffic survived and what the recovery machinery cost.
        report = degradation_report(
            metrics=result.metrics,
            nics=result.nics,
            network=result.network_obj,
            cycles=result.cycles,
            boundaries=plan.boundaries() if plan else (),
            repairs=[(e.at, e.describe()) for e in plan.repairs()] if plan else (),
            timeline=result.fault_injector.timeline if result.fault_injector else (),
        )
        print(format_degradation(report))
        if result.fault_injector is not None:
            print("fault timeline:")
            for cycle, text in result.fault_injector.timeline:
                print(f"  @{cycle:>9,}  {text}")
    if result.stall_report:
        print(result.stall_report)
    if observe is not None:
        _write_observability(args, plan, result, observe)


def _write_observability(args, plan, result, observe) -> None:
    """Emit the JSON artifacts / self-profile the obs flags asked for."""
    if args.metrics_out:
        run_args = {
            "network": args.network, "traffic": args.traffic, "nic": args.nic,
            "nodes": args.nodes, "cycles": args.cycles, "seed": args.seed,
            "drop": args.drop, "faults": [e.describe() for e in plan] if plan else [],
        }
        write_json(args.metrics_out, metrics_json(result, run_args=run_args))
        print(f"metrics JSON     : {args.metrics_out}")
    if args.trace_chrome:
        windows = [(e.at, e.until, e.describe()) for e in plan] if plan else []
        timeline = result.fault_injector.timeline if result.fault_injector else []
        trace = chrome_trace(
            observe.tracer,
            fault_windows=windows,
            fault_timeline=timeline,
            run_label=f"{args.network}/{args.traffic}/{args.nic}",
        )
        write_json(args.trace_chrome, trace)
        print(f"chrome trace     : {args.trace_chrome} "
              f"({len(observe.tracer.traces)} packets; open in ui.perfetto.dev)")
    if observe.sampler is not None:
        s = observe.sampler
        print(f"sampler          : {len(s)} samples @ {s.interval} cycles; "
              f"peak pool {s.peak_pool()}, peak OPT {s.peak_opt()}, "
              f"peak in-network {s.peak_in_network()}, "
              f"mean link busy {s.mean_link_busy():.3f}")
    if observe.kernel_profile is not None:
        print(observe.kernel_profile.format())


def _int_list(text: str) -> List[int]:
    return [int(item) for item in text.split(",") if item != ""]


def _point_dict(point) -> dict:
    """A SweepPoint as the plain dict the ``--json`` envelope carries."""
    return {
        "label": point.label,
        "delivered": point.delivered,
        "cycles": point.cycles,
        "sent": point.sent,
        "completed": point.completed,
        "order_violations": point.order_violations,
        "abandoned": point.abandoned,
        "throughput": round(point.throughput, 3),
        "cached": point.cached,
        "timed_out": point.timed_out,
        "error": point.error,
    }


def _cmd_sweep(args) -> int:
    """Run a parameter/load/size sweep through the SweepEngine.

    Results (the deterministic table) go to stdout; progress and cache
    statistics go to stderr, so serial and parallel invocations of the
    same grid produce byte-identical stdout -- the property the CI
    parallel-smoke job diffs.  ``--json`` swaps stdout over to a
    schema-stamped ``repro-sweep`` document (the table moves to stderr).
    """
    def progress(done, total, point):
        status = "cache" if point.cached else ("ERROR" if point.error else "ran")
        print(f"  [{done}/{total}] {point.label}: {status}", file=sys.stderr)

    engine = SweepEngine(
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        progress=progress if not args.quiet else None,
        point_timeout=args.point_timeout,
    )
    json_points: List[dict] = []
    stack = contextlib.ExitStack()
    if args.json:
        stack.enter_context(contextlib.redirect_stdout(sys.stderr))
    with stack:
        _run_sweep_table(args, engine, json_points)
    stats = engine.stats
    if args.json:
        from .report.schema import EngineStats, SweepRecord

        record = SweepRecord(
            sweep=args.kind, network=args.network, points=json_points,
            engine=EngineStats.from_dict(stats.as_dict()),
        )
        print(json.dumps(record.to_dict(), indent=2, default=str))
    print(
        f"sweep: {stats.points} point(s), {stats.executed} executed, "
        f"{stats.cache_hits} from cache ({stats.hit_rate:.0%}), "
        f"{stats.errors} error(s), {stats.wall_s:.2f}s "
        f"with --jobs {args.jobs}",
        file=sys.stderr,
    )
    return 1 if stats.errors else 0


def _run_sweep_table(args, engine, json_points: List[dict]) -> None:
    """The human sweep table (stdout unless redirected) + point collection."""
    if args.kind == "params":
        grid = default_param_grid(
            opt_sizes=_int_list(args.opt_grid), windows=_int_list(args.window_grid),
        )
        points = sweep_nifdy_params(
            args.network, grid, num_nodes=args.nodes, run_cycles=args.cycles,
            seed=args.seed, combine_light_and_heavy=not args.heavy_only,
            engine=engine,
        )
        json_points.extend(_point_dict(p) for p in points)
        loads = "heavy" if args.heavy_only else "heavy+light"
        print(f"NIFDY parameter sweep on {args.network} "
              f"({loads}, {args.cycles:,}-cycle windows), best first:")
        for point in points:
            if point.error:
                print(f"  {point.label:24s}  ERROR (see stderr)")
                print(point.error, file=sys.stderr)
            else:
                print(f"  {point.label:24s}  delivered={point.delivered:>8,}  "
                      f"throughput={point.throughput:8.1f}/kcycle")
    elif args.kind == "load":
        points = sweep_offered_load(
            args.network, _int_list(args.gaps), nic_mode=args.nic,
            num_nodes=args.nodes, run_cycles=args.cycles, seed=args.seed,
            engine=engine,
        )
        json_points.extend(_point_dict(p) for p in points)
        print(f"Offered-load sweep on {args.network} ({args.nic}, "
              f"{args.cycles:,}-cycle windows):")
        for point in points:
            print(f"  {point.label:12s}  delivered={point.delivered:>8,}  "
                  f"throughput={point.throughput:8.1f}/kcycle")
    else:  # sizes
        params = best_params(args.network)
        out = sweep_machine_sizes(
            args.network, _int_list(args.sizes), params, baseline_mode=args.nic,
            run_cycles=args.cycles, seed=args.seed, engine=engine,
        )
        print(f"Machine-size sweep on {args.network} "
              f"(NIFDY vs {args.nic}, {args.cycles:,}-cycle windows):")
        for size, (nifdy, base, norm) in out.items():
            json_points.append({
                "label": f"n={size}", "size": size,
                "nifdy_delivered": nifdy, "baseline_delivered": base,
                "normalized": round(norm, 3),
            })
            print(f"  n={size:<6d} nifdy={nifdy:>8,}  {args.nic}={base:>8,}  "
                  f"normalized={norm:5.2f}x")


def _cmd_chaos(args) -> int:
    """Chaos-test the protocol, or replay a chaos reproducer.

    Batch mode runs ``--trials`` seeded random fault × workload × parameter
    trials under the invariant monitor; every failure is shrunk to a
    minimal JSON reproducer in ``--artifact-dir`` and the command exits 1.
    ``--replay FILE`` re-runs one reproducer deterministically: exit 0 if
    the recorded failure reproduces, 2 if it does not.
    """
    # Deferred: repro.validate pulls in the whole experiments stack.
    from .validate import ChaosConfig, ChaosEngine, replay_artifact

    if args.replay:
        reproduced, failure, detail = replay_artifact(args.replay)
        if reproduced:
            print(f"reproduced: {failure}")
            print(detail)
            return 0
        print("did NOT reproduce "
              f"(run classified as: {failure or 'ok'})")
        if detail:
            print(detail)
        return 2

    def progress(done, total, point):
        status = "ok"
        if point.error is not None:
            status = "TIMEOUT" if point.timed_out else "ERROR"
        elif point.violations:
            status = "VIOLATION"
        elif point.stall_report:
            status = "STALL"
        elif not point.completed:
            status = "INCOMPLETE"
        print(f"  [{done}/{total}] {point.label}: {status}", file=sys.stderr)

    config = ChaosConfig(
        trials=args.trials,
        seed=args.seed,
        network=args.network,
        num_nodes=args.nodes,
        traffics=tuple(t for t in args.traffics.split(",") if t),
        nic_modes=tuple(m for m in args.nic_modes.split(",") if m),
        barrier_modes=tuple(b for b in args.barrier_modes.split(",") if b),
        path_skews=tuple(_int_list(args.path_skews)) or (0,),
        max_faults=args.max_faults,
        executor=args.executor,
        retries=args.retries,
        jobs=args.jobs,
        point_timeout=args.point_timeout,
        shrink_budget=args.shrink_budget,
        artifact_dir=args.artifact_dir,
    )
    engine = ChaosEngine(config)
    report = engine.run(progress=progress if not args.quiet else None)
    print(report.summary())
    for finding in report.findings:
        print(f"  detail: {finding.detail.splitlines()[0]}")
        print(f"  replay: python -m repro chaos --replay {finding.artifact}")
    return 1 if report.findings else 0


def _cmd_farm(args) -> int:
    """Run (or resume) a fault-tolerant offered-load campaign.

    The campaign is the Section-1 operating-range grid (``--gaps``), run
    through the :class:`~repro.farm.FarmEngine`: a pluggable execution
    backend (``--executor``), per-point retry with backoff, poison-point
    quarantine, and a crash-surviving manifest checkpointed after every
    settled point.  The campaign id is a deterministic function of the
    grid, so re-issuing the same command after *any* interruption --
    Ctrl-C, SIGTERM, power loss -- resumes from the manifest instead of
    starting over; ``--resume FILE`` does the same from an explicit
    manifest, needing no grid flags at all.

    The per-point table goes to stdout and is byte-identical however the
    campaign was scheduled (serial, parallel, interrupted-and-resumed)
    -- the property the CI farm-smoke job diffs.  Progress, the manifest
    path, and farm statistics go to stderr.
    """
    from .farm import (
        FarmEngine,
        FarmPolicy,
        ManifestMismatch,
        RunManifest,
        campaign_id_for,
    )

    policy = FarmPolicy(
        retries=args.retries, poison_after=args.poison_after, seed=args.seed,
    )
    if args.resume:
        manifest = RunManifest.load(args.resume)
        specs = [ExperimentSpec.from_dict(d) for d in manifest.specs]
        executor = manifest.executor
        try:
            manifest.verify_resumable(specs)
        except ManifestMismatch as exc:
            # Stale code: the settled results are invalid.  Keep the
            # campaign (same file, same specs) but start its ledger over.
            print(f"farm: {exc}; restarting campaign", file=sys.stderr)
            manifest = RunManifest.new(
                manifest.campaign_id, specs, executor, policy.as_dict(),
                path=Path(args.resume),
            )
    else:
        if not args.network:
            print("farm: --network is required unless --resume is given",
                  file=sys.stderr)
            return 2
        specs = offered_load_specs(
            args.network, _int_list(args.gaps), nic_mode=args.nic,
            num_nodes=args.nodes, run_cycles=args.cycles, seed=args.seed,
        )
        executor = args.executor
        campaign = args.campaign or campaign_id_for(specs, executor)
        path = Path(args.manifest_dir) / f"{campaign}.json"
        manifest = None
        if path.is_file():
            try:
                manifest = RunManifest.load(path)
                manifest.verify_resumable(specs)
                print(f"farm: resuming campaign {campaign} from {path}",
                      file=sys.stderr)
            except (ManifestMismatch, ValueError, OSError) as exc:
                print(f"farm: existing manifest not resumable ({exc}); "
                      "starting fresh", file=sys.stderr)
                manifest = None
        if manifest is None:
            manifest = RunManifest.new(
                campaign, specs, executor, policy.as_dict(), path=path,
            )

    def progress(done, total, point):
        status = "cache" if point.cached else ("ERROR" if point.error else "ran")
        print(f"  [{done}/{total}] {point.label}: {status}", file=sys.stderr)

    engine = FarmEngine(
        executor=executor,
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        policy=policy,
        progress=progress if not args.quiet else None,
        point_timeout=args.point_timeout,
        manifest=manifest,
    )
    try:
        points = engine.run(specs)
    except KeyboardInterrupt:
        print(f"farm: interrupted; manifest checkpointed at {manifest.path}\n"
              f"farm: resume with: python -m repro farm --resume "
              f"{manifest.path}", file=sys.stderr)
        return 130

    print(f"farm campaign {manifest.campaign_id} ({len(points)} point(s)):")
    for point in points:
        if point.error:
            status = ("POISONED" if point.poisoned
                      else "TIMEOUT" if point.timed_out else "ERROR")
            print(f"  {point.label:24s}  {status} (diagnosis in manifest)")
        else:
            print(f"  {point.label:24s}  delivered={point.delivered:>8,}  "
                  f"throughput={point.throughput:8.1f}/kcycle")
    stats = engine.stats
    print(f"manifest : {manifest.path}", file=sys.stderr)
    print(
        f"farm: {stats.points} point(s), {stats.executed} executed, "
        f"{stats.resumed} resumed, {stats.cache_hits} from cache, "
        f"{stats.retries} retr{'y' if stats.retries == 1 else 'ies'}, "
        f"{stats.worker_deaths} worker death(s), {stats.poisoned} poisoned, "
        f"{stats.errors} error(s), {stats.wall_s:.2f}s "
        f"on '{executor}' with --jobs {args.jobs}",
        file=sys.stderr,
    )
    return 1 if stats.errors else 0


def _cmd_perf(args) -> int:
    """Benchmark the event kernel on the fixed reference workload.

    Runs the :func:`~repro.experiments.perf_reference_spec` workload under
    the requested scheduler(s) with self-profiling on and prints an
    events-per-second table.  With ``--kernel both`` (the default) it runs
    *every* registered scheduler and diffs each run's full metrics JSON
    byte-for-byte against the heap baseline; a mismatch is the only
    failure -- raw speed never is, so the CI perf-smoke job stays immune
    to noisy runners while the recorded numbers remain comparable across
    commits (same workload, same seed).
    """
    kernels = list(scheduler_names()) if args.kernel == "both" else [args.kernel]
    rows = {}
    for kernel in kernels:
        spec = perf_reference_spec(
            network=args.network,
            num_nodes=args.nodes,
            run_cycles=args.cycles,
            seed=args.seed,
            kernel=kernel,
        )
        result = run_experiment(spec)
        profile = result.obs.kernel_profile
        metrics = metrics_json(result)
        # Wall-clock self-profile differs every run by construction;
        # everything else must be bit-identical across kernels.
        metrics.pop("self_profile", None)
        rows[kernel] = {
            "events": profile.events,
            "loop_seconds": profile.loop_seconds,
            "events_per_sec": profile.events_per_sec,
            "delivered": result.delivered,
            "canonical_metrics": json_dumps_canonical(metrics),
        }

    # Parity: every kernel against the reference.  The baseline is heap
    # when it ran (the executable specification); otherwise the first
    # kernel requested, so `--kernel epoch` alone still exits 0.
    baseline = "heap" if "heap" in rows else kernels[0]
    mismatched = [
        k for k in kernels
        if rows[k]["canonical_metrics"] != rows[baseline]["canonical_metrics"]
    ]
    parity_ok = not mismatched
    base_eps = rows[baseline]["events_per_sec"]
    speedups = {
        k: rows[k]["events_per_sec"] / base_eps
        for k in kernels
        if k != baseline and base_eps and rows[k]["events_per_sec"]
    }
    speedup = speedups.get("bucket", 0.0) if baseline == "heap" else 0.0

    json_to_stdout = args.json == "-"
    stack = contextlib.ExitStack()
    if json_to_stdout:
        stack.enter_context(contextlib.redirect_stdout(sys.stderr))
    with stack:
        print(f"kernel perf: {args.network} n={args.nodes} heavy traffic, "
              f"{args.cycles:,} cycles, seed {args.seed}")
        for kernel in kernels:
            row = rows[kernel]
            rel = (f"  {row['events_per_sec'] / base_eps:5.2f}x"
                   if kernel in speedups else "")
            print(f"  {kernel:7s} events={row['events']:>9,}  "
                  f"loop={row['loop_seconds']:6.2f}s  "
                  f"events/sec={row['events_per_sec']:>10,.0f}{rel}")
        if len(kernels) > 1:
            status = ("ok (metrics byte-identical)" if parity_ok
                      else "MISMATCH: " + ", ".join(mismatched))
            print(f"  parity : {status} (vs {baseline})")

    if args.json:
        from .report.schema import KernelPerfRecord, KernelRun

        record = KernelPerfRecord(
            workload={
                "network": args.network, "nodes": args.nodes,
                "cycles": args.cycles, "seed": args.seed,
            },
            kernels={
                k: KernelRun(**{key: v for key, v in row.items()
                                if key != "canonical_metrics"})
                for k, row in rows.items()
            },
            speedup=round(speedup, 3),
            speedups={k: round(v, 3) for k, v in speedups.items()},
            parity_ok=parity_ok,
        )
        if json_to_stdout:
            print(json.dumps(record.to_dict(), indent=2))
        else:
            write_json(args.json, record.to_dict())
            print(f"  json   : {args.json}")
    return 0 if parity_ok else 1


def json_dumps_canonical(payload) -> str:
    import json

    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _cmd_report(args) -> int:
    """Regenerate the paper's figures + fidelity report from archived
    results (see :mod:`repro.report`).  Page-by-page progress goes over
    the obs bus to stderr; the summary lands on stdout."""
    from .obs import EventBus
    from .report import generate_report

    bus = EventBus()
    if not args.quiet:
        bus.subscribe(
            "report_page",
            lambda e: print(f"  [{e.cycle + 1}] {e.info}", file=sys.stderr),
        )
    result = generate_report(args.results, args.out, fmt=args.format, bus=bus)
    print(f"report           : {result.index}")
    print(f"pages            : {len(result.pages)}")
    print(f"figures rendered : {result.figures_rendered}")
    if result.figures_missing:
        print(f"missing data for : {', '.join(result.figures_missing)} "
              "(re-run those benches to regenerate)")
    print(f"fidelity checks  : {result.checks_ok}/{result.checks_total} ok")
    print(f"history snapshots: {result.history_points}")
    return 0


def _cmd_characterize(args) -> int:
    row = characterize(args.network, args.nodes)
    print(f"network   : {row.name}")
    print(f"volume    : {row.volume_words_per_node:.1f} words/node")
    print(f"bisection : {row.bisection_bytes_per_cycle:.1f} bytes/cycle")
    print(f"hops      : avg {row.avg_hops:.1f}, max {row.max_hops}")
    print(f"latency   : {row.formula()}")
    print(f"in-order  : {row.delivers_in_order}")
    return 0


def _cmd_advise(args) -> int:
    row = characterize(args.network, args.nodes)
    model = NetworkModel(
        t_lat=row.t_lat,
        max_hops=row.max_hops,
        avg_hops=row.avg_hops,
        volume_words_per_node=row.volume_words_per_node,
        bisection_bytes_per_cycle=row.bisection_bytes_per_cycle,
        num_nodes=row.num_nodes,
    )
    rec = recommend_params(model)
    p = rec.params
    print(f"network     : {row.name}")
    print(f"max RTT     : {rec.max_roundtrip:.0f} cycles")
    print(f"recommended : O={p.opt_size} B={p.pool_size} D={p.dialogs} W={p.window}")
    print(f"reasoning   : {rec.notes}")
    tuned = best_params(args.network)
    print(f"library tune: O={tuned.opt_size} B={tuned.pool_size} "
          f"D={tuned.dialogs} W={tuned.window}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NIFDY (ISCA '95) reproduction: simulate MPP networks "
        "with and without NIFDY network interfaces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list networks, traffic loads, NIC modes")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("--network", required=True,
                     choices=NETWORK_NAMES + EXTENSION_NETWORK_NAMES)
    run.add_argument("--traffic", default="heavy", choices=TRAFFIC_CHOICES)
    run.add_argument("--nic", default="nifdy", choices=NIC_CHOICES)
    run.add_argument("--nodes", type=int, default=64)
    run.add_argument("--cycles", type=int, default=20_000,
                     help="measurement window for synthetic traffic")
    run.add_argument("--max-cycles", type=int, default=20_000_000,
                     help="safety bound for run-to-completion workloads")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--drop", type=float, default=0.0,
                     help="per-link packet drop probability (Section 6.2)")
    run.add_argument("--path-skew", type=int, default=0, metavar="CYCLES",
                     help="per-hop random route-latency jitter in cycles "
                     "(spraying fabrics only; makes in-network reordering "
                     "likely)")
    run.add_argument("--fault-plan", default=None, metavar="FILE",
                     help="JSON fault plan (see docs/protocol.md, Fault model)")
    run.add_argument("--fault", action="append", default=[], metavar="SPEC",
                     help="shorthand fault event, repeatable; e.g. "
                     "'fail@5000-20000:link=ft:up1.0', "
                     "'burst@5000-20000:prob=0.1', "
                     "'burst@1000-3000:prob=0.3,net=ack', "
                     "'pause@1000-4000:node=3'")
    run.add_argument("--max-retries", type=int, default=50,
                     help="retransmission attempts before a packet is "
                     "abandoned (graceful degradation)")
    run.add_argument("--watchdog", type=int, default=200_000,
                     help="liveness watchdog horizon in cycles "
                     "(0 disables; run-to-completion workloads only)")
    run.add_argument("--metrics-out", default=None, metavar="FILE",
                     help="write structured metrics JSON (totals, latency "
                     "histograms, per-NIC counters, protocol event counts)")
    run.add_argument("--trace-chrome", default=None, metavar="FILE",
                     help="write a Chrome-trace/Perfetto JSON timeline of "
                     "packet lifecycles and fault windows")
    run.add_argument("--sample-interval", type=int, default=None, metavar="N",
                     help="sample per-node/per-link state every N cycles "
                     "(time series embedded in the metrics JSON)")
    run.add_argument("--profile", action="store_true",
                     help="print simulator self-profiling "
                     "(events/sec, per-handler wall-clock)")
    run.add_argument("--kernel", default="bucket", choices=scheduler_names(),
                     help="event-queue implementation (results are "
                     "bit-identical; 'heap' is the slow reference)")
    run.add_argument("--json", action="store_true",
                     help="print the result as a schema-stamped repro-run "
                     "JSON document on stdout (human stats move to stderr)")
    run.add_argument("--barrier", default="host", choices=("host", "nic"),
                     help="where barriers/reductions run: 'host' is the "
                     "zero-network flat combine, 'nic' offloads them onto "
                     "the NIC combining tree (collective packets on the "
                     "request/reply nets)")
    run.add_argument("--coll-fanout", type=int, default=4, metavar="K",
                     help="arity of the NIC combining tree (--barrier nic)")
    run.add_argument("--opt", type=int, default=None, help="NIFDY O")
    run.add_argument("--pool", type=int, default=None, help="NIFDY B")
    run.add_argument("--dialogs", type=int, default=None, help="NIFDY D")
    run.add_argument("--window", type=int, default=None, help="NIFDY W")

    sweep = sub.add_parser(
        "sweep",
        help="run a parameter/load/size sweep (parallel + cached)",
    )
    sweep.add_argument("--network", required=True,
                       choices=NETWORK_NAMES + EXTENSION_NETWORK_NAMES)
    sweep.add_argument("--kind", default="params",
                       choices=("params", "load", "sizes"),
                       help="params: Table-3 (O, W) grid; load: Section-1 "
                       "operating range; sizes: Figure-4 machine sizes")
    sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (1 = serial)")
    sweep.add_argument("--point-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock bound per grid point: a hung or "
                       "crashed worker becomes an errored point instead of "
                       "wedging the sweep (default: no bound)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="ignore and do not populate the on-disk result "
                       "cache (benchmarks/results/.cache)")
    sweep.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="override the result-cache directory")
    sweep.add_argument("--nodes", type=int, default=64)
    sweep.add_argument("--cycles", type=int, default=10_000,
                       help="measurement window per grid point")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--nic", default="plain", choices=NIC_CHOICES,
                       help="baseline NIC mode for load/sizes sweeps")
    sweep.add_argument("--opt-grid", default="2,4,8", metavar="O,O,...",
                       help="params sweep: OPT sizes to try")
    sweep.add_argument("--window-grid", default="0,2,8", metavar="W,W,...",
                       help="params sweep: bulk windows to try (0 = no bulk)")
    sweep.add_argument("--heavy-only", action="store_true",
                       help="params sweep: score on heavy traffic only")
    sweep.add_argument("--gaps", default="800,400,200,100,0",
                       metavar="G,G,...",
                       help="load sweep: inter-send gaps (big gap = light load)")
    sweep.add_argument("--sizes", default="16,64,256", metavar="N,N,...",
                       help="sizes sweep: machine sizes")
    sweep.add_argument("--json", action="store_true",
                       help="print the result set as a schema-stamped "
                       "repro-sweep JSON document on stdout (the human "
                       "table moves to stderr)")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-point progress on stderr")

    chaos = sub.add_parser(
        "chaos",
        help="chaos-test the protocol invariants under random faults, "
        "or --replay a shrunk reproducer",
    )
    chaos.add_argument("--trials", type=int, default=20,
                       help="seeded random fault x workload x parameter "
                       "trials to run")
    chaos.add_argument("--seed", type=int, default=0,
                       help="batch seed; the whole batch is a deterministic "
                       "function of it")
    chaos.add_argument("--network", default="fattree",
                       choices=NETWORK_NAMES + EXTENSION_NETWORK_NAMES)
    chaos.add_argument("--nodes", type=int, default=16)
    chaos.add_argument("--traffics",
                       default="cshift,radix,hotspot,pairstream,allreduce",
                       metavar="NAME,NAME,...",
                       help="registry traffic names to draw workloads from")
    chaos.add_argument("--nic-modes", default="nifdy",
                       metavar="MODE,MODE,...",
                       help="NIC modes to draw trials from (e.g. "
                       "'nifdy,reorder-bitmap' to mix the reorder-tolerant "
                       "receivers into the gauntlet)")
    chaos.add_argument("--barrier-modes", default="host,nic",
                       metavar="MODE,MODE,...",
                       help="barrier placements to draw trials from; 'nic' "
                       "lets faults strike mid-collective on the combining "
                       "tree")
    chaos.add_argument("--path-skews", default="0", metavar="C,C,...",
                       help="per-hop route-jitter values (cycles) to draw "
                       "from; non-zero needs a -spray network")
    chaos.add_argument("--max-faults", type=int, default=3,
                       help="fault events per trial drawn from 1..N")
    chaos.add_argument("--executor", default=DEFAULT_EXECUTOR,
                       choices=executor_names(),
                       help="farm execution backend for the trial fan-out "
                       "('subprocess' contains hard worker crashes)")
    chaos.add_argument("--retries", type=int, default=1,
                       help="extra attempts per trial when it kills its "
                       "worker or trips the watchdog")
    chaos.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the trial fan-out")
    chaos.add_argument("--point-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock bound per trial (a wedged trial "
                       "becomes a reported failure)")
    chaos.add_argument("--shrink-budget", type=int, default=48,
                       help="max simulation probes per failure when "
                       "shrinking the reproducer")
    chaos.add_argument("--artifact-dir", default="benchmarks/results/chaos",
                       metavar="DIR",
                       help="where shrunk JSON reproducers are written")
    chaos.add_argument("--replay", default=None, metavar="FILE",
                       help="re-run one reproducer deterministically "
                       "(exit 0 if it reproduces, 2 if not)")
    chaos.add_argument("--quiet", action="store_true",
                       help="suppress per-trial progress on stderr")

    farm = sub.add_parser(
        "farm",
        help="run (or --resume) a fault-tolerant offered-load campaign: "
        "pluggable executors, retry + poison quarantine, crash-surviving "
        "manifest",
    )
    farm.add_argument("--network", default=None,
                      choices=NETWORK_NAMES + EXTENSION_NETWORK_NAMES,
                      help="campaign network (required unless --resume)")
    farm.add_argument("--resume", default=None, metavar="FILE",
                      help="resume a campaign from its manifest; the grid "
                      "is rebuilt from the manifest, no other flags needed")
    farm.add_argument("--executor", default=DEFAULT_EXECUTOR,
                      choices=executor_names(),
                      help="execution backend: 'pool' shares worker "
                      "processes (fast), 'subprocess' isolates each point "
                      "in its own interpreter (hard crashes contained and "
                      "exactly attributed)")
    farm.add_argument("--retries", type=int, default=2,
                      help="extra attempts per point when the point kills "
                      "its worker or trips the watchdog")
    farm.add_argument("--poison-after", type=int, default=None, metavar="N",
                      help="quarantine a point after N worker deaths "
                      "(default: its whole attempt budget)")
    farm.add_argument("--campaign", default=None, metavar="ID",
                      help="campaign id override (default: a deterministic "
                      "hash of the grid, so reruns resume naturally)")
    farm.add_argument("--manifest-dir", default="benchmarks/results/campaigns",
                      metavar="DIR",
                      help="where campaign manifests are checkpointed")
    farm.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="concurrent points (1 = one at a time)")
    farm.add_argument("--point-timeout", type=float, default=None,
                      metavar="SECONDS",
                      help="per-point liveness watchdog: a silent worker "
                      "is killed and the point retried, then quarantined")
    farm.add_argument("--no-cache", action="store_true",
                      help="ignore and do not populate the on-disk result "
                      "cache")
    farm.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="override the result-cache directory")
    farm.add_argument("--nodes", type=int, default=64)
    farm.add_argument("--cycles", type=int, default=10_000,
                      help="measurement window per grid point")
    farm.add_argument("--seed", type=int, default=0)
    farm.add_argument("--nic", default="plain", choices=NIC_CHOICES,
                      help="NIC mode for the offered-load grid")
    farm.add_argument("--gaps", default="800,400,200,100,0",
                      metavar="G,G,...",
                      help="inter-send gaps of the offered-load grid "
                      "(big gap = light load)")
    farm.add_argument("--quiet", action="store_true",
                      help="suppress per-point progress on stderr")

    perf = sub.add_parser(
        "perf",
        help="benchmark every registered event kernel on the fixed "
        "reference workload; fails only on a parity mismatch",
    )
    perf.add_argument("--network", default="fattree",
                      choices=NETWORK_NAMES + EXTENSION_NETWORK_NAMES)
    perf.add_argument("--nodes", type=int, default=64)
    perf.add_argument("--cycles", type=int, default=20_000,
                      help="measurement window (heavy synthetic traffic)")
    perf.add_argument("--seed", type=int, default=11)
    perf.add_argument("--kernel", default="both",
                      choices=("both",) + scheduler_names(),
                      help="which scheduler(s) to run; 'both' means every "
                      "registered kernel, checks metrics parity against "
                      "the heap baseline, and prints per-kernel speedups")
    perf.add_argument("--json", nargs="?", const="-", default=None,
                      metavar="FILE",
                      help="emit the numbers as a schema-stamped "
                      "repro-kernel-perf JSON document: to FILE (the "
                      "perf-smoke job's artifact), or to stdout when no "
                      "FILE is given (human stats move to stderr)")

    report = sub.add_parser(
        "report",
        help="regenerate Fig 2-9 / Table 2-3 plots, fidelity deltas, run "
        "health, and the perf trajectory from archived bench results",
    )
    report.add_argument("--results", default="benchmarks/results",
                        metavar="DIR",
                        help="results tree to read (per-bench JSON, "
                        "chaos/, history/)")
    report.add_argument("--out", default="benchmarks/results/report",
                        metavar="DIR",
                        help="where the report pages + figures are written")
    report.add_argument("--format", default="md", choices=("md", "html"),
                        help="page format (plots are SVG, or PNG when "
                        "matplotlib is installed)")
    report.add_argument("--quiet", action="store_true",
                        help="suppress per-page progress on stderr")

    for name in ("characterize", "advise"):
        cmd = sub.add_parser(name, help=f"{name} a network")
        cmd.add_argument("--network", required=True,
                         choices=NETWORK_NAMES + EXTENSION_NETWORK_NAMES)
        cmd.add_argument("--nodes", type=int, default=64)

    return parser


def _interruptible(handler, what: str):
    """Wrap a long-running command with clean SIGINT/SIGTERM handling.

    Inside the block SIGTERM raises ``KeyboardInterrupt`` like SIGINT
    does, so both unwind through the engines' interrupt paths (which
    flush caches and manifests on the way out) and exit 130 instead of
    dying mid-write.  Commands that want a richer message (``farm``
    prints its resume hint) catch ``KeyboardInterrupt`` themselves and
    return 130 before this wrapper sees it.
    """
    def wrapped(args) -> int:
        try:
            with interrupts_as_keyboard():
                return handler(args)
        except KeyboardInterrupt:
            print(f"{what}: interrupted; partial results already on disk",
                  file=sys.stderr)
            return 130
    return wrapped


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "sweep": _interruptible(_cmd_sweep, "sweep"),
        "chaos": _interruptible(_cmd_chaos, "chaos"),
        "farm": _interruptible(_cmd_farm, "farm"),
        "perf": _cmd_perf,
        "report": _cmd_report,
        "characterize": _cmd_characterize,
        "advise": _cmd_advise,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
