"""``repro.obs``: the unified instrumentation layer.

One import point for everything that *watches* a run without being part of
it: the typed protocol :class:`EventBus` (near-zero overhead when detached),
the periodic :class:`StateSampler` (Figure-5-style time series), and the
exporters (Chrome-trace/Perfetto and structured metrics JSON).  The kernel
self-profiler lives with the kernel (:class:`repro.sim.KernelProfile`);
:class:`Observability` is the one-stop configuration object
``run_experiment(observe=...)`` consumes.

This package deliberately imports nothing from ``repro.metrics``,
``repro.networks`` or ``repro.nic`` -- those layers import *us* for the
event taxonomy, so the dependency arrow must point one way.
"""

from dataclasses import dataclass, field
from typing import Optional

from .events import EventBus, EventKind, ObsEvent
from .export import chrome_trace, metrics_json, write_json
from .sampler import StateSampler


@dataclass
class Observability:
    """What to instrument on one experiment run.

    Construct with the knobs you want and pass to
    ``run_experiment(observe=...)``; the runner fills in the live handles
    (``bus``, ``sampler``, ``tracer``, ``kernel_profile``) which the
    exporters then read.  A run with ``observe=None`` (the default) pays
    only a per-emission-site ``is None`` check.
    """

    #: Attach an :class:`EventBus` to NICs, links, routers, and the
    #: fault injector (event *counting* is always on once attached).
    events: bool = True
    #: Buffer up to this many full event records on the bus (0 = count only).
    keep_events: int = 0
    #: Snapshot per-node/per-link state every N cycles (None = off).
    sample_interval: Optional[int] = None
    #: Record per-packet lifecycles (required for Chrome-trace export).
    trace: bool = False
    #: Packet-record cap for the tracer (memory bound on huge runs).
    trace_max_packets: int = 200_000
    #: Time the event loop: events/sec + per-handler wall clock.
    profile: bool = False
    #: Attach a :class:`repro.validate.InvariantMonitor` that checks the
    #: protocol's guarantees (exactly-once, in-order, resource bounds, no
    #: silent loss) live and at end-of-run; violations come back as
    #: ``result.violations`` / ``observe.monitor.violations``.
    validate: bool = False
    #: ``validate`` escalation: raise :class:`repro.validate.
    #: InvariantViolation` at the offending cycle instead of collecting.
    validate_strict: bool = False

    # ---- live handles, filled by the runner --------------------------------
    bus: Optional[EventBus] = field(default=None, repr=False)
    sampler: Optional[StateSampler] = field(default=None, repr=False)
    tracer: Optional[object] = field(default=None, repr=False)  # PacketTracer
    kernel_profile: Optional[object] = field(default=None, repr=False)
    monitor: Optional[object] = field(default=None, repr=False)  # InvariantMonitor

    @property
    def enabled(self) -> bool:
        return bool(
            self.events or self.sample_interval or self.trace
            or self.profile or self.validate
        )


__all__ = [
    "EventBus",
    "EventKind",
    "ObsEvent",
    "Observability",
    "StateSampler",
    "chrome_trace",
    "metrics_json",
    "write_json",
]
