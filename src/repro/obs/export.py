"""Exporters: Chrome-trace/Perfetto JSON and structured metrics JSON.

``chrome_trace`` renders packet lifecycles (pool wait, network flight,
receive) and fault windows in the Trace Event Format that ``chrome://
tracing`` and https://ui.perfetto.dev consume: one simulated cycle maps to
one microsecond of trace time, each source node is a "process", and each
destination is a "thread" within it, so sorting by pid groups a sender's
traffic and the timeline shows exactly when each packet was where.

``metrics_json`` is the machine-readable counterpart of the CLI's text
report: run identity, collector totals (which reconcile as
``sent == delivered + abandoned + in_flight``), latency percentiles,
per-NIC protocol counters, event-bus counts, the sampler's time series,
and the kernel self-profile.  Everything is duck-typed against
:class:`~repro.experiments.runner.ExperimentResult` so this module imports
nothing from the protocol stack (keeping ``repro.obs`` import-cycle-free).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

#: pid used for the synthetic "faults" track in Chrome traces.
FAULT_TRACK_PID = 999_999


def write_json(path: str, obj: Dict) -> None:
    """Write ``obj`` as pretty-printed JSON (parents are not created)."""
    with open(path, "w") as fh:
        json.dump(obj, fh, indent=2, sort_keys=False, default=str)
        fh.write("\n")


def chrome_trace(
    tracer,
    fault_windows: Sequence[Tuple[int, Optional[int], str]] = (),
    fault_timeline: Sequence[Tuple[int, str]] = (),
    run_label: str = "repro",
) -> Dict:
    """Build a Trace Event Format dict from a :class:`PacketTracer`.

    ``fault_windows`` are ``(start, end_or_None, label)`` spans;
    ``fault_timeline`` are the injector's ``(cycle, text)`` instants.
    """
    events: List[Dict] = []

    def phase(pid, tid, name, start, end, args):
        events.append({
            "name": name, "cat": "packet", "ph": "X",
            "ts": start, "dur": max(0, end - start),
            "pid": pid, "tid": tid, "args": args,
        })

    def instant(pid, tid, name, ts, args=None):
        events.append({
            "name": name, "cat": "fault" if pid == FAULT_TRACK_PID else "packet",
            "ph": "i", "ts": ts, "s": "p",
            "pid": pid, "tid": tid, "args": args or {},
        })

    for trace in tracer.traces.values():
        args = {"uid": trace.uid, "src": trace.src, "dst": trace.dst}
        pid, tid = trace.src, trace.dst
        if trace.created >= 0 and trace.injected >= 0:
            phase(pid, tid, "pool", trace.created, trace.injected, args)
        if trace.injected >= 0:
            if trace.ejected >= 0:
                phase(pid, tid, "network", trace.injected, trace.ejected, args)
                if trace.accepted >= 0:
                    phase(pid, tid, "rx", trace.ejected, trace.accepted, args)
            elif trace.accepted >= 0:
                # No ejection timestamp (e.g. a hand-attached tracer that
                # missed it): fall back to one network-flight span.
                phase(pid, tid, "network", trace.injected, trace.accepted, args)
        if trace.abandoned >= 0:
            instant(pid, tid, "abandon", trace.abandoned, args)

    for start, end, label in fault_windows:
        if end is not None and end > start:
            events.append({
                "name": label, "cat": "fault", "ph": "X",
                "ts": start, "dur": end - start,
                "pid": FAULT_TRACK_PID, "tid": 0, "args": {},
            })
        else:
            instant(FAULT_TRACK_PID, 0, label, start)
    for cycle, text in fault_timeline:
        instant(FAULT_TRACK_PID, 0, text, cycle)

    # Name the tracks so the viewer reads "node 3" instead of "pid 3".
    pids = sorted({e["pid"] for e in events})
    meta = []
    for pid in pids:
        name = "faults" if pid == FAULT_TRACK_PID else f"node {pid}"
        meta.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "run": run_label,
            "clock": "1 trace us = 1 simulated cycle",
            "dropped_packet_records": getattr(tracer, "dropped_records", 0),
        },
    }


def _histogram_dict(hist) -> Dict:
    """JSON view of a LatencyHistogram (duck-typed)."""
    return {
        "count": hist.count,
        "mean": hist.mean,
        "p50": hist.percentile(0.50),
        "p90": hist.percentile(0.90),
        "p99": hist.percentile(0.99),
        "max": hist.maximum,
        "buckets": [
            {"range": label, "count": count} for label, count in hist.rows()
        ],
    }


def metrics_json(result, run_args: Optional[Dict] = None) -> Dict:
    """Structured metrics for one finished experiment.

    ``result`` is an :class:`ExperimentResult`; ``run_args`` is an optional
    dict of the invocation parameters (the CLI passes its argv view so a
    JSON artifact is self-describing).
    """
    metrics = result.metrics
    doc: Dict = {
        "run": {
            "network": result.network,
            "nic_mode": result.nic_mode,
            "num_nodes": result.num_nodes,
            "cycles": result.cycles,
            "completed": result.completed,
            "args": run_args or {},
        },
        "totals": {
            "sent": metrics.sent,
            "injected": metrics.injected,
            "delivered": metrics.delivered,
            "abandoned": metrics.abandoned,
            "in_flight": metrics.in_flight,
            "order_violations": metrics.order_violations,
            "throughput_per_kcycle": result.throughput,
        },
        "latency": {
            "network": _histogram_dict(metrics.network_latency),
            "total": _histogram_dict(metrics.total_latency),
            "barrier": _histogram_dict(metrics.barrier_latency),
        },
        "nics": _nic_counters(result.nics),
    }
    engines = [
        nic.collective for nic in result.nics
        if getattr(nic, "collective", None) is not None
    ]
    if engines:
        doc["collectives"] = _collective_counters(engines)
    obs = getattr(result, "obs", None)
    if obs is not None:
        if obs.bus is not None:
            doc["events"] = dict(sorted(obs.bus.counts.items()))
        if obs.sampler is not None:
            doc["samples"] = obs.sampler.to_dict()
        if obs.kernel_profile is not None:
            doc["self_profile"] = obs.kernel_profile.to_dict()
    if result.stall_report:
        doc["stall_report"] = result.stall_report
    if result.fault_injector is not None:
        doc["fault_timeline"] = [
            {"cycle": cycle, "event": text}
            for cycle, text in result.fault_injector.timeline
        ]
    return doc


def _nic_counters(nics: Sequence) -> Dict:
    """Aggregate per-NIC protocol counters (zero for absent attributes)."""
    names = (
        "packets_injected", "packets_ejected", "packets_accepted",
        "acks_sent", "acks_received", "bulk_grants", "bulk_rejects",
        "scalar_sent", "bulk_sent", "retransmissions",
        "duplicates_dropped", "packets_abandoned", "rtt_samples",
    )
    return {
        name: sum(getattr(nic, name, 0) for nic in nics) for name in names
    }


def _collective_counters(engines: Sequence) -> Dict:
    """Aggregate the NIC-offloaded collective engines' protocol counters."""
    names = (
        "coll_contribs_sent", "coll_releases_sent", "coll_retransmits",
        "coll_duplicates", "coll_completed",
    )
    return {
        name: sum(getattr(eng, name, 0) for eng in engines) for name in names
    }
