"""Periodic state sampling: Figure-5-style time series for any run.

The paper's Figure 5 plots packets-in-network over time; the O/B/D/W sizing
arguments of Section 2.4 are really claims about *occupancy distributions*
(how full the pool gets, how often the OPT saturates, how many dialogs are
open at once).  The :class:`StateSampler` snapshots exactly that state on a
fixed cycle cadence:

* per-node outgoing-pool occupancy and OPT fill,
* per-node open receiver dialogs,
* per-link busy fraction over the *last interval* (not cumulative),
* network-wide packets in flight and acks in flight.

Sampling is read-only -- it never mutates protocol or kernel state beyond
scheduling its own next tick -- so an instrumented run delivers exactly the
same packets at exactly the same cycles as an uninstrumented one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim import Simulator


class StateSampler:
    """Snapshots per-node/per-link protocol state every ``interval`` cycles.

    ``collector`` (a :class:`~repro.metrics.MetricsCollector`) supplies the
    packets-in-network count; NICs are duck-typed, so plain/buffered NICs
    (no pool, no OPT) sample as zeros rather than erroring.
    """

    def __init__(
        self,
        sim: Simulator,
        nics: Sequence,
        links: Sequence,
        collector=None,
        interval: int = 1000,
        max_samples: int = 100_000,
    ):
        if interval < 1:
            raise ValueError("sample interval must be at least 1 cycle")
        self.sim = sim
        self.nics = list(nics)
        self.links = list(links)
        self.collector = collector
        self.interval = interval
        self.max_samples = max_samples
        # time series (parallel lists, one entry per sample)
        self.cycles: List[int] = []
        self.pool_occupancy: List[List[int]] = []
        self.opt_fill: List[List[int]] = []
        self.open_dialogs: List[List[int]] = []
        self.link_busy: List[List[float]] = []
        self.packets_in_network: List[int] = []
        self.acks_in_flight: List[int] = []
        self.dropped_samples = 0
        self._last_busy = [link.busy_cycles for link in self.links]
        self._last_cycle: Optional[int] = None
        self._running = False

    # ------------------------------------------------------------ control
    def start(self) -> None:
        self._running = True
        self._sample()

    def stop(self) -> None:
        self._running = False

    # ----------------------------------------------------------- sampling
    def _sample(self) -> None:
        if not self._running:
            return
        if len(self.cycles) >= self.max_samples:
            self.dropped_samples += 1
        else:
            self._record()
        self.sim.schedule(self.interval, self._sample)

    def _record(self) -> None:
        now = self.sim.now
        self.cycles.append(now)
        pools, opts, dialogs = [], [], []
        acks_out = 0
        for nic in self.nics:
            pool = getattr(nic, "pool", None)
            pools.append(len(pool) if pool is not None else 0)
            opt = getattr(nic, "opt", None)
            opts.append(len(opt) if opt is not None else 0)
            rx = getattr(nic, "_rx_dialogs", None)
            dialogs.append(len(rx) if rx is not None else 0)
            acks_out += getattr(nic, "acks_sent", 0) - getattr(
                nic, "acks_received", 0
            )
        self.pool_occupancy.append(pools)
        self.opt_fill.append(opts)
        self.open_dialogs.append(dialogs)
        # Acks sent by every receiver minus acks consumed by every sender
        # = acks currently riding the reply network.
        self.acks_in_flight.append(acks_out)
        if self.collector is not None:
            self.packets_in_network.append(
                sum(self.collector.pending_per_receiver)
            )
        else:
            self.packets_in_network.append(0)
        # Per-link busy fraction over the elapsed interval.
        span = now - self._last_cycle if self._last_cycle is not None else 0
        busy = []
        for i, link in enumerate(self.links):
            if span > 0:
                frac = (link.busy_cycles - self._last_busy[i]) / span
            else:
                frac = 0.0
            busy.append(round(min(1.0, frac), 4))
            self._last_busy[i] = link.busy_cycles
        self.link_busy.append(busy)
        self._last_cycle = now

    # ------------------------------------------------------------ queries
    def __len__(self) -> int:
        return len(self.cycles)

    def peak_pool(self) -> int:
        return max((max(row) for row in self.pool_occupancy), default=0)

    def peak_opt(self) -> int:
        return max((max(row) for row in self.opt_fill), default=0)

    def peak_in_network(self) -> int:
        return max(self.packets_in_network, default=0)

    def mean_link_busy(self) -> float:
        """Mean busy fraction over every link and sample (skips sample 0,
        which has no elapsed interval to measure)."""
        rows = self.link_busy[1:]
        total = sum(sum(row) for row in rows)
        cells = sum(len(row) for row in rows)
        return total / cells if cells else 0.0

    def to_dict(self) -> Dict:
        """JSON-ready time series (per-node series transposed per sample)."""
        return {
            "interval": self.interval,
            "cycles": self.cycles,
            "pool_occupancy": self.pool_occupancy,
            "opt_fill": self.opt_fill,
            "open_dialogs": self.open_dialogs,
            "packets_in_network": self.packets_in_network,
            "acks_in_flight": self.acks_in_flight,
            "link_busy_mean": [
                round(sum(row) / len(row), 4) if row else 0.0
                for row in self.link_busy
            ],
            "link_busy_max": [max(row, default=0.0) for row in self.link_busy],
            "dropped_samples": self.dropped_samples,
        }
