"""The protocol event bus: typed, near-zero-overhead instrumentation hooks.

Every protocol-relevant state change in the simulator -- a packet entering
the wire, an OPT admission refusal, a dialog grant, a retransmission timer
firing, a fault hitting a link -- can emit one :class:`ObsEvent` onto an
:class:`EventBus`.  The design constraint is the paper's own (Section 3):
measurement must not perturb the experiment.  Two consequences:

* **Detached cost is one attribute test.**  Components carry an ``obs``
  attribute that defaults to ``None``; every emission site is guarded by
  ``if self.obs is not None``, so an un-instrumented run pays a single
  pointer comparison per would-be event and allocates nothing.
* **Emission never touches simulation state.**  Subscribers are called
  synchronously but receive an immutable record; the bus itself only
  counts, buffers, and dispatches.

The taxonomy (``EventKind``) covers the protocol surface the figures of
the paper need: packet lifecycle (inject/eject/accept/abandon), sender
admission (pool enqueue/dequeue, OPT hit/full), the bulk protocol's dialog
lifecycle (grant/deny/close), the loss machinery (retransmit, backoff,
ack-consumed, duplicate, link drop), fabric stalls (router block), and the
fault injector's actions (fault fire/repair).
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional


class EventKind:
    """String constants naming every event the bus can carry.

    Strings (rather than an enum) keep emission sites allocation-free and
    make the JSON export self-describing.
    """

    # packet lifecycle
    INJECT = "inject"            # data packet's head flit granted the wire
    EJECT = "eject"              # tail flit assembled at the destination NIC
    ACCEPT = "accept"            # processor finished its receive overhead
    ABANDON = "abandon"          # sender wrote off the packet (degradation)
    # sender admission machinery
    POOL_ENQUEUE = "pool_enqueue"    # processor handed a packet to the pool
    POOL_DEQUEUE = "pool_dequeue"    # rank/eligibility unit released it
    OPT_HIT = "opt_hit"          # destination already has an outstanding pkt
    OPT_FULL = "opt_full"        # all O entries busy; admission refused
    # acks and the bulk dialog lifecycle
    ACK_CONSUMED = "ack_consumed"    # sender-side NIFDY processed an ack
    DIALOG_GRANT = "dialog_grant"
    DIALOG_DENY = "dialog_deny"
    DIALOG_CLOSE = "dialog_close"
    # loss machinery
    RETRANSMIT = "retransmit"    # a held packet's timer fired; re-injected
    BACKOFF = "backoff"          # retry armed with an increased timeout
    DUPLICATE = "duplicate"      # receiver discarded an already-seen packet
    LINK_DROP = "link_drop"      # a link discarded a whole packet
    # NIC-offloaded collectives (``node`` is the combining NIC, ``src`` the
    # contributing node -- a child or the combiner itself -- and ``seq``
    # carries the collective epoch)
    COLL_CONTRIB = "coll_contrib"    # a contribution folded into the tree
    COLL_RELEASE = "coll_release"    # a node released its subtree
    COLL_DUP = "coll_dup"            # duplicate contribution discarded/healed
    # fabric
    ROUTER_BLOCK = "router_block"    # packet began waiting for an output VC
    # fault injector
    FAULT_FIRE = "fault_fire"
    FAULT_REPAIR = "fault_repair"
    # sweep engine progress (one event per resolved grid point; ``cycle``
    # carries the points-done count, ``info`` the point's label)
    SWEEP_POINT = "sweep_point"
    SWEEP_CACHE_HIT = "sweep_cache_hit"
    SWEEP_ERROR = "sweep_error"
    # report generator progress (``cycle`` carries the pages-done count,
    # ``info`` the page name / output path)
    REPORT_PAGE = "report_page"
    REPORT_DONE = "report_done"
    # sweep farm lifecycle (``cycle`` carries the point's campaign index,
    # ``info`` a human-readable diagnosis: label, attempt, backoff delay)
    FARM_DISPATCH = "farm_dispatch"  # point handed to an executor backend
    FARM_RETRY = "farm_retry"        # worker-killing attempt; backoff armed
    FARM_POISON = "farm_poison"      # retry budget exhausted; quarantined
    FARM_RESUME = "farm_resume"      # point settled from a resumed manifest

    ALL = (
        INJECT, EJECT, ACCEPT, ABANDON,
        POOL_ENQUEUE, POOL_DEQUEUE, OPT_HIT, OPT_FULL,
        ACK_CONSUMED, DIALOG_GRANT, DIALOG_DENY, DIALOG_CLOSE,
        RETRANSMIT, BACKOFF, DUPLICATE, LINK_DROP,
        COLL_CONTRIB, COLL_RELEASE, COLL_DUP,
        ROUTER_BLOCK, FAULT_FIRE, FAULT_REPAIR,
        SWEEP_POINT, SWEEP_CACHE_HIT, SWEEP_ERROR,
        REPORT_PAGE, REPORT_DONE,
        FARM_DISPATCH, FARM_RETRY, FARM_POISON, FARM_RESUME,
    )


class ObsEvent(NamedTuple):
    """One instrumentation record.  ``node`` is the emitting component's
    node id (or -1 for fabric-level emitters like links and the injector);
    ``uid``/``src``/``dst`` identify the packet when one is involved and
    ``seq`` carries its per-(src, dst) send order (``Packet.pair_seq``, -1
    when the workload does not stamp one) so order invariants can be checked
    from the event stream alone."""

    cycle: int
    kind: str
    node: int
    uid: int = -1
    src: int = -1
    dst: int = -1
    info: Optional[str] = None
    seq: int = -1


class EventBus:
    """Counts, optionally buffers, and dispatches protocol events.

    ``keep_events`` bounds the in-memory event log (0 disables buffering;
    counting is always on).  Subscribe with :meth:`subscribe` -- pass a
    kind, or ``None`` for a wildcard subscription.
    """

    def __init__(self, keep_events: int = 0):
        self.counts: Dict[str, int] = {}
        self.keep_events = keep_events
        self.events: List[ObsEvent] = []
        self.dropped_events = 0
        self._subs: Dict[str, List[Callable[[ObsEvent], None]]] = {}
        self._wildcard: List[Callable[[ObsEvent], None]] = []
        self._attached: List[object] = []

    # ----------------------------------------------------------- emission
    def emit(
        self,
        cycle: int,
        kind: str,
        node: int,
        uid: int = -1,
        src: int = -1,
        dst: int = -1,
        info: Optional[str] = None,
        seq: int = -1,
    ) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        subs = self._subs.get(kind)
        if not (subs or self._wildcard or self.keep_events):
            return
        event = ObsEvent(cycle, kind, node, uid, src, dst, info, seq)
        if self.keep_events:
            if len(self.events) < self.keep_events:
                self.events.append(event)
            else:
                self.dropped_events += 1
        if subs:
            for fn in subs:
                fn(event)
        for fn in self._wildcard:
            fn(event)

    def emit_packet(self, cycle: int, kind: str, node: int, packet) -> None:
        """Emission helper for the common packet-carrying case."""
        self.emit(
            cycle, kind, node, packet.uid, packet.src, packet.dst,
            seq=packet.pair_seq,
        )

    # ------------------------------------------------------- subscription
    def subscribe(
        self, kind: Optional[str], fn: Callable[[ObsEvent], None]
    ) -> None:
        if kind is None:
            self._wildcard.append(fn)
        elif kind not in EventKind.ALL:
            raise ValueError(f"unknown event kind {kind!r}")
        else:
            self._subs.setdefault(kind, []).append(fn)

    def count(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    def total(self) -> int:
        return sum(self.counts.values())

    # ------------------------------------------------------------- wiring
    def attach(self, *components) -> None:
        """Point each component's ``obs`` attribute at this bus.

        Works for anything emitting guarded events: NICs, links, routers,
        the fault injector.  Iterables of components flatten one level.
        """
        for item in components:
            if item is None:
                continue
            if isinstance(item, (list, tuple)):
                self.attach(*item)
                continue
            item.obs = self
            self._attached.append(item)

    def detach_all(self) -> None:
        """Restore every attached component to the un-instrumented state."""
        for item in self._attached:
            item.obs = None
        self._attached = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EventBus {self.total()} events over {len(self.counts)} kinds>"
