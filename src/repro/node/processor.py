"""The processor model: software overheads, polling reception, and the
action loop that traffic drivers feed.

Section 3: "only polling message reception is allowed; thus the computation
always initiates interaction with the network".  The processor alternates
between executing its driver's actions (sends, computation, barriers,
deliberate ignore periods) and polling the NIC.  Receiving always takes
priority over the next action, which is exactly what makes the paper's
radix-sort scan serialise without inserted delays (Section 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..nic.base import BaseNIC
from ..packets import Packet
from ..sim import Barrier, Simulator
from .timing import Timing


@dataclass
class Send:
    """Hand one packet to the NIC (costs ``t_send``, retried if NIC full)."""

    packet: Packet


@dataclass
class Compute:
    """Spin the processor for ``cycles`` (still ignores the network)."""

    cycles: int


@dataclass
class Ignore:
    """Deliberately ignore the network (the light-traffic 'non-responsive'
    periods of Section 4.1): no polls, no receives for ``cycles``."""

    cycles: int


@dataclass
class PollFor:
    """Poll the network attentively for ``cycles`` (receiving anything that
    arrives) before moving on -- deliberate send pacing that stays
    responsive, unlike :class:`Ignore`."""

    cycles: int


@dataclass
class WaitBarrier:
    """Block until every processor reaches the barrier."""


@dataclass
class AllReduce:
    """Contribute ``value`` to a global reduction and block until the
    combined result releases (``driver.on_reduced(combined)`` fires first).
    Runs on the host combine or the NIC combining tree, whichever the
    experiment selected."""

    value: int


@dataclass
class Done:
    """Driver has no more work; keep polling so peers can finish."""


Action = Union[Send, Compute, Ignore, PollFor, WaitBarrier, AllReduce, Done]


class Processor:
    """One node's CPU: runs driver actions and receives by polling."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        nic: BaseNIC,
        driver: "TrafficDriver",
        timing: Timing,
        barrier: Optional[Barrier] = None,
        network_in_order: bool = False,
        exploit_inorder: bool = False,
        host_collective=None,
    ):
        self.sim = sim
        self._post = sim.post  # cached: _busy runs once per processor step
        self.node_id = node_id
        self.nic = nic
        self.driver = driver
        self.timing = timing
        self.barrier = barrier
        self.host_collective = host_collective
        self.network_in_order = network_in_order
        self.exploit_inorder = exploit_inorder
        self._pending: Optional[Action] = None
        self._in_barrier = False
        self._barrier_enter = -1
        self._reduce_pending = False
        self._mid_receive = False
        self._poll_deadline: Optional[int] = None
        self._paused = False
        self._held_continuations = []
        self.done = False
        self.packets_sent = 0
        self.packets_received = 0
        self.busy_cycles = 0
        self.on_send = None  # hook(packet), set by the metrics collector
        self.on_barrier = None  # hook(latency_cycles), ditto
        driver.bind(self)

    def start(self) -> None:
        self.sim.post(0, self._step)

    # ------------------------------------------------------- fault support
    def pause(self) -> None:
        """Freeze this processor (a crashed/wedged node): no polls, no
        sends, no receives.  The NIC keeps running -- hardware survives a
        software hang -- so end-point backpressure builds up naturally."""
        self._paused = True

    def resume(self) -> None:
        """Un-freeze a paused processor, resuming exactly where it stopped."""
        if not self._paused:
            return
        self._paused = False
        held, self._held_continuations = self._held_continuations, []
        for fn, args in held:
            self.sim.post(0, fn, *args)

    # ---------------------------------------------------------- reception
    @property
    def receive_in_order(self) -> bool:
        """Whether software may rely on per-sender in-order delivery: either
        the fabric preserves order or the NIC restores it.  The single
        source of truth for every receive site, so a NIC variant cannot
        desynchronise the main loop from the poll loops."""
        return self.nic.guarantees_order or self.network_in_order

    def _begin_receive(self, mid_poll: bool) -> None:
        """Pop the next arrival and pay the receive overhead."""
        packet = self.nic.receive()
        cost = self.timing.receive_cost(
            packet.msg_len, self.receive_in_order, self.exploit_inorder
        )
        self._mid_receive = mid_poll
        self._busy(cost, self._received, packet)

    # ------------------------------------------------------------ main loop
    def _step(self) -> None:
        # Receiving takes priority: polling found a packet.
        if self.nic.has_arrival():
            self._begin_receive(mid_poll=False)
            return
        action = self._pending
        if action is None:
            action = self.driver.next_action()
            self._pending = action
        if isinstance(action, Send):
            self._do_send(action)
        elif isinstance(action, Compute):
            self._pending = None
            self._busy(action.cycles, self._step)
        elif isinstance(action, Ignore):
            self._pending = None
            self._busy(action.cycles, self._step)
        elif isinstance(action, PollFor):
            self._pending = None
            self._poll_deadline = self.sim.now + action.cycles
            self._deadline_poll()
        elif isinstance(action, WaitBarrier):
            self._pending = None
            # Keep polling while blocked at the barrier: a node that stops
            # receiving would deadlock the senders still finishing the phase.
            self._in_barrier = True
            self._barrier_enter = self.sim.now
            if self.nic.collective is not None:
                self.nic.collective.arrive(None, self._collective_release)
            elif self.barrier is not None:
                self.barrier.arrive(self.node_id, self._barrier_release)
            else:
                raise RuntimeError("driver used WaitBarrier without a barrier")
            self._barrier_poll()
        elif isinstance(action, AllReduce):
            self._pending = None
            self._in_barrier = True
            self._barrier_enter = self.sim.now
            self._reduce_pending = True
            if self.nic.collective is not None:
                self.nic.collective.arrive(
                    action.value, self._collective_release
                )
            elif self.host_collective is not None:
                self.host_collective.arrive(
                    self.node_id, action.value, self._collective_release
                )
            else:
                raise RuntimeError(
                    "driver used AllReduce without a collective"
                )
            self._barrier_poll()
        elif isinstance(action, Done):
            self.done = True
            self._pending = None
            # Idle poll loop: stay responsive for incoming traffic.
            self._busy(self.timing.t_poll, self._step)
        else:
            raise TypeError(f"unknown action {action!r}")

    def _do_send(self, action: Send) -> None:
        if not self.nic.can_send():
            # NIC full: poll (and receive, next step) before retrying.
            self._busy(self.timing.t_poll, self._step)
            return
        self._busy(self.timing.t_send, self._send_finished, action)

    def _send_finished(self, action: Send) -> None:
        if self.nic.try_send(action.packet):
            self._pending = None
            self.packets_sent += 1
            if self.on_send is not None:
                self.on_send(action.packet)
        # else: NIC filled up while we paid the send overhead; retry.
        self._step()

    def _received(self, packet: Packet) -> None:
        self._mid_receive = False
        self.nic.accepted(packet)
        self.packets_received += 1
        self.driver.on_packet(packet)
        if self._in_barrier:
            self._barrier_poll()
        elif self._poll_deadline is not None:
            self._deadline_poll()
        else:
            self._step()

    # ------------------------------------------------------ deadline poll
    def _deadline_poll(self) -> None:
        if self._poll_deadline is None or self.sim.now >= self._poll_deadline:
            self._poll_deadline = None
            self._step()
            return
        if self.nic.has_arrival():
            self._begin_receive(mid_poll=True)
        else:
            self._busy(self.timing.t_poll, self._deadline_poll)

    # -------------------------------------------------------- barrier poll
    def _barrier_poll(self) -> None:
        if not self._in_barrier:
            return
        if self.nic.has_arrival():
            self._begin_receive(mid_poll=True)
        else:
            self._busy(self.timing.t_poll, self._barrier_poll)

    def _collective_release(self, value) -> None:
        """Release upcall from the NIC engine or the host combine."""
        if self._reduce_pending:
            self._reduce_pending = False
            self.driver.on_reduced(value)
        self._barrier_release()

    def _barrier_release(self) -> None:
        self._in_barrier = False
        if self.on_barrier is not None and self._barrier_enter >= 0:
            self.on_barrier(self.sim.now - self._barrier_enter)
        self._barrier_enter = -1
        if not self._mid_receive:
            self.sim.post(0, self._run_or_hold, self._step, ())

    def _busy(self, cycles: int, fn, *args) -> None:
        # post(): every processor step is one of these and none is ever
        # cancelled, so the Event objects come from the kernel free list.
        self.busy_cycles += cycles
        self._post(1 if cycles < 1 else cycles, self._run_or_hold, fn, args)

    def _run_or_hold(self, fn, args) -> None:
        """Continuation trampoline: while paused, park pending continuations
        instead of running them; :meth:`resume` releases them in order."""
        if self._paused:
            self._held_continuations.append((fn, args))
            return
        fn(*args)


class TrafficDriver:
    """Base class for workload drivers (one per processor)."""

    def bind(self, proc: Processor) -> None:
        self.proc = proc

    def next_action(self) -> Action:
        """The next thing this processor should do.  Called only after the
        previous action completed.  Return :class:`Done` when out of work."""
        raise NotImplementedError

    def on_packet(self, packet: Packet) -> None:
        """Upcall for every data packet the processor accepted."""

    def on_reduced(self, value) -> None:
        """Upcall with the combined result of an :class:`AllReduce`, fired
        just before the processor unblocks."""

    def on_abandoned(self, packet: Packet) -> None:
        """Upcall when this node's NIC gave up delivering ``packet`` (retry
        exhaustion under graceful degradation).  The default is to shrug --
        the loss is recorded in the experiment metrics -- but workload
        drivers that track expected replies should override this so they can
        finish instead of waiting forever."""
