"""Processor-side timing constants (Table 2 / Section 2.4.3).

The paper measured these on a real CM-5 ("for realistic timings on our
simulations, we ran several tests on a real CM-5"); Section 2.4.3 then uses
round figures for the analysis: T_send = 40 cycles, T_receive = 60 cycles,
and Table 2 lists a 22-cycle empty poll.  Our scanned copy of Table 2 is
partially illegible, so the Section 2.4.3 values are canonical here; the
calibration bench (`benchmarks/test_table2_calibration.py`) reports the
corresponding end-to-end latencies our simulator produces.

The two software-overhead knobs below model the in-order-delivery effects
the paper describes:

* ``reorder_penalty`` -- extra receive cycles per packet of a multi-packet
  message when the network can reorder and the NIC does not restore order;
  [KC94] measured order reconstruction at up to 30% of medium transfer time
  on the CM-5, and 18 cycles on a 60-cycle receive matches that ratio.
* ``inorder_receive_discount`` -- cycles saved per packet when software can
  rely on in-order delivery (no per-packet bookkeeping dispatch;
  Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Timing:
    """Software costs, in processor cycles."""

    t_send: int = 40
    t_receive: int = 60
    t_poll: int = 22
    reorder_penalty: int = 18
    inorder_receive_discount: int = 10
    #: Strata-style optimized barrier release latency (Section 4.3).
    barrier_cost: int = 100

    def receive_cost(self, msg_len: int, in_order: bool, exploit: bool) -> int:
        """Receive overhead for one packet of an ``msg_len``-packet message.

        ``in_order``: delivery order is guaranteed (by the NIC or because the
        topology has unique paths).  ``exploit``: the communication library
        was written to take advantage of that guarantee (the paper's NIFDY
        vs NIFDY- distinction).
        """
        cost = self.t_receive
        if not in_order and msg_len > 1:
            cost += self.reorder_penalty
        elif in_order and exploit:
            cost -= self.inorder_receive_discount
        return cost


#: The canonical CM-5-derived timing used throughout the benchmarks.
CM5_TIMING = Timing()
