"""Processor model and CM-5-derived timing constants."""

from .processor import (
    Action,
    AllReduce,
    Compute,
    Done,
    Ignore,
    PollFor,
    Processor,
    Send,
    TrafficDriver,
    WaitBarrier,
)
from .timing import CM5_TIMING, Timing

__all__ = [
    "Action",
    "AllReduce",
    "CM5_TIMING",
    "Compute",
    "Done",
    "Ignore",
    "PollFor",
    "Processor",
    "Send",
    "Timing",
    "TrafficDriver",
    "WaitBarrier",
]
