"""Network packets and their NIFDY-visible header fields.

Packet framing follows the paper:

* Data packets are either *scalar* or *bulk* (Section 2).  Every data packet
  carries its source node id (needed so the destination can return an ack;
  Section 2.2 argues this costs nothing because active-message layers carry
  the source anyway).  Bulk packets replace the source id with a
  ``{sequence number, dialog number}`` pair; the receiving NIFDY restores the
  source id before handing the packet to the processor, so we keep ``src``
  populated on bulk packets as well and simply note that the header encoding
  differs.
* Header control bits: ``bulk_request`` (sender asks for a dialog),
  ``bulk_exit`` (last packet of a bulk transfer), and -- for the Section 6
  extensions -- ``needs_ack`` and the duplicate-detection ``retx_bit``.
* Acks are NIFDY-generated packets consumed by the receiving NIFDY.  An ack
  may carry a dialog grant/reject and a window credit count.

Sizes: the synthetic workloads use 8-word packets including the header; the
Split-C derived workloads use 6-word packets (Section 3).  A flit is one word
(4 bytes), matching the paper's wormhole mesh.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

#: Bytes per flit.  The paper's mesh uses a one-word (32-bit) flit.
FLIT_BYTES = 4

#: Words per packet for the pseudo-random synthetic traffic (Section 3).
SYNTHETIC_PACKET_WORDS = 8

#: Words per packet for the CMAM / Split-C derived traffic (Section 3).
SPLITC_PACKET_WORDS = 6

#: Acks are header-only: source id, control bits, dialog number and credit
#: count fit in one 32-bit word (16-bit node ids, Section 2.3).
ACK_WORDS = 1

#: Logical network ids (Section 3: request and reply networks exist on every
#: topology to avoid fetch deadlock).  NIFDY acks travel on the reply network.
REQUEST_NET = 0
REPLY_NET = 1


class PacketKind(Enum):
    """What a packet is, as seen by the NIC protocol engine."""

    SCALAR = "scalar"
    BULK = "bulk"
    ACK = "ack"
    COLLECTIVE = "collective"


_packet_ids = itertools.count()


@dataclass
class AckInfo:
    """Protocol content of an ack packet.

    ``credits`` is the number of new window slots granted (for bulk dialogs,
    one ack per W/2 delivered packets).  ``dialog_granted`` is the dialog
    number assigned by the receiver, ``dialog_rejected`` signals that all D
    dialog slots were busy.  ``acked_dst`` is the node whose OPT entry this
    ack clears (i.e. the sender of the original data packet sees ``src`` of
    the ack).
    """

    for_scalar: bool = True
    credits: int = 0
    dialog: Optional[int] = None
    dialog_granted: Optional[int] = None
    dialog_rejected: bool = False
    dialog_terminated: bool = False
    acked_seq: Optional[int] = None
    acked_bit: Optional[int] = None   # retx-bit of the scalar packet acked
    #: Eunomia-style selective ack: stream sequence numbers held in the
    #: receiver's reorder buffer beyond the cumulative ack (a bitmap in
    #: hardware; a tuple here).  ``None`` on cumulative-only receivers.
    sack: Optional[tuple] = None


#: Collective packets are header-only like acks: phase bit, epoch, op code
#: and one combined machine word of contribution fit alongside the node ids.
COLLECTIVE_WORDS = 2


@dataclass
class CollectiveInfo:
    """Protocol content of a NIC-generated collective packet.

    ``phase`` is ``"up"`` (a combined contribution climbing the k-ary tree
    on the request network -- the ack IS the reduction op) or ``"down"``
    (the root's release broadcasting down the tree on the reply network).
    ``epoch`` numbers successive collectives so a fast child running one
    barrier ahead cannot be confused with a duplicate.  ``value`` is the
    combined partial (``None`` for a pure barrier), ``count`` the number of
    leaf contributions folded into it.
    """

    phase: str = "up"
    epoch: int = 0
    op: str = "sum"
    value: Optional[int] = None
    count: int = 1


@dataclass
class Packet:
    """One network packet.

    ``size_bytes`` includes the header; the number of flits a packet occupies
    is ``ceil(size_bytes / FLIT_BYTES)``.
    """

    src: int
    dst: int
    kind: PacketKind
    size_bytes: int
    logical_net: int = REQUEST_NET
    # --- NIFDY header bits -------------------------------------------------
    bulk_request: bool = False
    bulk_exit: bool = False
    needs_ack: bool = True
    seq: Optional[int] = None          # bulk sequence number
    dialog: Optional[int] = None       # bulk dialog number
    retx_bit: int = 0                  # duplicate detection (Section 6.2)
    #: Reorder-tolerant receivers: the sender's lowest unacked stream seq at
    #: transmit time.  Lets a receiver skip holes the sender abandoned (the
    #: stream analogue of NIFDY's dialog teardown).
    stream_base: Optional[int] = None
    is_retransmission: bool = False
    control_only: bool = False         # NIC-generated, never shown to processor
    ack: Optional[AckInfo] = None      # set when kind == ACK
    coll: Optional[CollectiveInfo] = None  # set when kind == COLLECTIVE
    #: Section 6.1 extension: an ack riding in a data packet's header
    #: ("instead of sending both a NIFDY-generated ack and a user reply we
    #: could piggyback the ack in the reply").
    piggyback_ack: Optional[AckInfo] = None
    # --- workload-level identity (not transmitted; used for checking) ------
    msg_id: int = -1                   # message this packet belongs to
    msg_seq: int = 0                   # position within the message
    msg_len: int = 1                   # packets in the message
    pair_seq: int = -1                 # per (src, dst) send order, for checks
    payload: Any = None
    # --- bookkeeping --------------------------------------------------------
    uid: int = field(default_factory=lambda: next(_packet_ids))
    created_cycle: int = -1
    injected_cycle: int = -1
    ejected_cycle: int = -1        # tail flit assembled at destination NIC
    delivered_cycle: int = -1
    abandoned_cycle: int = -1      # sender wrote the delivery debt off

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("packet must have a positive size")
        if self.kind is PacketKind.ACK and self.ack is None:
            raise ValueError("ack packets must carry AckInfo")
        if self.kind is PacketKind.COLLECTIVE and self.coll is None:
            raise ValueError("collective packets must carry CollectiveInfo")

    @property
    def flits(self) -> int:
        """Number of flits this packet occupies on a link."""
        return -(-self.size_bytes // FLIT_BYTES)

    @property
    def is_data(self) -> bool:
        return self.kind is not PacketKind.ACK

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.kind is PacketKind.BULK:
            extra = f" seq={self.seq} dlg={self.dialog}"
        if self.bulk_request:
            extra += " REQ"
        if self.bulk_exit:
            extra += " EXIT"
        return (
            f"<Packet#{self.uid} {self.kind.value} {self.src}->{self.dst}"
            f" {self.flits}f{extra}>"
        )


def make_collective(src: int, dst: int, info: CollectiveInfo) -> Packet:
    """Build a NIC-generated collective packet.

    Contributions climb the combining tree on the request network; releases
    broadcast down on the reply network (the same data/ack split that keeps
    NIFDY acks deadlock-free keeps collective releases deadlock-free).
    Collective packets are control traffic: never shown to the processor's
    receive path, never acked (the tree's own retransmit timers cover loss).
    """
    return Packet(
        src=src,
        dst=dst,
        kind=PacketKind.COLLECTIVE,
        size_bytes=COLLECTIVE_WORDS * FLIT_BYTES,
        logical_net=REQUEST_NET if info.phase == "up" else REPLY_NET,
        needs_ack=False,
        control_only=True,
        coll=info,
    )


def make_ack(src: int, dst: int, info: AckInfo) -> Packet:
    """Build a NIFDY ack packet from ``src`` (the receiver of the data) back
    to ``dst`` (the original sender).  Acks ride the reply network."""
    return Packet(
        src=src,
        dst=dst,
        kind=PacketKind.ACK,
        size_bytes=ACK_WORDS * FLIT_BYTES,
        logical_net=REPLY_NET,
        needs_ack=False,
        ack=info,
    )
