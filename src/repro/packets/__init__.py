"""Packet formats shared by the NICs, routers, and traffic generators."""

from .packet import (
    ACK_WORDS,
    COLLECTIVE_WORDS,
    FLIT_BYTES,
    REPLY_NET,
    REQUEST_NET,
    SPLITC_PACKET_WORDS,
    SYNTHETIC_PACKET_WORDS,
    AckInfo,
    CollectiveInfo,
    Packet,
    PacketKind,
    make_ack,
    make_collective,
)

__all__ = [
    "ACK_WORDS",
    "COLLECTIVE_WORDS",
    "FLIT_BYTES",
    "REPLY_NET",
    "REQUEST_NET",
    "SPLITC_PACKET_WORDS",
    "SYNTHETIC_PACKET_WORDS",
    "AckInfo",
    "CollectiveInfo",
    "Packet",
    "PacketKind",
    "make_ack",
    "make_collective",
]
