"""Scheduler registry: the pluggable event-queue API of the kernel.

Historically the kernel exposed a hardcoded ``SCHEDULERS`` tuple that
``kernel.py``, ``experiments/spec.py`` and ``cli.py`` each imported and
range-checked independently; adding a scheduler meant editing three
files.  This module replaces the tuple with one registry:

* :class:`Scheduler` is the interface a kernel implementation provides
  (schedule / post / cancel-via-:class:`~repro.sim.kernel.Event` /
  drain-until).
* :func:`register_scheduler` adds an implementation under a name.
* :func:`scheduler_names` is the single source of truth that spec
  validation, CLI choices and ``Simulator(scheduler=...)`` dispatch all
  derive from.

``repro.sim.kernel`` registers ``"bucket"`` (the default) and ``"heap"``;
``repro.sim.epoch`` registers ``"epoch"``.  Importing :mod:`repro.sim`
populates the registry.  Registration order is presentation order
everywhere (CLI ``choices``, the ``repro perf`` table), so built-ins
keep their historical positions and additions append.

This module deliberately imports nothing from :mod:`repro.sim.kernel`:
implementations import the interface, never the other way around, so a
third-party scheduler can live in any package and register itself.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple, Type

#: Scheduler used when ``Simulator()`` is built without an explicit name.
DEFAULT_SCHEDULER = "bucket"

_REGISTRY: Dict[str, Type["Scheduler"]] = {}


class Scheduler:
    """Interface of an event-queue implementation.

    All implementations share the same observable contract, enforced by
    ``tests/test_scheduler_parity.py``: events fire in global
    ``(cycle, seq)`` order -- same-cycle events in scheduling order --
    so every workload's metrics are bit-identical across schedulers.

    Class attributes:

    ``name``
        Registry key, reported by :attr:`scheduler`.
    ``description``
        One line for ``--help`` texts and docs.
    ``link_streams``
        True when the kernel supports the epoch-style link token
        streams (:mod:`repro.links.link` opens per-link flit runs only
        when the kernel advertises this capability).
    """

    name: str = ""
    description: str = ""
    link_streams: bool = False

    # -------------------------------------------------------- core protocol
    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any):
        """Run ``fn(*args)`` ``delay`` cycles from now; returns a
        cancellable :class:`~repro.sim.kernel.Event`."""
        raise NotImplementedError

    def at(self, cycle: int, fn: Callable[..., Any], *args: Any):
        """Run ``fn(*args)`` at absolute ``cycle``; returns a cancellable
        :class:`~repro.sim.kernel.Event`."""
        raise NotImplementedError

    def post(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, never cancellable.
        The hot-path API -- implementations are free to skip allocating
        an Event entirely."""
        raise NotImplementedError

    def run_until(self, cycle: int) -> None:
        """Drain every event with timestamp strictly below ``cycle``."""
        raise NotImplementedError

    def run(self, max_cycles: Optional[int] = None) -> None:
        """Drain the queue dry (or until ``max_cycles`` elapse)."""
        raise NotImplementedError

    def pending_events(self) -> int:
        """Not-yet-cancelled events still queued (liveness watchdog)."""
        raise NotImplementedError


def register_scheduler(cls: Type[Scheduler]) -> Type[Scheduler]:
    """Register ``cls`` under ``cls.name``.  Usable as a decorator.

    Re-registering a name with the *same* class is a no-op (module
    reloads); with a different class it raises, because silently
    swapping a scheduler underneath cached specs would be hell to debug.
    """
    name = cls.name
    if not name:
        raise ValueError(f"scheduler class {cls!r} has no name")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"scheduler {name!r} already registered to {existing!r}"
        )
    _REGISTRY[name] = cls
    return cls


def scheduler_names() -> Tuple[str, ...]:
    """Registered scheduler names, in registration order."""
    return tuple(_REGISTRY)


def resolve_scheduler(name: str) -> Type[Scheduler]:
    """Look up a scheduler class by name.

    Raises ``ValueError`` (not KeyError) so spec validation and CLI
    parsing report the same message they always did.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {scheduler_names()}"
        ) from None


def scheduler_descriptions() -> Dict[str, str]:
    """``{name: one-line description}`` for help texts and docs."""
    return {name: cls.description for name, cls in _REGISTRY.items()}
