"""Simulation substrate: deterministic event kernel, RNG streams, barriers.

Importing this package populates the scheduler registry: ``kernel``
registers the ``bucket`` and ``heap`` baselines, ``epoch`` the
token-batched kernel.  ``SCHEDULERS`` is kept as a lazy alias of
:func:`~repro.sim.schedulers.scheduler_names` for pre-registry callers.
"""

from .barrier import Barrier
from .kernel import Event, KernelProfile, Simulator
from .schedulers import (DEFAULT_SCHEDULER, Scheduler, register_scheduler,
                         resolve_scheduler, scheduler_descriptions,
                         scheduler_names)
from .rng import RngFactory
from . import epoch as _epoch  # noqa: F401  (registers the epoch scheduler)

__all__ = [
    "Barrier",
    "DEFAULT_SCHEDULER",
    "Event",
    "KernelProfile",
    "RngFactory",
    "SCHEDULERS",
    "Scheduler",
    "Simulator",
    "register_scheduler",
    "resolve_scheduler",
    "scheduler_descriptions",
    "scheduler_names",
]


def __getattr__(name: str):
    # Backwards compatibility: the pre-registry API was a tuple constant.
    if name == "SCHEDULERS":
        return scheduler_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
