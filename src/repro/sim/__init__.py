"""Simulation substrate: deterministic event kernel, RNG streams, barriers."""

from .barrier import Barrier
from .kernel import SCHEDULERS, Event, KernelProfile, Simulator
from .rng import RngFactory

__all__ = [
    "Barrier",
    "Event",
    "KernelProfile",
    "RngFactory",
    "SCHEDULERS",
    "Simulator",
]
