"""Simulation substrate: deterministic event kernel, RNG streams, barriers."""

from .barrier import Barrier
from .kernel import Event, KernelProfile, Simulator
from .rng import RngFactory

__all__ = ["Barrier", "Event", "KernelProfile", "RngFactory", "Simulator"]
