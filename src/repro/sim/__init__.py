"""Simulation substrate: deterministic event kernel, RNG streams, barriers."""

from .barrier import Barrier
from .kernel import Event, Simulator
from .rng import RngFactory

__all__ = ["Barrier", "Event", "RngFactory", "Simulator"]
