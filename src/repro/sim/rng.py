"""Deterministic per-object random number streams.

The paper (Section 3) stresses that "dedicated state for each pseudo-random
number generator ensures that the same sequence of bursts is generated
regardless of network and NIFDY configuration used".  We reproduce that: each
named consumer gets its own :class:`random.Random` seeded from a stable hash
of (master seed, name), so adding or removing other consumers never perturbs
an existing stream.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive_seed(master_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngFactory:
    """Hands out independent, reproducible random streams by name."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the same generator object,
        so its state advances across call sites that share a name.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(_derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngFactory":
        """A new factory whose streams are independent of this one's."""
        return RngFactory(_derive_seed(self.master_seed, f"fork:{name}"))
