"""The ``"epoch"`` scheduler: token-batched kernel for flit-level runs.

FireSim's switch model advances whole latency-windows of link tokens per
step instead of simulating each flit crossing as its own event.  A
wormhole network cannot go that far -- per-flit credit returns and
cut-through buffer arrivals are *observable* at exact cycles, and the
parity suite holds every scheduler to byte-identical metrics -- but the
same idea applies to the kernel *mechanics*: almost every event in a
saturated run is a link moving one flit of a committed packet run, whose
callback and ordering are fully determined when it is scheduled.

The epoch kernel exploits that two ways:

* :meth:`EpochSimulator.post` enqueues fire-and-forget work as a bare
  ``(fn, args)`` tuple in the calendar ring -- no ``Event`` object, no
  free-list recycling, no cancelled/pooled bookkeeping in the drain loop.
  Cancellable events (:meth:`~repro.sim.kernel.RingKernel.at` /
  ``schedule``) still allocate real Events and interleave with the tuples
  positionally, so global ``(cycle, seq)`` order is preserved: within a
  ring slot, list order *is* scheduling order, and the far-event heap is
  drained first exactly as in the bucket kernel.

* It advertises ``link_streams = True``, which lets
  :class:`repro.links.link.Link` open per-link *token runs*: while one
  packet has a VC to itself and no rival VC becomes eligible, the link
  enqueues one pre-bound arrival record per flit instead of a generic
  completion event, skips re-arbitration, bulk-claims NIC injection
  flits (``FlitFeeder.take_flits``) and defers NIC ejection body-flit
  deliveries (``FlitSink.accept_flits``).  Any rival activity truncates
  the run and falls back to the classic per-flit path, so the fast path
  is an optimisation of arbitration that would provably make the same
  choices -- never a change in behaviour.

Both pieces preserve the exact event order of ``heap``/``bucket``; the
parity matrix in ``tests/test_scheduler_parity.py`` enforces it across
every registered workload.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Optional

from .kernel import _MASK, _WINDOW, Event, RingKernel
from .schedulers import register_scheduler


@register_scheduler
class EpochSimulator(RingKernel):
    """Ring kernel draining bare ``(fn, args)`` token records.

    Queue layout is identical to :class:`~repro.sim.kernel.BucketSimulator`
    (per-cycle ring + far heap); the difference is what a fire-and-forget
    event *is*.  Tuples carry no seq -- their position in the ring slot is
    their order -- so ``post`` is an append and the drain is an unpack.
    """

    name = "epoch"
    description = ("calendar ring draining bare (fn, args) token records, "
                   "with fused per-link flit runs")
    link_streams = True

    def post(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget scheduling as a bare token record.

        Near events (the overwhelming majority: flit times, route delays,
        NIC overheads) append ``(fn, args)`` to the ring slot.  Far events
        become real Events in the heap, where ``(cycle, seq)`` comparison
        is needed for ordering.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self._live += 1
        if delay < _WINDOW:
            self._buckets[(self._now + delay) & _MASK].append((fn, args))
            self._nbucket += 1
        else:
            event = Event(self._now + delay, self._seq, fn, args)
            event._sim = self
            self._seq += 1
            heapq.heappush(self._heap, event)

    def run_until(self, cycle: int) -> None:
        """Run all events with timestamp strictly less than ``cycle``."""
        self._running = True
        try:
            if self._profile is None:
                self._run_ring(cycle)
            else:
                self._run_ring_profiled(cycle)
        finally:
            self._running = False
        self._now = max(self._now, cycle)

    def run(self, max_cycles: Optional[int] = None) -> None:
        """Run until the event queue is empty (or ``max_cycles`` elapses)."""
        if max_cycles is not None:
            self.run_until(self._now + max_cycles)
            return
        self._running = True
        try:
            if self._profile is None:
                self._run_ring(None)
            else:
                self._run_ring_profiled(None)
        finally:
            self._running = False

    def _run_ring(self, bound: Optional[int]) -> None:
        """Drain loop: heap Events first (strictly lower seq for any given
        cycle -- see the kernel module docstring), then the ring slot
        positionally, unpacking token tuples inline."""
        heap = self._heap
        buckets = self._buckets
        heappop = heapq.heappop
        while True:
            c = self._next_event_cycle()
            if c is None or (bound is not None and c >= bound):
                return
            self._now = c
            while heap and heap[0].cycle == c:
                event = heappop(heap)
                if not event.cancelled:
                    event._fired = True
                    self._live -= 1
                    event.fn(*event.args)
            bucket = buckets[c & _MASK]
            i = 0
            while i < len(bucket):  # handlers may append same-cycle events
                entry = bucket[i]
                i += 1
                if type(entry) is tuple:
                    self._live -= 1
                    fn, args = entry
                    fn(*args)
                elif not entry.cancelled:
                    entry._fired = True
                    self._live -= 1
                    entry.fn(*entry.args)
            self._nbucket -= i
            del bucket[:]

    def _run_ring_profiled(self, bound: Optional[int]) -> None:
        """Timed twin of :meth:`_run_ring`, with the same per-event
        accounting as the other kernels (honest cross-kernel events/sec)."""
        heap = self._heap
        buckets = self._buckets
        heappop = heapq.heappop
        profile = self._profile
        clock = time.perf_counter
        loop_start = clock()
        try:
            while True:
                c = self._next_event_cycle()
                if c is None or (bound is not None and c >= bound):
                    return
                self._now = c
                while heap and heap[0].cycle == c:
                    event = heappop(heap)
                    if not event.cancelled:
                        event._fired = True
                        self._live -= 1
                        start = clock()
                        event.fn(*event.args)
                        profile.note(event.fn, clock() - start)
                        profile.events += 1
                bucket = buckets[c & _MASK]
                i = 0
                while i < len(bucket):
                    entry = bucket[i]
                    i += 1
                    if type(entry) is tuple:
                        self._live -= 1
                        fn, args = entry
                        start = clock()
                        fn(*args)
                        profile.note(fn, clock() - start)
                        profile.events += 1
                    elif not entry.cancelled:
                        entry._fired = True
                        self._live -= 1
                        start = clock()
                        entry.fn(*entry.args)
                        profile.note(entry.fn, clock() - start)
                        profile.events += 1
                self._nbucket -= i
                del bucket[:]
        finally:
            profile.loop_seconds += clock() - loop_start
