"""Global barrier coordinator.

The synthetic workloads and the Strata-style C-shift variant (Section 4.3)
separate communication phases with global barriers.  A real MPP barrier has a
cost; Strata's optimized barriers on the CM-5 cost a few microseconds.  We
model the barrier as: the last processor to arrive releases everyone
``release_cost`` cycles later.
"""

from __future__ import annotations

from typing import Callable, Dict

from .kernel import Simulator


class Barrier:
    """An N-party reusable barrier with a configurable release latency."""

    def __init__(self, sim: Simulator, parties: int, release_cost: int = 100):
        if parties <= 0:
            raise ValueError("barrier needs at least one party")
        self.sim = sim
        self.parties = parties
        self.release_cost = release_cost
        self._waiting: Dict[int, Callable[[], None]] = {}
        self._generation = 0
        self.crossings = 0

    def arrive(self, node_id: int, resume: Callable[[], None]) -> None:
        """Node ``node_id`` blocks; ``resume`` is called once all arrive."""
        if node_id in self._waiting:
            raise RuntimeError(f"node {node_id} arrived at barrier twice")
        self._waiting[node_id] = resume
        if len(self._waiting) == self.parties:
            waiters = list(self._waiting.values())
            self._waiting.clear()
            self._generation += 1
            self.crossings += 1
            for fn in waiters:
                self.sim.post(self.release_cost, fn)

    @property
    def waiting_count(self) -> int:
        return len(self._waiting)
