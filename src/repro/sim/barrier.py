"""Global barrier coordinator.

The synthetic workloads and the Strata-style C-shift variant (Section 4.3)
separate communication phases with global barriers.  A real MPP barrier has a
cost; Strata's optimized barriers on the CM-5 cost a few microseconds.  We
model the barrier as: the last processor to arrive releases everyone
``release_cost`` cycles later.

Two correctness properties are enforced here rather than assumed:

* **Membership** -- only the configured participants may arrive.  A stray
  node id must not count toward the trip threshold (it would release the
  real participants one arrival early).
* **Generation tagging** -- each release is tied to the generation that
  produced it.  A node whose release callback is still queued (the
  ``release_cost`` window) has not logically left generation N and must not
  be counted toward generation N+1.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Union

from .kernel import Simulator


class Barrier:
    """An N-party reusable barrier with a configurable release latency.

    ``parties`` is either an ``int`` (members are node ids ``0..parties-1``)
    or an explicit iterable of member ids.
    """

    def __init__(
        self,
        sim: Simulator,
        parties: Union[int, Iterable[int]],
        release_cost: int = 100,
    ):
        if isinstance(parties, int):
            if parties <= 0:
                raise ValueError("barrier needs at least one party")
            members: FrozenSet[int] = frozenset(range(parties))
        else:
            members = frozenset(parties)
            if not members:
                raise ValueError("barrier needs at least one party")
        self.sim = sim
        self.members = members
        self.parties = len(members)
        self.release_cost = release_cost
        self._waiting: Dict[int, Callable[[], None]] = {}
        #: node -> generation whose release callback has not yet fired
        self._pending_release: Dict[int, int] = {}
        self._generation = 0
        self.crossings = 0

    def arrive(self, node_id: int, resume: Callable[[], None]) -> None:
        """Node ``node_id`` blocks; ``resume`` is called once all arrive."""
        if node_id not in self.members:
            raise RuntimeError(
                f"node {node_id} is not a member of this barrier "
                f"({self.parties} parties)"
            )
        if node_id in self._waiting:
            raise RuntimeError(f"node {node_id} arrived at barrier twice")
        if node_id in self._pending_release:
            raise RuntimeError(
                f"node {node_id} re-arrived during the release window of "
                f"generation {self._pending_release[node_id]}"
            )
        self._waiting[node_id] = resume
        if len(self._waiting) == self.parties:
            waiters = list(self._waiting.items())
            self._waiting.clear()
            generation = self._generation
            self._generation += 1
            self.crossings += 1
            for node, fn in waiters:
                self._pending_release[node] = generation
                self.sim.post(self.release_cost, self._fire, generation,
                              node, fn)

    def _fire(self, generation: int, node: int, fn: Callable[[], None]) -> None:
        """Deliver one release; the node may re-arrive from inside ``fn``."""
        if self._pending_release.get(node) == generation:
            del self._pending_release[node]
        fn()

    @property
    def waiting_count(self) -> int:
        return len(self._waiting)
