"""Deterministic discrete-event simulation kernel.

The paper's simulator (Section 3) steps every object synchronously, cycle by
cycle.  We keep the same *observable* semantics -- all state changes happen at
integer cycle boundaries, and simultaneous events fire in a deterministic
order -- but use an event heap so idle components cost nothing.  Events that
are scheduled for the same cycle fire in the order they were scheduled, which
makes every run bit-for-bit reproducible for a given seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Cancellation is O(1): the event is flagged and skipped when popped.
    """

    __slots__ = ("cycle", "seq", "fn", "args", "cancelled")

    def __init__(self, cycle: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.cycle = cycle
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.cycle, self.seq) < (other.cycle, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event @{self.cycle} #{self.seq}{state} {self.fn!r}>"


class Simulator:
    """Event-driven simulator with cycle-granularity virtual time."""

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._heap: List[Event] = []
        self._running = False

    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self._now

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.at(self._now + delay, fn, *args)

    def at(self, cycle: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute ``cycle``."""
        if cycle < self._now:
            raise ValueError(
                f"cannot schedule at cycle {cycle}; current cycle is {self._now}"
            )
        event = Event(cycle, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def run_until(self, cycle: int) -> None:
        """Run all events with timestamp strictly less than ``cycle``.

        Afterwards ``self.now == cycle`` (unless the event queue drained
        earlier, in which case ``now`` still advances to ``cycle``).
        """
        self._running = True
        heap = self._heap
        try:
            while heap and heap[0].cycle < cycle:
                event = heapq.heappop(heap)
                if event.cancelled:
                    continue
                self._now = event.cycle
                event.fn(*event.args)
        finally:
            self._running = False
        self._now = max(self._now, cycle)

    def run(self, max_cycles: Optional[int] = None) -> None:
        """Run until the event queue is empty (or ``max_cycles`` elapses)."""
        if max_cycles is not None:
            self.run_until(self._now + max_cycles)
            return
        heap = self._heap
        self._running = True
        try:
            while heap:
                event = heapq.heappop(heap)
                if event.cancelled:
                    continue
                self._now = event.cycle
                event.fn(*event.args)
        finally:
            self._running = False

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now} queued={len(self._heap)}>"
