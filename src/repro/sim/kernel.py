"""Deterministic discrete-event simulation kernel.

The paper's simulator (Section 3) steps every object synchronously, cycle by
cycle.  We keep the same *observable* semantics -- all state changes happen at
integer cycle boundaries, and simultaneous events fire in a deterministic
order -- but use an event queue so idle components cost nothing.  Events that
are scheduled for the same cycle fire in the order they were scheduled, which
makes every run bit-for-bit reproducible for a given seed.

Scheduler implementations are pluggable (see :mod:`repro.sim.schedulers`);
this module registers the two built-in baselines:

``"heap"``
    The original single binary heap keyed by ``(cycle, seq)``.  Kept intact
    as the measured baseline (``repro perf`` compares against it) and as the
    executable specification the parity tests diff the fast paths against.

``"bucket"`` (the default)
    A hybrid calendar queue.  Almost every event in a flit-level run is
    scheduled a small constant number of cycles ahead (``cycles_per_flit``
    is 1-4, route delays ~1, NIC overheads a few cycles), so events landing
    within ``_WINDOW`` cycles of *now* go into a ring of per-cycle FIFO
    lists: scheduling is a plain ``list.append`` and dispatch walks the
    list -- no heap sift, no Python-level ``Event.__lt__`` calls.  Far
    events (retransmit timeouts, barriers, fault plans, light-traffic
    compute gaps) fall back to the binary heap and are merged back in when
    their cycle comes up.  Combined with the :meth:`Simulator.post`
    free-list (recycling the millions of short-lived ``Event`` objects per
    run), this is the kernel fast path.

``repro.sim.epoch`` registers a third scheduler, ``"epoch"``, which keeps
the same ring but posts fire-and-forget events as bare ``(fn, args)``
tuples and lets links fuse per-flit token runs (see that module).

Ordering across the heap and ring stores is still global ``(cycle, seq)``
order: a heap event for cycle *c* needed at least a ``_WINDOW``-cycle lead
to land in the heap, so it was scheduled at a strictly earlier simulated
time -- and therefore holds a strictly lower sequence number -- than every
ring event for *c*.  Draining the heap before the ring at each cycle is
exactly seq order, which the parity suite verifies workload-by-workload.

Self-profiling (:meth:`Simulator.enable_profiling`) measures where the
*simulator's own* wall-clock time goes: events executed per second and
cumulative time per handler type.  It exists so performance regressions in
the simulator become a measured number run-to-run rather than a feeling;
the profiled loop is a separate code path, so an un-profiled run pays
nothing for the feature.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Dict, List, Optional

from .schedulers import (DEFAULT_SCHEDULER, Scheduler, register_scheduler,
                         resolve_scheduler, scheduler_names)

#: Span of the bucket ring in cycles (power of two so the slot index is a
#: mask).  Events scheduled fewer than ``_WINDOW`` cycles ahead take the
#: ring fast path; everything else falls back to the heap.
_WINDOW = 64
_MASK = _WINDOW - 1

#: Upper bound on the :meth:`Simulator.post` free list, so a burst of
#: simultaneously-pending events cannot pin memory forever.
_FREE_MAX = 4096


def __getattr__(name: str):
    # Backwards compatibility: the pre-registry API was a module-level
    # tuple.  Resolved lazily so late-registered schedulers appear.
    if name == "SCHEDULERS":
        return scheduler_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Cancellation is O(1): the event is flagged and skipped when popped.
    Events created through :meth:`Simulator.post` are *pooled*: the kernel
    recycles them through a free list after they fire, which is why
    ``post`` never hands the object out.
    """

    __slots__ = ("cycle", "seq", "fn", "args", "cancelled", "_fired",
                 "_pooled", "_sim")

    def __init__(self, cycle: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.cycle = cycle
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._fired = False
        self._pooled = False
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once, and
        safe to call on an event that has already fired (a no-op)."""
        if self.cancelled or self._fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._live -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.cycle, self.seq) < (other.cycle, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event @{self.cycle} #{self.seq}{state} {self.fn!r}>"


class KernelProfile:
    """Wall-clock accounting of the event loop (simulator self-profiling).

    ``by_handler`` maps a handler's qualified name (e.g.
    ``NifdyNIC._process_ack``) to ``[count, seconds]``; ``loop_seconds``
    is total time spent inside the run loop, so ``events_per_sec`` includes
    queue overhead -- the honest throughput figure for comparing runs.
    """

    def __init__(self) -> None:
        self.events = 0
        self.loop_seconds = 0.0
        self.by_handler: Dict[str, List] = {}

    def note(self, fn: Callable, seconds: float) -> None:
        name = getattr(fn, "__qualname__", None) or repr(fn)
        entry = self.by_handler.get(name)
        if entry is None:
            self.by_handler[name] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    @property
    def events_per_sec(self) -> float:
        if self.loop_seconds <= 0.0:
            return 0.0
        return self.events / self.loop_seconds

    def table(self, top: Optional[int] = None):
        """``(handler, count, seconds, us_per_event)`` rows, costliest first."""
        rows = [
            (name, count, seconds, 1e6 * seconds / count if count else 0.0)
            for name, (count, seconds) in self.by_handler.items()
        ]
        rows.sort(key=lambda row: row[2], reverse=True)
        return rows[:top] if top is not None else rows

    def to_dict(self) -> Dict:
        return {
            "events": self.events,
            "loop_seconds": self.loop_seconds,
            "events_per_sec": self.events_per_sec,
            "handlers": {
                name: {
                    "count": count,
                    "seconds": seconds,
                    "us_per_event": 1e6 * seconds / count if count else 0.0,
                }
                for name, (count, seconds) in self.by_handler.items()
            },
        }

    def format(self, top: int = 12) -> str:
        lines = [
            f"self-profile: {self.events:,} events in {self.loop_seconds:.3f}s "
            f"wall ({self.events_per_sec:,.0f} events/sec)"
        ]
        lines.append(f"  {'handler':44s}{'count':>10s}{'seconds':>10s}{'us/ev':>8s}")
        for name, count, seconds, us in self.table(top):
            lines.append(f"  {name[:44]:44s}{count:>10,}{seconds:>10.3f}{us:>8.1f}")
        return "\n".join(lines)


class Simulator(Scheduler):
    """Event-driven simulator with cycle-granularity virtual time.

    ``Simulator(scheduler=name)`` dispatches construction through the
    scheduler registry: it returns an instance of whichever
    :class:`~repro.sim.schedulers.Scheduler` subclass is registered under
    ``name`` (default :data:`~repro.sim.schedulers.DEFAULT_SCHEDULER`).
    All implementations fire events in identical ``(cycle, seq)`` order;
    they differ only in queue mechanics and speed.
    """

    def __new__(cls, scheduler: Optional[str] = None):
        if cls is Simulator:
            name = DEFAULT_SCHEDULER if scheduler is None else scheduler
            return object.__new__(resolve_scheduler(name))
        return object.__new__(cls)

    def __init__(self, scheduler: Optional[str] = None) -> None:
        if scheduler is not None and scheduler != self.name:
            raise ValueError(
                f"scheduler mismatch: {type(self).__name__} implements "
                f"{self.name!r}, not {scheduler!r}"
            )
        self._now = 0
        self._seq = 0
        self._heap: List[Event] = []
        self._free: List[Event] = []
        self._running = False
        self._live = 0
        self._profile: Optional[KernelProfile] = None

    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self._now

    @property
    def scheduler(self) -> str:
        """Which event-queue implementation this kernel runs on."""
        return self.name

    @property
    def profile(self) -> Optional[KernelProfile]:
        """The active :class:`KernelProfile`, if profiling is enabled."""
        return self._profile

    def enable_profiling(self) -> KernelProfile:
        """Switch the run loop to the timed path.  Idempotent; returns the
        profile (which accumulates across run calls)."""
        if self._profile is None:
            self._profile = KernelProfile()
        return self._profile

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.at(self._now + delay, fn, *args)

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1): a live
        count is maintained on schedule/cancel/pop (the liveness watchdog
        polls this every check interval)."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        queued = len(self._heap) + getattr(self, "_nbucket", 0)
        return f"<Simulator {self.name} now={self._now} queued={queued}>"


class HeapSimulator(Simulator):
    """The original binary-heap kernel: the preserved, measured baseline."""

    name = "heap"
    description = ("single binary heap keyed by (cycle, seq); the slow, "
                   "obviously-correct reference implementation")

    def at(self, cycle: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute ``cycle``."""
        if cycle < self._now:
            raise ValueError(
                f"cannot schedule at cycle {cycle}; current cycle is {self._now}"
            )
        event = Event(cycle, self._seq, fn, args)
        event._sim = self
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def post(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`.  The heap kernel is the
        preserved baseline: one fresh allocation per event, exactly as the
        original kernel behaved -- no pooling, no recycling."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self.at(self._now + delay, fn, *args)

    def run_until(self, cycle: int) -> None:
        """Run all events with timestamp strictly less than ``cycle``.

        Afterwards ``self.now == cycle`` (unless the event queue drained
        earlier, in which case ``now`` still advances to ``cycle``).
        """
        self._running = True
        heap = self._heap
        try:
            if self._profile is None:
                while heap and heap[0].cycle < cycle:
                    event = heapq.heappop(heap)
                    if event.cancelled:
                        continue
                    event._fired = True
                    self._live -= 1
                    self._now = event.cycle
                    event.fn(*event.args)
            else:
                self._run_profiled(lambda: heap and heap[0].cycle < cycle)
        finally:
            self._running = False
        self._now = max(self._now, cycle)

    def run(self, max_cycles: Optional[int] = None) -> None:
        """Run until the event queue is empty (or ``max_cycles`` elapses)."""
        if max_cycles is not None:
            self.run_until(self._now + max_cycles)
            return
        self._running = True
        heap = self._heap
        try:
            if self._profile is None:
                while heap:
                    event = heapq.heappop(heap)
                    if event.cancelled:
                        continue
                    event._fired = True
                    self._live -= 1
                    self._now = event.cycle
                    event.fn(*event.args)
            else:
                self._run_profiled(lambda: bool(heap))
        finally:
            self._running = False

    def _run_profiled(self, more: Callable[[], Any]) -> None:
        """The timed heap event loop: same semantics as the plain loops,
        plus per-handler wall-clock accounting."""
        heap = self._heap
        profile = self._profile
        clock = time.perf_counter
        loop_start = clock()
        try:
            while more():
                event = heapq.heappop(heap)
                if event.cancelled:
                    continue
                event._fired = True
                self._live -= 1
                self._now = event.cycle
                start = clock()
                event.fn(*event.args)
                profile.note(event.fn, clock() - start)
                profile.events += 1
        finally:
            profile.loop_seconds += clock() - loop_start


class RingKernel(Simulator):
    """Shared machinery for ring-based kernels (``bucket``, ``epoch``):
    the ``_WINDOW``-cycle calendar ring plus the far-event heap."""

    def __init__(self, scheduler: Optional[str] = None) -> None:
        super().__init__(scheduler)
        self._buckets: List[List] = [[] for _ in range(_WINDOW)]
        self._nbucket = 0  # entries (incl. cancelled husks) in the ring

    def _next_event_cycle(self) -> Optional[int]:
        """Earliest cycle holding a queued event (husks included), or None.

        With the ring non-empty the scan terminates within ``_WINDOW``
        slots by construction; in flit-saturated runs it terminates in one
        or two.
        """
        heap = self._heap
        if self._nbucket:
            buckets = self._buckets
            c = self._now
            while not buckets[c & _MASK]:
                c += 1
            if heap and heap[0].cycle < c:
                return heap[0].cycle
            return c
        if heap:
            return heap[0].cycle
        return None

    def at(self, cycle: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute ``cycle``."""
        if cycle < self._now:
            raise ValueError(
                f"cannot schedule at cycle {cycle}; current cycle is {self._now}"
            )
        event = Event(cycle, self._seq, fn, args)
        event._sim = self
        self._seq += 1
        self._live += 1
        if cycle - self._now < _WINDOW:
            self._buckets[cycle & _MASK].append(event)
            self._nbucket += 1
        else:
            heapq.heappush(self._heap, event)
        return event


class BucketSimulator(RingKernel):
    """The hybrid calendar-queue kernel (see the module docstring)."""

    name = "bucket"
    description = ("calendar-queue ring for near events + heap fallback, "
                   "with pooled fire-and-forget events (the default)")

    def post(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule fire-and-forget: like :meth:`schedule`, but returns no
        handle and the event can never be cancelled.

        This is the hot-path API.  Links, routers, processors and the NIC
        ack pumps schedule millions of short-lived events per run and never
        cancel one; ``post`` recycles those :class:`Event` objects through
        a free list instead of allocating each time.  Recycled events are
        never handed out, so a stale reference can never cancel (or
        observe) a later occupant -- anything that might need cancelling
        must use :meth:`schedule` / :meth:`at`, which always return a
        fresh, never-recycled Event.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        cycle = self._now + delay
        free = self._free
        if free:
            event = free.pop()
            event.cycle = cycle
            event.seq = self._seq
            event.fn = fn
            event.args = args
            event.cancelled = False
            event._fired = False
        else:
            event = Event(cycle, self._seq, fn, args)
            event._pooled = True
            event._sim = self
        self._seq += 1
        self._live += 1
        if delay < _WINDOW:
            self._buckets[cycle & _MASK].append(event)
            self._nbucket += 1
        else:
            heapq.heappush(self._heap, event)

    def run_until(self, cycle: int) -> None:
        """Run all events with timestamp strictly less than ``cycle``."""
        self._running = True
        try:
            if self._profile is None:
                self._run_buckets(cycle)
            else:
                self._run_buckets_profiled(cycle)
        finally:
            self._running = False
        self._now = max(self._now, cycle)

    def run(self, max_cycles: Optional[int] = None) -> None:
        """Run until the event queue is empty (or ``max_cycles`` elapses)."""
        if max_cycles is not None:
            self.run_until(self._now + max_cycles)
            return
        self._running = True
        try:
            if self._profile is None:
                self._run_buckets(None)
            else:
                self._run_buckets_profiled(None)
        finally:
            self._running = False

    def _run_buckets(self, bound: Optional[int]) -> None:
        """The calendar-queue event loop: identical firing order to the
        heap loops, with pooled-event recycling."""
        heap = self._heap
        buckets = self._buckets
        free = self._free
        heappop = heapq.heappop
        while True:
            c = self._next_event_cycle()
            if c is None or (bound is not None and c >= bound):
                return
            self._now = c
            # Heap first: every heap event for this cycle was scheduled at
            # an earlier simulated time than every bucket event for it
            # (it needed a >= _WINDOW lead to be in the heap at all), so it
            # carries a lower seq.  Handlers can only add *bucket* events
            # for the current cycle, so this drain cannot starve.
            while heap and heap[0].cycle == c:
                event = heappop(heap)
                if not event.cancelled:
                    event._fired = True
                    self._live -= 1
                    event.fn(*event.args)
                if event._pooled and len(free) < _FREE_MAX:
                    event.fn = None
                    event.args = ()
                    free.append(event)
            bucket = buckets[c & _MASK]
            i = 0
            while i < len(bucket):  # handlers may append same-cycle events
                event = bucket[i]
                i += 1
                if not event.cancelled:
                    event._fired = True
                    self._live -= 1
                    event.fn(*event.args)
                if event._pooled and len(free) < _FREE_MAX:
                    event.fn = None
                    event.args = ()
                    free.append(event)
            self._nbucket -= i
            del bucket[:]

    def _run_buckets_profiled(self, bound: Optional[int]) -> None:
        """Timed twin of :meth:`_run_buckets` (per-handler wall-clock)."""
        heap = self._heap
        buckets = self._buckets
        free = self._free
        heappop = heapq.heappop
        profile = self._profile
        clock = time.perf_counter
        loop_start = clock()
        try:
            while True:
                c = self._next_event_cycle()
                if c is None or (bound is not None and c >= bound):
                    return
                self._now = c
                while heap and heap[0].cycle == c:
                    event = heappop(heap)
                    if not event.cancelled:
                        event._fired = True
                        self._live -= 1
                        start = clock()
                        event.fn(*event.args)
                        profile.note(event.fn, clock() - start)
                        profile.events += 1
                    if event._pooled and len(free) < _FREE_MAX:
                        event.fn = None
                        event.args = ()
                        free.append(event)
                bucket = buckets[c & _MASK]
                i = 0
                while i < len(bucket):
                    event = bucket[i]
                    i += 1
                    if not event.cancelled:
                        event._fired = True
                        self._live -= 1
                        start = clock()
                        event.fn(*event.args)
                        profile.note(event.fn, clock() - start)
                        profile.events += 1
                    if event._pooled and len(free) < _FREE_MAX:
                        event.fn = None
                        event.args = ()
                        free.append(event)
                self._nbucket -= i
                del bucket[:]
        finally:
            profile.loop_seconds += clock() - loop_start


# Registration order is presentation order (CLI choices, perf tables):
# keep the historical ("bucket", "heap") prefix; epoch appends on import
# of repro.sim.epoch.
register_scheduler(BucketSimulator)
register_scheduler(HeapSimulator)
