"""Deterministic discrete-event simulation kernel.

The paper's simulator (Section 3) steps every object synchronously, cycle by
cycle.  We keep the same *observable* semantics -- all state changes happen at
integer cycle boundaries, and simultaneous events fire in a deterministic
order -- but use an event heap so idle components cost nothing.  Events that
are scheduled for the same cycle fire in the order they were scheduled, which
makes every run bit-for-bit reproducible for a given seed.

Self-profiling (:meth:`Simulator.enable_profiling`) measures where the
*simulator's own* wall-clock time goes: events executed per second and
cumulative time per handler type.  It exists so performance regressions in
the simulator become a measured number run-to-run rather than a feeling;
the profiled loop is a separate code path, so an un-profiled run pays
nothing for the feature.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Dict, List, Optional


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Cancellation is O(1): the event is flagged and skipped when popped.
    """

    __slots__ = ("cycle", "seq", "fn", "args", "cancelled", "_fired", "_sim")

    def __init__(self, cycle: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.cycle = cycle
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._fired = False
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once, and
        safe to call on an event that has already fired (a no-op)."""
        if self.cancelled or self._fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._live -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.cycle, self.seq) < (other.cycle, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event @{self.cycle} #{self.seq}{state} {self.fn!r}>"


class KernelProfile:
    """Wall-clock accounting of the event loop (simulator self-profiling).

    ``by_handler`` maps a handler's qualified name (e.g.
    ``NifdyNIC._process_ack``) to ``[count, seconds]``; ``loop_seconds``
    is total time spent inside the run loop, so ``events_per_sec`` includes
    heap overhead -- the honest throughput figure for comparing runs.
    """

    def __init__(self) -> None:
        self.events = 0
        self.loop_seconds = 0.0
        self.by_handler: Dict[str, List] = {}

    def note(self, fn: Callable, seconds: float) -> None:
        name = getattr(fn, "__qualname__", None) or repr(fn)
        entry = self.by_handler.get(name)
        if entry is None:
            self.by_handler[name] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    @property
    def events_per_sec(self) -> float:
        if self.loop_seconds <= 0.0:
            return 0.0
        return self.events / self.loop_seconds

    def table(self, top: Optional[int] = None):
        """``(handler, count, seconds, us_per_event)`` rows, costliest first."""
        rows = [
            (name, count, seconds, 1e6 * seconds / count if count else 0.0)
            for name, (count, seconds) in self.by_handler.items()
        ]
        rows.sort(key=lambda row: row[2], reverse=True)
        return rows[:top] if top is not None else rows

    def to_dict(self) -> Dict:
        return {
            "events": self.events,
            "loop_seconds": self.loop_seconds,
            "events_per_sec": self.events_per_sec,
            "handlers": {
                name: {
                    "count": count,
                    "seconds": seconds,
                    "us_per_event": 1e6 * seconds / count if count else 0.0,
                }
                for name, (count, seconds) in self.by_handler.items()
            },
        }

    def format(self, top: int = 12) -> str:
        lines = [
            f"self-profile: {self.events:,} events in {self.loop_seconds:.3f}s "
            f"wall ({self.events_per_sec:,.0f} events/sec)"
        ]
        lines.append(f"  {'handler':44s}{'count':>10s}{'seconds':>10s}{'us/ev':>8s}")
        for name, count, seconds, us in self.table(top):
            lines.append(f"  {name[:44]:44s}{count:>10,}{seconds:>10.3f}{us:>8.1f}")
        return "\n".join(lines)


class Simulator:
    """Event-driven simulator with cycle-granularity virtual time."""

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._heap: List[Event] = []
        self._running = False
        self._live = 0
        self._profile: Optional[KernelProfile] = None

    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self._now

    @property
    def profile(self) -> Optional[KernelProfile]:
        """The active :class:`KernelProfile`, if profiling is enabled."""
        return self._profile

    def enable_profiling(self) -> KernelProfile:
        """Switch the run loop to the timed path.  Idempotent; returns the
        profile (which accumulates across run calls)."""
        if self._profile is None:
            self._profile = KernelProfile()
        return self._profile

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.at(self._now + delay, fn, *args)

    def at(self, cycle: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute ``cycle``."""
        if cycle < self._now:
            raise ValueError(
                f"cannot schedule at cycle {cycle}; current cycle is {self._now}"
            )
        event = Event(cycle, self._seq, fn, args)
        event._sim = self
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def run_until(self, cycle: int) -> None:
        """Run all events with timestamp strictly less than ``cycle``.

        Afterwards ``self.now == cycle`` (unless the event queue drained
        earlier, in which case ``now`` still advances to ``cycle``).
        """
        self._running = True
        heap = self._heap
        profile = self._profile
        try:
            if profile is None:
                while heap and heap[0].cycle < cycle:
                    event = heapq.heappop(heap)
                    if event.cancelled:
                        continue
                    event._fired = True
                    self._live -= 1
                    self._now = event.cycle
                    event.fn(*event.args)
            else:
                self._run_profiled(lambda: heap and heap[0].cycle < cycle)
        finally:
            self._running = False
        self._now = max(self._now, cycle)

    def run(self, max_cycles: Optional[int] = None) -> None:
        """Run until the event queue is empty (or ``max_cycles`` elapses)."""
        if max_cycles is not None:
            self.run_until(self._now + max_cycles)
            return
        heap = self._heap
        profile = self._profile
        self._running = True
        try:
            if profile is None:
                while heap:
                    event = heapq.heappop(heap)
                    if event.cancelled:
                        continue
                    event._fired = True
                    self._live -= 1
                    self._now = event.cycle
                    event.fn(*event.args)
            else:
                self._run_profiled(lambda: bool(heap))
        finally:
            self._running = False

    def _run_profiled(self, more: Callable[[], Any]) -> None:
        """The timed event loop: same semantics as the plain loops, plus
        per-handler wall-clock accounting."""
        heap = self._heap
        profile = self._profile
        clock = time.perf_counter
        loop_start = clock()
        try:
            while more():
                event = heapq.heappop(heap)
                if event.cancelled:
                    continue
                event._fired = True
                self._live -= 1
                self._now = event.cycle
                start = clock()
                event.fn(*event.args)
                profile.note(event.fn, clock() - start)
                profile.events += 1
        finally:
            profile.loop_seconds += clock() - loop_start

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1): a live
        count is maintained on schedule/cancel/pop (the liveness watchdog
        polls this every check interval)."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now} queued={len(self._heap)}>"
