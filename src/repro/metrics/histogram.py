"""Log-bucket latency histograms: percentiles at O(log max) memory.

One histogram replaces the old mean/max-only ``LatencyStats`` everywhere a
latency distribution is accumulated.  Values land in power-of-two buckets
(bucket *b* holds ``[2^b, 2^(b+1))``), so p50/p90/p99 queries cost a walk
over at most ~40 buckets and the memory footprint is independent of the
number of samples -- cheap enough to keep one per collector per run, which
is what lets the CLI and the JSON export report tail latency without a
per-packet record.

The exact ``count``/``total``/``maximum`` are tracked alongside the
buckets, so ``mean`` and ``max`` are exact; percentiles are upper bounds
of their bucket (at most 2x the true value), clamped to the exact maximum
-- the right fidelity for the paper's latency scales (hundreds to tens of
thousands of cycles).
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class LatencyHistogram:
    """Power-of-two-bucket latency histogram with percentile queries."""

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.maximum = 0

    @staticmethod
    def _bucket(value: int) -> int:
        return max(0, int(value).bit_length() - 1)

    def note(self, value: int) -> None:
        if value < 0:
            raise ValueError("latency cannot be negative")
        bucket = self._bucket(value)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> int:
        """Upper bound of the bucket containing the given percentile."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.count == 0:
            return 0
        target = fraction * self.count
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= target:
                # the exact maximum is a tighter upper bound than the top
                # bucket's edge (it also keeps p99 <= max in reports)
                return min((1 << (bucket + 1)) - 1, self.maximum)
        return self.maximum

    @property
    def p50(self) -> int:
        return self.percentile(0.50)

    @property
    def p90(self) -> int:
        return self.percentile(0.90)

    @property
    def p99(self) -> int:
        return self.percentile(0.99)

    def rows(self) -> List[Tuple[str, int]]:
        """(range label, count) pairs for rendering."""
        out = []
        for bucket in sorted(self._buckets):
            low = 1 << bucket if bucket else 0
            high = (1 << (bucket + 1)) - 1
            out.append((f"{low}-{high}", self._buckets[bucket]))
        return out

    def to_dict(self) -> Dict:
        """JSON-ready summary (the shape the metrics export embeds)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.maximum,
            "buckets": [
                {"range": label, "count": count} for label, count in self.rows()
            ],
        }


#: The mean/max-only accumulator the histogram superseded; the alias keeps
#: the old name importable (same .note/.count/.mean/.maximum surface).
LatencyStats = LatencyHistogram
