"""Per-packet event tracing: see what the protocol actually did.

A :class:`PacketTracer` hooks the NICs of an experiment (or a hand-built
network) and records the lifecycle of every data packet: creation, NIC
injection, ejection at the destination NIC, and processor accept.  Useful
for debugging protocol behaviour ("why did this packet wait 4000 cycles in
the pool?") and for latency breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..packets import Packet


@dataclass
class PacketTrace:
    """Lifecycle timestamps of one packet (-1 = not reached)."""

    uid: int
    src: int
    dst: int
    created: int = -1
    injected: int = -1
    ejected: int = -1
    accepted: int = -1
    abandoned: int = -1

    @property
    def pool_wait(self) -> Optional[int]:
        """Cycles from processor handoff to wire injection."""
        if self.created < 0 or self.injected < 0:
            return None
        return self.injected - self.created

    @property
    def flight_time(self) -> Optional[int]:
        """Cycles on the wire: injection to destination-NIC ejection."""
        if self.injected < 0 or self.ejected < 0:
            return None
        return self.ejected - self.injected

    @property
    def network_time(self) -> Optional[int]:
        """Cycles from injection to processor accept."""
        if self.injected < 0 or self.accepted < 0:
            return None
        return self.accepted - self.injected


class PacketTracer:
    """Records per-packet lifecycle events from a set of NICs.

    Chains with any already-installed ``on_inject`` / ``on_eject`` /
    ``on_accept`` / ``on_abandon`` hooks (e.g. the metrics collector), so
    tracing composes with measurement.
    """

    def __init__(self, max_packets: int = 100_000):
        self.max_packets = max_packets
        self.traces: Dict[int, PacketTrace] = {}
        self.dropped_records = 0

    def attach(self, nics) -> None:
        for nic in nics:
            prev_inject = nic.on_inject
            prev_eject = getattr(nic, "on_eject", None)
            prev_accept = nic.on_accept
            prev_abandon = getattr(nic, "on_abandon", None)

            def on_inject(packet, _prev=prev_inject):
                self.note_inject(packet)
                if _prev is not None:
                    _prev(packet)

            def on_eject(packet, _prev=prev_eject):
                self.note_eject(packet)
                if _prev is not None:
                    _prev(packet)

            def on_accept(packet, _prev=prev_accept):
                self.note_accept(packet)
                if _prev is not None:
                    _prev(packet)

            def on_abandon(packet, _prev=prev_abandon):
                self.note_abandon(packet)
                if _prev is not None:
                    _prev(packet)

            nic.on_inject = on_inject
            nic.on_eject = on_eject
            nic.on_accept = on_accept
            nic.on_abandon = on_abandon

    def _trace_for(self, packet: Packet) -> Optional[PacketTrace]:
        trace = self.traces.get(packet.uid)
        if trace is None:
            if len(self.traces) >= self.max_packets:
                self.dropped_records += 1
                return None
            trace = PacketTrace(packet.uid, packet.src, packet.dst,
                                created=packet.created_cycle)
            self.traces[packet.uid] = trace
        return trace

    def note_inject(self, packet: Packet) -> None:
        trace = self._trace_for(packet)
        if trace is not None:
            trace.injected = packet.injected_cycle

    def note_eject(self, packet: Packet) -> None:
        trace = self._trace_for(packet)
        if trace is not None:
            trace.ejected = packet.ejected_cycle

    def note_accept(self, packet: Packet) -> None:
        trace = self._trace_for(packet)
        if trace is not None:
            trace.accepted = packet.delivered_cycle

    def note_abandon(self, packet: Packet) -> None:
        trace = self._trace_for(packet)
        if trace is not None:
            trace.abandoned = packet.abandoned_cycle

    # ------------------------------------------------------------ queries
    def completed(self) -> List[PacketTrace]:
        return [t for t in self.traces.values() if t.accepted >= 0]

    def mean_pool_wait(self) -> float:
        waits = [t.pool_wait for t in self.completed() if t.pool_wait is not None]
        return sum(waits) / len(waits) if waits else 0.0

    def mean_network_time(self) -> float:
        times = [t.network_time for t in self.completed()
                 if t.network_time is not None]
        return sum(times) / len(times) if times else 0.0

    def stragglers(self, top: int = 10) -> List[PacketTrace]:
        """The packets that spent longest between injection and accept."""
        done = [t for t in self.completed() if t.network_time is not None]
        done.sort(key=lambda t: t.network_time, reverse=True)
        return done[:top]
