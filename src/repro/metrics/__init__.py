"""Measurement: delivery/latency accounting, congestion tracking, reports."""

from .collector import LatencyStats, MetricsCollector
from .congestion import CongestionTracker
from .trace import PacketTrace, PacketTracer
from .report import (
    LatencyHistogram,
    LinkUtilization,
    link_utilization_report,
    results_to_csv,
    utilization_summary,
)

__all__ = [
    "CongestionTracker",
    "LatencyHistogram",
    "LatencyStats",
    "LinkUtilization",
    "MetricsCollector",
    "PacketTrace",
    "PacketTracer",
    "link_utilization_report",
    "results_to_csv",
    "utilization_summary",
]
