"""Measurement: delivery/latency accounting, congestion tracking, reports."""

from .collector import MetricsCollector
from .congestion import CongestionTracker
from .histogram import LatencyHistogram, LatencyStats
from .trace import PacketTrace, PacketTracer
from .report import (
    DegradationReport,
    LinkUtilization,
    PhaseStats,
    RecoveryStats,
    degradation_report,
    format_degradation,
    link_utilization_report,
    results_to_csv,
    utilization_summary,
)

__all__ = [
    "CongestionTracker",
    "DegradationReport",
    "LatencyHistogram",
    "LatencyStats",
    "LinkUtilization",
    "MetricsCollector",
    "PacketTrace",
    "PacketTracer",
    "PhaseStats",
    "RecoveryStats",
    "degradation_report",
    "format_degradation",
    "link_utilization_report",
    "results_to_csv",
    "utilization_summary",
]
