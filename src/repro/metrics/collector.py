"""Experiment metrics: delivered packets, latencies, ordering checks.

The paper's headline metric is "packets delivered within a fixed number of
cycles" (Section 4.1); the collector counts deliveries at processor-accept
time (the same point the paper's NICs hand packets to the processor), keeps
latency histograms (percentiles, not just mean/max), and can verify the
in-order delivery guarantee using the ``pair_seq`` stamps the traffic layer
puts on every packet.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..packets import Packet
from .histogram import LatencyHistogram, LatencyStats  # noqa: F401  (alias)


class MetricsCollector:
    """Hooks into NICs and processors to observe an experiment."""

    def __init__(
        self,
        num_nodes: int,
        check_order: bool = False,
        record_delivery_cycles: bool = False,
    ):
        self.num_nodes = num_nodes
        self.check_order = check_order
        self.sent = 0
        self.injected = 0
        self.delivered = 0
        self.abandoned = 0
        self.network_latency = LatencyHistogram()   # injection -> accept
        self.total_latency = LatencyHistogram()     # creation -> accept
        #: Reorder depth at ejection: how many packets of the same
        #: (src, dst) stream overtook this one in the network (0 on an
        #: in-order fabric).  Measured on first copies only -- a
        #: retransmission arriving late is recovery, not reordering.
        self.barrier_latency = LatencyHistogram()   # arrive -> release
        self.reorder_depth = LatencyHistogram()
        self.reorder_depth_by_pair: Dict[Tuple[int, int], LatencyHistogram] = {}
        self._eject_head: Dict[Tuple[int, int], int] = {}
        self.pending_per_receiver: List[int] = [0] * num_nodes
        self.order_violations = 0
        self._last_pair_seq: Dict[Tuple[int, int], int] = {}
        #: Accept cycles in acceptance order, kept only on request (fault
        #: runs need them to cut per-phase throughput and time-to-recover).
        self.delivery_cycles: List[int] = [] if record_delivery_cycles else None

    # ------------------------------------------------------------- wiring
    def attach(self, nics, processors) -> None:
        for nic in nics:
            nic.on_accept = self.note_accept
            nic.on_inject = self.note_inject
            nic.on_abandon = self.note_abandon
            nic.on_eject = self.note_eject
        for proc in processors:
            proc.on_send = self.note_send
            proc.on_barrier = self.note_barrier

    # -------------------------------------------------------------- hooks
    def note_send(self, packet: Packet) -> None:
        self.sent += 1

    def note_barrier(self, cycles: int) -> None:
        """One processor's arrive-to-release barrier/collective latency."""
        self.barrier_latency.note(cycles)

    def note_inject(self, packet: Packet) -> None:
        # Pending = in the network or the receiving NIC.  Packets waiting
        # in the sender's NIFDY pool deliberately do NOT count: Figure 5
        # visualises network congestion, and "instead of piling up in the
        # network, packets are blocked in the sender's NIFDY".
        self.injected += 1
        self.pending_per_receiver[packet.dst] += 1

    def note_abandon(self, packet: Packet) -> None:
        """A NIC gave up on ``packet`` (graceful degradation): the packet
        will never be delivered, so stop counting it as in flight."""
        if packet.delivered_cycle >= 0:
            # The sender released a packet whose original actually arrived
            # (only the acks were lost, e.g. a dead reply path): nothing is
            # owed to the receiver, so it is not a delivery debt write-off.
            return
        self.abandoned += 1
        if packet.injected_cycle >= 0:
            self.pending_per_receiver[packet.dst] -= 1

    def note_eject(self, packet: Packet) -> None:
        """Tail flit assembled at the destination NIC: measure how far out
        of send order the network delivered this packet."""
        if packet.is_retransmission or packet.pair_seq < 0:
            return
        key = (packet.src, packet.dst)
        head = self._eject_head.get(key, -1)
        if packet.pair_seq >= head:
            self._eject_head[key] = packet.pair_seq
            depth = 0
        else:
            depth = head - packet.pair_seq
        self.reorder_depth.note(depth)
        pair_hist = self.reorder_depth_by_pair.get(key)
        if pair_hist is None:
            pair_hist = self.reorder_depth_by_pair[key] = LatencyHistogram()
        pair_hist.note(depth)

    def note_accept(self, packet: Packet) -> None:
        self.delivered += 1
        if self.delivery_cycles is not None:
            self.delivery_cycles.append(packet.delivered_cycle)
        if packet.injected_cycle >= 0:
            self.pending_per_receiver[packet.dst] -= 1
        if packet.injected_cycle >= 0:
            self.network_latency.note(packet.delivered_cycle - packet.injected_cycle)
        if packet.created_cycle >= 0:
            self.total_latency.note(packet.delivered_cycle - packet.created_cycle)
        if self.check_order and packet.pair_seq >= 0:
            key = (packet.src, packet.dst)
            last = self._last_pair_seq.get(key, -1)
            if packet.pair_seq <= last:
                self.order_violations += 1
            else:
                self._last_pair_seq[key] = packet.pair_seq

    # ------------------------------------------------------------ queries
    @property
    def in_flight(self) -> int:
        """Packets still owed to a receiver.  Abandoned packets are a debt
        the network has explicitly written off, so they no longer count --
        this is what lets a degraded run terminate instead of spinning."""
        return self.sent - self.delivered - self.abandoned
