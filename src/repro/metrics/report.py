"""Result reporting: latency histograms, link utilisation, CSV export.

Tooling a downstream user needs to look *inside* a run: where the cycles
went (latency percentiles), where the bandwidth went (per-link utilisation,
which visualises hot spots and bisection pressure), and machine-readable
dumps of experiment results.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..networks import Network


class LatencyHistogram:
    """Power-of-two-bucket latency histogram with percentile queries."""

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.maximum = 0

    @staticmethod
    def _bucket(value: int) -> int:
        return max(0, int(value).bit_length() - 1)

    def note(self, value: int) -> None:
        if value < 0:
            raise ValueError("latency cannot be negative")
        bucket = self._bucket(value)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> int:
        """Upper bound of the bucket containing the given percentile."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.count == 0:
            return 0
        target = fraction * self.count
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= target:
                return (1 << (bucket + 1)) - 1
        return self.maximum

    def rows(self) -> List[Tuple[str, int]]:
        """(range label, count) pairs for rendering."""
        out = []
        for bucket in sorted(self._buckets):
            low = 1 << bucket if bucket else 0
            high = (1 << (bucket + 1)) - 1
            out.append((f"{low}-{high}", self._buckets[bucket]))
        return out


@dataclass
class LinkUtilization:
    name: str
    utilization: float
    flits: int
    packets_dropped: int


def link_utilization_report(
    network: Network, elapsed_cycles: int, top: Optional[int] = None,
    include_nic_links: bool = False,
) -> List[LinkUtilization]:
    """Per-link utilisation, busiest first (hot links = congestion map)."""
    rows = [
        LinkUtilization(
            name=link.name,
            utilization=link.utilization(elapsed_cycles),
            flits=link.flits_carried,
            packets_dropped=link.packets_dropped,
        )
        for link in network.links
        if include_nic_links or id(link) not in network._nic_link_ids
    ]
    rows.sort(key=lambda row: row.utilization, reverse=True)
    return rows[:top] if top is not None else rows


def utilization_summary(network: Network, elapsed_cycles: int) -> Dict[str, float]:
    """Aggregate fabric utilisation statistics."""
    rows = link_utilization_report(network, elapsed_cycles)
    if not rows:
        return {"mean": 0.0, "max": 0.0, "busy_fraction": 0.0}
    values = [row.utilization for row in rows]
    return {
        "mean": sum(values) / len(values),
        "max": max(values),
        "busy_fraction": sum(v > 0.5 for v in values) / len(values),
    }


def results_to_csv(results: Sequence, fieldnames: Optional[Sequence[str]] = None) -> str:
    """Render ExperimentResult-like objects as CSV text."""
    fieldnames = list(fieldnames or (
        "network", "nic_mode", "num_nodes", "cycles", "sent", "delivered",
        "completed", "order_violations", "mean_network_latency",
        "mean_total_latency",
    ))
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for result in results:
        writer.writerow({name: getattr(result, name) for name in fieldnames})
    return buffer.getvalue()
