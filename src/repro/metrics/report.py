"""Result reporting: latency histograms, link utilisation, CSV export, and
degradation analysis for fault-injected runs.

Tooling a downstream user needs to look *inside* a run: where the cycles
went (latency percentiles), where the bandwidth went (per-link utilisation,
which visualises hot spots and bisection pressure), how the run degraded
under injected faults (delivered fraction, retransmission overhead,
time-to-recover after each repair), and machine-readable dumps of
experiment results.
"""

from __future__ import annotations

import bisect
import csv
import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..networks import Network
from .histogram import LatencyHistogram  # noqa: F401  (canonical home moved)


@dataclass
class LinkUtilization:
    name: str
    utilization: float
    flits: int
    packets_dropped: int


def link_utilization_report(
    network: Network, elapsed_cycles: int, top: Optional[int] = None,
    include_nic_links: bool = False,
) -> List[LinkUtilization]:
    """Per-link utilisation, busiest first (hot links = congestion map)."""
    rows = [
        LinkUtilization(
            name=link.name,
            # Link.utilization is deliberately unclamped (a ratio above 1.0
            # is an accounting bug it must not hide); for display a tidy
            # 0..1 fraction is what readers expect.
            utilization=min(1.0, link.utilization(elapsed_cycles)),
            flits=link.flits_carried,
            packets_dropped=link.packets_dropped,
        )
        for link in network.links
        if include_nic_links or id(link) not in network._nic_link_ids
    ]
    rows.sort(key=lambda row: row.utilization, reverse=True)
    return rows[:top] if top is not None else rows


def utilization_summary(network: Network, elapsed_cycles: int) -> Dict[str, float]:
    """Aggregate fabric utilisation statistics."""
    rows = link_utilization_report(network, elapsed_cycles)
    if not rows:
        return {"mean": 0.0, "max": 0.0, "busy_fraction": 0.0}
    values = [row.utilization for row in rows]
    return {
        "mean": sum(values) / len(values),
        "max": max(values),
        "busy_fraction": sum(v > 0.5 for v in values) / len(values),
    }


@dataclass
class PhaseStats:
    """Delivered throughput within one fault-regime phase of a run."""

    start: int
    end: int
    delivered: int

    @property
    def throughput(self) -> float:
        """Packets delivered per 1000 cycles within this phase."""
        span = self.end - self.start
        return 1000.0 * self.delivered / span if span > 0 else 0.0


@dataclass
class RecoveryStats:
    """How long deliveries took to resume after one repair event."""

    description: str
    repair_cycle: int
    #: Cycles from the repair until the first post-repair delivery, or None
    #: if nothing was delivered afterwards (still partitioned, or done).
    time_to_recover: Optional[int]


@dataclass
class DegradationReport:
    """The fault-facing view of a run: what was delivered, what it cost,
    and how fast the system recovered from each repair."""

    sent: int
    delivered: int
    abandoned: int
    retransmissions: int
    duplicates_dropped: int
    packets_dropped_by_links: int
    phases: List[PhaseStats] = field(default_factory=list)
    recoveries: List[RecoveryStats] = field(default_factory=list)
    timeline: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def delivered_fraction(self) -> float:
        return self.delivered / self.sent if self.sent else 1.0

    @property
    def retransmission_overhead(self) -> float:
        """Extra injections per delivered packet (0 = loss-free)."""
        return self.retransmissions / self.delivered if self.delivered else 0.0


def degradation_report(
    *,
    metrics,
    nics: Sequence,
    network: Network,
    cycles: int,
    boundaries: Sequence[int] = (),
    repairs: Sequence[Tuple[int, str]] = (),
    timeline: Sequence[Tuple[int, str]] = (),
) -> DegradationReport:
    """Assemble a :class:`DegradationReport` from a finished run.

    ``boundaries`` are the fault plan's phase cut points;  ``repairs`` are
    ``(cycle, description)`` pairs for each repair event.  Phase and
    recovery stats need the collector's ``delivery_cycles`` record and are
    omitted (empty) when it was not kept.
    """
    report = DegradationReport(
        sent=metrics.sent,
        delivered=metrics.delivered,
        abandoned=metrics.abandoned,
        retransmissions=sum(getattr(nic, "retransmissions", 0) for nic in nics),
        duplicates_dropped=sum(
            getattr(nic, "duplicates_dropped", 0) for nic in nics
        ),
        packets_dropped_by_links=sum(
            link.packets_dropped for link in network.links
        ),
        timeline=list(timeline),
    )
    deliveries = metrics.delivery_cycles
    if deliveries is None:
        return report
    ordered = sorted(deliveries)
    cuts = [c for c in sorted(set(boundaries)) if 0 < c < cycles]
    edges = [0] + cuts + [cycles]
    for start, end in zip(edges, edges[1:]):
        lo = bisect.bisect_left(ordered, start)
        hi = bisect.bisect_left(ordered, end)
        report.phases.append(PhaseStats(start=start, end=end, delivered=hi - lo))
    for repair_cycle, description in repairs:
        idx = bisect.bisect_left(ordered, repair_cycle)
        recover = ordered[idx] - repair_cycle if idx < len(ordered) else None
        report.recoveries.append(
            RecoveryStats(
                description=description,
                repair_cycle=repair_cycle,
                time_to_recover=recover,
            )
        )
    return report


def format_degradation(report: DegradationReport) -> str:
    """Render a degradation report as the CLI's text section."""
    lines = ["degradation:"]
    lines.append(
        f"  delivered fraction  : {report.delivered_fraction:.3f} "
        f"({report.delivered:,}/{report.sent:,}"
        + (f", {report.abandoned} abandoned)" if report.abandoned else ")")
    )
    lines.append(
        f"  retransmit overhead : {report.retransmission_overhead:.3f} "
        f"extra injections/delivery ({report.retransmissions:,} retransmissions)"
    )
    lines.append(
        f"  losses              : links dropped "
        f"{report.packets_dropped_by_links:,}, receivers discarded "
        f"{report.duplicates_dropped:,} duplicates"
    )
    if report.phases:
        lines.append("  per-phase delivered throughput:")
        for phase in report.phases:
            lines.append(
                f"    [{phase.start:>9,} - {phase.end:>9,}) "
                f"{phase.delivered:>7,} pkts  "
                f"{phase.throughput:8.2f} pkts/kcycle"
            )
    for rec in report.recoveries:
        took = (
            f"recovered in {rec.time_to_recover:,} cycles"
            if rec.time_to_recover is not None
            else "no deliveries afterwards"
        )
        lines.append(f"  after {rec.description}: {took}")
    return "\n".join(lines)


def results_to_csv(results: Sequence, fieldnames: Optional[Sequence[str]] = None) -> str:
    """Render ExperimentResult-like objects as CSV text.

    The default column set is the results schema's scalar fields
    (``RUN_STATS_FIELDS`` minus the non-scalar tail), so CSV exports,
    ``--json`` output, and the sweep cache all agree on names and order.
    """
    if fieldnames is None:
        from ..report.schema import RUN_STATS_FIELDS

        fieldnames = [f for f in RUN_STATS_FIELDS
                      if f not in ("stall_report", "violations")]
    fieldnames = list(fieldnames)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for result in results:
        writer.writerow({name: getattr(result, name) for name in fieldnames})
    return buffer.getvalue()
