"""Per-receiver congestion sampling (Figure 5).

Figure 5 shades, for every receiver over time, the number of packets
pending for it (sent but not yet accepted).  The tracker snapshots the
collector's pending counts on a fixed cadence; the bench renders the
result as rows of a text heatmap / CSV.
"""

from __future__ import annotations

from typing import List

from ..sim import Simulator
from .collector import MetricsCollector


class CongestionTracker:
    """Periodic snapshots of packets pending per receiver."""

    def __init__(
        self,
        sim: Simulator,
        collector: MetricsCollector,
        sample_every: int = 1000,
    ):
        self.sim = sim
        self.collector = collector
        self.sample_every = sample_every
        self.samples: List[List[int]] = []
        self.sample_cycles: List[int] = []
        self._running = False

    def start(self) -> None:
        self._running = True
        self._sample()

    def stop(self) -> None:
        self._running = False

    def _sample(self) -> None:
        if not self._running:
            return
        self.samples.append(list(self.collector.pending_per_receiver))
        self.sample_cycles.append(self.sim.now)
        self.sim.schedule(self.sample_every, self._sample)

    # ------------------------------------------------------------ reports
    def peak_pending(self) -> int:
        """Worst per-receiver backlog seen in any sample."""
        return max((max(row) for row in self.samples), default=0)

    def mean_peak_pending(self) -> float:
        """Average (over samples) of the worst per-receiver backlog --
        low values mean even utilisation of receivers, the behaviour
        Figure 5 shows NIFDY restoring."""
        if not self.samples:
            return 0.0
        return sum(max(row) for row in self.samples) / len(self.samples)

    def heatmap_rows(self, shades: str = " .:-=+*#%@") -> List[str]:
        """ASCII rendering of Figure 5: one row per sample, one column per
        receiver; darker characters mean more pending packets (saturating
        at 20, like the paper's black)."""
        rows = []
        top = len(shades) - 1
        for sample in self.samples:
            row = "".join(
                shades[min(top, pending * top // 20)] for pending in sample
            )
            rows.append(row)
        return rows
