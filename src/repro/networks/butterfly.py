"""Radix-k butterflies and dilated multibutterflies.

The paper simulates "multibutterflies, with adjustable dilation and radix.
In this report we use a butterfly (dilation 1, radix 4) and a multibutterfly
(dilation 2, radix 4)".

Construction (delta network): ``n = log_k(N)`` stages of ``N/k`` switches.
A packet's "line number" starts as anything and must become the destination
id; stage ``s`` (0-based from injection) rewrites digit ``n-1-s``
(most-significant first) to the destination's digit.  The switch of stage
``s`` containing line ``x`` is identified by ``x`` with digit ``n-1-s``
removed; output port ``p`` leads to the stage-``s+1`` switch containing the
line with that digit set to ``p``.

* Dilation 1 gives a unique path per (src, dst) pair -- in-order delivery,
  but zero path diversity, which is why congestion avoidance matters most
  here (Table 3: the butterfly is the only network best run with no bulk
  dialogs).
* Dilation 2 adds a second, equivalent next-stage switch for each logical
  direction (any switch agreeing on the digits already rewritten serves the
  same destinations, because the remaining low digits will be rewritten
  anyway).  The choice is adaptive, so packets can arrive out of order.

The network is unidirectional: acks traverse the full butterfly from
receiver back to sender on the reply VCs of the same links.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..links import Link
from ..packets import Packet
from ..routers import Router
from ..sim import Simulator
from .base import Network, vc_layout


def _remove_digit(value: int, pos: int, k: int) -> int:
    """Remove the base-k digit at ``pos`` from ``value``."""
    high = value // (k ** (pos + 1))
    low = value % (k ** pos)
    return high * (k ** pos) + low


def _insert_digit(value: int, pos: int, digit: int, k: int) -> int:
    """Insert ``digit`` at position ``pos`` into base-k number ``value``."""
    high = value // (k ** pos)
    low = value % (k ** pos)
    return high * (k ** (pos + 1)) + digit * (k ** pos) + low


def _digit(value: int, pos: int, k: int) -> int:
    return (value // (k ** pos)) % k


def build_butterfly(
    sim: Simulator,
    stages: int = 3,
    k: int = 4,
    dilation: int = 1,
    buffer_flits: int = 4,
    eject_flits: int = 16,
    route_delay: int = 1,
    vcs_per_net: int = 1,
    width_bytes: int = 1,
    rng: Optional[random.Random] = None,
    drop_prob: float = 0.0,
    drop_rng=None,
    spray: bool = False,
    path_skew: int = 0,
) -> Network:
    """Build a radix-k, ``stages``-stage (multi)butterfly of ``k**stages`` nodes.

    ``spray=True`` makes dilated stages commit each packet to one random
    copy (oblivious spraying) instead of adaptively taking the first free
    one; ``path_skew`` adds a uniform extra per-hop routing latency in
    ``[0, path_skew]`` cycles (see :func:`repro.networks.build_fattree`).
    """
    if not 1 <= dilation <= k:
        raise ValueError(f"dilation must be in 1..{k} (the radix)")
    if path_skew < 0:
        raise ValueError("path_skew must be >= 0")
    rng = rng or random.Random(0)
    num_nodes = k ** stages
    switches_per_stage = num_nodes // k
    layout = vc_layout(vcs_per_net)
    vc_count = len(layout)
    name = "butterfly" if dilation == 1 else "multibutterfly"
    if spray:
        name = f"spraying {name}"
    net = Network(
        sim, f"{name} ({num_nodes})", num_nodes,
        delivers_in_order=(dilation == 1 and vcs_per_net == 1),
    )

    # rid = stage * switches_per_stage + index
    router_meta: Dict[int, Tuple[int, int]] = {}

    def copies_for(stage: int) -> int:
        """Physical copies of each logical direction leaving ``stage``.

        An alternate next-stage switch only exists while there is still a
        not-yet-rewritten low digit to vary, i.e. for all but the last two
        transitions; the final fan-in to the destination is unique.
        """
        if stage >= stages - 2:
            return 1
        return dilation

    def route(router: Router, packet: Packet, in_port: int, in_vc: int):
        stage, index = router_meta[router.rid]
        digit_pos = stages - 1 - stage
        out_digit = _digit(packet.dst, digit_pos, k)
        if stage == stages - 1:
            link = router.out_links[out_digit]
            return [(link, link.vcs_for_net(packet.logical_net))]
        choices = []
        for copy in range(copies_for(stage)):
            link = router.out_links[out_digit * dilation + copy]
            choices.append((link, link.vcs_for_net(packet.logical_net)))
        if len(choices) > 1:
            if spray:
                return [choices[rng.randrange(len(choices))]]
            rng.shuffle(choices)
        return choices

    routers: List[List[Router]] = []
    rid = 0
    for stage in range(stages):
        row = []
        for index in range(switches_per_stage):
            router = Router(sim, rid, route, route_delay=route_delay)
            if path_skew:
                router.route_jitter = path_skew
                router.jitter_rng = rng
            router_meta[rid] = (stage, index)
            net.add_router(router)
            row.append(router)
            rid += 1
        routers.append(row)

    def make_link(label: str, dst: Router, dst_port: int, buf: int) -> Link:
        link = Link(
            sim, label, width_bytes, vc_count, buf,
            sink=dst, sink_port=dst_port, net_of_vc=layout,
            drop_prob=drop_prob, drop_rng=drop_rng,
        )
        dst.attach_in_link(dst_port, link)
        return link

    # Inter-stage links.  Input ports at stage s+1 are allocated densely in
    # arrival order (each switch has at most k*dilation inputs).
    in_port_counter: Dict[int, int] = {}
    for stage in range(stages - 1):
        digit_pos = stages - 1 - stage
        next_pos = stages - 2 - stage
        for index in range(switches_per_stage):
            switch = routers[stage][index]
            for out_digit in range(k):
                for copy in range(copies_for(stage)):
                    line = _insert_digit(index, digit_pos, out_digit, k)
                    if copy:
                        # Equivalent alternate: vary a stale low digit of
                        # the line (it will be rewritten downstream), which
                        # lands in a different switch serving the same
                        # destination set.  Each copy offsets the digit by
                        # a distinct amount, so up to k copies exist.
                        stale = _digit(line, 0, k)
                        line = _insert_digit(
                            _remove_digit(line, 0, k), 0, (stale + copy) % k, k
                        )
                    next_index = _remove_digit(line, next_pos, k)
                    target = routers[stage + 1][next_index]
                    port_in = in_port_counter.get(target.rid, 0)
                    in_port_counter[target.rid] = port_in + 1
                    link = make_link(
                        f"bf:{switch.rid}.{out_digit}.{copy}",
                        target, port_in, buffer_flits,
                    )
                    switch.attach_out_link(out_digit * dilation + copy, link)
                    net.register_link(link, f"r{switch.rid}", f"r{target.rid}")

    # Node attachments: injection into stage 0, ejection from the last stage.
    for node in range(num_nodes):
        first = routers[0][_remove_digit(node, stages - 1, k)]
        inj = make_link(
            f"bf:inj{node}", first,
            in_port_counter.get(first.rid, k * dilation)
            + _digit(node, stages - 1, k),
            buffer_flits,
        )
        net.register_link(inj, f"n{node}", f"r{first.rid}")
        last = routers[stages - 1][_remove_digit(node, 0, k)]
        ej = Link(
            sim, f"bf:ej{node}", width_bytes, vc_count, eject_flits,
            sink=None, sink_port=0, net_of_vc=layout,
        )
        last.attach_out_link(_digit(node, 0, k), ej)
        net.register_link(ej, f"r{last.rid}", f"n{node}")

        def attach(nic, inj=inj, ej=ej):
            nic.attach_injection(inj)
            ej.set_sink(nic, 0)
            nic.attach_ejection(ej)

        net.set_nic_wiring(node, attach)

    return net
